//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of `rand` 0.8's API it actually uses: a seedable
//! [`rngs::SmallRng`] plus [`Rng::gen_range`] / [`Rng::gen_bool`]. The
//! generator is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm family `rand` 0.8 uses for `SmallRng` on 64-bit targets —
//! so streams are deterministic, fast, and of equivalent statistical
//! quality. Only the API surface below is provided; anything else from
//! upstream `rand` is intentionally absent.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// `u64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, span)` via Lemire's widening
/// multiply with rejection; `span == 0` means the full 64-bit domain.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let mut m = rng.next_u64() as u128 * span as u128;
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = rng.next_u64() as u128 * span as u128;
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard the open upper bound against rounding.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator behind `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream `rand` seeds from u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility: the workspace only needs a
    /// deterministic seeded generator, so `StdRng` shares the engine.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "fraction {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_covers_small_spans() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
