//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of criterion's API its benches use: `Criterion`,
//! `benchmark_group` with `throughput` / timing knobs, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark warms up for
//! `warm_up_time`, then runs timed batches until `measurement_time`
//! elapses, and reports mean ns/iter plus derived element throughput.
//! No statistical analysis, plots, or baselines — the numbers are for
//! relative tracking, not publication.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration (e.g. simulated cycles).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies CLI args: the first non-flag argument is a substring
    /// filter on benchmark names (flags like `--bench` are ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_one(
            &name,
            self.filter.as_deref(),
            None,
            Duration::from_millis(300),
            Duration::from_secs(1),
            f,
        );
        self
    }
}

/// A group of benchmarks sharing throughput and timing settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the warm-up duration before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; sampling is time-bounded here.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.throughput,
            self.warm_up,
            self.measurement,
            f,
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    mode: Mode,
    /// (total elapsed, total iterations) accumulated by `iter`.
    result: Option<(Duration, u64)>,
}

enum Mode {
    WarmUp(Duration),
    Measure(Duration),
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let budget = match self.mode {
            Mode::WarmUp(d) | Mode::Measure(d) => d,
        };
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn run_one<F>(
    name: &str,
    filter: Option<&str>,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }

    let mut b = Bencher {
        mode: Mode::WarmUp(warm_up),
        result: None,
    };
    f(&mut b);

    let mut b = Bencher {
        mode: Mode::Measure(measurement),
        result: None,
    };
    f(&mut b);
    let (elapsed, iters) = b.result.expect("benchmark closure must call Bencher::iter");

    let ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let rate = throughput.map(|t| {
        let per_iter = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = per_iter.0 as f64 * 1e9 / ns_per_iter;
        format!("  {:>12.0} {}/s", per_sec, per_iter.1)
    });
    println!(
        "bench {name:<48} {ns_per_iter:>14.0} ns/iter ({iters} iters){}",
        rate.unwrap_or_default()
    );
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
