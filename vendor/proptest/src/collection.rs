//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for a `Vec` whose length is drawn from `len`, as produced by
/// [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A `Vec<S::Value>` with length uniform in `len` and elements drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Option<Self::Value> {
        let n = if self.len.is_empty() {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let s = vec(0u32..10, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng).unwrap();
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }
}
