//! Value-generation strategies (no shrinking).

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Generates random values of an associated type.
///
/// `generate` returns `None` when the draw is rejected (e.g. a
/// `prop_filter` predicate failed); the runner retries rejections
/// against its budget instead of shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value, or `None` on rejection.
    fn generate(&self, rng: &mut SmallRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values for which `pred` returns `false`.
    fn prop_filter<F>(self, _whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> Option<T> {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(&self.pred)
    }
}

/// Uniform choice among alternatives; backs `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    ///
    /// # Panics
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> Option<T> {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> Option<f64> {
        Some(rng.gen_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
impl_tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8
);
impl_tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn map_filter_union_compose() {
        let mut rng = SmallRng::seed_from_u64(9);
        let even = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        let doubled = (0u64..50).prop_map(|v| v * 2);
        let s = crate::prop_oneof![even, doubled];
        for _ in 0..200 {
            if let Some(v) = s.generate(&mut rng) {
                assert!(v < 100 && v % 2 == 0, "{v}");
            }
        }
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut rng = SmallRng::seed_from_u64(11);
        let s = (0u8..10, Just("x"), 5i32..=5);
        let (a, b, c) = s.generate(&mut rng).unwrap();
        assert!(a < 10);
        assert_eq!(b, "x");
        assert_eq!(c, 5);
    }
}
