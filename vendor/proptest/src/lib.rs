//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of proptest's API its property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter`, range and tuple
//! strategies, [`collection::vec`], [`arbitrary::any`], `Just`,
//! `prop_oneof!`, and the `proptest!` test macro with
//! `prop_assert*!` / `prop_assume!`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic seed and
//!   case index instead of a minimised input.
//! * **Deterministic seeding.** Cases derive from a fixed per-test seed
//!   (overridable via `PROPTEST_SEED`), so CI failures reproduce exactly.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// its reproduction seed) instead of panicking the whole process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Discards the current case (counted against the rejection budget)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal muncher behind [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |__proptest_rng| {
                let __strategies = ($($strat,)+);
                let ($($arg,)+) = match $crate::strategy::Strategy::generate(
                    &__strategies,
                    __proptest_rng,
                ) {
                    ::std::option::Option::Some(v) => v,
                    ::std::option::Option::None => {
                        return ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        )
                    }
                };
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}
