//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::RngCore;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy covering the whole domain.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `T`, as in `any::<u64>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for a primitive, produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> Option<$t> {
                Some(rng.next_u64() as $t)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> Option<bool> {
        Some(rng.next_u64() & 1 == 1)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}
