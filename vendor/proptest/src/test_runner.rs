//! The case runner behind the `proptest!` macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` or a filtered strategy);
    /// retried against the rejection budget.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration; only the fields the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected draws before the runner gives up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// FNV-1a, used to derive a stable per-test base seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives `body` through `config.cases` successful cases.
///
/// Each case gets an rng seeded from `(base seed, case index)` so a
/// reported failure replays exactly. Set `PROPTEST_SEED` to override
/// the base seed when reproducing.
///
/// # Panics
/// Panics when a case fails or the rejection budget is exhausted.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
{
    let base_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| fnv1a(name.as_bytes()));

    let mut passed = 0u32;
    let mut rejects = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let mut rng = SmallRng::seed_from_u64(base_seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "proptest {name}: too many rejected cases ({rejects}); \
                     loosen the strategy or prop_assume!"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name} failed at case {case} \
                     (reproduce with PROPTEST_SEED={base_seed}): {msg}"
                );
            }
        }
        case += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run_cases(&ProptestConfig::with_cases(10), "count", |_rng| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_seed() {
        run_cases(&ProptestConfig::with_cases(5), "fails", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn rejects_are_retried() {
        let mut draws = 0u32;
        run_cases(&ProptestConfig::with_cases(3), "rejects", |_rng| {
            draws += 1;
            if draws.is_multiple_of(2) {
                Ok(())
            } else {
                Err(TestCaseError::Reject)
            }
        });
        assert_eq!(draws, 6);
    }
}
