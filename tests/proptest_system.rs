//! Property-based integration tests: random request streams against the
//! controller + device stack, checking invariants that must hold for any
//! traffic whatsoever.

use proptest::prelude::*;

use rop_sim::dram::DramConfig;
use rop_sim::memctrl::{MemController, MemCtrlConfig};

/// One externally-generated stimulus step.
#[derive(Debug, Clone)]
enum Step {
    Read { line: u64, gap: u8 },
    Write { line: u64, gap: u8 },
    Idle { cycles: u16 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..1 << 22, 0u8..40).prop_map(|(line, gap)| Step::Read { line, gap }),
        (0u64..1 << 22, 0u8..40).prop_map(|(line, gap)| Step::Write { line, gap }),
        (1u16..2000).prop_map(|cycles| Step::Idle { cycles }),
    ]
}

/// Drives the controller with arbitrary traffic; returns
/// (reads accepted, completions delivered, final cycle).
fn drive(mut ctrl: MemController, steps: &[Step]) -> (u64, u64, u64) {
    let mut now = 0u64;
    let mut accepted = 0u64;
    let mut completions = 0u64;
    let mut completion_times: Vec<u64> = Vec::new();
    for step in steps {
        match *step {
            Step::Read { line, gap } => {
                now += gap as u64;
                ctrl.tick(now);
                if ctrl.enqueue_read(line, 0, now).is_some() {
                    accepted += 1;
                }
            }
            Step::Write { line, gap } => {
                now += gap as u64;
                ctrl.tick(now);
                let _ = ctrl.enqueue_write(line, 0, now);
            }
            Step::Idle { cycles } => {
                let end = now + cycles as u64;
                while now < end {
                    let hint = ctrl.tick(now);
                    now = hint.max(now + 1).min(end);
                }
            }
        }
        for c in ctrl.take_completions() {
            assert!(
                c.done_at >= now.saturating_sub(1) || c.done_at <= now + 1_000_000,
                "completion time sane"
            );
            completion_times.push(c.done_at);
            completions += 1;
        }
    }
    // Drain: run until every accepted read completed (bounded).
    let deadline = now + 10_000_000;
    while completions < accepted && now < deadline {
        let hint = ctrl.tick(now);
        for c in ctrl.take_completions() {
            completion_times.push(c.done_at);
            completions += 1;
        }
        now = hint.max(now + 1);
    }
    (accepted, completions, now)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every accepted read eventually completes, exactly once, under any
    /// traffic: no lost or duplicated requests across refreshes, drains,
    /// prefetch interference and queue pressure.
    #[test]
    fn all_accepted_reads_complete(steps in proptest::collection::vec(step_strategy(), 1..120)) {
        for cfg in [
            MemCtrlConfig::baseline(DramConfig::baseline(2)),
            MemCtrlConfig::rop(DramConfig::baseline(2), 32, 9),
        ] {
            let (accepted, completed, _) = drive(MemController::new(cfg), &steps);
            prop_assert_eq!(accepted, completed);
        }
    }

    /// The controller makes forward progress: the fast-forward hint never
    /// goes backwards and the system never deadlocks inside the horizon.
    #[test]
    fn hints_are_monotonic(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        let mut ctrl = MemController::new(MemCtrlConfig::baseline(DramConfig::baseline(1)));
        let mut now = 0u64;
        for step in &steps {
            if let Step::Read { line, gap } = step {
                now += *gap as u64;
                let _ = ctrl.enqueue_read(*line, 0, now);
            }
            let hint = ctrl.tick(now);
            prop_assert!(hint > now, "hint {} must be in the future of {}", hint, now);
            now += 1;
        }
    }

    /// The event-driven engine and the per-cycle reference loop agree
    /// bit-for-bit on total cycles, refreshes and per-core instruction
    /// accounting, for any benchmark, system kind and seed.
    #[test]
    fn event_loop_matches_reference(
        bench_idx in 0usize..12,
        kind_idx in 0usize..4,
        seed in 0u64..1 << 32,
        instructions in 10_000u64..50_000,
    ) {
        use rop_sim::sim::runner::{run_single, run_single_reference, RunSpec};
        use rop_sim::sim::SystemKind;
        use rop_sim::trace::ALL_BENCHMARKS;

        let benchmark = ALL_BENCHMARKS[bench_idx];
        let kind = [
            SystemKind::Baseline,
            SystemKind::BaselineRp,
            SystemKind::Rop { buffer: 64 },
            SystemKind::NoRefresh,
        ][kind_idx];
        let spec = RunSpec { instructions, max_cycles: 50_000_000, seed };
        let ev = run_single(benchmark, kind, spec);
        let rf = run_single_reference(benchmark, kind, spec);
        prop_assert_eq!(ev.total_cycles, rf.total_cycles);
        prop_assert_eq!(ev.refreshes, rf.refreshes);
        prop_assert_eq!(ev.cores.len(), rf.cores.len());
        for (a, b) in ev.cores.iter().zip(&rf.cores) {
            prop_assert_eq!(a.instructions, b.instructions);
            prop_assert_eq!(a.finish_cycle, b.finish_cycle);
            prop_assert_eq!(a.stall_cycles, b.stall_cycles);
            prop_assert_eq!(a.llc_hits, b.llc_hits);
            prop_assert_eq!(a.read_misses, b.read_misses);
        }
    }

    /// Energy is monotone in time: accruing more cycles never decreases
    /// the breakdown total.
    #[test]
    fn energy_monotone_in_time(reads in proptest::collection::vec(0u64..1<<20, 1..40)) {
        let mut ctrl = MemController::new(MemCtrlConfig::baseline(DramConfig::baseline(1)));
        let mut now = 0;
        for (i, line) in reads.iter().enumerate() {
            let _ = ctrl.enqueue_read(*line, 0, now);
            now = ctrl.tick(now).max(now + 1).min(now + 100);
            let _ = ctrl.take_completions();
            let _ = i;
        }
        let e1 = ctrl.energy_breakdown(now).total_nj();
        let e2 = ctrl.energy_breakdown(now + 50_000).total_nj();
        prop_assert!(e2 >= e1);
    }
}
