//! Cross-crate integration tests: whole-system behaviour that no single
//! crate can check on its own.

use rop_sim::sim::{System, SystemConfig, SystemKind};
use rop_sim::trace::{Benchmark, WORKLOAD_MIXES};

const QUOTA: u64 = 400_000;
const CAP: u64 = 100_000_000;

fn run(kind: SystemKind, bench: Benchmark, seed: u64) -> rop_sim::sim::RunMetrics {
    let mut sys = System::new(SystemConfig::single_core(bench, kind, seed));
    sys.run_until(QUOTA, CAP)
}

#[test]
fn identical_seeds_give_identical_runs() {
    for kind in [SystemKind::Baseline, SystemKind::Rop { buffer: 32 }] {
        let a = run(kind, Benchmark::Gcc, 7);
        let b = run(kind, Benchmark::Gcc, 7);
        assert_eq!(a.total_cycles, b.total_cycles, "{}", kind.label());
        assert_eq!(a.refreshes, b.refreshes);
        assert_eq!(a.prefetches, b.prefetches);
        assert!((a.energy.total_nj() - b.energy.total_nj()).abs() < 1e-6);
        assert_eq!(a.cores[0].read_misses, b.cores[0].read_misses);
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(SystemKind::Baseline, Benchmark::Omnetpp, 1);
    let b = run(SystemKind::Baseline, Benchmark::Omnetpp, 2);
    assert_ne!(a.total_cycles, b.total_cycles);
}

#[test]
fn no_refresh_bounds_baseline_for_intensive_benchmarks() {
    for bench in [Benchmark::Libquantum, Benchmark::Lbm, Benchmark::Bwaves] {
        let base = run(SystemKind::Baseline, bench, 42);
        let ideal = run(SystemKind::NoRefresh, bench, 42);
        assert_eq!(ideal.refreshes, 0);
        assert!(base.refreshes > 0);
        assert!(
            ideal.ipc() > base.ipc(),
            "{}: refresh must cost performance (base {}, ideal {})",
            bench.name(),
            base.ipc(),
            ideal.ipc()
        );
        assert!(
            base.energy.total_nj() > ideal.energy.total_nj(),
            "{}: refresh must cost energy",
            bench.name()
        );
    }
}

#[test]
fn refresh_rate_is_one_per_trefi() {
    let m = run(SystemKind::Baseline, Benchmark::Libquantum, 42);
    let expected = m.total_cycles / 6240;
    let got = m.refreshes;
    // Due-based scheduling keeps the long-run rate exact (± the warmup
    // offset and the partial tail interval).
    assert!(
        (got as i64 - expected as i64).unsigned_abs() <= 2,
        "refreshes {got} vs expected {expected}"
    );
}

#[test]
fn energy_breakdown_components_sum() {
    let m = run(SystemKind::Rop { buffer: 64 }, Benchmark::GemsFDTD, 42);
    let e = m.energy;
    let sum = e.act_pre_nj + e.read_nj + e.write_nj + e.refresh_nj + e.background_nj + e.sram_nj;
    assert!((e.total_nj() - sum).abs() < 1e-9);
    assert!(e.background_nj > 0.0);
    assert!(e.refresh_nj > 0.0);
}

#[test]
fn fixed_work_quota_is_respected() {
    let m = run(SystemKind::Baseline, Benchmark::Perlbench, 42);
    assert!(!m.hit_cycle_cap);
    assert_eq!(m.cores[0].instructions, QUOTA);
    assert!(m.cores[0].finish_cycle <= m.total_cycles);
}

#[test]
fn multicore_partitioning_isolates_better_than_baseline() {
    // WL1 (all-intensive) is where rank partitioning matters most: each
    // core stops being frozen by the other ranks' refreshes and stops
    // thrashing shared banks.
    let mix = WORKLOAD_MIXES[0];
    let mut base = System::new(SystemConfig::multi_core(
        mix.programs,
        SystemKind::Baseline,
        42,
    ));
    let b = base.run_until(QUOTA, 400_000_000);
    let mut rp = System::new(SystemConfig::multi_core(
        mix.programs,
        SystemKind::BaselineRp,
        42,
    ));
    let r = rp.run_until(QUOTA, 400_000_000);
    let b_tp: f64 = b.cores.iter().map(|c| c.ipc).sum();
    let r_tp: f64 = r.cores.iter().map(|c| c.ipc).sum();
    assert!(
        r_tp > b_tp,
        "rank partitioning must raise WL1 throughput ({r_tp} vs {b_tp})"
    );
}

#[test]
fn rop_trains_and_serves_on_streaming_traffic() {
    let mut sys = System::new(SystemConfig::single_core(
        Benchmark::Libquantum,
        SystemKind::Rop { buffer: 64 },
        42,
    ));
    // Enough work to finish the 50-refresh training and prefetch a while.
    let m = sys.run_until(3_000_000, 400_000_000);
    assert!(
        m.prefetches > 0,
        "streaming workload must trigger prefetching"
    );
    assert!(m.sram_lookups > 0);
    assert!(
        m.sram_hit_rate > 0.5,
        "hit rate {} below the paper's ~0.6 operating point",
        m.sram_hit_rate
    );
    let stats = sys.controller().rop_engine_stats(0).expect("ROP enabled");
    assert!(stats.trainings_completed >= 1);
    let (lambda, beta) = sys.controller().rop_probabilities(0).unwrap();
    assert!(lambda > 0.9, "streaming λ must be high, got {lambda}");
    assert!(beta < 0.2, "streaming β must be low, got {beta}");
}

#[test]
fn quiet_workload_mostly_skips_prefetching() {
    let mut sys = System::new(SystemConfig::single_core(
        Benchmark::Gobmk,
        SystemKind::Rop { buffer: 64 },
        42,
    ));
    // gobmk retires ~4 IPC, so it needs a large quota to live through the
    // 50-refresh training phase plus a meaningful observing stretch.
    let m = sys.run_until(10_000_000, 400_000_000);
    let stats = sys.controller().rop_engine_stats(0).expect("ROP enabled");
    // gobmk's windows are almost always quiet with high β: the throttle
    // must skip far more often than it prefetches.
    assert!(
        stats.skip_decisions > stats.prefetch_decisions,
        "skips {} vs prefetches {}",
        stats.skip_decisions,
        stats.prefetch_decisions
    );
    assert!(m.refreshes > 100);
}

#[test]
fn per_bank_refresh_system_runs_deterministically() {
    let run_pb = || {
        let mut sys = System::new(SystemConfig::single_core(
            Benchmark::Libquantum,
            SystemKind::PerBankRefresh,
            42,
        ));
        sys.run_until(QUOTA, CAP)
    };
    let a = run_pb();
    let b = run_pb();
    assert!(!a.hit_cycle_cap);
    assert_eq!(a.total_cycles, b.total_cycles);
    // Per-bank mode issues ~8x as many (shorter) refreshes; the analysis
    // instrumentation has one slot per bank.
    assert_eq!(a.analysis.len(), 8);
    assert!(a.refreshes > 8 * (a.total_cycles / 6240).saturating_sub(2));
}

#[test]
fn rop_on_per_bank_refresh_runs() {
    let mut sys = System::new(SystemConfig::single_core(
        Benchmark::Libquantum,
        SystemKind::RopPerBank { buffer: 64 },
        42,
    ));
    let m = sys.run_until(2_000_000, 400_000_000);
    assert!(!m.hit_cycle_cap);
    assert!(m.refreshes > 0);
    // Training (50 refresh events) completes 8x faster in per-bank mode.
    assert!(m.prefetches > 0, "per-bank ROP must prefetch");
}

#[test]
fn elastic_refresh_helps_bursty_workloads() {
    // GemsFDTD alternates long streams with idle phases — exactly where
    // postponing refreshes into idle gaps pays.
    let quota = 2_000_000;
    let mut base = System::new(SystemConfig::single_core(
        Benchmark::GemsFDTD,
        SystemKind::Baseline,
        42,
    ));
    let b = base.run_until(quota, CAP);
    let mut elastic = System::new(SystemConfig::single_core(
        Benchmark::GemsFDTD,
        SystemKind::ElasticRefresh,
        42,
    ));
    let e = elastic.run_until(quota, CAP);
    assert!(
        e.ipc() >= b.ipc(),
        "elastic {} must not lose to baseline {}",
        e.ipc(),
        b.ipc()
    );
}

#[test]
fn analysis_windows_are_monotone() {
    // A longer examined window can only see more blocking, never less.
    let m = run(SystemKind::Baseline, Benchmark::Bzip2, 42);
    let [w1, w2, w4] = m.analysis[0];
    assert!(w1.non_blocking_fraction >= w2.non_blocking_fraction - 1e-12);
    assert!(w2.non_blocking_fraction >= w4.non_blocking_fraction - 1e-12);
    assert!(w1.refreshes == w2.refreshes && w2.refreshes == w4.refreshes);
}
