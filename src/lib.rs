//! # rop-sim — Refresh-Oriented Prefetching, reproduced in Rust
//!
//! A full-system reproduction of *"ROP: Alleviating Refresh Overheads via
//! Reviving the Memory System in Frozen Cycles"* (ICPP 2016): a
//! cycle-level DDR4 memory system with an auto-refresh controller, plus
//! the paper's contribution — a refresh-aware prefetcher that stages
//! likely-read cache lines into a small SRAM buffer right before each
//! rank refresh, so reads arriving during the `tRFC` *frozen cycles* are
//! served from SRAM instead of stalling.
//!
//! This crate is a façade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dram`] | `rop-dram` | cycle-level DDR4 device: banks/ranks, full timing, FGR, IDD energy model |
//! | [`memctrl`] | `rop-memctrl` | FR-FCFS controller, refresh manager, ROP integration, §III analysis instrumentation |
//! | [`core`] | `rop-core` | ROP itself: Pattern Profiler, VLDP-style prediction table, prefetcher, SRAM buffer, λ/β throttle |
//! | [`cache`] | `rop-cache` | set-associative write-back LLC |
//! | [`cpu`] | `rop-cpu` | trace-driven OoO-lite core |
//! | [`trace`] | `rop-trace` | synthetic SPEC CPU2006-like workloads (Table II) |
//! | [`sim`] | `rop-sim-system` | full-system assembly + one experiment module per paper table/figure |
//! | [`stats`] | `rop-stats` | counters, histograms, summary math, table rendering |
//!
//! ## Quickstart
//!
//! ```
//! use rop_sim::sim::{System, SystemConfig, SystemKind};
//! use rop_sim::trace::Benchmark;
//!
//! // Paper single-core setup: libquantum on the ROP-64 system.
//! let cfg = SystemConfig::single_core(
//!     Benchmark::Libquantum,
//!     SystemKind::Rop { buffer: 64 },
//!     42,
//! );
//! let mut system = System::new(cfg);
//! // (Tiny quota so the doctest is fast; experiments use millions.)
//! let metrics = system.run_until(20_000, 10_000_000);
//! assert!(metrics.ipc() > 0.0);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/repro`
//! for the per-figure reproduction driver.

#![forbid(unsafe_code)]

pub use rop_cache as cache;
pub use rop_core as core;
pub use rop_cpu as cpu;
pub use rop_dram as dram;
pub use rop_memctrl as memctrl;
pub use rop_sim_system as sim;
pub use rop_stats as stats;
pub use rop_trace as trace;

/// Memory-clock cycle type used across all crates.
pub type Cycle = u64;
