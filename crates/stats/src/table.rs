//! Minimal ASCII table renderer for the `repro` binary's figure/table
//! output. No external dependencies; pads columns to their widest cell.

/// Builds a left-aligned ASCII table row by row.
#[derive(Debug, Default, Clone)]
pub struct TableBuilder {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Creates a table with a title line printed above the header.
    pub fn new(title: impl Into<String>) -> Self {
        TableBuilder {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the header cells.
    pub fn header<I, S>(mut self, cells: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cells.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row. Rows shorter than the header are padded with
    /// empty cells; longer rows extend the table width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table to a `String` (trailing newline included).
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            measure(&mut widths, row);
        }

        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let render_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}"));
                if i + 1 != widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            let header_line = render_row(&self.header, &widths);
            let rule = "-".repeat(header_line.len());
            out.push_str(&header_line);
            out.push('\n');
            out.push_str(&rule);
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimal places — the house style for
/// normalised metrics in experiment output.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float as a percentage with one decimal place.
pub fn fmt_pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableBuilder::new("demo").header(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "demo");
        assert!(lines[1].starts_with("name"));
        assert!(lines[2].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("a"));
        assert!(lines[4].starts_with("longer"));
        // Columns aligned: "value" column starts at same offset in each row.
        let col = lines[1].find("value").unwrap();
        assert_eq!(&lines[3][col..col + 1], "1");
        assert_eq!(&lines[4][col..col + 2], "22");
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TableBuilder::new("").header(["a", "b"]);
        t.row(["1"]);
        t.row(["1", "2", "3"]);
        let s = t.render();
        assert!(s.contains('3'));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_pct(12.345), "12.3%");
    }
}
