//! Online (single-pass) mean/variance via Welford's algorithm.

/// Streaming mean / variance / min / max of `f64` observations.
///
/// Used by the experiment runner to summarise per-benchmark metrics
/// without storing every sample.
#[derive(Debug, Default, Clone, Copy)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn matches_batch_computation() {
        let xs = [1.0, 2.0, 3.5, -1.0, 10.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-9);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 10.0);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut s = OnlineStats::new();
        s.record(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }
}
