//! Minimal JSON value model with a renderer and a parser.
//!
//! The sweep harness persists run results as JSON Lines. Pulling in
//! `serde`/`serde_json` would violate the repo's offline vendored-stubs
//! policy, and the store only needs a tiny subset of JSON: objects,
//! arrays, strings, numbers, booleans and null, one record per line.
//! Numbers are rendered with Rust's `{:?}` float formatting (shortest
//! representation that round-trips), so a value survives
//! write → parse → write bit-exactly — which is what makes "a resumed
//! sweep renders the identical figure" testable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as, and rendered from, `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys keep insertion order so rendered records are
    /// stable and diffable.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object under construction.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a key/value pair (object values only; no-op otherwise).
    pub fn push(&mut self, key: &str, value: Json) -> &mut Self {
        if let Json::Obj(pairs) = self {
            pairs.push((key.to_string(), value));
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Exact integral test is the point: 2.0 is an integer, 2.5 is not.
            // rop-lint: allow(float-eq)
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to compact single-line JSON (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // rop-lint: allow(float-eq)
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        // Integral values print without ".0" so integer
                        // counters look like integers in the store.
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        // {:?} is Rust's shortest round-trip float form.
                        let _ = write!(out, "{n:?}");
                    }
                } else {
                    // JSON has no Inf/NaN; store null and let readers
                    // treat it as "not measured".
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document. Fails on trailing garbage, which is how
    /// the store detects a line truncated by a crash mid-write.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') => {
                if self.eat_lit("null") {
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at offset {}", self.pos))
                }
            }
            Some(b't') => {
                if self.eat_lit("true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(format!("bad literal at offset {}", self.pos))
                }
            }
            Some(b'f') => {
                if self.eat_lit("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(format!("bad literal at offset {}", self.pos))
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run of plain bytes before the next
            // escape or terminator in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("non-UTF-8 number at offset {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let mut j = Json::obj();
        j.push("name", Json::Str("lbm/ROP-64".into()))
            .push("ipc", Json::Num(0.7523441231))
            .push("count", Json::Num(1234.0))
            .push("ok", Json::Bool(true))
            .push("note", Json::Null)
            .push(
                "arr",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Str("x".into())]),
            );
        let text = j.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, j);
        // Render is stable (same text both times).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            123_456_789.123_456_78,
            -0.000123,
            1e300,
        ] {
            let text = Json::Num(x).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} failed roundtrip");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-7.0).render(), "-7");
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn strings_escape() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = s.render();
        assert_eq!(Json::parse(&text).unwrap(), s);
    }

    #[test]
    fn truncated_line_is_error() {
        // A record cut mid-write (crash) must not parse.
        let full = r#"{"job":"abc","ipc":0.5}"#;
        for cut in 1..full.len() {
            assert!(
                Json::parse(&full[..cut]).is_err(),
                "prefix '{}' unexpectedly parsed",
                &full[..cut]
            );
        }
        assert!(Json::parse(full).is_ok());
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(Json::parse("{} {}").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn nonfinite_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn getters() {
        let j = Json::parse(r#"{"a":1,"b":"x","c":[true,null]}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("b").unwrap().as_str(), Some("x"));
        let arr = j.get("c").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Json::Null);
        assert!(j.get("missing").is_none());
    }
}
