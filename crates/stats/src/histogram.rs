//! Fixed-width histogram for small integer-valued observations.
//!
//! Used by the refresh-blocking analysis (Figure 3 reproduces "number of
//! requests blocked per blocking refresh", a distribution whose support in
//! the paper tops out at 12) and by queue-occupancy statistics.

/// A histogram over `u64` values with unit-width buckets `0..capacity` and
/// a single overflow bucket for everything at or above `capacity`.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `capacity` unit-width buckets.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; capacity],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records an observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count held by bucket `value` (values `>= capacity` share the
    /// overflow bucket, reported by [`Histogram::overflow`]).
    pub fn bucket(&self, value: u64) -> u64 {
        self.buckets.get(value as usize).copied().unwrap_or(0)
    }

    /// Count of observations at or above the bucket capacity.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fraction of observations equal to `value`; 0 when empty.
    pub fn fraction(&self, value: u64) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.bucket(value) as f64 / self.count as f64
        }
    }

    /// Smallest value `v` such that at least `q` (in `[0,1]`) of the
    /// observations are `<= v`. Overflowed observations are treated as
    /// living at `capacity`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (v, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return v as u64;
            }
        }
        self.buckets.len() as u64
    }

    /// Resets the histogram.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.overflow = 0;
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Merges another histogram of the same capacity into this one.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram capacity mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_means() {
        let mut h = Histogram::new(16);
        for v in [0, 1, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 7);
        assert_eq!(h.max(), 3);
        assert!((h.mean() - 1.4).abs() < 1e-12);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn overflow_bucket() {
        let mut h = Histogram::new(4);
        h.record(3);
        h.record(4);
        h.record(100);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(16);
        for v in 0..10 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(1.0), 9);
    }

    #[test]
    fn quantile_empty_is_zero() {
        let h = Histogram::new(4);
        assert_eq!(h.quantile(0.9), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(8);
        a.record(1);
        let mut b = Histogram::new(8);
        b.record(1);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.bucket(1), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic]
    fn merge_capacity_mismatch_panics() {
        let mut a = Histogram::new(8);
        let b = Histogram::new(4);
        a.merge(&b);
    }

    #[test]
    fn fraction() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(0);
        h.record(1);
        assert!((h.fraction(0) - 2.0 / 3.0).abs() < 1e-12);
    }
}
