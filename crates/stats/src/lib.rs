//! Statistics utilities shared by every crate of the ROP reproduction.
//!
//! The simulator is deterministic and single-threaded per system instance,
//! so all collectors here are plain (non-atomic) types that are cheap to
//! update on the simulation fast path: incrementing a [`Counter`] is a
//! single add, recording into a [`Histogram`] is an add plus a bucket index
//! computation.
//!
//! The crate also hosts the small pieces of numeric glue the experiments
//! need (geometric means for weighted-speedup summaries, normalisation
//! helpers, an ASCII table renderer for the `repro` binary).

#![forbid(unsafe_code)]

pub mod counter;
pub mod histogram;
pub mod json;
pub mod online;
pub mod summary;
pub mod table;

pub use counter::{Counter, RatioCounter};
pub use histogram::Histogram;
pub use json::Json;
pub use online::OnlineStats;
pub use summary::{geometric_mean, normalize_to, percent_delta};
pub use table::TableBuilder;
