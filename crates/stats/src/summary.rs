//! Summary math used when reporting experiment results.
//!
//! The paper summarises multi-programmed results with geometric means
//! (speedups, energy ratios) and single-core results with arithmetic means
//! of percentage deltas; these helpers implement those reductions.

/// Geometric mean of a slice of positive values.
///
/// Returns 0.0 for an empty slice, and panics on non-positive inputs
/// (a speedup or normalised-energy ratio of <= 0 indicates a bug upstream).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Normalises `value` to `baseline` (i.e. `value / baseline`).
///
/// Returns 0.0 when the baseline is zero, which only happens for
/// degenerate zero-length runs.
pub fn normalize_to(value: f64, baseline: f64) -> f64 {
    // rop-lint: allow(float-eq)
    if baseline == 0.0 {
        0.0
    } else {
        value / baseline
    }
}

/// Percentage change of `value` relative to `baseline`, in percent.
/// `percent_delta(103.3, 100.0) == 3.3`.
pub fn percent_delta(value: f64, baseline: f64) -> f64 {
    // rop-lint: allow(float-eq)
    if baseline == 0.0 {
        0.0
    } else {
        (value - baseline) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn normalize_handles_zero_baseline() {
        assert_eq!(normalize_to(5.0, 0.0), 0.0);
        assert!((normalize_to(5.0, 4.0) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn percent_delta_basic() {
        assert!((percent_delta(103.3, 100.0) - 3.3).abs() < 1e-9);
        assert!((percent_delta(90.0, 100.0) + 10.0).abs() < 1e-9);
        assert_eq!(percent_delta(1.0, 0.0), 0.0);
    }
}
