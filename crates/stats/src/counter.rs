//! Simple event counters.

/// A monotonically increasing event counter.
///
/// `Counter` is deliberately minimal: the simulation hot loop bumps dozens
/// of these per memory cycle, so the type is a transparent wrapper over a
/// `u64` with convenience arithmetic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl From<Counter> for u64 {
    fn from(c: Counter) -> u64 {
        c.0
    }
}

/// A hit/total style ratio counter, used for e.g. SRAM buffer hit rate and
/// row-buffer hit rate.
///
/// The ratio is reported as `f64` and is defined to be 0 when no events
/// have been recorded (rather than NaN), which matches how the paper's
/// hit-rate threshold logic must behave before any request arrives.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RatioCounter {
    hits: u64,
    total: u64,
}

impl RatioCounter {
    /// Creates an empty ratio counter.
    pub const fn new() -> Self {
        RatioCounter { hits: 0, total: 0 }
    }

    /// Records one event, which either hit or missed.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Records a hit.
    #[inline]
    pub fn hit(&mut self) {
        self.record(true);
    }

    /// Records a miss.
    #[inline]
    pub fn miss(&mut self) {
        self.record(false);
    }

    /// Number of hits recorded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of events recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Hit ratio in `[0, 1]`; `0.0` when empty.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Resets both numerator and denominator.
    pub fn reset(&mut self) {
        self.hits = 0;
        self.total = 0;
    }

    /// Merges another ratio counter into this one.
    pub fn merge(&mut self, other: &RatioCounter) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn ratio_counter_empty_is_zero() {
        let r = RatioCounter::new();
        assert_eq!(r.ratio(), 0.0);
        assert!(r.is_empty());
    }

    #[test]
    fn ratio_counter_tracks_hits() {
        let mut r = RatioCounter::new();
        r.hit();
        r.hit();
        r.miss();
        r.record(true);
        assert_eq!(r.hits(), 3);
        assert_eq!(r.total(), 4);
        assert!((r.ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ratio_counter_merge() {
        let mut a = RatioCounter::new();
        a.hit();
        let mut b = RatioCounter::new();
        b.miss();
        b.hit();
        a.merge(&b);
        assert_eq!(a.hits(), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn ratio_counter_reset() {
        let mut r = RatioCounter::new();
        r.hit();
        r.reset();
        assert!(r.is_empty());
        assert_eq!(r.ratio(), 0.0);
    }
}
