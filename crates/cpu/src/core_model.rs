//! The core state machine.

use rop_trace::{TraceRecord, WorkloadGen};

/// Core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Core clock cycles per memory clock cycle (3.2 GHz / 800 MHz = 4).
    pub clock_ratio: u64,
    /// Instructions retired per core cycle at best (4-wide OoO).
    pub issue_width: u64,
    /// Reorder window in instructions: the core stalls when the oldest
    /// outstanding load is this many retired instructions old.
    pub rob_window: u64,
    /// Maximum outstanding load misses (MSHR/MLP budget).
    pub mlp_limit: usize,
}

impl CoreConfig {
    /// A 4-wide, 192-entry-ROB, 16-MSHR core at 4× the memory clock —
    /// a generic high-performance OoO configuration. The 16-deep miss
    /// budget matters for the multicore experiments: a refresh-blocked
    /// core can occupy a large share of the controller's shared 64-entry
    /// read queue, reproducing the *command-queue seizure* effect the
    /// paper lists under Resource Contention.
    pub fn default_ooo() -> Self {
        CoreConfig {
            clock_ratio: 4,
            issue_width: 4,
            rob_window: 192,
            mlp_limit: 16,
        }
    }

    /// Instruction budget per memory cycle.
    pub fn budget_per_mem_cycle(&self) -> u64 {
        self.clock_ratio * self.issue_width
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::default_ooo()
    }
}

/// A memory operation the core wants to perform this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Load of the cache line at this byte address.
    Read {
        /// Byte address.
        addr: u64,
    },
    /// Store to the cache line at this byte address.
    Write {
        /// Byte address.
        addr: u64,
    },
}

/// The memory system's answer to a submitted [`MemOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// Satisfied by the cache hierarchy; no memory request was created.
    LlcHit,
    /// A read request was queued; `id` will appear in a completion.
    QueuedRead(u64),
    /// The write was absorbed (write queue or cache).
    QueuedWrite,
    /// The memory system cannot accept the operation this cycle; the core
    /// must retry (queue full).
    Retry,
}

/// Per-core statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Memory cycles the core was completely stalled.
    pub stall_cycles: u64,
    /// Loads that missed the LLC (queued reads).
    pub read_misses: u64,
    /// LLC hits (reads and writes).
    pub llc_hits: u64,
    /// Stores submitted.
    pub writes: u64,
    /// Retries due to memory-system back-pressure.
    pub retries: u64,
}

#[derive(Debug, Clone, Copy)]
struct OutstandingRead {
    id: u64,
    issued_at_instr: u64,
}

/// What the core is about to do next.
#[derive(Debug, Clone, Copy)]
enum NextAction {
    /// Retire this many more gap instructions, then do the memory op.
    Gap(u64),
    /// Submit the memory op of the current record.
    Mem,
}

/// The trace-driven core.
pub struct Core<G: WorkloadGen> {
    cfg: CoreConfig,
    workload: G,
    current: TraceRecord,
    next_action: NextAction,
    outstanding: Vec<OutstandingRead>,
    stats: CoreStats,
}

impl<G: WorkloadGen> Core<G> {
    /// Creates a core running `workload`.
    pub fn new(cfg: CoreConfig, mut workload: G) -> Self {
        let current = workload.next_record();
        Core {
            cfg,
            next_action: NextAction::Gap(current.gap_instructions as u64),
            current,
            workload,
            outstanding: Vec::new(),
            stats: CoreStats::default(),
        }
    }

    /// Core statistics so far.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Name of the workload driving this core.
    pub fn workload_name(&self) -> &str {
        self.workload.name()
    }

    /// Number of outstanding load misses.
    pub fn outstanding_reads(&self) -> usize {
        self.outstanding.len()
    }

    /// Instructions-per-*core*-cycle over `elapsed_mem_cycles`.
    pub fn ipc(&self, elapsed_mem_cycles: u64) -> f64 {
        if elapsed_mem_cycles == 0 {
            return 0.0;
        }
        self.stats.instructions as f64 / (elapsed_mem_cycles * self.cfg.clock_ratio) as f64
    }

    /// Delivers a read completion.
    pub fn complete_read(&mut self, id: u64) {
        if let Some(pos) = self.outstanding.iter().position(|o| o.id == id) {
            self.outstanding.remove(pos);
        }
    }

    /// True when ROB pressure forbids retiring further instructions.
    fn rob_blocked(&self) -> bool {
        self.outstanding
            .first()
            .is_some_and(|o| self.stats.instructions - o.issued_at_instr >= self.cfg.rob_window)
    }

    /// Instructions the core may retire before the reorder window blocks
    /// on the oldest outstanding load (`u64::MAX` when none).
    fn headroom(&self) -> u64 {
        self.outstanding
            .first()
            .map(|o| {
                self.cfg
                    .rob_window
                    .saturating_sub(self.stats.instructions - o.issued_at_instr)
            })
            .unwrap_or(u64::MAX)
    }

    /// True when the core sits at its memory op but cannot submit it
    /// (a load with the MLP budget exhausted).
    fn mlp_blocked_at_mem(&self) -> bool {
        !self.current.is_write && self.outstanding.len() >= self.cfg.mlp_limit
    }

    /// The earliest future cycle at which this core can interact with the
    /// memory system, given its state after ticking at `now`.
    ///
    /// Returns:
    /// * `now + 1` — a memory op submit (or retry) happens on the very
    ///   next tick;
    /// * `now + 1 + gap/budget` — the core retires gap instructions at
    ///   full width until the tick on which it reaches its memory op;
    /// * `u64::MAX` — the core is blocked (ROB window or MLP budget) and
    ///   only a read completion can unblock it.
    ///
    /// Ticks strictly before the returned cycle neither submit memory
    /// operations nor depend on the memory system; [`Core::fast_forward`]
    /// replays them in O(1). Delivering a completion invalidates the
    /// value — recompute after [`Core::complete_read`].
    pub fn next_event(&self, now: u64) -> u64 {
        if self.rob_blocked() {
            return u64::MAX;
        }
        match self.next_action {
            NextAction::Gap(remaining) if remaining > 0 => {
                if self.headroom() > remaining {
                    // Gap retirement reaches the memory op on the tick
                    // after `remaining / budget` full-width cycles.
                    now + 1 + remaining / self.cfg.budget_per_mem_cycle()
                } else {
                    // The ROB window blocks mid-gap.
                    u64::MAX
                }
            }
            // At the memory op (Gap(0) normalises to Mem on the next tick).
            _ => {
                if self.mlp_blocked_at_mem() {
                    u64::MAX
                } else {
                    now + 1
                }
            }
        }
    }

    /// The cycle of the tick on which `instructions` will first reach
    /// `target`, assuming uninterrupted gap retirement after a tick at
    /// `now` — or `u64::MAX` when that cannot happen before the next
    /// memory event (already past target, blocked, or the memory op
    /// comes first, all of which explicit ticks handle).
    ///
    /// The event loop clamps its fast-forward span to this cycle so a
    /// quota crossing always lands on a span boundary: the per-cycle
    /// reference loop stops simulating the moment the last core crosses,
    /// and replaying any cycles past the crossing would accrue stall
    /// cycles the reference never executes.
    pub fn next_quota_crossing(&self, now: u64, target: u64) -> u64 {
        if self.stats.instructions >= target || self.rob_blocked() {
            return u64::MAX;
        }
        let need = target - self.stats.instructions;
        match self.next_action {
            NextAction::Gap(remaining) if remaining > 0 => {
                // Retirement stops at the memory op or the ROB window;
                // a crossing beyond either is not predictable here.
                if need > remaining.min(self.headroom()) {
                    return u64::MAX;
                }
                // Cycles before the crossing all retire a full budget
                // (need <= headroom), so the crossing tick is offset
                // ceil(need/budget)-1 into the replayed span.
                now + 1 + (need.div_ceil(self.cfg.budget_per_mem_cycle()) - 1)
            }
            _ => u64::MAX,
        }
    }

    /// Replays `cycles` consecutive ticks in O(1), valid only while no
    /// memory event occurs — i.e. for spans that end strictly before
    /// [`Core::next_event`] and during which no completion is delivered.
    ///
    /// Reproduces exactly what `cycles` calls of [`Core::tick`] would do
    /// to `instructions`, `stall_cycles`, and the gap state machine.
    /// Returns the 0-based offset of the tick on which `instructions`
    /// first reached `target`, if that happened within the span.
    pub fn fast_forward(&mut self, cycles: u64, target: u64) -> Option<u64> {
        if cycles == 0 {
            return None;
        }
        let budget = self.cfg.budget_per_mem_cycle();
        let instr0 = self.stats.instructions;

        // The per-cycle loop converts an exhausted gap to the memory op
        // without consuming budget; mirror that normalisation.
        if matches!(self.next_action, NextAction::Gap(0)) {
            self.next_action = NextAction::Mem;
        }

        // How many instructions this span retires, and over how many
        // leading busy (non-stall) cycles.
        let (retired, busy) = if self.rob_blocked() {
            (0, 0)
        } else {
            match self.next_action {
                NextAction::Mem => {
                    debug_assert!(
                        self.mlp_blocked_at_mem(),
                        "fast_forward would skip a memory submit"
                    );
                    (0, 0)
                }
                NextAction::Gap(remaining) => {
                    let headroom = self.headroom();
                    if headroom > remaining {
                        // The span ends before the gap does, so every
                        // cycle retires a full budget.
                        debug_assert!(
                            cycles <= remaining / budget,
                            "fast_forward would skip a memory submit"
                        );
                        (cycles * budget, cycles)
                    } else {
                        // The ROB window blocks after `headroom` more
                        // instructions: full-width cycles, one partial
                        // cycle for the remainder, then pure stalls.
                        let full = headroom / budget;
                        let partial = headroom % budget;
                        let retired = if cycles <= full {
                            cycles * budget
                        } else {
                            headroom
                        };
                        let busy = (full + u64::from(partial != 0)).min(cycles);
                        (retired, busy)
                    }
                }
            }
        };

        self.stats.instructions += retired;
        self.stats.stall_cycles += cycles - busy;
        if retired > 0 {
            if let NextAction::Gap(remaining) = self.next_action {
                self.next_action = if remaining == retired {
                    NextAction::Mem
                } else {
                    NextAction::Gap(remaining - retired)
                };
            }
        }

        if instr0 < target && instr0 + retired >= target {
            // The crossing tick retires instructions instr0+1..=target;
            // full-width cycles precede it, so it is tick ceil(need/B)-1.
            let need = target - instr0;
            Some(need.div_ceil(budget) - 1)
        } else {
            None
        }
    }

    /// Advances the core by one memory cycle. `submit` is called for each
    /// memory operation the core reaches within this cycle's instruction
    /// budget; it must return what the memory system did with it.
    pub fn tick<F>(&mut self, mut submit: F)
    where
        F: FnMut(MemOp) -> SubmitResult,
    {
        let mut budget = self.cfg.budget_per_mem_cycle();
        let mut progressed = false;

        while budget > 0 {
            if self.rob_blocked() {
                break;
            }
            match self.next_action {
                NextAction::Gap(remaining) => {
                    if remaining == 0 {
                        self.next_action = NextAction::Mem;
                        continue;
                    }
                    // Cap by ROB headroom so a large chunk cannot run past
                    // the reorder window within one cycle.
                    let retire = remaining.min(budget).min(self.headroom());
                    if retire == 0 {
                        break;
                    }
                    self.stats.instructions += retire;
                    budget -= retire;
                    progressed |= retire > 0;
                    if remaining > retire {
                        self.next_action = NextAction::Gap(remaining - retire);
                    } else {
                        self.next_action = NextAction::Mem;
                    }
                }
                NextAction::Mem => {
                    let is_write = self.current.is_write;
                    if self.mlp_blocked_at_mem() {
                        // MLP budget exhausted: stall until a completion.
                        break;
                    }
                    let op = if is_write {
                        MemOp::Write {
                            addr: self.current.addr,
                        }
                    } else {
                        MemOp::Read {
                            addr: self.current.addr,
                        }
                    };
                    match submit(op) {
                        SubmitResult::LlcHit => {
                            self.stats.llc_hits += 1;
                        }
                        SubmitResult::QueuedRead(id) => {
                            self.stats.read_misses += 1;
                            self.outstanding.push(OutstandingRead {
                                id,
                                issued_at_instr: self.stats.instructions,
                            });
                        }
                        SubmitResult::QueuedWrite => {
                            self.stats.writes += 1;
                        }
                        SubmitResult::Retry => {
                            self.stats.retries += 1;
                            break;
                        }
                    }
                    // The memory instruction itself retires.
                    self.stats.instructions += 1;
                    budget -= 1;
                    progressed = true;
                    self.current = self.workload.next_record();
                    self.next_action = NextAction::Gap(self.current.gap_instructions as u64);
                }
            }
        }

        if !progressed {
            self.stats.stall_cycles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rop_trace::TraceRecord;

    /// Scripted workload for tests.
    struct Script {
        records: Vec<TraceRecord>,
        pos: usize,
    }

    impl Script {
        fn new(records: Vec<TraceRecord>) -> Self {
            Script { records, pos: 0 }
        }
    }

    impl WorkloadGen for Script {
        fn next_record(&mut self) -> TraceRecord {
            let r = self.records[self.pos % self.records.len()];
            self.pos += 1;
            r
        }
        fn name(&self) -> &str {
            "script"
        }
    }

    fn rec(gap: u32, addr: u64, write: bool) -> TraceRecord {
        TraceRecord {
            gap_instructions: gap,
            addr,
            is_write: write,
        }
    }

    #[test]
    fn retires_at_full_width_with_llc_hits() {
        let mut core = Core::new(
            CoreConfig::default_ooo(),
            Script::new(vec![rec(15, 64, false)]),
        );
        // 16-instruction budget: 15 gap + 1 memory op per cycle.
        for _ in 0..10 {
            core.tick(|_| SubmitResult::LlcHit);
        }
        assert_eq!(core.stats().instructions, 160);
        assert_eq!(core.stats().llc_hits, 10);
        assert_eq!(core.stats().stall_cycles, 0);
        assert!((core.ipc(10) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mlp_limit_stalls_reads() {
        let cfg = CoreConfig {
            mlp_limit: 8,
            ..CoreConfig::default_ooo()
        };
        let mut core = Core::new(cfg, Script::new(vec![rec(0, 64, false)]));
        let mut next_id = 0u64;
        // Every op is a read miss: the core issues until MLP fills.
        core.tick(|_| {
            next_id += 1;
            SubmitResult::QueuedRead(next_id)
        });
        assert_eq!(core.outstanding_reads(), 8);
        // Further cycles make no progress.
        let before = core.stats().instructions;
        core.tick(|_| panic!("must not submit when MLP-blocked"));
        assert_eq!(core.stats().instructions, before);
        assert_eq!(core.stats().stall_cycles, 1);
        // A completion unblocks one more read.
        core.complete_read(1);
        core.tick(|_| {
            next_id += 1;
            SubmitResult::QueuedRead(next_id)
        });
        assert_eq!(core.outstanding_reads(), 8);
        assert!(core.stats().instructions > before);
    }

    #[test]
    fn rob_window_stalls_even_with_mlp_room() {
        let cfg = CoreConfig {
            rob_window: 32,
            mlp_limit: 8,
            ..CoreConfig::default_ooo()
        };
        // One quick read miss, then a long compute stretch.
        let mut core = Core::new(
            cfg,
            Script::new(vec![rec(50, 64, false), rec(1000, 128, false)]),
        );
        let mut issued = false;
        for _ in 0..20 {
            core.tick(|op| {
                assert!(matches!(op, MemOp::Read { .. }));
                issued = true;
                SubmitResult::QueuedRead(7)
            });
        }
        assert!(issued);
        // The read issued at instruction 50; the ROB lets the core run at
        // most 32 instructions past it before stalling — far short of the
        // 20 × 16 = 320 budget.
        let retired = core.stats().instructions;
        assert!(retired <= 50 + 1 + 32, "retired {retired}");
        assert!(core.stats().stall_cycles > 0);
        // Completion unblocks retirement.
        core.complete_read(7);
        let before = core.stats().instructions;
        core.tick(|_| SubmitResult::LlcHit);
        assert!(core.stats().instructions > before);
    }

    #[test]
    fn writes_never_block_on_mlp() {
        let mut core = Core::new(
            CoreConfig::default_ooo(),
            Script::new(vec![rec(0, 64, true)]),
        );
        for _ in 0..10 {
            core.tick(|op| {
                assert!(matches!(op, MemOp::Write { .. }));
                SubmitResult::QueuedWrite
            });
        }
        assert_eq!(core.stats().writes as usize, 10 * 16);
        assert_eq!(core.stats().stall_cycles, 0);
    }

    #[test]
    fn retry_stalls_cycle() {
        let mut core = Core::new(
            CoreConfig::default_ooo(),
            Script::new(vec![rec(0, 64, true)]),
        );
        core.tick(|_| SubmitResult::Retry);
        assert_eq!(core.stats().retries, 1);
        assert_eq!(core.stats().instructions, 0);
        assert_eq!(core.stats().stall_cycles, 1);
    }

    #[test]
    fn next_event_gap_arithmetic() {
        // Budget is 16/cycle; a gap of g instructions reaches the memory
        // op on tick now + 1 + g/16.
        for (gap, offset) in [(0u32, 1u64), (15, 1), (16, 2), (17, 2), (33, 3)] {
            let core = Core::new(
                CoreConfig::default_ooo(),
                Script::new(vec![rec(gap, 64, false)]),
            );
            assert_eq!(core.next_event(100), 100 + offset, "gap {gap}");
        }
    }

    #[test]
    fn next_event_blocked_states_are_max() {
        // MLP-blocked at the memory op.
        let cfg = CoreConfig {
            mlp_limit: 1,
            ..CoreConfig::default_ooo()
        };
        let mut core = Core::new(cfg, Script::new(vec![rec(0, 64, false)]));
        core.tick(|_| SubmitResult::QueuedRead(1));
        assert_eq!(core.next_event(5), u64::MAX);
        core.complete_read(1);
        assert_eq!(core.next_event(5), 6);

        // ROB-blocked mid-gap: the window closes before the gap ends.
        let cfg = CoreConfig {
            rob_window: 8,
            ..CoreConfig::default_ooo()
        };
        let mut core = Core::new(
            cfg,
            Script::new(vec![rec(0, 64, false), rec(1000, 128, false)]),
        );
        core.tick(|_| SubmitResult::QueuedRead(1));
        assert_eq!(core.next_event(0), u64::MAX);
        core.complete_read(1);
        // Gap 1000 with no outstanding reads: events resume.
        assert!(core.next_event(0) < u64::MAX);
    }

    #[test]
    fn fast_forward_counts_stalls_when_blocked() {
        let cfg = CoreConfig {
            mlp_limit: 1,
            ..CoreConfig::default_ooo()
        };
        let mut core = Core::new(cfg, Script::new(vec![rec(0, 64, false)]));
        core.tick(|_| SubmitResult::QueuedRead(1));
        let before = core.stats();
        assert_eq!(core.fast_forward(50, u64::MAX), None);
        assert_eq!(core.stats().instructions, before.instructions);
        assert_eq!(core.stats().stall_cycles, before.stall_cycles + 50);
    }

    #[test]
    fn next_quota_crossing_prediction_matches_replay() {
        // Gap of 1M: tick 0 retires 16, then target 100 needs 84 more —
        // crossed on skipped tick ceil(84/16)-1 = 5, i.e. cycle 0+1+5.
        let mut core = Core::new(
            CoreConfig::default_ooo(),
            Script::new(vec![rec(1_000_000, 64, false)]),
        );
        core.tick(|_| unreachable!());
        assert_eq!(core.next_quota_crossing(0, 100), 6);
        assert_eq!(core.fast_forward(6, 100), Some(5));
        // Already past the target: no further crossing.
        assert_eq!(core.next_quota_crossing(6, 100), u64::MAX);

        // Blocked cores cannot cross.
        let cfg = CoreConfig {
            mlp_limit: 1,
            ..CoreConfig::default_ooo()
        };
        let mut core = Core::new(cfg, Script::new(vec![rec(0, 64, false)]));
        core.tick(|_| SubmitResult::QueuedRead(1));
        assert_eq!(core.next_quota_crossing(0, 1_000), u64::MAX);
    }

    #[test]
    fn fast_forward_reports_quota_crossing() {
        let mut core = Core::new(
            CoreConfig::default_ooo(),
            Script::new(vec![rec(1_000_000, 64, false)]),
        );
        // Tick 0 retires 16; then fast-forward 10 cycles with target 100:
        // cumulative hits 100 during the 6th skipped tick (offset 5).
        core.tick(|_| unreachable!());
        assert_eq!(core.fast_forward(10, 100), Some(5));
        assert_eq!(core.stats().instructions, 16 + 160);
    }

    /// Drives two identical cores — one per-cycle, one via
    /// `next_event`/`fast_forward` — through the same scripted memory
    /// system and asserts identical statistics at every step.
    #[test]
    fn fast_forward_is_cycle_exact() {
        let records = vec![
            rec(40, 64, false),
            rec(0, 128, true),
            rec(300, 192, false),
            rec(3, 256, false),
            rec(1000, 320, false),
        ];
        let cfg = CoreConfig {
            rob_window: 48,
            mlp_limit: 2,
            ..CoreConfig::default_ooo()
        };
        const LATENCY: u64 = 37;
        const HORIZON: u64 = 4_000;

        // Scripted memory system: every read is queued and completes a
        // fixed latency later; writes are absorbed.
        let run = |event_driven: bool| {
            let mut core = Core::new(cfg, Script::new(records.clone()));
            let mut next_id = 0u64;
            let mut pending: Vec<(u64, u64)> = Vec::new(); // (done_at, id)
            let mut now = 0u64;
            while now < HORIZON {
                pending.retain(|&(done_at, id)| {
                    if done_at <= now {
                        core.complete_read(id);
                        false
                    } else {
                        true
                    }
                });
                core.tick(|op| match op {
                    MemOp::Read { .. } => {
                        next_id += 1;
                        pending.push((now + LATENCY, next_id));
                        SubmitResult::QueuedRead(next_id)
                    }
                    MemOp::Write { .. } => SubmitResult::QueuedWrite,
                });
                if event_driven {
                    let mut next = core.next_event(now);
                    if let Some(&(done_at, _)) = pending.iter().min_by_key(|&&(d, _)| d) {
                        next = next.min(done_at);
                    }
                    let next = next.max(now + 1).min(HORIZON);
                    assert_ne!(next, u64::MAX, "deadlock");
                    core.fast_forward(next - now - 1, u64::MAX);
                    now = next;
                } else {
                    now += 1;
                }
            }
            core.stats()
        };

        let per_cycle = run(false);
        let event = run(true);
        assert_eq!(per_cycle.instructions, event.instructions);
        assert_eq!(per_cycle.stall_cycles, event.stall_cycles);
        assert_eq!(per_cycle.read_misses, event.read_misses);
        assert_eq!(per_cycle.writes, event.writes);
        assert_eq!(per_cycle.llc_hits, event.llc_hits);
        assert!(per_cycle.instructions > 0);
        assert!(per_cycle.stall_cycles > 0, "script must exercise stalls");
    }

    #[test]
    fn ipc_accounts_for_clock_ratio() {
        let mut core = Core::new(
            CoreConfig::default_ooo(),
            Script::new(vec![rec(15, 0, false)]),
        );
        core.tick(|_| SubmitResult::LlcHit);
        // 16 instructions in 1 mem cycle = 4 core cycles → IPC 4.
        assert!((core.ipc(1) - 4.0).abs() < 1e-12);
        assert_eq!(core.ipc(0), 0.0);
    }
}
