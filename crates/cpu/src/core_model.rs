//! The core state machine.

use rop_trace::{TraceRecord, WorkloadGen};

/// Core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Core clock cycles per memory clock cycle (3.2 GHz / 800 MHz = 4).
    pub clock_ratio: u64,
    /// Instructions retired per core cycle at best (4-wide OoO).
    pub issue_width: u64,
    /// Reorder window in instructions: the core stalls when the oldest
    /// outstanding load is this many retired instructions old.
    pub rob_window: u64,
    /// Maximum outstanding load misses (MSHR/MLP budget).
    pub mlp_limit: usize,
}

impl CoreConfig {
    /// A 4-wide, 192-entry-ROB, 16-MSHR core at 4× the memory clock —
    /// a generic high-performance OoO configuration. The 16-deep miss
    /// budget matters for the multicore experiments: a refresh-blocked
    /// core can occupy a large share of the controller's shared 64-entry
    /// read queue, reproducing the *command-queue seizure* effect the
    /// paper lists under Resource Contention.
    pub fn default_ooo() -> Self {
        CoreConfig {
            clock_ratio: 4,
            issue_width: 4,
            rob_window: 192,
            mlp_limit: 16,
        }
    }

    /// Instruction budget per memory cycle.
    pub fn budget_per_mem_cycle(&self) -> u64 {
        self.clock_ratio * self.issue_width
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::default_ooo()
    }
}

/// A memory operation the core wants to perform this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Load of the cache line at this byte address.
    Read {
        /// Byte address.
        addr: u64,
    },
    /// Store to the cache line at this byte address.
    Write {
        /// Byte address.
        addr: u64,
    },
}

/// The memory system's answer to a submitted [`MemOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// Satisfied by the cache hierarchy; no memory request was created.
    LlcHit,
    /// A read request was queued; `id` will appear in a completion.
    QueuedRead(u64),
    /// The write was absorbed (write queue or cache).
    QueuedWrite,
    /// The memory system cannot accept the operation this cycle; the core
    /// must retry (queue full).
    Retry,
}

/// Per-core statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Memory cycles the core was completely stalled.
    pub stall_cycles: u64,
    /// Loads that missed the LLC (queued reads).
    pub read_misses: u64,
    /// LLC hits (reads and writes).
    pub llc_hits: u64,
    /// Stores submitted.
    pub writes: u64,
    /// Retries due to memory-system back-pressure.
    pub retries: u64,
}

#[derive(Debug, Clone, Copy)]
struct OutstandingRead {
    id: u64,
    issued_at_instr: u64,
}

/// What the core is about to do next.
#[derive(Debug, Clone, Copy)]
enum NextAction {
    /// Retire this many more gap instructions, then do the memory op.
    Gap(u64),
    /// Submit the memory op of the current record.
    Mem,
}

/// The trace-driven core.
pub struct Core<G: WorkloadGen> {
    cfg: CoreConfig,
    workload: G,
    current: TraceRecord,
    next_action: NextAction,
    outstanding: Vec<OutstandingRead>,
    stats: CoreStats,
}

impl<G: WorkloadGen> Core<G> {
    /// Creates a core running `workload`.
    pub fn new(cfg: CoreConfig, mut workload: G) -> Self {
        let current = workload.next_record();
        Core {
            cfg,
            next_action: NextAction::Gap(current.gap_instructions as u64),
            current,
            workload,
            outstanding: Vec::new(),
            stats: CoreStats::default(),
        }
    }

    /// Core statistics so far.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Name of the workload driving this core.
    pub fn workload_name(&self) -> &str {
        self.workload.name()
    }

    /// Number of outstanding load misses.
    pub fn outstanding_reads(&self) -> usize {
        self.outstanding.len()
    }

    /// Instructions-per-*core*-cycle over `elapsed_mem_cycles`.
    pub fn ipc(&self, elapsed_mem_cycles: u64) -> f64 {
        if elapsed_mem_cycles == 0 {
            return 0.0;
        }
        self.stats.instructions as f64 / (elapsed_mem_cycles * self.cfg.clock_ratio) as f64
    }

    /// Delivers a read completion.
    pub fn complete_read(&mut self, id: u64) {
        if let Some(pos) = self.outstanding.iter().position(|o| o.id == id) {
            self.outstanding.remove(pos);
        }
    }

    /// True when ROB pressure forbids retiring further instructions.
    fn rob_blocked(&self) -> bool {
        self.outstanding
            .first()
            .is_some_and(|o| self.stats.instructions - o.issued_at_instr >= self.cfg.rob_window)
    }

    /// Advances the core by one memory cycle. `submit` is called for each
    /// memory operation the core reaches within this cycle's instruction
    /// budget; it must return what the memory system did with it.
    pub fn tick<F>(&mut self, mut submit: F)
    where
        F: FnMut(MemOp) -> SubmitResult,
    {
        let mut budget = self.cfg.budget_per_mem_cycle();
        let mut progressed = false;

        while budget > 0 {
            if self.rob_blocked() {
                break;
            }
            match self.next_action {
                NextAction::Gap(remaining) => {
                    if remaining == 0 {
                        self.next_action = NextAction::Mem;
                        continue;
                    }
                    // Cap by ROB headroom so a large chunk cannot run past
                    // the reorder window within one cycle.
                    let headroom = self
                        .outstanding
                        .first()
                        .map(|o| {
                            self.cfg
                                .rob_window
                                .saturating_sub(self.stats.instructions - o.issued_at_instr)
                        })
                        .unwrap_or(u64::MAX);
                    let retire = remaining.min(budget).min(headroom);
                    if retire == 0 {
                        break;
                    }
                    self.stats.instructions += retire;
                    budget -= retire;
                    progressed |= retire > 0;
                    if remaining > retire {
                        self.next_action = NextAction::Gap(remaining - retire);
                    } else {
                        self.next_action = NextAction::Mem;
                    }
                }
                NextAction::Mem => {
                    let is_write = self.current.is_write;
                    if !is_write && self.outstanding.len() >= self.cfg.mlp_limit {
                        // MLP budget exhausted: stall until a completion.
                        break;
                    }
                    let op = if is_write {
                        MemOp::Write {
                            addr: self.current.addr,
                        }
                    } else {
                        MemOp::Read {
                            addr: self.current.addr,
                        }
                    };
                    match submit(op) {
                        SubmitResult::LlcHit => {
                            self.stats.llc_hits += 1;
                        }
                        SubmitResult::QueuedRead(id) => {
                            self.stats.read_misses += 1;
                            self.outstanding.push(OutstandingRead {
                                id,
                                issued_at_instr: self.stats.instructions,
                            });
                        }
                        SubmitResult::QueuedWrite => {
                            self.stats.writes += 1;
                        }
                        SubmitResult::Retry => {
                            self.stats.retries += 1;
                            break;
                        }
                    }
                    // The memory instruction itself retires.
                    self.stats.instructions += 1;
                    budget -= 1;
                    progressed = true;
                    self.current = self.workload.next_record();
                    self.next_action = NextAction::Gap(self.current.gap_instructions as u64);
                }
            }
        }

        if !progressed {
            self.stats.stall_cycles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rop_trace::TraceRecord;

    /// Scripted workload for tests.
    struct Script {
        records: Vec<TraceRecord>,
        pos: usize,
    }

    impl Script {
        fn new(records: Vec<TraceRecord>) -> Self {
            Script { records, pos: 0 }
        }
    }

    impl WorkloadGen for Script {
        fn next_record(&mut self) -> TraceRecord {
            let r = self.records[self.pos % self.records.len()];
            self.pos += 1;
            r
        }
        fn name(&self) -> &str {
            "script"
        }
    }

    fn rec(gap: u32, addr: u64, write: bool) -> TraceRecord {
        TraceRecord {
            gap_instructions: gap,
            addr,
            is_write: write,
        }
    }

    #[test]
    fn retires_at_full_width_with_llc_hits() {
        let mut core = Core::new(
            CoreConfig::default_ooo(),
            Script::new(vec![rec(15, 64, false)]),
        );
        // 16-instruction budget: 15 gap + 1 memory op per cycle.
        for _ in 0..10 {
            core.tick(|_| SubmitResult::LlcHit);
        }
        assert_eq!(core.stats().instructions, 160);
        assert_eq!(core.stats().llc_hits, 10);
        assert_eq!(core.stats().stall_cycles, 0);
        assert!((core.ipc(10) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mlp_limit_stalls_reads() {
        let cfg = CoreConfig {
            mlp_limit: 8,
            ..CoreConfig::default_ooo()
        };
        let mut core = Core::new(cfg, Script::new(vec![rec(0, 64, false)]));
        let mut next_id = 0u64;
        // Every op is a read miss: the core issues until MLP fills.
        core.tick(|_| {
            next_id += 1;
            SubmitResult::QueuedRead(next_id)
        });
        assert_eq!(core.outstanding_reads(), 8);
        // Further cycles make no progress.
        let before = core.stats().instructions;
        core.tick(|_| panic!("must not submit when MLP-blocked"));
        assert_eq!(core.stats().instructions, before);
        assert_eq!(core.stats().stall_cycles, 1);
        // A completion unblocks one more read.
        core.complete_read(1);
        core.tick(|_| {
            next_id += 1;
            SubmitResult::QueuedRead(next_id)
        });
        assert_eq!(core.outstanding_reads(), 8);
        assert!(core.stats().instructions > before);
    }

    #[test]
    fn rob_window_stalls_even_with_mlp_room() {
        let cfg = CoreConfig {
            rob_window: 32,
            mlp_limit: 8,
            ..CoreConfig::default_ooo()
        };
        // One quick read miss, then a long compute stretch.
        let mut core = Core::new(
            cfg,
            Script::new(vec![rec(50, 64, false), rec(1000, 128, false)]),
        );
        let mut issued = false;
        for _ in 0..20 {
            core.tick(|op| {
                assert!(matches!(op, MemOp::Read { .. }));
                issued = true;
                SubmitResult::QueuedRead(7)
            });
        }
        assert!(issued);
        // The read issued at instruction 50; the ROB lets the core run at
        // most 32 instructions past it before stalling — far short of the
        // 20 × 16 = 320 budget.
        let retired = core.stats().instructions;
        assert!(retired <= 50 + 1 + 32, "retired {retired}");
        assert!(core.stats().stall_cycles > 0);
        // Completion unblocks retirement.
        core.complete_read(7);
        let before = core.stats().instructions;
        core.tick(|_| SubmitResult::LlcHit);
        assert!(core.stats().instructions > before);
    }

    #[test]
    fn writes_never_block_on_mlp() {
        let mut core = Core::new(
            CoreConfig::default_ooo(),
            Script::new(vec![rec(0, 64, true)]),
        );
        for _ in 0..10 {
            core.tick(|op| {
                assert!(matches!(op, MemOp::Write { .. }));
                SubmitResult::QueuedWrite
            });
        }
        assert_eq!(core.stats().writes as usize, 10 * 16);
        assert_eq!(core.stats().stall_cycles, 0);
    }

    #[test]
    fn retry_stalls_cycle() {
        let mut core = Core::new(
            CoreConfig::default_ooo(),
            Script::new(vec![rec(0, 64, true)]),
        );
        core.tick(|_| SubmitResult::Retry);
        assert_eq!(core.stats().retries, 1);
        assert_eq!(core.stats().instructions, 0);
        assert_eq!(core.stats().stall_cycles, 1);
    }

    #[test]
    fn ipc_accounts_for_clock_ratio() {
        let mut core = Core::new(
            CoreConfig::default_ooo(),
            Script::new(vec![rec(15, 0, false)]),
        );
        core.tick(|_| SubmitResult::LlcHit);
        // 16 instructions in 1 mem cycle = 4 core cycles → IPC 4.
        assert!((core.ipc(1) - 4.0).abs() < 1e-12);
        assert_eq!(core.ipc(0), 0.0);
    }
}
