//! Trace-driven out-of-order-lite core model.
//!
//! The paper runs SPEC binaries on Zsim's OoO cores; what the memory
//! system sees from such a core is (a) a stream of post-LLC requests and
//! (b) back-pressure: the core keeps issuing until its reorder window or
//! its memory-level parallelism budget is exhausted, then stalls until a
//! load returns. This crate models exactly that envelope:
//!
//! * the core retires up to `issue_width × clock_ratio` instructions per
//!   *memory* cycle (the whole simulator runs on the 800 MHz DDR4-1600
//!   memory clock; the 3.2 GHz core is `clock_ratio = 4` faster);
//! * a load miss issues a non-blocking read and execution continues until
//!   either `mlp_limit` reads are outstanding or the oldest outstanding
//!   read is more than `rob_window` instructions old (reorder-buffer
//!   pressure) — then the core stalls until a completion arrives;
//! * stores never stall the core (they retire into the write queue;
//!   write-queue back-pressure is the only way they block).
//!
//! The core is memory-system agnostic: the system driver passes a
//! [`SubmitResult`] for each memory operation, so the same core runs
//! against the real controller, an ideal memory, or a test stub.

#![forbid(unsafe_code)]

pub mod core_model;

pub use core_model::{Core, CoreConfig, CoreStats, MemOp, SubmitResult};
