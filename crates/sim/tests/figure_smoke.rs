//! Smoke tests: every `experiments/*` figure renders end-to-end under
//! [`RunSpec::quick`]. Subset-capable experiments run on reduced
//! benchmark/mix/size sets so the whole file stays test-suite friendly;
//! the assertions check table structure and row presence, not numbers
//! (the statistical claims live in the unit/property tests).

use rop_sim_system::experiments::{
    ablate_drain, ablate_table, ablate_throttle, ablate_window, run_analysis, run_fgr_sweep,
    run_llc_sweep_with, run_per_bank_study, run_policy_comparison, run_singlecore_on,
};
use rop_sim_system::runner::{LocalExecutor, RunSpec};
use rop_trace::{Benchmark, WORKLOAD_MIXES};

fn spec() -> RunSpec {
    RunSpec::quick()
}

#[test]
fn fig7_fig8_fig9_render_from_quick_run() {
    let benchmarks = [Benchmark::Lbm, Benchmark::Bzip2];
    let res = run_singlecore_on(&benchmarks, spec());
    for (name, fig) in [
        ("fig7", res.render_fig7()),
        ("fig8", res.render_fig8()),
        ("fig9", res.render_fig9()),
    ] {
        assert!(fig.contains("lbm"), "{name} missing lbm row:\n{fig}");
        assert!(fig.contains("bzip2"), "{name} missing bzip2 row:\n{fig}");
        assert!(
            fig.lines().count() >= benchmarks.len() + 2,
            "{name}:\n{fig}"
        );
    }
}

#[test]
fn fig10_fig11_render_from_quick_run() {
    let mixes = &WORKLOAD_MIXES[..1];
    let res = run_llc_sweep_with(&[4], mixes, spec(), &LocalExecutor);
    assert_eq!(res.per_size.len(), 1);
    let fig10 = res.per_size[0].render_fig10();
    let fig11 = res.per_size[0].render_fig11();
    assert!(fig10.contains(mixes[0].name), "{fig10}");
    assert!(fig11.contains(mixes[0].name), "{fig11}");
    // Weighted speedups are positive once real runs back the rows.
    assert!(res.per_size[0].rows[0].ws.iter().all(|&w| w > 0.0));
}

#[test]
fn fig12_fig13_fig14_render_from_quick_run() {
    let mixes = &WORKLOAD_MIXES[..1];
    let sizes = [1usize, 2];
    let res = run_llc_sweep_with(&sizes, mixes, spec(), &LocalExecutor);
    assert_eq!(res.per_size.len(), sizes.len());
    for (name, fig) in [
        ("fig12", res.render_fig12()),
        ("fig13", res.render_fig13()),
        ("fig14", res.render_fig14()),
    ] {
        for size in sizes {
            assert!(fig.contains(&format!("{size}MB")), "{name}:\n{fig}");
        }
        assert!(fig.contains(mixes[0].name), "{name}:\n{fig}");
    }
}

#[test]
fn analysis_figures_render_from_quick_run() {
    let res = run_analysis(spec());
    for (name, fig) in [
        ("fig1", res.render_fig1()),
        ("fig2", res.render_fig2()),
        ("fig3", res.render_fig3()),
        ("fig4", res.render_fig4()),
        ("table1", res.render_table1()),
    ] {
        assert!(fig.contains("lbm"), "{name} missing lbm row:\n{fig}");
        assert!(fig.lines().count() > 3, "{name} suspiciously short:\n{fig}");
    }
}

#[test]
fn ablation_tables_render_from_quick_run() {
    for (name, table) in [
        ("window", ablate_window(spec()).render()),
        ("throttle", ablate_throttle(spec()).render()),
        ("drain", ablate_drain(spec()).render()),
        ("table", ablate_table(spec()).render()),
    ] {
        assert!(table.contains("Ablation"), "{name}:\n{table}");
        assert!(table.contains("libquantum"), "{name}:\n{table}");
        assert!(table.contains("lbm"), "{name}:\n{table}");
    }
}

#[test]
fn extension_studies_render_from_quick_run() {
    let policies = run_policy_comparison(spec()).render();
    assert!(policies.contains("libquantum"), "{policies}");
    let fgr = run_fgr_sweep(spec()).render();
    assert!(fgr.contains("libquantum"), "{fgr}");
    let per_bank = run_per_bank_study(spec()).render();
    assert!(per_bank.contains("libquantum"), "{per_bank}");
}
