//! System assembly and the fixed-work simulation loop.

use rop_cache::{AccessOutcome, Cache};
use rop_cpu::{Core, MemOp, SubmitResult};
use rop_memctrl::{Completion, MemController};
use rop_trace::SyntheticWorkload;

use crate::config::SystemConfig;
use crate::metrics::{CoreMetrics, RunMetrics};
use crate::Cycle;

/// A complete simulated machine: cores → shared LLC → controller → DRAM.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core<SyntheticWorkload>>,
    llc: Cache,
    ctrl: MemController,
    /// Read completions waiting for their data-arrival cycle.
    inflight: Vec<Completion>,
    now: Cycle,
    /// Cycle at which each core crossed its instruction quota.
    finish: Vec<Option<Cycle>>,
}

impl System {
    /// Builds the system described by `cfg`.
    ///
    /// Each core's footprint is offset by one rank-partition worth of
    /// lines, so under rank-partitioned mappings core *i* occupies rank
    /// *i*, and under the interleaved baseline mapping footprints remain
    /// disjoint but spread over all ranks — exactly the contrast between
    /// the paper's Baseline and Baseline-RP/ROP systems.
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate().expect("invalid system configuration");
        let ctrl_cfg = cfg
            .ctrl_override
            .clone()
            .unwrap_or_else(|| cfg.kind.memctrl_config(cfg.ranks, cfg.seed));
        let ctrl = MemController::new(ctrl_cfg);
        let lines_per_rank = ctrl.mapping().lines_per_rank();
        let line_bytes = ctrl.mapping().geometry().line_bytes as u64;
        let cores = cfg
            .benchmarks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let mut params = b.params();
                params.base_addr = i as u64 * lines_per_rank * line_bytes;
                let workload =
                    SyntheticWorkload::new(params, cfg.seed.wrapping_add(i as u64 * 7919));
                Core::new(cfg.core, workload)
            })
            .collect();
        System {
            llc: Cache::new(cfg.llc),
            finish: vec![None; cfg.benchmarks.len()],
            cores,
            ctrl,
            inflight: Vec::new(),
            now: 0,
            cfg,
        }
    }

    /// The current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Immutable access to the controller (for inspection in tests).
    pub fn controller(&self) -> &MemController {
        &self.ctrl
    }

    /// Runs until every core has retired `target_instructions` (or the
    /// safety cap of `max_cycles` is reached) and returns the metrics.
    ///
    /// Finished cores keep executing so multi-program contention persists
    /// until the last core completes, as in fixed-work methodology; their
    /// statistics are frozen at the quota-crossing cycle.
    pub fn run_until(&mut self, target_instructions: u64, max_cycles: Cycle) -> RunMetrics {
        let line_bytes = self.cfg.llc.line_bytes as u64;
        while self.finish.iter().any(Option::is_none) && self.now < max_cycles {
            let now = self.now;

            // Deliver read data that has arrived.
            let cores = &mut self.cores;
            self.inflight.retain(|c| {
                if c.done_at <= now {
                    cores[c.core].complete_read(c.id);
                    false
                } else {
                    true
                }
            });

            // Tick cores, counting progress for the fast-forward check.
            let mut any_progress = false;
            let Self {
                cores, llc, ctrl, ..
            } = self;
            for (i, core) in cores.iter_mut().enumerate() {
                let before = core.stats().instructions;
                core.tick(|op| submit(llc, ctrl, line_bytes, i, now, op));
                any_progress |= core.stats().instructions != before;
            }

            // Record quota crossings.
            for (i, core) in self.cores.iter().enumerate() {
                if self.finish[i].is_none() && core.stats().instructions >= target_instructions {
                    self.finish[i] = Some(now + 1);
                }
            }

            // Tick the controller and collect fresh completions.
            let hint = self.ctrl.tick(now);
            self.inflight.extend(self.ctrl.take_completions());

            // Advance: fast-forward when nothing can happen sooner.
            if !any_progress && hint > now + 1 {
                let next_completion = self
                    .inflight
                    .iter()
                    .map(|c| c.done_at)
                    .min()
                    .unwrap_or(Cycle::MAX);
                let jump = hint.min(next_completion).max(now + 1);
                assert!(
                    jump != Cycle::MAX,
                    "system deadlock: all cores stalled with no pending events"
                );
                self.now = jump;
            } else {
                self.now += 1;
            }
        }
        self.collect(target_instructions, max_cycles)
    }

    fn collect(&mut self, target: u64, max_cycles: Cycle) -> RunMetrics {
        let hit_cycle_cap = self.finish.iter().any(Option::is_none);
        let total_cycles = self
            .finish
            .iter()
            .map(|f| f.unwrap_or(self.now))
            .max()
            .unwrap_or(self.now)
            .max(1);
        self.ctrl.finalize_analysis();
        let cores: Vec<CoreMetrics> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let s = core.stats();
                let finish = self.finish[i].unwrap_or(self.now).max(1);
                CoreMetrics {
                    benchmark: core.workload_name().to_string(),
                    instructions: s.instructions.min(target),
                    finish_cycle: finish,
                    ipc: s.instructions.min(target) as f64
                        / (finish * core.config().clock_ratio) as f64,
                    llc_hits: s.llc_hits,
                    read_misses: s.read_misses,
                    stall_cycles: s.stall_cycles,
                }
            })
            .collect();
        let energy = self.ctrl.energy_breakdown(total_cycles);
        let ranks = self.cfg.ranks;
        let analysis = (0..self.ctrl.refresh_slots())
            .map(|slot| self.ctrl.analysis(slot).reports())
            .collect();
        let stats = self.ctrl.stats().clone();
        let refreshes: u64 = (0..ranks).map(|r| self.ctrl.refreshes_issued(r)).sum();
        let _ = max_cycles;
        RunMetrics {
            system: self.cfg.kind.label(),
            cores,
            total_cycles,
            energy,
            refreshes,
            sram_hit_rate: if stats.sram_lookups == 0 {
                0.0
            } else {
                stats.sram_hits as f64 / stats.sram_lookups as f64
            },
            sram_lookups: stats.sram_lookups,
            prefetches: stats.prefetches_issued,
            analysis,
            row_hit_rate: stats.row_buffer.ratio(),
            avg_read_latency: if stats.reads_completed == 0 {
                0.0
            } else {
                stats.sum_read_latency as f64 / stats.reads_completed as f64
            },
            hit_cycle_cap,
        }
    }
}

/// Routes one core memory operation through the shared LLC and, on a
/// miss, into the memory controller.
///
/// Store misses allocate in the LLC without fetching the line from DRAM
/// (their fill traffic is omitted; the store's memory-side cost is the
/// eventual dirty writeback — see DESIGN.md's substitution notes). Load
/// misses become DRAM reads and may evict a dirty victim, which becomes a
/// DRAM write.
fn submit(
    llc: &mut Cache,
    ctrl: &mut MemController,
    line_bytes: u64,
    core: usize,
    now: Cycle,
    op: MemOp,
) -> SubmitResult {
    let (addr, is_write) = match op {
        MemOp::Read { addr } => (addr, false),
        MemOp::Write { addr } => (addr, true),
    };
    let line = addr / line_bytes;

    if llc.contains(line) {
        let outcome = llc.access(line, is_write);
        debug_assert!(outcome.is_hit());
        return SubmitResult::LlcHit;
    }

    // Miss path: make sure the controller can take everything this miss
    // may generate before mutating the cache.
    let write_room = ctrl.write_queue_len() < ctrl.config().write_queue_capacity;
    if !write_room {
        return SubmitResult::Retry;
    }
    if is_write {
        match llc.access(line, true) {
            AccessOutcome::Miss {
                writeback: Some(victim),
            } => {
                let ok = ctrl.enqueue_write(victim, core, now);
                debug_assert!(ok, "write room was checked");
                SubmitResult::QueuedWrite
            }
            AccessOutcome::Miss { writeback: None } => SubmitResult::LlcHit,
            AccessOutcome::Hit => SubmitResult::LlcHit,
        }
    } else {
        let Some(id) = ctrl.enqueue_read(line, core, now) else {
            return SubmitResult::Retry;
        };
        if let AccessOutcome::Miss {
            writeback: Some(victim),
        } = llc.access(line, false)
        {
            let ok = ctrl.enqueue_write(victim, core, now);
            debug_assert!(ok, "write room was checked");
        }
        SubmitResult::QueuedRead(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;
    use rop_trace::Benchmark;

    fn quick(kind: SystemKind, b: Benchmark) -> RunMetrics {
        let mut sys = System::new(SystemConfig::single_core(b, kind, 42));
        sys.run_until(200_000, 20_000_000)
    }

    #[test]
    fn baseline_single_core_completes() {
        let m = quick(SystemKind::Baseline, Benchmark::Libquantum);
        assert!(!m.hit_cycle_cap);
        assert_eq!(m.cores[0].instructions, 200_000);
        assert!(m.ipc() > 0.0);
        assert!(m.refreshes > 0);
        assert!(m.energy.total_nj() > 0.0);
        assert!(m.cores[0].read_misses > 0, "libquantum must stream");
    }

    #[test]
    fn no_refresh_is_at_least_as_fast() {
        let base = quick(SystemKind::Baseline, Benchmark::Lbm);
        let ideal = quick(SystemKind::NoRefresh, Benchmark::Lbm);
        assert_eq!(ideal.refreshes, 0);
        assert!(
            ideal.ipc() >= base.ipc() * 0.999,
            "ideal {} vs base {}",
            ideal.ipc(),
            base.ipc()
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = quick(SystemKind::Baseline, Benchmark::Gcc);
        let b = quick(SystemKind::Baseline, Benchmark::Gcc);
        assert_eq!(a.ipc(), b.ipc());
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.refreshes, b.refreshes);
        assert!((a.energy.total_nj() - b.energy.total_nj()).abs() < 1e-6);
    }

    #[test]
    fn rop_system_runs_and_prefetches() {
        // Long enough to complete the 50-refresh training phase
        // (~312k memory cycles) and prefetch for a while after.
        let mut sys = System::new(SystemConfig::single_core(
            Benchmark::Libquantum,
            SystemKind::Rop { buffer: 64 },
            42,
        ));
        let m = sys.run_until(2_500_000, 80_000_000);
        assert!(!m.hit_cycle_cap);
        // A streaming benchmark must trigger prefetching after training.
        assert!(m.prefetches > 0, "no prefetches issued");
        assert!(m.sram_lookups > 0, "no reads arrived during refreshes");
    }

    #[test]
    fn multicore_runs() {
        let mix = rop_trace::WORKLOAD_MIXES[5]; // lightest mix for speed
        let mut sys = System::new(SystemConfig::multi_core(
            mix.programs,
            SystemKind::Baseline,
            7,
        ));
        let m = sys.run_until(100_000, 50_000_000);
        assert!(!m.hit_cycle_cap);
        assert_eq!(m.cores.len(), 4);
        for c in &m.cores {
            assert!(c.ipc > 0.0, "{} stalled forever", c.benchmark);
        }
    }
}
