//! System assembly and the fixed-work simulation loop.
//!
//! Two loops drive the same machine state:
//!
//! * [`System::run_until`] — the event-driven engine. Every iteration
//!   advances `now` straight to the earliest next event (core memory op,
//!   controller hint, or in-flight read completion), batch-replaying the
//!   skipped cycles on each core in O(1) via [`Core::fast_forward`].
//!   In-flight completions live in a hierarchical timing wheel
//!   ([`crate::wheel`]) that preserves the `(done_at, id)` delivery
//!   order of the binary heap it replaced.
//! * [`System::run_until_reference`] — a pure per-cycle loop with no
//!   fast-forwarding at all. It exists as the semantic oracle: the
//!   differential tests assert both loops produce identical metrics.
//!
//! See DESIGN.md ("Engine") for the event contract and the invariants
//! that make the batched loop cycle-exact.

use std::time::Instant;

use rop_cache::{Cache, TryAccess};
use rop_cpu::{Core, MemOp, SubmitResult};
use rop_memctrl::{Completion, MemController};
use rop_trace::SyntheticWorkload;

use crate::audit::{Auditor, AuditorConfig};
use crate::config::SystemConfig;
use crate::metrics::{CoreMetrics, RunMetrics};
use crate::wheel::TimingWheel;
use crate::Cycle;

/// A complete simulated machine: cores → shared LLC → controller → DRAM.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core<SyntheticWorkload>>,
    llc: Cache,
    ctrl: MemController,
    /// Read completions waiting for their data-arrival cycle, popped in
    /// `(done_at, id)` order (see [`crate::wheel`]).
    inflight: TimingWheel,
    /// Reused batch buffer for completions due this cycle.
    due: Vec<Completion>,
    now: Cycle,
    /// Cycle at which each core crossed its instruction quota.
    finish: Vec<Option<Cycle>>,
    /// `log2(line_bytes)` when the line size is a power of two.
    line_shift: Option<u32>,
    /// Wall-clock seconds spent inside the run loop.
    wall_seconds: f64,
    /// Engine loop iterations executed (events processed).
    events: u64,
    /// Online invariant checker consuming the event trace, when audit
    /// mode is enabled.
    auditor: Option<Auditor>,
    /// Cooperative cancellation + heartbeat, when a supervisor watches
    /// this run (see [`crate::runner::CancelToken`]).
    cancel: Option<std::sync::Arc<crate::runner::CancelToken>>,
}

impl System {
    /// Builds the system described by `cfg`.
    ///
    /// Each core's footprint is offset by one rank-partition worth of
    /// lines, so under rank-partitioned mappings core *i* occupies rank
    /// *i*, and under the interleaved baseline mapping footprints remain
    /// disjoint but spread over all ranks — exactly the contrast between
    /// the paper's Baseline and Baseline-RP/ROP systems.
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate().expect("invalid system configuration");
        let ctrl_cfg = cfg
            .ctrl_override
            .clone()
            .unwrap_or_else(|| cfg.kind.memctrl_config(cfg.ranks, cfg.seed));
        let ctrl = MemController::new(ctrl_cfg);
        let lines_per_rank = ctrl.mapping().lines_per_rank();
        let line_bytes = ctrl.mapping().geometry().line_bytes as u64;
        let cores = cfg
            .benchmarks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let mut params = b.params();
                params.base_addr = i as u64 * lines_per_rank * line_bytes;
                let workload =
                    SyntheticWorkload::new(params, cfg.seed.wrapping_add(i as u64 * 7919));
                Core::new(cfg.core, workload)
            })
            .collect();
        let llc_line = cfg.llc.line_bytes as u64;
        System {
            llc: Cache::new(cfg.llc),
            finish: vec![None; cfg.benchmarks.len()],
            cores,
            ctrl,
            inflight: TimingWheel::new(),
            due: Vec::new(),
            now: 0,
            line_shift: llc_line
                .is_power_of_two()
                .then(|| llc_line.trailing_zeros()),
            wall_seconds: 0.0,
            events: 0,
            auditor: None,
            cancel: None,
            cfg,
        }
    }

    /// Attaches a cancellation token: every engine iteration publishes
    /// the current cycle as a heartbeat and panics if the token has been
    /// cancelled. Pure observation while uncancelled — two relaxed
    /// atomic operations per iteration, no effect on simulated state.
    pub fn set_cancel_token(&mut self, token: std::sync::Arc<crate::runner::CancelToken>) {
        self.cancel = Some(token);
    }

    /// Enables audit mode with parameters derived from the controller
    /// configuration: the full event trace is collected and checked
    /// online, and the run panics with a labelled violation report if
    /// any invariant fails (see [`crate::audit`]).
    pub fn enable_audit(&mut self) {
        let cfg = AuditorConfig::from_ctrl(self.ctrl.config());
        self.enable_audit_with(cfg);
    }

    /// [`System::enable_audit`] with explicit audit parameters — the
    /// differential tests use this to audit against deliberately
    /// corrupted timing and prove the auditor catches it.
    pub fn enable_audit_with(&mut self, cfg: AuditorConfig) {
        self.ctrl.set_trace_enabled(true);
        self.auditor = Some(Auditor::new(cfg));
    }

    /// The audit outcome so far, when audit mode is on.
    pub fn audit_summary(&self) -> Option<crate::audit::AuditSummary> {
        self.auditor.as_ref().map(|a| a.summary())
    }

    /// The current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Immutable access to the controller (for inspection in tests).
    pub fn controller(&self) -> &MemController {
        &self.ctrl
    }

    /// Runs until every core has retired `target_instructions` (or the
    /// safety cap of `max_cycles` is reached) and returns the metrics.
    ///
    /// Finished cores keep executing so multi-program contention persists
    /// until the last core completes, as in fixed-work methodology; their
    /// statistics are frozen at the quota-crossing cycle.
    pub fn run_until(&mut self, target_instructions: u64, max_cycles: Cycle) -> RunMetrics {
        self.drive(target_instructions, max_cycles, true);
        self.collect(target_instructions, max_cycles)
    }

    /// [`System::run_until`] without any fast-forwarding: ticks every
    /// single cycle. Semantically identical and much slower — it is the
    /// oracle the differential tests compare the event-driven engine
    /// against.
    pub fn run_until_reference(
        &mut self,
        target_instructions: u64,
        max_cycles: Cycle,
    ) -> RunMetrics {
        self.drive(target_instructions, max_cycles, false);
        self.collect(target_instructions, max_cycles)
    }

    /// The simulation loop shared by both entry points.
    ///
    /// Event-driven invariants (enforced by the differential tests):
    /// no core submits a memory op, and no controller action or read
    /// completion occurs, at any skipped cycle — so replaying the skips
    /// with [`Core::fast_forward`] and leaving the controller untouched
    /// reproduces the per-cycle execution exactly.
    fn drive(&mut self, target_instructions: u64, max_cycles: Cycle, event_driven: bool) {
        // Wall-clock throughput metadata only — never fed back into
        // simulated state, so determinism is unaffected.
        let start = Instant::now(); // rop-lint: allow(wallclock)
        let line_bytes = self.cfg.llc.line_bytes as u64;
        let line_shift = self.line_shift;
        while self.finish.iter().any(Option::is_none) && self.now < max_cycles {
            let now = self.now;
            self.events += 1;
            if let Some(token) = &self.cancel {
                token.beat(now);
                token.checkpoint(); // panics when a watchdog cancelled us
            }

            // Deliver read data that has arrived, in `(done_at, id)`
            // order exactly as the old completion heap did.
            self.inflight.pop_due(now, &mut self.due);
            for i in 0..self.due.len() {
                let c = self.due[i];
                self.cores[c.core].complete_read(c.id);
            }
            self.due.clear();

            // Tick every core for exactly this cycle.
            let Self {
                cores, llc, ctrl, ..
            } = self;
            for (i, core) in cores.iter_mut().enumerate() {
                core.tick(|op| submit(llc, ctrl, line_bytes, line_shift, i, now, op));
            }

            // Record quota crossings.
            for (i, core) in self.cores.iter().enumerate() {
                if self.finish[i].is_none() && core.stats().instructions >= target_instructions {
                    self.finish[i] = Some(now + 1);
                }
            }

            // Tick the controller and collect fresh completions.
            let hint = self.ctrl.tick(now);
            if let Some(auditor) = &mut self.auditor {
                self.ctrl.drain_trace(auditor);
            }
            self.ctrl.drain_completions_into(&mut self.due);
            for i in 0..self.due.len() {
                self.inflight.push(self.due[i]);
            }
            self.due.clear();

            // Once every core has crossed its quota the run is over; do
            // not fast-forward (and tally stalls for) cycles the
            // per-cycle reference would never execute.
            if !event_driven || self.finish.iter().all(Option::is_some) {
                self.now = now + 1;
                continue;
            }

            // Advance straight to the earliest next event: the controller
            // hint, the next read completion, or the next core memory op.
            let mut next = hint;
            if let Some(done_at) = self.inflight.peek_earliest() {
                next = next.min(done_at);
            }
            for (i, core) in self.cores.iter().enumerate() {
                next = next.min(core.next_event(now));
                if self.finish[i].is_none() {
                    // End the span exactly on a quota-crossing tick: the
                    // reference loop stops simulating once the last core
                    // crosses, so replaying past the crossing would count
                    // stall cycles the reference never executes.
                    let crossing = core.next_quota_crossing(now, target_instructions);
                    next = next.min(crossing.saturating_add(1));
                }
            }
            assert!(
                next != Cycle::MAX,
                "system deadlock: all cores stalled with no pending events"
            );
            let next = next.max(now + 1).min(max_cycles);

            // Batch-replay the skipped cycles on every core (stall and
            // gap-retirement accounting stays cycle-exact), watching for
            // quota crossings inside the span.
            if next > now + 1 {
                let span = next - now - 1;
                for (i, core) in self.cores.iter_mut().enumerate() {
                    let crossed = core.fast_forward(span, target_instructions);
                    if self.finish[i].is_none() {
                        if let Some(offset) = crossed {
                            self.finish[i] = Some(now + 1 + offset + 1);
                        }
                    }
                }
            }
            self.now = next;
        }
        // Publish the final position: a short run can fast-forward to
        // completion in a single engine iteration, and its only in-loop
        // beat would then be cycle 0.
        if let Some(token) = &self.cancel {
            token.beat(self.now);
        }
        self.wall_seconds += start.elapsed().as_secs_f64();
        if let Some(auditor) = &self.auditor {
            if auditor.summary().violations > 0 {
                panic!("{}", auditor.report()); // rop-lint: allow(no-panic)
            }
        }
    }

    fn collect(&mut self, target: u64, max_cycles: Cycle) -> RunMetrics {
        let hit_cycle_cap = self.finish.iter().any(Option::is_none);
        let total_cycles = self
            .finish
            .iter()
            .map(|f| f.unwrap_or(self.now))
            .max()
            .unwrap_or(self.now)
            .max(1);
        self.ctrl.finalize_analysis();
        let cores: Vec<CoreMetrics> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let s = core.stats();
                let finish = self.finish[i].unwrap_or(self.now).max(1);
                CoreMetrics {
                    benchmark: core.workload_name().to_string(),
                    instructions: s.instructions.min(target),
                    finish_cycle: finish,
                    ipc: s.instructions.min(target) as f64
                        / (finish * core.config().clock_ratio) as f64,
                    llc_hits: s.llc_hits,
                    read_misses: s.read_misses,
                    stall_cycles: s.stall_cycles,
                }
            })
            .collect();
        let energy = self.ctrl.energy_breakdown(total_cycles);
        let ranks = self.cfg.ranks;
        let analysis = (0..self.ctrl.refresh_slots())
            .map(|slot| self.ctrl.analysis(slot).reports())
            .collect();
        let stats = self.ctrl.stats().clone();
        let refreshes: u64 = (0..ranks).map(|r| self.ctrl.refreshes_issued(r)).sum();
        let _ = max_cycles;
        let instructions_total: u64 = self
            .cores
            .iter()
            .map(|c| c.stats().instructions.min(target))
            .sum();
        crate::engine_stats::record(total_cycles, instructions_total, self.events);
        RunMetrics {
            system: self.cfg.kind.label(),
            cores,
            total_cycles,
            energy,
            refreshes,
            mechanism: self.ctrl.mechanism().label().to_string(),
            refresh_blocked_cycles: stats.refresh_blocked_cycles,
            refreshes_skipped: self.ctrl.refreshes_skipped(),
            refreshes_pulled_in: self.ctrl.refreshes_pulled_in(),
            sram_hit_rate: if stats.sram_lookups == 0 {
                0.0
            } else {
                stats.sram_hits as f64 / stats.sram_lookups as f64
            },
            sram_lookups: stats.sram_lookups,
            prefetches: stats.prefetches_issued,
            analysis,
            row_hit_rate: stats.row_buffer.ratio(),
            avg_read_latency: if stats.reads_completed == 0 {
                0.0
            } else {
                stats.sum_read_latency as f64 / stats.reads_completed as f64
            },
            hit_cycle_cap,
            wall_seconds: self.wall_seconds,
            instructions_total,
            events: self.events,
            audit: self.auditor.as_ref().map(|a| a.summary()),
            open_loop: None,
        }
    }
}

/// Routes one core memory operation through the shared LLC and, on a
/// miss, into the memory controller.
///
/// The LLC is probed exactly once: a hit commits immediately, a miss
/// yields a token that is only committed after the controller has
/// accepted everything the miss generates — dropping the token on
/// back-pressure leaves the cache untouched, exactly like the retried
/// access never happened.
///
/// Store misses allocate in the LLC without fetching the line from DRAM
/// (their fill traffic is omitted; the store's memory-side cost is the
/// eventual dirty writeback — see DESIGN.md's substitution notes). Load
/// misses become DRAM reads and may evict a dirty victim, which becomes a
/// DRAM write.
fn submit(
    llc: &mut Cache,
    ctrl: &mut MemController,
    line_bytes: u64,
    line_shift: Option<u32>,
    core: usize,
    now: Cycle,
    op: MemOp,
) -> SubmitResult {
    let (addr, is_write) = match op {
        MemOp::Read { addr } => (addr, false),
        MemOp::Write { addr } => (addr, true),
    };
    let line = match line_shift {
        Some(shift) => addr >> shift,
        None => addr / line_bytes,
    };

    let token = match llc.try_access(line, is_write) {
        TryAccess::Hit => return SubmitResult::LlcHit,
        TryAccess::Miss(token) => token,
    };

    // Miss path: make sure the controller can take everything this miss
    // may generate before committing the fill.
    let write_room = ctrl.write_queue_len() < ctrl.config().write_queue_capacity;
    if !write_room {
        return SubmitResult::Retry;
    }
    if is_write {
        match llc.fill(token) {
            Some(victim) => {
                let ok = ctrl.enqueue_write(victim, core, now);
                debug_assert!(ok, "write room was checked");
                SubmitResult::QueuedWrite
            }
            None => SubmitResult::LlcHit,
        }
    } else {
        let Some(id) = ctrl.enqueue_read(line, core, now) else {
            return SubmitResult::Retry;
        };
        if let Some(victim) = llc.fill(token) {
            let ok = ctrl.enqueue_write(victim, core, now);
            debug_assert!(ok, "write room was checked");
        }
        SubmitResult::QueuedRead(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;
    use rop_trace::Benchmark;

    fn quick(kind: SystemKind, b: Benchmark) -> RunMetrics {
        let mut sys = System::new(SystemConfig::single_core(b, kind, 42));
        sys.run_until(200_000, 20_000_000)
    }

    #[test]
    fn baseline_single_core_completes() {
        let m = quick(SystemKind::Baseline, Benchmark::Libquantum);
        assert!(!m.hit_cycle_cap);
        assert_eq!(m.cores[0].instructions, 200_000);
        assert!(m.ipc() > 0.0);
        assert!(m.refreshes > 0);
        assert!(m.energy.total_nj() > 0.0);
        assert!(m.cores[0].read_misses > 0, "libquantum must stream");
    }

    #[test]
    fn no_refresh_is_at_least_as_fast() {
        let base = quick(SystemKind::Baseline, Benchmark::Lbm);
        let ideal = quick(SystemKind::NoRefresh, Benchmark::Lbm);
        assert_eq!(ideal.refreshes, 0);
        assert!(
            ideal.ipc() >= base.ipc() * 0.999,
            "ideal {} vs base {}",
            ideal.ipc(),
            base.ipc()
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = quick(SystemKind::Baseline, Benchmark::Gcc);
        let b = quick(SystemKind::Baseline, Benchmark::Gcc);
        assert_eq!(a.ipc(), b.ipc());
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.refreshes, b.refreshes);
        assert!((a.energy.total_nj() - b.energy.total_nj()).abs() < 1e-6);
    }

    #[test]
    fn rop_system_runs_and_prefetches() {
        // Long enough to complete the 50-refresh training phase
        // (~312k memory cycles) and prefetch for a while after.
        let mut sys = System::new(SystemConfig::single_core(
            Benchmark::Libquantum,
            SystemKind::Rop { buffer: 64 },
            42,
        ));
        let m = sys.run_until(2_500_000, 80_000_000);
        assert!(!m.hit_cycle_cap);
        // A streaming benchmark must trigger prefetching after training.
        assert!(m.prefetches > 0, "no prefetches issued");
        assert!(m.sram_lookups > 0, "no reads arrived during refreshes");
    }

    #[test]
    fn multicore_runs() {
        let mix = rop_trace::WORKLOAD_MIXES[5]; // lightest mix for speed
        let mut sys = System::new(SystemConfig::multi_core(
            mix.programs,
            SystemKind::Baseline,
            7,
        ));
        let m = sys.run_until(100_000, 50_000_000);
        assert!(!m.hit_cycle_cap);
        assert_eq!(m.cores.len(), 4);
        for c in &m.cores {
            assert!(c.ipc > 0.0, "{} stalled forever", c.benchmark);
        }
    }

    /// Runs the same configuration through both loops and asserts the
    /// metrics the acceptance criteria pin down are bit-identical.
    fn assert_loops_agree(kind: SystemKind, b: Benchmark, target: u64, cap: Cycle) {
        let mut event = System::new(SystemConfig::single_core(b, kind, 42));
        let me = event.run_until(target, cap);
        let mut reference = System::new(SystemConfig::single_core(b, kind, 42));
        let mr = reference.run_until_reference(target, cap);

        assert_eq!(me.total_cycles, mr.total_cycles, "{kind:?}/{b:?}");
        assert_eq!(me.refreshes, mr.refreshes, "{kind:?}/{b:?}");
        assert_eq!(me.hit_cycle_cap, mr.hit_cycle_cap, "{kind:?}/{b:?}");
        assert_eq!(me.sram_lookups, mr.sram_lookups, "{kind:?}/{b:?}");
        assert_eq!(me.prefetches, mr.prefetches, "{kind:?}/{b:?}");
        assert_eq!(me.energy.total_nj(), mr.energy.total_nj(), "{kind:?}/{b:?}");
        for (ce, cr) in me.cores.iter().zip(&mr.cores) {
            assert_eq!(ce.instructions, cr.instructions, "{kind:?}/{b:?}");
            assert_eq!(ce.finish_cycle, cr.finish_cycle, "{kind:?}/{b:?}");
            assert_eq!(ce.ipc, cr.ipc, "{kind:?}/{b:?}");
            assert_eq!(ce.llc_hits, cr.llc_hits, "{kind:?}/{b:?}");
            assert_eq!(ce.read_misses, cr.read_misses, "{kind:?}/{b:?}");
            assert_eq!(ce.stall_cycles, cr.stall_cycles, "{kind:?}/{b:?}");
        }
    }

    #[test]
    fn event_loop_is_cycle_exact_memory_light() {
        // Compute-heavy: the event engine skips most cycles here, so this
        // is where fast-forward bugs would surface.
        assert_loops_agree(SystemKind::Baseline, Benchmark::Gcc, 120_000, 20_000_000);
        assert_loops_agree(
            SystemKind::Rop { buffer: 64 },
            Benchmark::Gcc,
            120_000,
            20_000_000,
        );
    }

    #[test]
    fn event_loop_is_cycle_exact_streaming() {
        assert_loops_agree(
            SystemKind::Baseline,
            Benchmark::Libquantum,
            120_000,
            20_000_000,
        );
        assert_loops_agree(
            SystemKind::Rop { buffer: 64 },
            Benchmark::Libquantum,
            120_000,
            20_000_000,
        );
    }

    #[test]
    fn event_loop_is_cycle_exact_mixed() {
        assert_loops_agree(SystemKind::Baseline, Benchmark::Lbm, 120_000, 20_000_000);
        assert_loops_agree(
            SystemKind::Rop { buffer: 64 },
            Benchmark::Lbm,
            120_000,
            20_000_000,
        );
    }

    /// Differential check with a tweaked controller configuration —
    /// the hook for stressing timing corners (refresh pressure, tFAW
    /// saturation) that the stock DDR4 profile rarely exercises.
    fn assert_loops_agree_with(
        kind: SystemKind,
        b: Benchmark,
        target: u64,
        cap: Cycle,
        tweak: impl Fn(&mut rop_memctrl::MemCtrlConfig),
    ) {
        let mut cfg = SystemConfig::single_core(b, kind, 42);
        let mut ctrl = kind.memctrl_config(cfg.ranks, cfg.seed);
        tweak(&mut ctrl);
        cfg.ctrl_override = Some(ctrl);
        let mut event = System::new(cfg.clone());
        let me = event.run_until(target, cap);
        let mut reference = System::new(cfg);
        let mr = reference.run_until_reference(target, cap);

        assert_eq!(me.total_cycles, mr.total_cycles, "{kind:?}/{b:?}");
        assert_eq!(me.refreshes, mr.refreshes, "{kind:?}/{b:?}");
        assert_eq!(me.hit_cycle_cap, mr.hit_cycle_cap, "{kind:?}/{b:?}");
        assert_eq!(me.sram_lookups, mr.sram_lookups, "{kind:?}/{b:?}");
        assert_eq!(me.prefetches, mr.prefetches, "{kind:?}/{b:?}");
        assert_eq!(me.energy.total_nj(), mr.energy.total_nj(), "{kind:?}/{b:?}");
        for (ce, cr) in me.cores.iter().zip(&mr.cores) {
            assert_eq!(ce.finish_cycle, cr.finish_cycle, "{kind:?}/{b:?}");
            assert_eq!(ce.ipc, cr.ipc, "{kind:?}/{b:?}");
            assert_eq!(ce.stall_cycles, cr.stall_cycles, "{kind:?}/{b:?}");
        }
    }

    #[test]
    fn event_loop_is_cycle_exact_refresh_heavy() {
        // tREFI/8 (still > tRFC, so the config stays legal): REF
        // traffic dominates and every drain/freeze/thaw transition in
        // the wheel-driven engine must land on the same cycle as the
        // per-cycle oracle.
        for kind in [SystemKind::Baseline, SystemKind::Rop { buffer: 64 }] {
            assert_loops_agree_with(kind, Benchmark::Libquantum, 120_000, 20_000_000, |ctrl| {
                ctrl.dram.timing.t_refi_base /= 8
            });
        }
    }

    #[test]
    fn event_loop_is_cycle_exact_tfaw_saturated() {
        // A pathologically wide four-activate window (tFAW 24 -> 120)
        // makes the rolling-ACT constraint bind on essentially every
        // activate, exercising the SoA ACT-ring bookkeeping and the
        // fast-forward hints it feeds.
        for kind in [SystemKind::Baseline, SystemKind::Rop { buffer: 64 }] {
            assert_loops_agree_with(kind, Benchmark::Libquantum, 120_000, 40_000_000, |ctrl| {
                ctrl.dram.timing.t_faw = 120
            });
        }
    }

    #[test]
    fn event_loop_is_cycle_exact_per_mechanism() {
        // Every refresh mechanism must agree with the per-cycle oracle:
        // DARP's pull-in eligibility, SARP's subarray freezes and
        // RAIDR's skipped rounds all have their own wake-up hints, and
        // a late hint shows up here as a diverging cycle count.
        for kind in [SystemKind::Darp, SystemKind::Sarp, SystemKind::Raidr] {
            assert_loops_agree(kind, Benchmark::Libquantum, 120_000, 20_000_000);
            assert_loops_agree(kind, Benchmark::Gcc, 120_000, 20_000_000);
        }
    }

    #[test]
    fn allbank_mechanism_is_bitexact_with_the_pre_seam_controller() {
        // The seam's AllBank delegation must not change a single cycle
        // relative to the refresh-heavy and tFAW-saturated differential
        // corners the pre-seam controller was pinned on.
        for b in [Benchmark::Libquantum, Benchmark::Lbm] {
            assert_loops_agree(SystemKind::Baseline, b, 120_000, 20_000_000);
        }
        assert_loops_agree_with(
            SystemKind::Baseline,
            Benchmark::Libquantum,
            120_000,
            20_000_000,
            |ctrl| ctrl.dram.timing.t_refi_base /= 8,
        );
    }

    #[test]
    fn mechanisms_are_deterministic() {
        // Same seed, same mechanism: byte-identical metrics payloads
        // (the property the figure files inherit).
        for kind in [SystemKind::Darp, SystemKind::Sarp, SystemKind::Raidr] {
            let mut a = quick(kind, Benchmark::Libquantum);
            let mut b = quick(kind, Benchmark::Libquantum);
            // Wall-clock timing is the one legitimately nondeterministic
            // field; blank it before comparing.
            a.wall_seconds = 0.0;
            b.wall_seconds = 0.0;
            assert_eq!(a.to_json().render(), b.to_json().render(), "{kind:?}");
        }
    }

    #[test]
    fn mechanisms_report_their_signature_counters() {
        let base = quick(SystemKind::Baseline, Benchmark::Libquantum);
        assert_eq!(base.mechanism, "allbank");
        assert_eq!(base.refreshes_skipped, 0);
        assert_eq!(base.refreshes_pulled_in, 0);
        assert!(base.refresh_blocked_cycles > 0, "libquantum must block");

        let raidr = quick(SystemKind::Raidr, Benchmark::Libquantum);
        assert_eq!(raidr.mechanism, "raidr");
        assert!(raidr.refreshes_skipped > 0, "half the rounds should skip");

        let darp = quick(SystemKind::Darp, Benchmark::Gcc);
        assert_eq!(darp.mechanism, "darp");
        assert!(
            darp.refreshes_pulled_in > 0,
            "gcc leaves idle windows to pull refreshes into"
        );

        let sarp = quick(SystemKind::Sarp, Benchmark::Libquantum);
        assert_eq!(sarp.mechanism, "sarp");
        assert!(sarp.refreshes > 0);
    }

    #[test]
    fn darp_and_sarp_shrink_refresh_blocking_under_pressure() {
        // Refresh-heavy shape (tREFI/8): the rivals' whole pitch is
        // fewer demand-visible freeze cycles than all-bank refresh.
        let heavy = |kind: SystemKind| {
            let mut cfg = SystemConfig::single_core(Benchmark::Libquantum, kind, 42);
            let mut ctrl = kind.memctrl_config(cfg.ranks, cfg.seed);
            ctrl.dram.timing.t_refi_base /= 8;
            cfg.ctrl_override = Some(ctrl);
            let mut sys = System::new(cfg);
            sys.run_until(200_000, 40_000_000)
        };
        let base = heavy(SystemKind::Baseline);
        let darp = heavy(SystemKind::Darp);
        let sarp = heavy(SystemKind::Sarp);
        assert!(
            darp.refresh_blocked_cycles < base.refresh_blocked_cycles,
            "DARP {} vs AllBank {}",
            darp.refresh_blocked_cycles,
            base.refresh_blocked_cycles
        );
        assert!(
            sarp.refresh_blocked_cycles < base.refresh_blocked_cycles,
            "SARP {} vs AllBank {}",
            sarp.refresh_blocked_cycles,
            base.refresh_blocked_cycles
        );
    }

    #[test]
    fn event_loop_is_cycle_exact_multicore() {
        let mix = rop_trace::WORKLOAD_MIXES[5];
        let mut event = System::new(SystemConfig::multi_core(
            mix.programs,
            SystemKind::Baseline,
            7,
        ));
        let me = event.run_until(60_000, 50_000_000);
        let mut reference = System::new(SystemConfig::multi_core(
            mix.programs,
            SystemKind::Baseline,
            7,
        ));
        let mr = reference.run_until_reference(60_000, 50_000_000);
        assert_eq!(me.total_cycles, mr.total_cycles);
        assert_eq!(me.refreshes, mr.refreshes);
        for (ce, cr) in me.cores.iter().zip(&mr.cores) {
            assert_eq!(ce.finish_cycle, cr.finish_cycle, "{}", ce.benchmark);
            assert_eq!(ce.stall_cycles, cr.stall_cycles, "{}", ce.benchmark);
        }
    }

    #[test]
    fn wall_clock_throughput_is_populated() {
        let m = quick(SystemKind::Baseline, Benchmark::Gcc);
        assert!(m.wall_seconds > 0.0);
        assert!(m.cycles_per_sec() > 0.0);
        assert!(m.instructions_per_sec() > 0.0);
        assert!(m.events_per_sec() > 0.0);
    }

    #[test]
    fn event_engine_processes_fewer_events_than_cycles() {
        // The honest throughput metric: the event engine visits a strict
        // subset of cycles, while the reference loop visits every one.
        let mut event = System::new(SystemConfig::single_core(
            Benchmark::Gcc,
            SystemKind::Baseline,
            42,
        ));
        let me = event.run_until(120_000, 20_000_000);
        assert!(me.events > 0);
        assert!(
            me.events < me.total_cycles,
            "gcc is memory-light; the engine must fast-forward ({} events, {} cycles)",
            me.events,
            me.total_cycles
        );
        let mut reference = System::new(SystemConfig::single_core(
            Benchmark::Gcc,
            SystemKind::Baseline,
            42,
        ));
        let mr = reference.run_until_reference(120_000, 20_000_000);
        assert!(mr.events >= mr.total_cycles.saturating_sub(1));
    }

    fn quick_audited(kind: SystemKind, b: Benchmark) -> RunMetrics {
        let mut sys = System::new(SystemConfig::single_core(b, kind, 42));
        sys.enable_audit();
        sys.run_until(200_000, 20_000_000)
    }

    #[test]
    fn audited_runs_are_clean() {
        // Every controller flavour must stream an event trace the
        // auditor accepts; `run_until` panics on any violation.
        for kind in [
            SystemKind::Baseline,
            SystemKind::ElasticRefresh,
            SystemKind::PerBankRefresh,
            SystemKind::Rop { buffer: 64 },
            SystemKind::Darp,
            SystemKind::Sarp,
            SystemKind::Raidr,
        ] {
            let m = quick_audited(kind, Benchmark::Libquantum);
            let audit = m.audit.expect("audited run must carry a summary");
            assert!(audit.events > 0, "{kind:?}: no events traced");
            assert_eq!(audit.violations, 0, "{kind:?}");
        }
    }

    #[test]
    fn audit_does_not_perturb_the_run() {
        let plain = quick(SystemKind::Rop { buffer: 64 }, Benchmark::Lbm);
        let audited = quick_audited(SystemKind::Rop { buffer: 64 }, Benchmark::Lbm);
        assert_eq!(plain.total_cycles, audited.total_cycles);
        assert_eq!(plain.refreshes, audited.refreshes);
        assert_eq!(plain.cores[0].ipc, audited.cores[0].ipc);
        assert!((plain.energy.total_nj() - audited.energy.total_nj()).abs() < 1e-6);
        assert_eq!(plain.audit, None);
    }

    /// Differential check from the acceptance criteria: auditing the
    /// real device against deliberately tightened timing parameters
    /// must produce a labeled violation report.
    #[test]
    fn corrupted_timing_is_detected() {
        let cfg = SystemConfig::single_core(Benchmark::Libquantum, SystemKind::Baseline, 42);
        let mcfg = cfg.kind.memctrl_config(cfg.ranks, cfg.seed);
        let mut audit_cfg = crate::audit::AuditorConfig::from_ctrl(&mcfg);
        // Pretend the device must wait twice as long after ACT before a
        // column command: every real tRCD-paced read now looks illegal.
        audit_cfg.timing.t_rcd *= 2;
        let err = std::panic::catch_unwind(move || {
            let mut sys = System::new(cfg);
            sys.enable_audit_with(audit_cfg);
            sys.run_until(200_000, 20_000_000)
        })
        .expect_err("tightened tRCD must trip the auditor");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "unexpected panic payload".into());
        assert!(msg.contains("timing.tRCD"), "report was: {msg}");
        assert!(msg.contains("violation"), "report was: {msg}");
    }
}
