//! Hierarchical timing wheel for in-flight read completions.
//!
//! The event engine used to keep pending completions in a
//! `BinaryHeap<Reverse<(done_at, id)>>`; every push/pop paid a
//! logarithmic sift through a pointer-free but cache-unfriendly array.
//! Real completion horizons are tiny — data arrives `CL + BL/2 (+
//! tRTRS)` cycles after the column command issues, so nearly every event
//! lands within a few dozen cycles of `now` — which is the textbook case
//! for a calendar queue: O(1) push into a slot indexed by the due cycle,
//! O(1) pop via an occupancy bitmap.
//!
//! Geometry (see DESIGN.md §14):
//!
//! * **near wheel** — 256 slots at 1-cycle granularity (`done_at & 255`).
//!   Holds every event due within 256 cycles; in steady state this is
//!   the only level touched.
//! * **far wheels** — two 64-slot levels at 256- and 16384-cycle
//!   granularity (`(done_at >> 8) & 63`, `(done_at >> 14) & 63`),
//!   covering horizons of 2^14 and 2^20 cycles for events scheduled
//!   across long fast-forwards.
//! * **overflow** — unsorted spill list beyond 2^20 cycles.
//!
//! Slot membership is a pure function of `done_at`, so events never
//! migrate as the clock advances; only the *placement level* of a push
//! depends on the current distance. The near wheel alone relies on the
//! `delta < 256` horizon (its bitmap scan reconstructs absolute cycles
//! from slot indices); far slots always carry their `done_at` and are
//! min-scanned exactly, so leftovers from a different rotation may stay
//! put. Same-slot events from a later near rotation are re-homed to a
//! far level when the slot drains.
//!
//! Determinism: [`TimingWheel::pop_due`] delivers events in exactly the
//! order the old heap produced — ascending `(done_at, id)` — by draining
//! one due cycle at a time and sorting each same-cycle batch by id. The
//! differential oracle and the wheel-vs-heap proptest below pin this.
//!
//! Allocation: slots are `Vec`s that are emptied but never dropped, so
//! after warm-up the steady-state push/pop cycle allocates nothing (the
//! `hot-alloc` lint rule and `crates/bench/tests/alloc_free.rs` guard
//! this).

use rop_memctrl::Completion;

use crate::Cycle;

const NEAR_BITS: u32 = 8;
/// Near-wheel size: 256 one-cycle slots.
const NEAR_SLOTS: usize = 1 << NEAR_BITS;
const NEAR_MASK: u64 = NEAR_SLOTS as u64 - 1;
const FAR_BITS: u32 = 6;
/// Far-wheel size: 64 slots per level.
const FAR_SLOTS: usize = 1 << FAR_BITS;
const FAR_MASK: u64 = FAR_SLOTS as u64 - 1;
/// Level-1 far wheel: 256-cycle slots covering deltas below 2^14.
const FAR1_SHIFT: u32 = NEAR_BITS;
const FAR1_HORIZON: u64 = 1 << (NEAR_BITS + FAR_BITS);
/// Level-2 far wheel: 16384-cycle slots covering deltas below 2^20.
const FAR2_SHIFT: u32 = NEAR_BITS + FAR_BITS;
const FAR2_HORIZON: u64 = 1 << (NEAR_BITS + 2 * FAR_BITS);

/// Calendar queue over [`Completion`]s keyed by `done_at`, popping in
/// ascending `(done_at, id)` order.
#[derive(Debug)]
pub struct TimingWheel {
    /// Lower bound on every pending event's `done_at` (except `past`
    /// entries); advanced by [`TimingWheel::pop_due`].
    clock: Cycle,
    near: Vec<Vec<Completion>>,
    /// One bit per near slot, set while the slot is non-empty.
    near_occ: [u64; NEAR_SLOTS / 64],
    far1: Vec<Vec<Completion>>,
    far1_occ: u64,
    far2: Vec<Vec<Completion>>,
    far2_occ: u64,
    /// Events beyond the far-2 horizon (min-scanned; expected empty).
    overflow: Vec<Completion>,
    /// Events pushed with `done_at` already behind the clock (possible
    /// under arbitrary test schedules, never in the engine).
    past: Vec<Completion>,
    /// Scratch for re-homing near-slot leftovers (reused, never dropped).
    rehome: Vec<Completion>,
    /// Exact earliest pending `done_at`, `Cycle::MAX` when empty.
    earliest: Cycle,
    len: usize,
}

impl Default for TimingWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingWheel {
    /// An empty wheel anchored at cycle 0.
    pub fn new() -> Self {
        TimingWheel {
            clock: 0,
            near: (0..NEAR_SLOTS).map(|_| Vec::new()).collect(),
            near_occ: [0; NEAR_SLOTS / 64],
            far1: (0..FAR_SLOTS).map(|_| Vec::new()).collect(),
            far1_occ: 0,
            far2: (0..FAR_SLOTS).map(|_| Vec::new()).collect(),
            far2_occ: 0,
            overflow: Vec::new(),
            past: Vec::new(),
            rehome: Vec::new(),
            earliest: Cycle::MAX,
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Earliest pending `done_at`, if any — the engine's fast-forward
    /// bound, equal to what `heap.peek()` returned.
    pub fn peek_earliest(&self) -> Option<Cycle> {
        (self.len > 0).then_some(self.earliest)
    }

    /// Schedules one completion.
    // rop-lint: hot
    pub fn push(&mut self, c: Completion) {
        self.earliest = self.earliest.min(c.done_at);
        self.len += 1;
        self.place(c);
    }

    /// Inserts without touching `len`/`earliest` (shared by push and
    /// re-homing).
    // rop-lint: hot
    fn place(&mut self, c: Completion) {
        if c.done_at < self.clock {
            self.past.push(c);
            return;
        }
        let delta = c.done_at - self.clock;
        if delta < NEAR_SLOTS as u64 {
            let s = (c.done_at & NEAR_MASK) as usize;
            self.near[s].push(c);
            self.near_occ[s >> 6] |= 1u64 << (s & 63);
        } else if delta < FAR1_HORIZON {
            let j = ((c.done_at >> FAR1_SHIFT) & FAR_MASK) as usize;
            self.far1[j].push(c);
            self.far1_occ |= 1u64 << j;
        } else if delta < FAR2_HORIZON {
            let j = ((c.done_at >> FAR2_SHIFT) & FAR_MASK) as usize;
            self.far2[j].push(c);
            self.far2_occ |= 1u64 << j;
        } else {
            self.overflow.push(c);
        }
    }

    /// Appends every event with `done_at <= now` to `out`, in ascending
    /// `(done_at, id)` order — bit-compatible with draining the old
    /// binary heap — and advances the wheel clock to `now`.
    // rop-lint: hot
    pub fn pop_due(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        while self.len > 0 && self.earliest <= now {
            let e = self.earliest;
            self.clock = self.clock.max(e);
            let start = out.len();
            self.extract_cycle(e, out);
            debug_assert!(out.len() > start, "earliest cycle {e} had no events");
            out[start..].sort_unstable_by_key(|c| c.id);
            self.recompute_earliest();
        }
        self.clock = self.clock.max(now);
    }

    /// Moves every event with `done_at == e` into `out` (unsorted).
    // rop-lint: hot
    fn extract_cycle(&mut self, e: Cycle, out: &mut Vec<Completion>) {
        let before = out.len();
        extract_matching(&mut self.past, e, out);

        let s = (e & NEAR_MASK) as usize;
        if self.near_occ[s >> 6] & (1u64 << (s & 63)) != 0 {
            // Same-slot events from a later rotation must leave the near
            // wheel (its cycle reconstruction assumes delta < 256), so
            // the slot always drains completely.
            let slot = &mut self.near[s];
            for c in slot.drain(..) {
                if c.done_at == e {
                    out.push(c);
                } else {
                    self.rehome.push(c);
                }
            }
            self.near_occ[s >> 6] &= !(1u64 << (s & 63));
            let mut rehome = std::mem::take(&mut self.rehome);
            for c in rehome.drain(..) {
                self.place(c);
            }
            self.rehome = rehome;
        }

        let j = ((e >> FAR1_SHIFT) & FAR_MASK) as usize;
        if self.far1_occ & (1u64 << j) != 0 {
            extract_matching(&mut self.far1[j], e, out);
            if self.far1[j].is_empty() {
                self.far1_occ &= !(1u64 << j);
            }
        }

        let j = ((e >> FAR2_SHIFT) & FAR_MASK) as usize;
        if self.far2_occ & (1u64 << j) != 0 {
            extract_matching(&mut self.far2[j], e, out);
            if self.far2[j].is_empty() {
                self.far2_occ &= !(1u64 << j);
            }
        }

        extract_matching(&mut self.overflow, e, out);
        self.len -= out.len() - before;
    }

    /// Recomputes the exact earliest pending `done_at` across all
    /// levels. Near events reconstruct from the occupancy bitmap alone;
    /// far levels min-scan their (few, usually zero) occupied slots.
    // rop-lint: hot
    fn recompute_earliest(&mut self) {
        let mut best = Cycle::MAX;
        for c in &self.past {
            best = best.min(c.done_at);
        }
        if let Some(s) = self.near_scan() {
            let start = (self.clock & NEAR_MASK) as usize;
            let offset = (s + NEAR_SLOTS - start) & (NEAR_SLOTS - 1);
            best = best.min(self.clock + offset as u64);
        }
        let mut occ = self.far1_occ;
        while occ != 0 {
            let j = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            for c in &self.far1[j] {
                best = best.min(c.done_at);
            }
        }
        let mut occ = self.far2_occ;
        while occ != 0 {
            let j = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            for c in &self.far2[j] {
                best = best.min(c.done_at);
            }
        }
        for c in &self.overflow {
            best = best.min(c.done_at);
        }
        self.earliest = best;
    }

    /// First occupied near slot at or circularly after the clock's slot.
    // rop-lint: hot
    fn near_scan(&self) -> Option<usize> {
        let start = (self.clock & NEAR_MASK) as usize;
        let (sw, sb) = (start >> 6, start & 63);
        let head = self.near_occ[sw] & (!0u64 << sb);
        if head != 0 {
            return Some((sw << 6) + head.trailing_zeros() as usize);
        }
        for i in 1..self.near_occ.len() {
            let w = (sw + i) & (self.near_occ.len() - 1);
            if self.near_occ[w] != 0 {
                return Some((w << 6) + self.near_occ[w].trailing_zeros() as usize);
            }
        }
        let tail = self.near_occ[sw] & !(!0u64 << sb);
        if tail != 0 {
            return Some((sw << 6) + tail.trailing_zeros() as usize);
        }
        None
    }
}

/// Swap-removes every event with `done_at == e` from `v` into `out`.
// rop-lint: hot
fn extract_matching(v: &mut Vec<Completion>, e: Cycle, out: &mut Vec<Completion>) {
    let mut i = 0;
    while i < v.len() {
        if v[i].done_at == e {
            out.push(v.swap_remove(i));
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn c(done_at: Cycle, id: u64) -> Completion {
        Completion {
            id,
            core: (id % 4) as usize,
            done_at,
            from_sram: id.is_multiple_of(3),
        }
    }

    /// The old engine's heap ordering: earliest `done_at` first, then id.
    #[derive(Debug)]
    struct HeapEv(Completion);

    impl PartialEq for HeapEv {
        fn eq(&self, other: &Self) -> bool {
            (self.0.done_at, self.0.id) == (other.0.done_at, other.0.id)
        }
    }
    impl Eq for HeapEv {}
    impl PartialOrd for HeapEv {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapEv {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.0.done_at, self.0.id).cmp(&(other.0.done_at, other.0.id))
        }
    }

    /// Drains `heap` exactly like the old engine did: pop while the head
    /// is due.
    fn heap_pop_due(heap: &mut BinaryHeap<Reverse<HeapEv>>, now: Cycle, out: &mut Vec<Completion>) {
        while let Some(Reverse(head)) = heap.peek() {
            if head.0.done_at > now {
                break;
            }
            let Some(Reverse(HeapEv(c))) = heap.pop() else {
                unreachable!()
            };
            out.push(c);
        }
    }

    #[test]
    fn pops_in_done_at_then_id_order() {
        let mut w = TimingWheel::new();
        for &(t, id) in &[(5u64, 3u64), (5, 1), (2, 9), (5, 2), (700, 4), (2, 0)] {
            w.push(c(t, id));
        }
        let mut out = Vec::new();
        w.pop_due(10, &mut out);
        let got: Vec<_> = out.iter().map(|c| (c.done_at, c.id)).collect();
        assert_eq!(got, [(2, 0), (2, 9), (5, 1), (5, 2), (5, 3)]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.peek_earliest(), Some(700));
        out.clear();
        w.pop_due(700, &mut out);
        assert_eq!(out.len(), 1);
        assert!(w.is_empty());
        assert_eq!(w.peek_earliest(), None);
    }

    #[test]
    fn far_levels_and_overflow_round_trip() {
        let mut w = TimingWheel::new();
        // One event per level: near, far1, far2, overflow.
        let events = [
            (10u64, 0u64),
            (300, 1),
            (20_000, 2),
            (2_000_000, 3),
            (2_000_000, 4),
        ];
        for &(t, id) in &events {
            w.push(c(t, id));
        }
        assert_eq!(w.peek_earliest(), Some(10));
        let mut out = Vec::new();
        w.pop_due(3_000_000, &mut out);
        let got: Vec<_> = out.iter().map(|c| (c.done_at, c.id)).collect();
        assert_eq!(
            got,
            [
                (10, 0),
                (300, 1),
                (20_000, 2),
                (2_000_000, 3),
                (2_000_000, 4)
            ]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn near_slot_collision_across_rotations() {
        let mut w = TimingWheel::new();
        w.push(c(100, 0));
        // Advance so a later push lands in the same near slot (356 ≡ 100
        // mod 256) while 100 is still pending.
        w.pop_due(90, &mut Vec::new());
        assert_eq!(w.peek_earliest(), Some(100));
        w.push(c(356, 1));
        let mut out = Vec::new();
        w.pop_due(100, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].done_at, 100);
        // The rotation-mate was re-homed, not lost or delivered early.
        assert_eq!(w.len(), 1);
        assert_eq!(w.peek_earliest(), Some(356));
        out.clear();
        w.pop_due(356, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 1);
    }

    #[test]
    fn late_pushes_behind_the_clock_still_deliver() {
        let mut w = TimingWheel::new();
        w.pop_due(1000, &mut Vec::new());
        w.push(c(500, 7));
        assert_eq!(w.peek_earliest(), Some(500));
        let mut out = Vec::new();
        w.pop_due(1000, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 7);
        assert!(w.is_empty());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// An interleaved schedule step: push an event at `now + delta`,
        /// or advance `now` and pop everything due.
        #[derive(Debug, Clone)]
        enum Step {
            Push { delta: u64, id_salt: u64 },
            Advance { by: u64 },
        }

        fn step() -> impl Strategy<Value = Step> {
            // Deltas span all wheel levels, biased toward the near
            // wheel like real completion traffic (repeated branches
            // stand in for weights — the vendored proptest's Union is
            // uniform); id_salt creates same-cycle ties.
            let delta = prop_oneof![
                0u64..64,
                0u64..64,
                0u64..64,
                0u64..512,
                0u64..512,
                0u64..40_000,
                0u64..3_000_000,
            ];
            let advance = prop_oneof![
                1u64..128,
                1u64..128,
                1u64..128,
                1u64..100_000,
                1u64..2_000_000,
            ];
            prop_oneof![
                (delta, 0u64..1000).prop_map(|(delta, id_salt)| Step::Push { delta, id_salt }),
                advance.prop_map(|by| Step::Advance { by }),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// For arbitrary interleaved schedules — same-cycle ties,
            /// all wheel levels, long jumps — the wheel pops exactly
            /// the sequence the old binary heap popped.
            #[test]
            fn wheel_matches_heap_pop_order(steps in proptest::collection::vec(step(), 1..200)) {
                let mut wheel = TimingWheel::new();
                let mut heap: BinaryHeap<Reverse<HeapEv>> = BinaryHeap::new();
                let mut now = 0u64;
                let mut next_id = 0u64;
                let mut wheel_out = Vec::new();
                let mut heap_out = Vec::new();
                for s in &steps {
                    match *s {
                        Step::Push { delta, id_salt } => {
                            // Bias ids so arrival order and id order
                            // disagree sometimes.
                            let id = (next_id % 7) * 1000 + id_salt + next_id;
                            next_id += 1;
                            let ev = c(now + delta, id);
                            wheel.push(ev);
                            heap.push(Reverse(HeapEv(ev)));
                        }
                        Step::Advance { by } => {
                            now += by;
                            wheel.pop_due(now, &mut wheel_out);
                            heap_pop_due(&mut heap, now, &mut heap_out);
                        }
                    }
                    prop_assert_eq!(wheel.len(), heap.len());
                    prop_assert_eq!(
                        wheel.peek_earliest(),
                        heap.peek().map(|Reverse(h)| h.0.done_at)
                    );
                }
                // Drain whatever is left.
                now += 4_000_000;
                wheel.pop_due(now, &mut wheel_out);
                heap_pop_due(&mut heap, now, &mut heap_out);
                prop_assert_eq!(&wheel_out, &heap_out);
                prop_assert!(wheel.is_empty());
            }
        }
    }
}
