//! §V-C multiprogram comparison: Figure 10 (normalised weighted speedup
//! of Baseline / Baseline-RP / ROP over WL1–WL6) and Figure 11
//! (normalised energy).

use rop_stats::{geometric_mean, normalize_to, TableBuilder};
use rop_trace::{Benchmark, WorkloadMix, ALL_BENCHMARKS, WORKLOAD_MIXES};

use crate::config::{SystemConfig, SystemKind};
use crate::metrics::RunMetrics;
use crate::runner::{LocalExecutor, RunSpec, SweepExecutor, SweepJob};

/// The ROP buffer size used in the multicore experiments (paper default).
pub const ROP_BUFFER: usize = 64;

/// Alone-IPC table: IPC of each benchmark running alone on the baseline
/// 4-rank machine with the given LLC, the denominator of Equation 4.
#[derive(Debug, Clone)]
pub struct AloneIpcs {
    ipcs: Vec<(Benchmark, f64)>,
}

impl AloneIpcs {
    /// Measures alone-IPCs for every benchmark (parallelised).
    pub fn measure(llc_mib: usize, spec: RunSpec) -> Self {
        Self::measure_with(&ALL_BENCHMARKS, llc_mib, spec, &LocalExecutor)
    }

    /// The declarative job set behind [`AloneIpcs::measure_with`]:
    /// each benchmark alone on the baseline 4-rank machine.
    pub fn jobs(benchmarks: &[Benchmark], llc_mib: usize, spec: RunSpec) -> Vec<SweepJob> {
        benchmarks
            .iter()
            .map(|&b| {
                let cfg = SystemConfig {
                    benchmarks: vec![b],
                    kind: SystemKind::Baseline,
                    llc: rop_cache::CacheConfig::llc_mib(llc_mib),
                    core: rop_cpu::CoreConfig::default_ooo(),
                    ranks: 4,
                    seed: spec.seed,
                    ctrl_override: None,
                    open_loop: None,
                };
                SweepJob::custom(format!("alone/llc{llc_mib}/{}", b.name()), cfg, spec)
            })
            .collect()
    }

    /// Alone-IPC measurement for a benchmark subset through an
    /// arbitrary executor.
    pub fn measure_with(
        benchmarks: &[Benchmark],
        llc_mib: usize,
        spec: RunSpec,
        exec: &dyn SweepExecutor,
    ) -> Self {
        let metrics = exec.execute(Self::jobs(benchmarks, llc_mib, spec));
        let ipcs = benchmarks
            .iter()
            .zip(&metrics)
            .map(|(&b, m)| (b, m.ipc()))
            .collect();
        AloneIpcs { ipcs }
    }

    /// Alone-IPC of one benchmark.
    pub fn get(&self, b: Benchmark) -> f64 {
        self.ipcs
            .iter()
            .find(|(x, _)| *x == b)
            .map(|&(_, ipc)| ipc)
            .expect("all benchmarks measured")
    }

    /// Alone-IPCs for a mix, in program order.
    pub fn for_mix(&self, mix: &WorkloadMix) -> Vec<f64> {
        mix.programs.iter().map(|&b| self.get(b)).collect()
    }
}

/// Per-mix multicore comparison.
#[derive(Debug, Clone)]
pub struct MulticoreRow {
    /// Mix name (WL1–WL6).
    pub mix: &'static str,
    /// Intensive programs in the mix.
    pub intensive_count: usize,
    /// Baseline metrics.
    pub baseline: RunMetrics,
    /// Baseline-RP metrics.
    pub baseline_rp: RunMetrics,
    /// ROP metrics.
    pub rop: RunMetrics,
    /// Weighted speedups (Eq. 4) for the three systems.
    pub ws: [f64; 3],
}

/// Result of the multicore sweep at one LLC size.
#[derive(Debug, Clone)]
pub struct MulticoreResult {
    /// LLC size in MiB.
    pub llc_mib: usize,
    /// One row per mix.
    pub rows: Vec<MulticoreRow>,
}

/// Runs Baseline / Baseline-RP / ROP for every mix at `llc_mib`.
pub fn run_multicore(llc_mib: usize, spec: RunSpec) -> MulticoreResult {
    let alone = AloneIpcs::measure(llc_mib, spec);
    run_multicore_with_alone(llc_mib, spec, &alone)
}

/// As [`run_multicore`] but reusing a precomputed alone-IPC table (the
/// LLC sweep shares one per size).
pub fn run_multicore_with_alone(
    llc_mib: usize,
    spec: RunSpec,
    alone: &AloneIpcs,
) -> MulticoreResult {
    run_multicore_on(&WORKLOAD_MIXES, llc_mib, spec, alone, &LocalExecutor)
}

/// The three comparison systems of Figures 10/11.
pub const MULTICORE_SYSTEMS: [SystemKind; 3] = [
    SystemKind::Baseline,
    SystemKind::BaselineRp,
    SystemKind::Rop { buffer: ROP_BUFFER },
];

/// The declarative job set behind [`run_multicore_on`], in row order:
/// per mix, one job per [`MULTICORE_SYSTEMS`] entry.
pub fn multicore_jobs(mixes: &[WorkloadMix], llc_mib: usize, spec: RunSpec) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    for &mix in mixes {
        for &k in &MULTICORE_SYSTEMS {
            jobs.push(SweepJob::multi(mix, k, llc_mib, spec));
        }
    }
    jobs
}

/// The multicore comparison for a mix subset through an arbitrary
/// executor (figures assemble from whatever metrics it returns).
pub fn run_multicore_on(
    mixes: &[WorkloadMix],
    llc_mib: usize,
    spec: RunSpec,
    alone: &AloneIpcs,
    exec: &dyn SweepExecutor,
) -> MulticoreResult {
    let metrics = exec.execute(multicore_jobs(mixes, llc_mib, spec));
    let rows = mixes
        .iter()
        .enumerate()
        .map(|(i, mix)| {
            let chunk = &metrics[i * 3..(i + 1) * 3];
            let alone_ipcs = alone.for_mix(mix);
            let ws = [
                chunk[0].weighted_speedup(&alone_ipcs),
                chunk[1].weighted_speedup(&alone_ipcs),
                chunk[2].weighted_speedup(&alone_ipcs),
            ];
            MulticoreRow {
                mix: mix.name,
                intensive_count: mix.intensive_count(),
                baseline: chunk[0].clone(),
                baseline_rp: chunk[1].clone(),
                rop: chunk[2].clone(),
                ws,
            }
        })
        .collect();
    MulticoreResult { llc_mib, rows }
}

impl MulticoreResult {
    /// Figure 10: weighted speedup normalised to Baseline.
    pub fn render_fig10(&self) -> String {
        let mut t = TableBuilder::new(format!(
            "Figure 10 — normalised weighted speedup (4-core, {} MiB LLC)",
            self.llc_mib
        ))
        .header(["mix", "#intensive", "Baseline", "Baseline-RP", "ROP"]);
        let mut rop_norm = Vec::new();
        for r in &self.rows {
            let base = r.ws[0];
            rop_norm.push(normalize_to(r.ws[2], base));
            t.row([
                r.mix.to_string(),
                r.intensive_count.to_string(),
                "1.000".to_string(),
                format!("{:.3}", normalize_to(r.ws[1], base)),
                format!("{:.3}", normalize_to(r.ws[2], base)),
            ]);
        }
        t.row([
            "geomean (ROP/Baseline)".to_string(),
            String::new(),
            String::new(),
            String::new(),
            format!("{:.3}", geometric_mean(&rop_norm)),
        ]);
        t.render()
    }

    /// Figure 11: energy normalised to Baseline.
    pub fn render_fig11(&self) -> String {
        let mut t = TableBuilder::new(format!(
            "Figure 11 — normalised energy (4-core, {} MiB LLC)",
            self.llc_mib
        ))
        .header(["mix", "Baseline", "Baseline-RP", "ROP"]);
        let mut rop_norm = Vec::new();
        for r in &self.rows {
            let base = r.baseline.energy.total_nj();
            let rp = normalize_to(r.baseline_rp.energy.total_nj(), base);
            let rop = normalize_to(r.rop.energy.total_nj(), base);
            rop_norm.push(rop);
            t.row([
                r.mix.to_string(),
                "1.000".to_string(),
                format!("{rp:.3}"),
                format!("{rop:.3}"),
            ]);
        }
        t.row([
            "geomean (ROP/Baseline)".to_string(),
            String::new(),
            String::new(),
            format!("{:.3}", geometric_mean(&rop_norm)),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alone_ipcs_cover_all_benchmarks() {
        let spec = RunSpec {
            instructions: 30_000,
            max_cycles: 20_000_000,
            seed: 5,
        };
        let alone = AloneIpcs::measure(4, spec);
        for b in ALL_BENCHMARKS {
            assert!(alone.get(b) > 0.0, "{} has zero alone IPC", b.name());
        }
        let mix = WORKLOAD_MIXES[0];
        assert_eq!(alone.for_mix(&mix).len(), 4);
    }
}
