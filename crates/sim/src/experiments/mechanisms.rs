//! Refresh-mechanism head-to-head: the zoo figures.
//!
//! Runs the whole [`SystemKind::MECHANISMS`] roster — auto-refresh
//! all-bank, DARP, SARP and RAIDR — on the same benchmarks and renders
//! four figures: IPC (normalised to all-bank), refresh-blocked read
//! cycles, memory-energy proxy and the per-mechanism refresh counters
//! (issued / skipped / pulled-in). Each figure is produced twice: once
//! on the stock DDR4 timing and once on a *refresh-heavy* shape with
//! tREFI divided by [`REFRESH_HEAVY_DIVISOR`] — the high-density regime
//! where refresh mechanisms actually separate (the stock 64 ms interval
//! hides most of the difference, exactly as the ROP paper's motivation
//! section argues).

use rop_stats::{normalize_to, TableBuilder};
use rop_trace::Benchmark;

use crate::config::{SystemConfig, SystemKind};
use crate::metrics::RunMetrics;
use crate::runner::{LocalExecutor, RunSpec, SweepExecutor, SweepJob};

/// Benchmarks in the head-to-head: the two streaming refresh-sensitive
/// ones plus a phase-structured one (DARP's idle-window fodder).
pub const MECHANISM_BENCHMARKS: [Benchmark; 3] =
    [Benchmark::Libquantum, Benchmark::Lbm, Benchmark::Gcc];

/// tREFI divisor of the refresh-heavy shape (stands in for the 8×-density
/// future-DRAM scaling the paper projects).
pub const REFRESH_HEAVY_DIVISOR: u64 = 8;

/// The two timing shapes every mechanism runs on.
const SHAPES: [(&str, u64); 2] = [("stock", 1), ("refresh-heavy", REFRESH_HEAVY_DIVISOR)];

/// One benchmark's runs across the mechanism roster, in
/// [`SystemKind::MECHANISMS`] order.
#[derive(Debug, Clone)]
pub struct MechanismRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// One entry per [`SystemKind::MECHANISMS`] element.
    pub per_mechanism: Vec<RunMetrics>,
}

/// All rows of one timing shape.
#[derive(Debug, Clone)]
pub struct MechanismShape {
    /// Shape label (`stock` or `refresh-heavy`).
    pub shape: &'static str,
    /// One row per benchmark.
    pub rows: Vec<MechanismRow>,
}

/// Result of the mechanism head-to-head.
#[derive(Debug, Clone)]
pub struct MechanismsResult {
    /// One entry per element of `SHAPES`, in order.
    pub shapes: Vec<MechanismShape>,
}

/// Builds the fully-resolved config for one (shape, benchmark,
/// mechanism) cell. The tREFI override is applied through the
/// controller-override hook so the job's content hash captures it; the
/// RAIDR bin period is re-derived from the shrunken tREFI to keep the
/// config valid (bin periods must stay multiples of tREFI).
fn mechanism_config(kind: SystemKind, divisor: u64, b: Benchmark, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::single_core(b, kind, seed);
    if divisor > 1 {
        let mut ctrl = cfg.kind.memctrl_config(cfg.ranks, cfg.seed);
        ctrl.dram.timing.t_refi_base /= divisor;
        // Budgets expressed in tREFI shrink with it (the postpone
        // allowance stays within JEDEC's 8 x tREFI, the grace under one).
        ctrl.max_refresh_postpone /= divisor;
        ctrl.prefetch_grace /= divisor;
        if let rop_memctrl::MechanismKind::Raidr { bin_period, .. } = &mut ctrl.mechanism {
            *bin_period = 2 * ctrl.dram.timing.t_refi();
        }
        cfg.ctrl_override = Some(ctrl);
    }
    cfg
}

/// The declarative job set behind [`run_mechanisms_on`], in result
/// order: per shape, per benchmark, one job per
/// [`SystemKind::MECHANISMS`] element.
pub fn mechanism_jobs(benchmarks: &[Benchmark], spec: RunSpec) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    for &(shape, divisor) in &SHAPES {
        for &b in benchmarks {
            for &kind in &SystemKind::MECHANISMS {
                jobs.push(SweepJob::custom(
                    format!("mech/{shape}/{}/{}", b.name(), kind.label()),
                    mechanism_config(kind, divisor, b, spec.seed),
                    spec,
                ));
            }
        }
    }
    jobs
}

/// Runs the head-to-head on the default benchmark set.
pub fn run_mechanisms(spec: RunSpec) -> MechanismsResult {
    run_mechanisms_on(&MECHANISM_BENCHMARKS, spec)
}

/// Same sweep on a chosen benchmark subset (used by tests and CI smoke).
pub fn run_mechanisms_on(benchmarks: &[Benchmark], spec: RunSpec) -> MechanismsResult {
    run_mechanisms_with(benchmarks, spec, &LocalExecutor)
}

/// The head-to-head through an arbitrary executor (fresh runs locally,
/// store-backed in the sweep harness).
pub fn run_mechanisms_with(
    benchmarks: &[Benchmark],
    spec: RunSpec,
    exec: &dyn SweepExecutor,
) -> MechanismsResult {
    let metrics = exec.execute(mechanism_jobs(benchmarks, spec));
    let per_mech = SystemKind::MECHANISMS.len();
    let per_shape = benchmarks.len() * per_mech;
    let shapes = SHAPES
        .iter()
        .enumerate()
        .map(|(s, &(shape, _))| MechanismShape {
            shape,
            rows: benchmarks
                .iter()
                .enumerate()
                .map(|(i, b)| MechanismRow {
                    benchmark: b.name(),
                    per_mechanism: metrics
                        [s * per_shape + i * per_mech..s * per_shape + (i + 1) * per_mech]
                        .to_vec(),
                })
                .collect(),
        })
        .collect();
    MechanismsResult { shapes }
}

/// Column headers for the roster, `AllBank` first.
fn mechanism_headers() -> Vec<String> {
    SystemKind::MECHANISMS.iter().map(|k| k.label()).collect()
}

impl MechanismsResult {
    /// Figure M1: IPC normalised to the all-bank baseline, per shape.
    pub fn render_ipc(&self) -> String {
        let mut header = vec!["shape/benchmark".to_string()];
        header.extend(mechanism_headers());
        let mut t = TableBuilder::new(
            "Figure M1 — mechanism head-to-head: IPC normalised to all-bank refresh",
        )
        .header(header);
        for shape in &self.shapes {
            for r in &shape.rows {
                let base = r.per_mechanism[0].ipc();
                let mut cells = vec![format!("{}/{}", shape.shape, r.benchmark)];
                for m in &r.per_mechanism {
                    cells.push(format!("{:.3}", normalize_to(m.ipc(), base)));
                }
                t.row(cells);
            }
        }
        t.render()
    }

    /// Figure M2: refresh-blocked read cycles (the cycles demand reads
    /// sat behind a frozen refresh scope), raw per run.
    pub fn render_blocked(&self) -> String {
        let mut header = vec!["shape/benchmark".to_string()];
        header.extend(mechanism_headers());
        let mut t =
            TableBuilder::new("Figure M2 — mechanism head-to-head: refresh-blocked read cycles")
                .header(header);
        for shape in &self.shapes {
            for r in &shape.rows {
                let mut cells = vec![format!("{}/{}", shape.shape, r.benchmark)];
                for m in &r.per_mechanism {
                    cells.push(format!("{}", m.refresh_blocked_cycles));
                }
                t.row(cells);
            }
        }
        t.render()
    }

    /// Figure M3: memory-energy proxy normalised to all-bank.
    pub fn render_energy(&self) -> String {
        let mut header = vec!["shape/benchmark".to_string()];
        header.extend(mechanism_headers());
        let mut t = TableBuilder::new(
            "Figure M3 — mechanism head-to-head: memory energy normalised to all-bank",
        )
        .header(header);
        for shape in &self.shapes {
            for r in &shape.rows {
                let base = r.per_mechanism[0].energy.total_nj();
                let mut cells = vec![format!("{}/{}", shape.shape, r.benchmark)];
                for m in &r.per_mechanism {
                    cells.push(format!("{:.3}", normalize_to(m.energy.total_nj(), base)));
                }
                t.row(cells);
            }
        }
        t.render()
    }

    /// Figure M4: refresh activity — issued refreshes plus each
    /// mechanism's signature counter (RAIDR rounds skipped, DARP
    /// refreshes pulled in early).
    pub fn render_refresh_counts(&self) -> String {
        let mut header = vec!["shape/benchmark".to_string()];
        for k in &SystemKind::MECHANISMS {
            header.push(format!("{} refs", k.label()));
        }
        header.push("RAIDR skipped".to_string());
        header.push("DARP pulled-in".to_string());
        let mut t = TableBuilder::new(
            "Figure M4 — mechanism head-to-head: refresh counts and signature counters",
        )
        .header(header);
        for shape in &self.shapes {
            for r in &shape.rows {
                let mut cells = vec![format!("{}/{}", shape.shape, r.benchmark)];
                for m in &r.per_mechanism {
                    cells.push(format!("{}", m.refreshes));
                }
                let skipped: u64 = r.per_mechanism.iter().map(|m| m.refreshes_skipped).sum();
                let pulled: u64 = r.per_mechanism.iter().map(|m| m.refreshes_pulled_in).sum();
                cells.push(format!("{skipped}"));
                cells.push(format!("{pulled}"));
                t.row(cells);
            }
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_order_matches_result_assembly() {
        let spec = RunSpec::quick();
        let jobs = mechanism_jobs(&MECHANISM_BENCHMARKS, spec);
        assert_eq!(
            jobs.len(),
            SHAPES.len() * MECHANISM_BENCHMARKS.len() * SystemKind::MECHANISMS.len()
        );
        assert_eq!(jobs[0].label, "mech/stock/libquantum/Baseline");
        assert!(jobs.last().unwrap().label.starts_with("mech/refresh-heavy"));
        // Every job's config validates (the RAIDR bin re-derivation on
        // the refresh-heavy shape is what this guards).
        for j in &jobs {
            j.config.validate().expect("mechanism job config valid");
        }
    }

    #[test]
    fn head_to_head_separates_mechanisms_under_pressure() {
        // Small quota, one benchmark: enough refreshes on the heavy
        // shape for the ordering DARP/SARP < all-bank to emerge.
        let spec = RunSpec {
            instructions: 200_000,
            max_cycles: 40_000_000,
            seed: 42,
        };
        let res = run_mechanisms_on(&[Benchmark::Libquantum], spec);
        let heavy = &res.shapes[1];
        assert_eq!(heavy.shape, "refresh-heavy");
        let row = &heavy.rows[0];
        let blocked: Vec<u64> = row
            .per_mechanism
            .iter()
            .map(|m| m.refresh_blocked_cycles)
            .collect();
        // MECHANISMS order: Baseline(all-bank), DARP, SARP, RAIDR.
        assert!(
            blocked[1] < blocked[0],
            "DARP must shrink blocking on the heavy shape ({blocked:?})"
        );
        assert!(
            blocked[2] < blocked[0],
            "SARP must shrink blocking on the heavy shape ({blocked:?})"
        );
        // The figures render and carry the roster labels.
        assert!(res.render_ipc().contains("DARP"));
        assert!(res.render_blocked().contains("refresh-heavy/libquantum"));
        assert!(res.render_energy().contains("RAIDR"));
        assert!(res.render_refresh_counts().contains("DARP pulled-in"));
    }
}
