//! §V-C3 LLC-size sensitivity: Figure 12 (weighted speedup vs. LLC),
//! Figure 13 (energy vs. LLC) and Figure 14 (SRAM hit rate vs. LLC).

use rop_stats::{geometric_mean, normalize_to, TableBuilder};
use rop_trace::{Benchmark, WorkloadMix, ALL_BENCHMARKS, WORKLOAD_MIXES};

use crate::experiments::multicore::{run_multicore_on, AloneIpcs, MulticoreResult};
use crate::runner::{LocalExecutor, RunSpec, SweepExecutor};

/// LLC sizes swept (MiB), per the paper's sensitivity study.
pub const LLC_SIZES_MIB: [usize; 3] = [1, 2, 4];

/// Result of the LLC sweep: one [`MulticoreResult`] per size.
#[derive(Debug, Clone)]
pub struct LlcSweepResult {
    /// Per-size results, in [`LLC_SIZES_MIB`] order.
    pub per_size: Vec<MulticoreResult>,
}

/// Runs the full multicore comparison at each LLC size.
pub fn run_llc_sweep(spec: RunSpec) -> LlcSweepResult {
    run_llc_sweep_with(&LLC_SIZES_MIB, &WORKLOAD_MIXES, spec, &LocalExecutor)
}

/// The LLC sweep over chosen sizes and mixes through an arbitrary
/// executor. Alone-IPC denominators are measured (per size) only for
/// benchmarks appearing in `mixes`, in [`ALL_BENCHMARKS`] order.
pub fn run_llc_sweep_with(
    sizes: &[usize],
    mixes: &[WorkloadMix],
    spec: RunSpec,
    exec: &dyn SweepExecutor,
) -> LlcSweepResult {
    let needed: Vec<Benchmark> = ALL_BENCHMARKS
        .into_iter()
        .filter(|b| mixes.iter().any(|m| m.programs.contains(b)))
        .collect();
    let per_size = sizes
        .iter()
        .map(|&mib| {
            let alone = AloneIpcs::measure_with(&needed, mib, spec, exec);
            run_multicore_on(mixes, mib, spec, &alone, exec)
        })
        .collect();
    LlcSweepResult { per_size }
}

impl LlcSweepResult {
    /// Header row: `mix` plus one column per swept LLC size.
    fn size_header(&self) -> Vec<String> {
        std::iter::once("mix".to_string())
            .chain(self.per_size.iter().map(|r| format!("{}MB", r.llc_mib)))
            .collect()
    }

    /// Figure 12: ROP's normalised weighted speedup per LLC size.
    pub fn render_fig12(&self) -> String {
        let mut t = TableBuilder::new(
            "Figure 12 — ROP weighted speedup normalised to Baseline, by LLC size",
        )
        .header(self.size_header());
        let mixes: Vec<&str> = self.per_size[0].rows.iter().map(|r| r.mix).collect();
        for (i, mix) in mixes.iter().enumerate() {
            let mut cells = vec![mix.to_string()];
            for res in &self.per_size {
                let r = &res.rows[i];
                cells.push(format!("{:.3}", normalize_to(r.ws[2], r.ws[0])));
            }
            t.row(cells);
        }
        let mut cells = vec!["geomean".to_string()];
        for res in &self.per_size {
            let norms: Vec<f64> = res
                .rows
                .iter()
                .map(|r| normalize_to(r.ws[2], r.ws[0]))
                .collect();
            cells.push(format!("{:.3}", geometric_mean(&norms)));
        }
        t.row(cells);
        t.render()
    }

    /// Figure 13: ROP's normalised energy per LLC size.
    pub fn render_fig13(&self) -> String {
        let mut t = TableBuilder::new("Figure 13 — ROP energy normalised to Baseline, by LLC size")
            .header(self.size_header());
        let mixes: Vec<&str> = self.per_size[0].rows.iter().map(|r| r.mix).collect();
        for (i, mix) in mixes.iter().enumerate() {
            let mut cells = vec![mix.to_string()];
            for res in &self.per_size {
                let r = &res.rows[i];
                cells.push(format!(
                    "{:.3}",
                    normalize_to(r.rop.energy.total_nj(), r.baseline.energy.total_nj())
                ));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Figure 14: SRAM buffer hit rate per LLC size (ROP system).
    pub fn render_fig14(&self) -> String {
        let mut t = TableBuilder::new("Figure 14 — SRAM buffer hit rate, by LLC size (ROP-64)")
            .header(self.size_header());
        let mixes: Vec<&str> = self.per_size[0].rows.iter().map(|r| r.mix).collect();
        for (i, mix) in mixes.iter().enumerate() {
            let mut cells = vec![mix.to_string()];
            for res in &self.per_size {
                cells.push(format!("{:.2}", res.rows[i].rop.sram_hit_rate));
            }
            t.row(cells);
        }
        t.render()
    }
}
