//! §V-C3 LLC-size sensitivity: Figure 12 (weighted speedup vs. LLC),
//! Figure 13 (energy vs. LLC) and Figure 14 (SRAM hit rate vs. LLC).

use rop_stats::{geometric_mean, normalize_to, TableBuilder};

use crate::experiments::multicore::{run_multicore_with_alone, AloneIpcs, MulticoreResult};
use crate::runner::RunSpec;

/// LLC sizes swept (MiB), per the paper's sensitivity study.
pub const LLC_SIZES_MIB: [usize; 3] = [1, 2, 4];

/// Result of the LLC sweep: one [`MulticoreResult`] per size.
#[derive(Debug, Clone)]
pub struct LlcSweepResult {
    /// Per-size results, in [`LLC_SIZES_MIB`] order.
    pub per_size: Vec<MulticoreResult>,
}

/// Runs the full multicore comparison at each LLC size.
pub fn run_llc_sweep(spec: RunSpec) -> LlcSweepResult {
    let per_size = LLC_SIZES_MIB
        .iter()
        .map(|&mib| {
            let alone = AloneIpcs::measure(mib, spec);
            run_multicore_with_alone(mib, spec, &alone)
        })
        .collect();
    LlcSweepResult { per_size }
}

impl LlcSweepResult {
    /// Figure 12: ROP's normalised weighted speedup per LLC size.
    pub fn render_fig12(&self) -> String {
        let mut t = TableBuilder::new(
            "Figure 12 — ROP weighted speedup normalised to Baseline, by LLC size",
        )
        .header(["mix", "1MB", "2MB", "4MB"]);
        let mixes: Vec<&str> = self.per_size[0].rows.iter().map(|r| r.mix).collect();
        for (i, mix) in mixes.iter().enumerate() {
            let mut cells = vec![mix.to_string()];
            for res in &self.per_size {
                let r = &res.rows[i];
                cells.push(format!("{:.3}", normalize_to(r.ws[2], r.ws[0])));
            }
            t.row(cells);
        }
        let mut cells = vec!["geomean".to_string()];
        for res in &self.per_size {
            let norms: Vec<f64> = res
                .rows
                .iter()
                .map(|r| normalize_to(r.ws[2], r.ws[0]))
                .collect();
            cells.push(format!("{:.3}", geometric_mean(&norms)));
        }
        t.row(cells);
        t.render()
    }

    /// Figure 13: ROP's normalised energy per LLC size.
    pub fn render_fig13(&self) -> String {
        let mut t = TableBuilder::new("Figure 13 — ROP energy normalised to Baseline, by LLC size")
            .header(["mix", "1MB", "2MB", "4MB"]);
        let mixes: Vec<&str> = self.per_size[0].rows.iter().map(|r| r.mix).collect();
        for (i, mix) in mixes.iter().enumerate() {
            let mut cells = vec![mix.to_string()];
            for res in &self.per_size {
                let r = &res.rows[i];
                cells.push(format!(
                    "{:.3}",
                    normalize_to(r.rop.energy.total_nj(), r.baseline.energy.total_nj())
                ));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Figure 14: SRAM buffer hit rate per LLC size (ROP system).
    pub fn render_fig14(&self) -> String {
        let mut t = TableBuilder::new("Figure 14 — SRAM buffer hit rate, by LLC size (ROP-64)")
            .header(["mix", "1MB", "2MB", "4MB"]);
        let mixes: Vec<&str> = self.per_size[0].rows.iter().map(|r| r.mix).collect();
        for (i, mix) in mixes.iter().enumerate() {
            let mut cells = vec![mix.to_string()];
            for res in &self.per_size {
                cells.push(format!("{:.2}", res.rows[i].rop.sram_hit_rate));
            }
            t.row(cells);
        }
        t.render()
    }
}
