//! Name-addressed experiment driving.
//!
//! The single place mapping experiment *names* (`single`, `multi`,
//! `llc`, the ablations, `all`) to the job sets and figure renderers of
//! the experiment modules. `rop-sweep run` feeds it a persistent
//! store-backed executor, `rop-sweep status` and the static linter feed
//! it the dry [`PlanExecutor`], and both see exactly the same jobs —
//! there is no second enumeration to drift.

use std::collections::HashSet;

use rop_trace::{ALL_BENCHMARKS, WORKLOAD_MIXES};

use crate::experiments::{
    ablate_drain_with, ablate_table_with, ablate_throttle_with, ablate_window_with,
    run_llc_sweep_with, run_mechanisms_with, run_singlecore_with, run_tail_latency_with,
    AblationResult, MECHANISM_BENCHMARKS,
};
use crate::runner::{RunSpec, SweepExecutor, SweepJob};

/// Experiment names `run`/`resume`/`status` accept.
pub const EXPERIMENTS: [&str; 10] = [
    "single",
    "multi",
    "llc",
    "mechanisms",
    "tail-latency",
    "ablate-window",
    "ablate-throttle",
    "ablate-drain",
    "ablate-table",
    "all",
];

/// Hex job id from a job's content hash.
pub fn job_id(job: &SweepJob) -> String {
    format!("{:016x}", job.fingerprint())
}

/// An executor that *enumerates* jobs without running anything: every
/// job returns placeholder metrics and is recorded in `planned`. Used
/// by `rop-sweep status` and the pre-run lint to know a sweep's full
/// job set.
#[derive(Default)]
pub struct PlanExecutor {
    planned: std::cell::RefCell<Vec<SweepJob>>,
}

impl PlanExecutor {
    /// A fresh planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every job enumerated so far, in execution order.
    pub fn into_jobs(self) -> Vec<SweepJob> {
        self.planned.into_inner()
    }
}

impl SweepExecutor for PlanExecutor {
    fn execute(&self, jobs: Vec<SweepJob>) -> Vec<crate::metrics::RunMetrics> {
        let metrics = jobs.iter().map(SweepJob::placeholder_metrics).collect();
        self.planned.borrow_mut().extend(jobs);
        metrics
    }
}

/// Runs the named experiment through `exec`; when `render` is true the
/// assembled figures are returned (a dry [`PlanExecutor`] pass sets it
/// false — placeholder metrics enumerate jobs fine but cannot be
/// summarised).
fn drive_experiment(
    name: &str,
    spec: RunSpec,
    exec: &dyn SweepExecutor,
    render: bool,
) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let single = |out: &mut Vec<String>| {
        let res = run_singlecore_with(&ALL_BENCHMARKS, spec, exec);
        if render {
            out.push(res.render_fig7());
            out.push(res.render_fig8());
            out.push(res.render_fig9());
        }
    };
    let multi = |out: &mut Vec<String>| {
        let res = run_llc_sweep_with(&[4], &WORKLOAD_MIXES, spec, exec);
        if render {
            out.push(res.per_size[0].render_fig10());
            out.push(res.per_size[0].render_fig11());
        }
    };
    let llc = |out: &mut Vec<String>| {
        let res = run_llc_sweep_with(
            &crate::experiments::sensitivity::LLC_SIZES_MIB,
            &WORKLOAD_MIXES,
            spec,
            exec,
        );
        if render {
            out.push(res.render_fig12());
            out.push(res.render_fig13());
            out.push(res.render_fig14());
        }
    };
    let mechanisms = |out: &mut Vec<String>| {
        let res = run_mechanisms_with(&MECHANISM_BENCHMARKS, spec, exec);
        if render {
            out.push(res.render_ipc());
            out.push(res.render_blocked());
            out.push(res.render_energy());
            out.push(res.render_refresh_counts());
        }
    };
    let tail = |out: &mut Vec<String>| {
        let res = run_tail_latency_with(spec, exec);
        if render {
            out.push(res.render_tail());
            out.push(res.render_refresh_tail());
            out.push(res.render_saturation());
        }
    };
    let ablation = |out: &mut Vec<String>, res: AblationResult| {
        if render {
            out.push(res.render());
        }
    };
    match name {
        "single" => single(&mut out),
        "multi" => multi(&mut out),
        "llc" => llc(&mut out),
        "mechanisms" => mechanisms(&mut out),
        "tail-latency" => tail(&mut out),
        "ablate-window" => ablation(&mut out, ablate_window_with(spec, exec)),
        "ablate-throttle" => ablation(&mut out, ablate_throttle_with(spec, exec)),
        "ablate-drain" => ablation(&mut out, ablate_drain_with(spec, exec)),
        "ablate-table" => ablation(&mut out, ablate_table_with(spec, exec)),
        "all" => {
            single(&mut out);
            multi(&mut out);
            llc(&mut out);
            mechanisms(&mut out);
            tail(&mut out);
            ablation(&mut out, ablate_window_with(spec, exec));
            ablation(&mut out, ablate_throttle_with(spec, exec));
            ablation(&mut out, ablate_drain_with(spec, exec));
            ablation(&mut out, ablate_table_with(spec, exec));
        }
        other => {
            return Err(format!(
                "unknown experiment '{other}' (expected one of: {})",
                EXPERIMENTS.join(" ")
            ))
        }
    }
    Ok(out)
}

/// Runs the named experiment through `exec` and returns its rendered
/// figures.
pub fn render_experiment(
    name: &str,
    spec: RunSpec,
    exec: &dyn SweepExecutor,
) -> Result<Vec<String>, String> {
    drive_experiment(name, spec, exec, true)
}

/// The full, id-deduplicated job set an experiment would run, via a dry
/// [`PlanExecutor`] pass — nothing is simulated.
pub fn plan_jobs(name: &str, spec: RunSpec) -> Result<Vec<SweepJob>, String> {
    let plan = PlanExecutor::new();
    drive_experiment(name, spec, &plan, false)?;
    let mut seen = HashSet::new();
    Ok(plan
        .into_jobs()
        .into_iter()
        .filter(|j| seen.insert(job_id(j)))
        .collect())
}

/// The job ids (with labels) an experiment would run.
pub fn plan_experiment(name: &str, spec: RunSpec) -> Result<Vec<(String, String)>, String> {
    Ok(plan_jobs(name, spec)?
        .into_iter()
        .map(|j| (job_id(&j), j.label))
        .collect())
}
