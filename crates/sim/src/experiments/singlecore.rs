//! §V-B single-core comparison: Figure 7 (IPC normalised to baseline for
//! ROP-16/32/64/128 and no-refresh), Figure 8 (normalised energy) and
//! Figure 9 (SRAM buffer hit rate vs. capacity).

use rop_stats::{normalize_to, TableBuilder};
use rop_trace::{Benchmark, ALL_BENCHMARKS};

use crate::config::SystemKind;
use crate::metrics::RunMetrics;
use crate::runner::{LocalExecutor, RunSpec, SweepExecutor, SweepJob};

/// SRAM capacities swept by the paper.
pub const BUFFER_SIZES: [usize; 4] = [16, 32, 64, 128];

/// Per-benchmark single-core comparison.
#[derive(Debug, Clone)]
pub struct SinglecoreRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline metrics.
    pub baseline: RunMetrics,
    /// No-refresh metrics.
    pub no_refresh: RunMetrics,
    /// ROP metrics, one per entry of [`BUFFER_SIZES`].
    pub rop: Vec<RunMetrics>,
}

/// Result of the single-core sweep.
#[derive(Debug, Clone)]
pub struct SinglecoreResult {
    /// One row per benchmark.
    pub rows: Vec<SinglecoreRow>,
}

/// Runs baseline, no-refresh and four ROP sizes for all benchmarks.
pub fn run_singlecore(spec: RunSpec) -> SinglecoreResult {
    run_singlecore_on(&ALL_BENCHMARKS, spec)
}

/// Same sweep on a chosen benchmark subset (used by tests and benches).
pub fn run_singlecore_on(benchmarks: &[Benchmark], spec: RunSpec) -> SinglecoreResult {
    run_singlecore_with(benchmarks, spec, &LocalExecutor)
}

/// The declarative job set behind [`run_singlecore_on`], in row order:
/// per benchmark, baseline, no-refresh, then each [`BUFFER_SIZES`] entry.
pub fn singlecore_jobs(benchmarks: &[Benchmark], spec: RunSpec) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    for &b in benchmarks {
        jobs.push(SweepJob::single("single", b, SystemKind::Baseline, spec));
        jobs.push(SweepJob::single("single", b, SystemKind::NoRefresh, spec));
        for &cap in &BUFFER_SIZES {
            jobs.push(SweepJob::single(
                "single",
                b,
                SystemKind::Rop { buffer: cap },
                spec,
            ));
        }
    }
    jobs
}

/// The single-core sweep through an arbitrary executor: the figures are
/// assembled from whatever metrics the executor returns (fresh runs for
/// [`LocalExecutor`], store-backed results for the sweep harness).
pub fn run_singlecore_with(
    benchmarks: &[Benchmark],
    spec: RunSpec,
    exec: &dyn SweepExecutor,
) -> SinglecoreResult {
    let metrics = exec.execute(singlecore_jobs(benchmarks, spec));
    let per = 2 + BUFFER_SIZES.len();
    let rows = benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let chunk = &metrics[i * per..(i + 1) * per];
            SinglecoreRow {
                name: b.name(),
                baseline: chunk[0].clone(),
                no_refresh: chunk[1].clone(),
                rop: chunk[2..].to_vec(),
            }
        })
        .collect();
    SinglecoreResult { rows }
}

impl SinglecoreResult {
    /// Figure 7: IPC normalised to the baseline.
    pub fn render_fig7(&self) -> String {
        let mut header = vec!["benchmark".to_string(), "Baseline".to_string()];
        header.extend(BUFFER_SIZES.iter().map(|c| format!("ROP-{c}")));
        header.push("No-Refresh".to_string());
        let mut t =
            TableBuilder::new("Figure 7 — single-core IPC normalised to baseline").header(header);
        let mut best_gains = Vec::new();
        for r in &self.rows {
            let base = r.baseline.ipc();
            let mut cells = vec![r.name.to_string(), "1.000".to_string()];
            let mut best = 0.0f64;
            for m in &r.rop {
                let norm = normalize_to(m.ipc(), base);
                best = best.max(norm);
                cells.push(format!("{norm:.3}"));
            }
            cells.push(format!("{:.3}", normalize_to(r.no_refresh.ipc(), base)));
            best_gains.push((best - 1.0) * 100.0);
            t.row(cells);
        }
        let avg = best_gains.iter().sum::<f64>() / best_gains.len().max(1) as f64;
        let max = best_gains.iter().cloned().fold(0.0f64, f64::max);
        t.row([format!("ROP gain: avg {avg:.1}%"), format!("max {max:.1}%")]);
        t.render()
    }

    /// Figure 8: energy normalised to the baseline.
    pub fn render_fig8(&self) -> String {
        let mut header = vec!["benchmark".to_string(), "Baseline".to_string()];
        header.extend(BUFFER_SIZES.iter().map(|c| format!("ROP-{c}")));
        header.push("No-Refresh".to_string());
        let mut t =
            TableBuilder::new("Figure 8 — single-core memory energy normalised to baseline")
                .header(header);
        let mut best_savings = Vec::new();
        for r in &self.rows {
            let base = r.baseline.energy.total_nj();
            let mut cells = vec![r.name.to_string(), "1.000".to_string()];
            let mut best = 1.0f64;
            for m in &r.rop {
                let norm = normalize_to(m.energy.total_nj(), base);
                best = best.min(norm);
                cells.push(format!("{norm:.3}"));
            }
            cells.push(format!(
                "{:.3}",
                normalize_to(r.no_refresh.energy.total_nj(), base)
            ));
            best_savings.push((1.0 - best) * 100.0);
            t.row(cells);
        }
        let avg = best_savings.iter().sum::<f64>() / best_savings.len().max(1) as f64;
        let max = best_savings.iter().cloned().fold(0.0f64, f64::max);
        t.row([
            format!("ROP saving: avg {avg:.1}%"),
            format!("max {max:.1}%"),
        ]);
        t.render()
    }

    /// Figure 9: SRAM buffer hit rates per capacity.
    pub fn render_fig9(&self) -> String {
        let header: Vec<String> = std::iter::once("benchmark".to_string())
            .chain(BUFFER_SIZES.iter().map(|c| format!("ROP-{c}")))
            .collect();
        let mut t =
            TableBuilder::new("Figure 9 — SRAM buffer hit rate (reads arriving during refresh)")
                .header(header);
        for r in &self.rows {
            let mut cells = vec![r.name.to_string()];
            for m in &r.rop {
                cells.push(format!("{:.2}", m.sram_hit_rate));
            }
            t.row(cells);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singlecore_smoke_streaming() {
        // Long enough for ROP training (50 refreshes ≈ 312k cycles) plus
        // a meaningful prefetching stretch.
        let spec = RunSpec {
            instructions: 2_500_000,
            max_cycles: 60_000_000,
            seed: 11,
        };
        let res = run_singlecore_on(&[Benchmark::Libquantum], spec);
        let row = &res.rows[0];
        assert!(!row.baseline.hit_cycle_cap);
        // No-refresh is the upper bound.
        assert!(row.no_refresh.ipc() >= row.baseline.ipc() * 0.999);
        // ROP issues prefetches on a streaming workload.
        assert!(row.rop.iter().any(|m| m.prefetches > 0));
        // Renders work.
        assert!(res.render_fig7().contains("libquantum"));
        assert!(res.render_fig8().contains("ROP-64"));
        assert!(res.render_fig9().contains("ROP-128"));
    }
}
