//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **window** — observational-window length 1×/2×/4× tRFC;
//! * **throttle** — probabilistic λ/β gate vs. always / never prefetch;
//! * **drain** — drain-before-refresh budget on vs. off;
//! * **table** — full multi-delta prediction vs. 1-delta only.
//!
//! Each ablation runs a subset of memory-intensive benchmarks (they are
//! the ones that exercise the mechanism) on the single-core setup.

use rop_core::config::ThrottleMode;
use rop_stats::TableBuilder;
use rop_trace::Benchmark;

use crate::config::{SystemConfig, SystemKind};
use crate::metrics::RunMetrics;
use crate::runner::{parallel_map, RunSpec};
use crate::system::System;

/// Benchmarks used in ablations: the three streaming-intensive ones plus
/// one phase-structured one.
pub const ABLATION_BENCHMARKS: [Benchmark; 4] = [
    Benchmark::Libquantum,
    Benchmark::Lbm,
    Benchmark::Bwaves,
    Benchmark::GemsFDTD,
];

/// Default SRAM capacity for ablations (the paper's 64-line point).
const CAP: usize = 64;

/// One ablation cell.
#[derive(Debug, Clone)]
pub struct AblationCell {
    /// Variant label.
    pub variant: &'static str,
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Run metrics.
    pub metrics: RunMetrics,
}

/// A labelled collection of ablation cells plus the baseline runs used
/// for normalisation.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Study name.
    pub study: &'static str,
    /// Variant labels in display order.
    pub variants: Vec<&'static str>,
    /// All cells.
    pub cells: Vec<AblationCell>,
    /// Per-benchmark baseline IPC (auto-refresh baseline system).
    pub baseline_ipc: Vec<(&'static str, f64)>,
}

impl AblationResult {
    /// Renders IPC (normalised to baseline) and SRAM hit rate per variant.
    pub fn render(&self) -> String {
        let mut header = vec!["benchmark".to_string()];
        for v in &self.variants {
            header.push(format!("{v} IPC"));
            header.push(format!("{v} hit"));
        }
        let mut t = TableBuilder::new(format!(
            "Ablation: {} (IPC normalised to auto-refresh baseline)",
            self.study
        ))
        .header(header);
        for &(name, base) in &self.baseline_ipc {
            let mut cells = vec![name.to_string()];
            for v in &self.variants {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| c.benchmark == name && &c.variant == v)
                    .expect("every (benchmark, variant) cell present");
                cells.push(format!("{:.3}", cell.metrics.ipc() / base));
                cells.push(format!("{:.2}", cell.metrics.sram_hit_rate));
            }
            t.row(cells);
        }
        t.render()
    }
}

fn rop_system(benchmark: Benchmark, spec: RunSpec) -> SystemConfig {
    SystemConfig::single_core(benchmark, SystemKind::Rop { buffer: CAP }, spec.seed)
}

fn run(cfg: SystemConfig, spec: RunSpec) -> RunMetrics {
    let mut sys = System::new(cfg);
    sys.run_until(spec.instructions, spec.max_cycles)
}

fn baselines(spec: RunSpec) -> Vec<(&'static str, f64)> {
    parallel_map(ABLATION_BENCHMARKS.to_vec(), |&b| {
        let m = run(
            SystemConfig::single_core(b, SystemKind::Baseline, spec.seed),
            spec,
        );
        (b.name(), m.ipc())
    })
}

/// A named configuration mutator for one ablation variant.
type Variant = (&'static str, Box<dyn Fn(&mut SystemConfig) + Sync>);

/// Generic driver: one configured system per (variant, benchmark).
fn sweep(study: &'static str, variants: Vec<Variant>, spec: RunSpec) -> AblationResult {
    let labels: Vec<&'static str> = variants.iter().map(|(l, _)| *l).collect();
    let mut items: Vec<(usize, Benchmark)> = Vec::new();
    for v in 0..variants.len() {
        for &b in &ABLATION_BENCHMARKS {
            items.push((v, b));
        }
    }
    let cells = parallel_map(items, |&(v, b)| {
        let mut cfg = rop_system(b, spec);
        let mut ctrl = cfg.kind.memctrl_config(cfg.ranks, cfg.seed);
        // Give the mutator the controller config via the override hook.
        cfg.ctrl_override = Some(ctrl.clone());
        (variants[v].1)(&mut cfg);
        ctrl = cfg.ctrl_override.clone().expect("override stays set");
        cfg.ctrl_override = Some(ctrl);
        AblationCell {
            variant: labels[v],
            benchmark: b.name(),
            metrics: run(cfg, spec),
        }
    });
    AblationResult {
        study,
        variants: labels,
        cells,
        baseline_ipc: baselines(spec),
    }
}

/// Observational-window length ablation (1×/2×/4× tRFC).
pub fn ablate_window(spec: RunSpec) -> AblationResult {
    let mk = |mult: u64| -> Box<dyn Fn(&mut SystemConfig) + Sync> {
        Box::new(move |cfg| {
            let ctrl = cfg.ctrl_override.as_mut().expect("override present");
            let rop = ctrl.rop.as_mut().expect("ROP system");
            rop.observational_window = mult * ctrl.dram.timing.t_rfc();
        })
    };
    sweep(
        "observational window (1x/2x/4x tRFC)",
        vec![("1x", mk(1)), ("2x", mk(2)), ("4x", mk(4))],
        spec,
    )
}

/// Throttle-mode ablation: adaptive λ/β vs. always vs. never.
pub fn ablate_throttle(spec: RunSpec) -> AblationResult {
    let mk = |mode: ThrottleMode| -> Box<dyn Fn(&mut SystemConfig) + Sync> {
        Box::new(move |cfg| {
            let ctrl = cfg.ctrl_override.as_mut().expect("override present");
            ctrl.rop.as_mut().expect("ROP system").throttle_mode = mode;
        })
    };
    sweep(
        "probabilistic throttle",
        vec![
            ("adaptive", mk(ThrottleMode::Adaptive)),
            ("always", mk(ThrottleMode::Always)),
            ("never", mk(ThrottleMode::Never)),
        ],
        spec,
    )
}

/// Drain-before-refresh ablation: normal budget vs. force-at-due.
pub fn ablate_drain(spec: RunSpec) -> AblationResult {
    let with_drain: Box<dyn Fn(&mut SystemConfig) + Sync> = Box::new(|_| {});
    let no_drain: Box<dyn Fn(&mut SystemConfig) + Sync> = Box::new(|cfg| {
        let ctrl = cfg.ctrl_override.as_mut().expect("override present");
        // Refresh forced the moment it falls due: no drain, no grace.
        ctrl.max_refresh_postpone = 0;
        ctrl.prefetch_grace = 0;
    });
    sweep(
        "drain-before-refresh",
        vec![("drain", with_drain), ("no-drain", no_drain)],
        spec,
    )
}

/// Prediction-table ablation: multi-delta vs. 1-delta only.
pub fn ablate_table(spec: RunSpec) -> AblationResult {
    let multi: Box<dyn Fn(&mut SystemConfig) + Sync> = Box::new(|_| {});
    let single: Box<dyn Fn(&mut SystemConfig) + Sync> = Box::new(|cfg| {
        let ctrl = cfg.ctrl_override.as_mut().expect("override present");
        ctrl.rop.as_mut().expect("ROP system").single_delta_only = true;
    });
    sweep(
        "prediction table (multi-delta vs 1-delta)",
        vec![("multi-delta", multi), ("1-delta", single)],
        spec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttle_ablation_smoke() {
        let spec = RunSpec {
            instructions: 500_000,
            max_cycles: 40_000_000,
            seed: 9,
        };
        // Narrow to one benchmark by reusing the sweep over the full set
        // would be slow; instead run the never-variant directly and check
        // it issues no prefetches.
        let mut cfg = rop_system(Benchmark::Libquantum, spec);
        let mut ctrl = cfg.kind.memctrl_config(cfg.ranks, cfg.seed);
        ctrl.rop.as_mut().unwrap().throttle_mode = ThrottleMode::Never;
        cfg.ctrl_override = Some(ctrl);
        let m = run(cfg, spec);
        assert_eq!(m.prefetches, 0, "Never mode must not prefetch");
    }

    #[test]
    fn window_override_applies() {
        let spec = RunSpec {
            instructions: 1_000,
            max_cycles: 1_000_000,
            seed: 1,
        };
        let mut cfg = rop_system(Benchmark::Gobmk, spec);
        let mut ctrl = cfg.kind.memctrl_config(cfg.ranks, cfg.seed);
        ctrl.rop.as_mut().unwrap().observational_window = 4 * ctrl.dram.timing.t_rfc();
        cfg.ctrl_override = Some(ctrl.clone());
        assert_eq!(ctrl.rop.unwrap().observational_window, 1120);
        let _ = run(cfg, spec);
    }
}
