//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **window** — observational-window length 1×/2×/4× tRFC;
//! * **throttle** — probabilistic λ/β gate vs. always / never prefetch;
//! * **drain** — drain-before-refresh budget on vs. off;
//! * **table** — full multi-delta prediction vs. 1-delta only.
//!
//! Each ablation runs a subset of memory-intensive benchmarks (they are
//! the ones that exercise the mechanism) on the single-core setup.

use rop_core::config::ThrottleMode;
use rop_stats::TableBuilder;
use rop_trace::Benchmark;

use crate::config::{SystemConfig, SystemKind};
use crate::metrics::RunMetrics;
use crate::runner::{LocalExecutor, RunSpec, SweepExecutor, SweepJob};

/// Benchmarks used in ablations: the three streaming-intensive ones plus
/// one phase-structured one.
pub const ABLATION_BENCHMARKS: [Benchmark; 4] = [
    Benchmark::Libquantum,
    Benchmark::Lbm,
    Benchmark::Bwaves,
    Benchmark::GemsFDTD,
];

/// Default SRAM capacity for ablations (the paper's 64-line point).
const CAP: usize = 64;

/// One ablation cell.
#[derive(Debug, Clone)]
pub struct AblationCell {
    /// Variant label.
    pub variant: &'static str,
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Run metrics.
    pub metrics: RunMetrics,
}

/// A labelled collection of ablation cells plus the baseline runs used
/// for normalisation.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Study name.
    pub study: &'static str,
    /// Variant labels in display order.
    pub variants: Vec<&'static str>,
    /// All cells.
    pub cells: Vec<AblationCell>,
    /// Per-benchmark baseline IPC (auto-refresh baseline system).
    pub baseline_ipc: Vec<(&'static str, f64)>,
}

impl AblationResult {
    /// Renders IPC (normalised to baseline) and SRAM hit rate per variant.
    pub fn render(&self) -> String {
        let mut header = vec!["benchmark".to_string()];
        for v in &self.variants {
            header.push(format!("{v} IPC"));
            header.push(format!("{v} hit"));
        }
        let mut t = TableBuilder::new(format!(
            "Ablation: {} (IPC normalised to auto-refresh baseline)",
            self.study
        ))
        .header(header);
        for &(name, base) in &self.baseline_ipc {
            let mut cells = vec![name.to_string()];
            for v in &self.variants {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| c.benchmark == name && &c.variant == v)
                    .expect("every (benchmark, variant) cell present");
                cells.push(format!("{:.3}", cell.metrics.ipc() / base));
                cells.push(format!("{:.2}", cell.metrics.sram_hit_rate));
            }
            t.row(cells);
        }
        t.render()
    }
}

fn rop_system(benchmark: Benchmark, spec: RunSpec) -> SystemConfig {
    SystemConfig::single_core(benchmark, SystemKind::Rop { buffer: CAP }, spec.seed)
}

/// The declarative baseline job set shared by every ablation study
/// (the auto-refresh runs the IPC columns normalise against). Identical
/// across studies, so a content-addressed store runs them only once.
pub fn baseline_jobs(spec: RunSpec) -> Vec<SweepJob> {
    ABLATION_BENCHMARKS
        .iter()
        .map(|&b| {
            SweepJob::custom(
                format!("ablate/baseline/{}", b.name()),
                SystemConfig::single_core(b, SystemKind::Baseline, spec.seed),
                spec,
            )
        })
        .collect()
}

fn baselines(spec: RunSpec, exec: &dyn SweepExecutor) -> Vec<(&'static str, f64)> {
    let metrics = exec.execute(baseline_jobs(spec));
    ABLATION_BENCHMARKS
        .iter()
        .zip(&metrics)
        .map(|(&b, m)| (b.name(), m.ipc()))
        .collect()
}

/// A named configuration mutator for one ablation variant.
type Variant = (&'static str, Box<dyn Fn(&mut SystemConfig)>);

/// Builds the fully-resolved job for one (variant, benchmark) cell: the
/// mutator is applied at job-construction time, so the job's config —
/// and therefore its content hash — captures the variant completely.
fn variant_job(
    slug: &str,
    variant: &str,
    mutate: &dyn Fn(&mut SystemConfig),
    b: Benchmark,
    spec: RunSpec,
) -> SweepJob {
    let mut cfg = rop_system(b, spec);
    // Give the mutator the controller config via the override hook.
    cfg.ctrl_override = Some(cfg.kind.memctrl_config(cfg.ranks, cfg.seed));
    mutate(&mut cfg);
    SweepJob::custom(format!("ablate/{slug}/{variant}/{}", b.name()), cfg, spec)
}

/// Generic driver: one configured system per (variant, benchmark).
fn sweep(
    study: &'static str,
    slug: &str,
    variants: Vec<Variant>,
    spec: RunSpec,
    exec: &dyn SweepExecutor,
) -> AblationResult {
    let labels: Vec<&'static str> = variants.iter().map(|(l, _)| *l).collect();
    let mut items: Vec<(usize, Benchmark)> = Vec::new();
    let mut jobs = Vec::new();
    for (v, (label, mutate)) in variants.iter().enumerate() {
        for &b in &ABLATION_BENCHMARKS {
            items.push((v, b));
            jobs.push(variant_job(slug, label, mutate.as_ref(), b, spec));
        }
    }
    let metrics = exec.execute(jobs);
    let cells = items
        .into_iter()
        .zip(metrics)
        .map(|((v, b), m)| AblationCell {
            variant: labels[v],
            benchmark: b.name(),
            metrics: m,
        })
        .collect();
    AblationResult {
        study,
        variants: labels,
        cells,
        baseline_ipc: baselines(spec, exec),
    }
}

/// Observational-window length ablation (1×/2×/4× tRFC).
pub fn ablate_window(spec: RunSpec) -> AblationResult {
    ablate_window_with(spec, &LocalExecutor)
}

/// [`ablate_window`] through an arbitrary executor.
pub fn ablate_window_with(spec: RunSpec, exec: &dyn SweepExecutor) -> AblationResult {
    let mk = |mult: u64| -> Box<dyn Fn(&mut SystemConfig)> {
        Box::new(move |cfg| {
            let ctrl = cfg.ctrl_override.as_mut().expect("override present");
            let rop = ctrl.rop.as_mut().expect("ROP system");
            rop.observational_window = mult * ctrl.dram.timing.t_rfc();
        })
    };
    sweep(
        "observational window (1x/2x/4x tRFC)",
        "window",
        vec![("1x", mk(1)), ("2x", mk(2)), ("4x", mk(4))],
        spec,
        exec,
    )
}

/// Throttle-mode ablation: adaptive λ/β vs. always vs. never.
pub fn ablate_throttle(spec: RunSpec) -> AblationResult {
    ablate_throttle_with(spec, &LocalExecutor)
}

/// [`ablate_throttle`] through an arbitrary executor.
pub fn ablate_throttle_with(spec: RunSpec, exec: &dyn SweepExecutor) -> AblationResult {
    let mk = |mode: ThrottleMode| -> Box<dyn Fn(&mut SystemConfig)> {
        Box::new(move |cfg| {
            let ctrl = cfg.ctrl_override.as_mut().expect("override present");
            ctrl.rop.as_mut().expect("ROP system").throttle_mode = mode;
        })
    };
    sweep(
        "probabilistic throttle",
        "throttle",
        vec![
            ("adaptive", mk(ThrottleMode::Adaptive)),
            ("always", mk(ThrottleMode::Always)),
            ("never", mk(ThrottleMode::Never)),
        ],
        spec,
        exec,
    )
}

/// Drain-before-refresh ablation: normal budget vs. force-at-due.
pub fn ablate_drain(spec: RunSpec) -> AblationResult {
    ablate_drain_with(spec, &LocalExecutor)
}

/// [`ablate_drain`] through an arbitrary executor.
pub fn ablate_drain_with(spec: RunSpec, exec: &dyn SweepExecutor) -> AblationResult {
    let with_drain: Box<dyn Fn(&mut SystemConfig)> = Box::new(|_| {});
    let no_drain: Box<dyn Fn(&mut SystemConfig)> = Box::new(|cfg| {
        let ctrl = cfg.ctrl_override.as_mut().expect("override present");
        // Refresh forced the moment it falls due: no drain, no grace.
        ctrl.max_refresh_postpone = 0;
        ctrl.prefetch_grace = 0;
    });
    sweep(
        "drain-before-refresh",
        "drain",
        vec![("drain", with_drain), ("no-drain", no_drain)],
        spec,
        exec,
    )
}

/// Prediction-table ablation: multi-delta vs. 1-delta only.
pub fn ablate_table(spec: RunSpec) -> AblationResult {
    ablate_table_with(spec, &LocalExecutor)
}

/// [`ablate_table`] through an arbitrary executor.
pub fn ablate_table_with(spec: RunSpec, exec: &dyn SweepExecutor) -> AblationResult {
    let multi: Box<dyn Fn(&mut SystemConfig)> = Box::new(|_| {});
    let single: Box<dyn Fn(&mut SystemConfig)> = Box::new(|cfg| {
        let ctrl = cfg.ctrl_override.as_mut().expect("override present");
        ctrl.rop.as_mut().expect("ROP system").single_delta_only = true;
    });
    sweep(
        "prediction table (multi-delta vs 1-delta)",
        "table",
        vec![("multi-delta", multi), ("1-delta", single)],
        spec,
        exec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;

    fn run(cfg: SystemConfig, spec: RunSpec) -> RunMetrics {
        let mut sys = System::new(cfg);
        sys.run_until(spec.instructions, spec.max_cycles)
    }

    #[test]
    fn throttle_ablation_smoke() {
        let spec = RunSpec {
            instructions: 500_000,
            max_cycles: 40_000_000,
            seed: 9,
        };
        // Narrow to one benchmark by reusing the sweep over the full set
        // would be slow; instead run the never-variant directly and check
        // it issues no prefetches.
        let mut cfg = rop_system(Benchmark::Libquantum, spec);
        let mut ctrl = cfg.kind.memctrl_config(cfg.ranks, cfg.seed);
        ctrl.rop.as_mut().unwrap().throttle_mode = ThrottleMode::Never;
        cfg.ctrl_override = Some(ctrl);
        let m = run(cfg, spec);
        assert_eq!(m.prefetches, 0, "Never mode must not prefetch");
    }

    #[test]
    fn window_override_applies() {
        let spec = RunSpec {
            instructions: 1_000,
            max_cycles: 1_000_000,
            seed: 1,
        };
        let mut cfg = rop_system(Benchmark::Gobmk, spec);
        let mut ctrl = cfg.kind.memctrl_config(cfg.ranks, cfg.seed);
        ctrl.rop.as_mut().unwrap().observational_window = 4 * ctrl.dram.timing.t_rfc();
        cfg.ctrl_override = Some(ctrl.clone());
        assert_eq!(ctrl.rop.unwrap().observational_window, 1120);
        let _ = run(cfg, spec);
    }
}
