//! §III analysis experiments: Figure 1 (refresh overheads), Figure 2
//! (non-blocking refresh fraction), Figure 3 (blocked requests per
//! blocking refresh), Figure 4 (dominant-event coverage) and Table I
//! (λ/β at 1×/2×/4× windows).
//!
//! All of these derive from two single-core runs per benchmark — the
//! auto-refresh baseline and the idealised no-refresh memory — using the
//! always-on [`rop_memctrl::RefreshAnalysis`] instrumentation of the
//! baseline run.

use rop_memctrl::RefreshAnalysisReport;
use rop_stats::{percent_delta, TableBuilder};
use rop_trace::{Benchmark, ALL_BENCHMARKS};

use crate::config::SystemKind;
use crate::runner::{parallel_map, run_single, RunSpec};

/// Per-benchmark analysis row.
#[derive(Debug, Clone)]
pub struct AnalysisRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Memory-intensive classification.
    pub intensive: bool,
    /// Baseline IPC.
    pub base_ipc: f64,
    /// Ideal (no-refresh) IPC.
    pub ideal_ipc: f64,
    /// Baseline total energy (nJ).
    pub base_energy_nj: f64,
    /// Ideal total energy (nJ).
    pub ideal_energy_nj: f64,
    /// Refresh analysis at 1×/2×/4× tRFC windows (baseline run, rank 0).
    pub reports: [RefreshAnalysisReport; 3],
}

impl AnalysisRow {
    /// Performance degradation caused by refresh, in percent (Figure 1).
    pub fn perf_degradation_pct(&self) -> f64 {
        percent_delta(self.ideal_ipc, self.base_ipc).max(0.0)
    }

    /// Extra energy caused by refresh, in percent (Figure 1).
    pub fn energy_overhead_pct(&self) -> f64 {
        percent_delta(self.base_energy_nj, self.ideal_energy_nj).max(0.0)
    }
}

/// Result of the §III analysis sweep.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// One row per benchmark, in Table I column order.
    pub rows: Vec<AnalysisRow>,
}

/// Runs baseline + no-refresh for all twelve benchmarks.
pub fn run_analysis(spec: RunSpec) -> AnalysisResult {
    let items: Vec<Benchmark> = ALL_BENCHMARKS.to_vec();
    let rows = parallel_map(items, |&b| {
        let base = run_single(b, SystemKind::Baseline, spec);
        let ideal = run_single(b, SystemKind::NoRefresh, spec);
        AnalysisRow {
            name: b.name(),
            intensive: b.is_intensive(),
            base_ipc: base.ipc(),
            ideal_ipc: ideal.ipc(),
            base_energy_nj: base.energy.total_nj(),
            ideal_energy_nj: ideal.energy.total_nj(),
            reports: base.analysis[0],
        }
    });
    AnalysisResult { rows }
}

impl AnalysisResult {
    /// Figure 1: baseline vs. ideal performance and energy.
    pub fn render_fig1(&self) -> String {
        let mut t = TableBuilder::new(
            "Figure 1 — refresh overheads: baseline vs. idealised no-refresh memory",
        )
        .header([
            "benchmark",
            "base IPC",
            "ideal IPC",
            "perf loss",
            "base E(mJ)",
            "ideal E(mJ)",
            "extra energy",
        ]);
        let mut perf = Vec::new();
        let mut energy = Vec::new();
        for r in &self.rows {
            perf.push(r.perf_degradation_pct());
            energy.push(r.energy_overhead_pct());
            t.row([
                r.name.to_string(),
                format!("{:.3}", r.base_ipc),
                format!("{:.3}", r.ideal_ipc),
                format!("{:.1}%", r.perf_degradation_pct()),
                format!("{:.2}", r.base_energy_nj / 1e6),
                format!("{:.2}", r.ideal_energy_nj / 1e6),
                format!("{:.1}%", r.energy_overhead_pct()),
            ]);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        t.row([
            "AVERAGE".to_string(),
            String::new(),
            String::new(),
            format!("{:.1}%", avg(&perf)),
            String::new(),
            String::new(),
            format!("{:.1}%", avg(&energy)),
        ]);
        t.render()
    }

    /// Figure 2: percentage of non-blocking refreshes at 1×/2×/4×.
    pub fn render_fig2(&self) -> String {
        let mut t = TableBuilder::new(
            "Figure 2 — non-blocking refreshes (% of refreshes blocking no read)",
        )
        .header(["benchmark", "1x", "2x", "4x"]);
        for r in &self.rows {
            t.row([
                r.name.to_string(),
                format!("{:.1}%", r.reports[0].non_blocking_fraction * 100.0),
                format!("{:.1}%", r.reports[1].non_blocking_fraction * 100.0),
                format!("{:.1}%", r.reports[2].non_blocking_fraction * 100.0),
            ]);
        }
        let ni: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| !r.intensive)
            .map(|r| r.reports[0].non_blocking_fraction * 100.0)
            .collect();
        t.row([
            "non-intensive avg (1x)".to_string(),
            format!("{:.1}%", ni.iter().sum::<f64>() / ni.len().max(1) as f64),
            String::new(),
            String::new(),
        ]);
        t.render()
    }

    /// Figure 3: average blocked reads per blocking refresh (1× window).
    pub fn render_fig3(&self) -> String {
        let mut t = TableBuilder::new("Figure 3 — blocked reads per blocking refresh (1x window)")
            .header(["benchmark", "avg blocked", "max blocked"]);
        for r in &self.rows {
            t.row([
                r.name.to_string(),
                format!("{:.2}", r.reports[0].avg_blocked_per_blocking),
                format!("{}", r.reports[0].max_blocked),
            ]);
        }
        t.render()
    }

    /// Figure 4: fraction of refreshes in the two dominant categories.
    pub fn render_fig4(&self) -> String {
        let mut t = TableBuilder::new(
            "Figure 4 — dominant-event coverage: P(E1 ∪ E2), E1 = B>0∧A>0, E2 = B=0∧A=0",
        )
        .header(["benchmark", "1x", "2x", "4x"]);
        for r in &self.rows {
            t.row([
                r.name.to_string(),
                format!("{:.1}%", r.reports[0].dominant_fraction * 100.0),
                format!("{:.1}%", r.reports[1].dominant_fraction * 100.0),
                format!("{:.1}%", r.reports[2].dominant_fraction * 100.0),
            ]);
        }
        t.render()
    }

    /// Table I: λ and β at the three window lengths.
    pub fn render_table1(&self) -> String {
        let mut t = TableBuilder::new("Table I — conditional probabilities λ and β").header([
            "benchmark",
            "λ (1x)",
            "β (1x)",
            "λ (2x)",
            "β (2x)",
            "λ (4x)",
            "β (4x)",
        ]);
        for r in &self.rows {
            t.row([
                r.name.to_string(),
                format!("{:.2}", r.reports[0].lambda),
                format!("{:.2}", r.reports[0].beta),
                format!("{:.2}", r.reports[1].lambda),
                format!("{:.2}", r.reports[1].beta),
                format!("{:.2}", r.reports[2].lambda),
                format!("{:.2}", r.reports[2].beta),
            ]);
        }
        let avg = |f: fn(&RefreshAnalysisReport) -> f64, i: usize| -> f64 {
            self.rows.iter().map(|r| f(&r.reports[i])).sum::<f64>() / self.rows.len() as f64
        };
        t.row([
            "Average".to_string(),
            format!("{:.2}", avg(|r| r.lambda, 0)),
            format!("{:.2}", avg(|r| r.beta, 0)),
            format!("{:.2}", avg(|r| r.lambda, 1)),
            format!("{:.2}", avg(|r| r.beta, 1)),
            format!("{:.2}", avg(|r| r.lambda, 2)),
            format!("{:.2}", avg(|r| r.beta, 2)),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_smoke() {
        // gobmk reaches memory rarely (IPC ≈ issue width), so give it
        // enough instructions to live through several refresh intervals.
        let spec = RunSpec {
            instructions: 400_000,
            max_cycles: 30_000_000,
            seed: 3,
        };
        // Keep the test fast: two contrasting benchmarks only.
        let rows = parallel_map(vec![Benchmark::Libquantum, Benchmark::Gobmk], |&b| {
            let base = run_single(b, SystemKind::Baseline, spec);
            let ideal = run_single(b, SystemKind::NoRefresh, spec);
            AnalysisRow {
                name: b.name(),
                intensive: b.is_intensive(),
                base_ipc: base.ipc(),
                ideal_ipc: ideal.ipc(),
                base_energy_nj: base.energy.total_nj(),
                ideal_energy_nj: ideal.energy.total_nj(),
                reports: base.analysis[0],
            }
        });
        let res = AnalysisResult { rows };
        // Refresh must cost energy on both.
        for r in &res.rows {
            assert!(
                r.base_energy_nj > r.ideal_energy_nj,
                "{}: refresh must add energy",
                r.name
            );
            assert!(r.reports[0].refreshes > 0);
        }
        // The streaming benchmark sees far fewer non-blocking refreshes
        // than the cache-friendly one.
        let lib = &res.rows[0];
        let gob = &res.rows[1];
        assert!(
            lib.reports[0].non_blocking_fraction < gob.reports[0].non_blocking_fraction,
            "libquantum {} vs gobmk {}",
            lib.reports[0].non_blocking_fraction,
            gob.reports[0].non_blocking_fraction
        );
        // λ: streaming ≈ 1.
        assert!(lib.reports[0].lambda > 0.9, "λ {}", lib.reports[0].lambda);
        // All five renders produce output.
        for s in [
            res.render_fig1(),
            res.render_fig2(),
            res.render_fig3(),
            res.render_fig4(),
            res.render_table1(),
        ] {
            assert!(s.contains("libquantum"));
        }
    }
}
