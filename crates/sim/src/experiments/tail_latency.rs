//! Tail latency vs offered load: the datacenter figure family.
//!
//! Drives the open-loop injector ([`crate::OpenLoopSystem`]) across a
//! grid of offered loads × arrival processes × the refresh-mechanism
//! roster ([`SystemKind::MECHANISMS`]) and renders read-latency
//! percentiles (p50/p99/p999), the refresh-attributed tail, and the
//! achieved-throughput / saturation picture. This is the experiment
//! where refresh mechanisms separate most visibly: a 280-cycle tRFC
//! freeze barely moves the mean but parks an entire arrival burst
//! behind it, so all-bank refresh shows up directly in p99/p999 while
//! DARP/SARP/RAIDR flatten the tail.

use rop_stats::TableBuilder;
use rop_trace::{AddressPattern, ArrivalProcess};

use crate::config::{OpenLoopSpec, SystemConfig, SystemKind};
use crate::metrics::RunMetrics;
use crate::runner::{LocalExecutor, RunSpec, SweepExecutor, SweepJob};
use crate::Cycle;

/// Offered loads swept, in requests per kilo-cycle summed over tenants.
/// DDR4-1600 with 4-cycle bursts serves at most 250 rpkc, so the grid
/// walks from comfortable (24%) to near-saturation (96%).
pub const OFFERED_LOADS_RPKC: [f64; 4] = [60.0, 120.0, 180.0, 240.0];

/// Traffic sources, each pinned to one of the 4 ranks.
pub const TENANTS: usize = 4;

/// Per-tenant footprint in cache lines (4 MB of 64 B lines — large
/// enough to defeat the row buffer, small within one rank partition).
pub const REGION_LINES: u64 = 1 << 16;

/// Store fraction of the offered traffic.
pub const WRITE_FRACTION: f64 = 0.25;

/// The arrival processes swept (labels are [`ArrivalProcess::label`]).
/// The MMPP burst regime quadruples the rate with ~20k-cycle dwells
/// (bursts several refresh intervals long); the diurnal period spans
/// the whole observation window so one run sees a full "day".
pub fn arrival_processes(duration: Cycle) -> [ArrivalProcess; 3] {
    [
        ArrivalProcess::Poisson,
        ArrivalProcess::Mmpp2 {
            burst_rate_multiplier: 4.0,
            mean_dwell_cycles: 20_000,
        },
        ArrivalProcess::Diurnal {
            period_cycles: duration.max(8),
        },
    ]
}

/// Observation window derived from the run spec: reuse the instruction
/// quota as a cycle budget (open-loop runs retire no instructions),
/// capped at the spec's own cycle limit. The floor of two refresh
/// intervals wins over the cap — a window with no refresh activity in
/// frame cannot measure a refresh-attributed tail.
pub fn duration_for(spec: RunSpec) -> Cycle {
    spec.instructions.min(spec.max_cycles).max(16_000)
}

/// Builds the fully-resolved config for one (process, load, mechanism)
/// cell: 4 tenants on 4 ranks, rank-partitioned mapping forced through
/// the controller override so tenant traffic stays rank-local for every
/// mechanism (the mechanisms' own defaults keep interleaved mapping).
pub fn tail_config(
    kind: SystemKind,
    process: ArrivalProcess,
    offered_rpkc: f64,
    duration: Cycle,
    seed: u64,
) -> SystemConfig {
    let mut cfg = SystemConfig::multi_core(
        crate::experiments::mechanisms::MECHANISM_BENCHMARKS
            .iter()
            .cycle()
            .take(4)
            .copied()
            .collect::<Vec<_>>()
            .try_into()
            .expect("exactly 4 benchmarks"),
        kind,
        seed,
    );
    let mut ctrl = kind.memctrl_config(cfg.ranks, seed);
    ctrl.mapping = rop_memctrl::MappingScheme::RankPartitioned;
    cfg.ctrl_override = Some(ctrl);
    cfg.open_loop = Some(OpenLoopSpec {
        process,
        offered_rpkc,
        tenants: TENANTS,
        pattern: AddressPattern::Random,
        region_lines: REGION_LINES,
        write_fraction: WRITE_FRACTION,
        duration,
    });
    cfg
}

/// The declarative job set, in result order: per process, per offered
/// load, one job per [`SystemKind::MECHANISMS`] element.
pub fn tail_latency_jobs(spec: RunSpec) -> Vec<SweepJob> {
    let duration = duration_for(spec);
    let mut jobs = Vec::new();
    for process in arrival_processes(duration) {
        for &load in &OFFERED_LOADS_RPKC {
            for &kind in &SystemKind::MECHANISMS {
                jobs.push(SweepJob::custom(
                    format!("tail/{}/{load}/{}", process.label(), kind.label()),
                    tail_config(kind, process.clone(), load, duration, spec.seed),
                    spec,
                ));
            }
        }
    }
    jobs
}

/// One (process, offered load) row across the mechanism roster.
#[derive(Debug, Clone)]
pub struct TailRow {
    /// Arrival process label (`poisson`/`mmpp`/`diurnal`).
    pub process: &'static str,
    /// Offered load in rpkc (summed over tenants).
    pub offered_rpkc: f64,
    /// One entry per [`SystemKind::MECHANISMS`] element.
    pub per_mechanism: Vec<RunMetrics>,
}

/// Result of the tail-latency sweep.
#[derive(Debug, Clone)]
pub struct TailLatencyResult {
    /// One row per (process, load) cell, processes outer.
    pub rows: Vec<TailRow>,
}

/// Runs the sweep in-process.
pub fn run_tail_latency(spec: RunSpec) -> TailLatencyResult {
    run_tail_latency_with(spec, &LocalExecutor)
}

/// The sweep through an arbitrary executor (store-backed in the
/// harness, dry in the planner).
pub fn run_tail_latency_with(spec: RunSpec, exec: &dyn SweepExecutor) -> TailLatencyResult {
    let duration = duration_for(spec);
    let metrics = exec.execute(tail_latency_jobs(spec));
    let per_mech = SystemKind::MECHANISMS.len();
    let mut rows = Vec::new();
    let mut it = metrics.into_iter();
    for process in arrival_processes(duration) {
        for &load in &OFFERED_LOADS_RPKC {
            rows.push(TailRow {
                process: process_label_static(&process),
                offered_rpkc: load,
                per_mechanism: it.by_ref().take(per_mech).collect(),
            });
        }
    }
    TailLatencyResult { rows }
}

/// `'static` copy of the process label (labels are fixed strings).
fn process_label_static(p: &ArrivalProcess) -> &'static str {
    match p {
        ArrivalProcess::Poisson => "poisson",
        ArrivalProcess::Mmpp2 { .. } => "mmpp",
        ArrivalProcess::Diurnal { .. } => "diurnal",
    }
}

/// Extracts the open-loop block, tolerating placeholder/closed rows.
fn ol(m: &RunMetrics) -> Option<&crate::metrics::OpenLoopMetrics> {
    m.open_loop.as_ref()
}

impl TailLatencyResult {
    /// Figure T1: read-latency percentiles per mechanism across the
    /// load grid — the paper-style tail-latency-vs-offered-load curves.
    pub fn render_tail(&self) -> String {
        let mut header = vec!["process/rpkc".to_string()];
        for k in &SystemKind::MECHANISMS {
            header.push(format!("{} p50", k.label()));
            header.push(format!("{} p99", k.label()));
            header.push(format!("{} p999", k.label()));
        }
        let mut t = TableBuilder::new(
            "Figure T1 — open-loop read latency percentiles (cycles) vs offered load",
        )
        .header(header);
        for r in &self.rows {
            let mut cells = vec![format!("{}/{}", r.process, r.offered_rpkc)];
            for m in &r.per_mechanism {
                match ol(m) {
                    Some(o) => {
                        cells.push(format!("{}", o.read_latency.p50()));
                        cells.push(format!("{}", o.read_latency.p99()));
                        cells.push(format!("{}", o.read_latency.p999()));
                    }
                    None => cells.extend(["-".into(), "-".into(), "-".into()]),
                }
            }
            t.row(cells);
        }
        t.render()
    }

    /// Figure T2: the refresh-attributed tail — p99 of reads whose
    /// lifetime overlapped a refresh freeze, next to the overall p99.
    pub fn render_refresh_tail(&self) -> String {
        let mut header = vec!["process/rpkc".to_string()];
        for k in &SystemKind::MECHANISMS {
            header.push(format!("{} p99", k.label()));
            header.push(format!("{} rp99", k.label()));
        }
        let mut t = TableBuilder::new(
            "Figure T2 — refresh-attributed p99 (rp99: reads blocked by a freeze) vs overall p99",
        )
        .header(header);
        for r in &self.rows {
            let mut cells = vec![format!("{}/{}", r.process, r.offered_rpkc)];
            for m in &r.per_mechanism {
                match ol(m) {
                    Some(o) => {
                        cells.push(format!("{}", o.read_latency.p99()));
                        cells.push(format!("{}", o.refresh_blocked_latency.p99()));
                    }
                    None => cells.extend(["-".into(), "-".into()]),
                }
            }
            t.row(cells);
        }
        t.render()
    }

    /// Figure T3: achieved throughput and saturation — the knee of each
    /// mechanism's load-service curve ('*' marks a saturated cell).
    pub fn render_saturation(&self) -> String {
        let mut header = vec!["process/rpkc".to_string()];
        for k in &SystemKind::MECHANISMS {
            header.push(format!("{} rpkc", k.label()));
        }
        let mut t = TableBuilder::new(
            "Figure T3 — achieved read throughput (rpkc; '*' = saturated) vs offered load",
        )
        .header(header);
        for r in &self.rows {
            let mut cells = vec![format!("{}/{}", r.process, r.offered_rpkc)];
            for m in &r.per_mechanism {
                match ol(m) {
                    Some(o) => cells.push(format!(
                        "{:.1}{}",
                        o.achieved_rpkc,
                        if o.saturated { "*" } else { "" }
                    )),
                    None => cells.push("-".into()),
                }
            }
            t.row(cells);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_grid_shape_and_labels() {
        let spec = RunSpec::quick();
        let jobs = tail_latency_jobs(spec);
        assert_eq!(jobs.len(), 3 * OFFERED_LOADS_RPKC.len() * 4);
        assert_eq!(jobs[0].label, "tail/poisson/60/Baseline");
        assert!(jobs.last().unwrap().label.starts_with("tail/diurnal/240/"));
        for j in &jobs {
            j.config.validate().expect("tail job config valid");
            let ol = j.config.open_loop.as_ref().expect("open-loop job");
            ol.validate().expect("tail open-loop spec valid");
            assert_eq!(ol.duration, duration_for(spec));
            assert!(matches!(
                j.config.ctrl_override.as_ref().map(|c| &c.mapping),
                Some(rop_memctrl::MappingScheme::RankPartitioned)
            ));
        }
    }

    #[test]
    fn sweep_runs_and_renders() {
        // 25k-cycle windows keep this a smoke run while still spanning
        // ~4 refresh intervals per rank.
        let spec = RunSpec {
            instructions: 25_000,
            max_cycles: 1_000_000,
            seed: 42,
        };
        let res = run_tail_latency(spec);
        assert_eq!(res.rows.len(), 3 * OFFERED_LOADS_RPKC.len());
        for r in &res.rows {
            assert_eq!(r.per_mechanism.len(), 4);
            for m in &r.per_mechanism {
                let o = m.open_loop.as_ref().expect("open-loop metrics");
                assert!(o.read_latency.count() > 0, "{}: no reads", r.process);
            }
        }
        let t1 = res.render_tail();
        assert!(t1.contains("DARP p999"));
        assert!(t1.contains("poisson/60"));
        assert!(res.render_refresh_tail().contains("rp99"));
        assert!(res.render_saturation().contains("diurnal/240"));
    }
}
