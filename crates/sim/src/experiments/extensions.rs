//! Extension experiments beyond the paper's evaluation:
//!
//! * **refresh-policy comparison** — the related-work scheduler Elastic
//!   Refresh (Stuecheli et al.) against the paper's baseline, ROP, and
//!   the no-refresh bound, quantifying where scheduling alone runs out
//!   of headroom and prefetching keeps going (§VI of the paper argues
//!   this qualitatively);
//! * **fine-grained refresh (FGR) sweep** — DDR4's 1x/2x/4x refresh
//!   modes with and without ROP, the paper's §VII future-work direction:
//!   "we intend to implement our idea in DRAM systems which perform
//!   refreshes in finer granularities".

use rop_stats::TableBuilder;
use rop_trace::Benchmark;

use crate::config::{SystemConfig, SystemKind};
use crate::metrics::RunMetrics;
use crate::runner::{parallel_map, RunSpec};
use crate::system::System;

/// Benchmarks used by the extension studies (the refresh-sensitive set).
pub const EXTENSION_BENCHMARKS: [Benchmark; 4] = [
    Benchmark::Libquantum,
    Benchmark::Lbm,
    Benchmark::GemsFDTD,
    Benchmark::CactusADM,
];

/// Result of the refresh-policy comparison.
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// (benchmark, per-system metrics in `SYSTEMS` order).
    pub rows: Vec<(&'static str, Vec<RunMetrics>)>,
}

/// Systems compared by [`run_policy_comparison`].
pub const POLICY_SYSTEMS: [SystemKind; 4] = [
    SystemKind::Baseline,
    SystemKind::ElasticRefresh,
    SystemKind::Rop { buffer: 64 },
    SystemKind::NoRefresh,
];

/// Runs the policy comparison on the extension benchmarks.
pub fn run_policy_comparison(spec: RunSpec) -> PolicyComparison {
    let mut items = Vec::new();
    for &b in &EXTENSION_BENCHMARKS {
        for &k in &POLICY_SYSTEMS {
            items.push((b, k));
        }
    }
    let metrics = parallel_map(items, |&(b, k)| {
        let mut sys = System::new(SystemConfig::single_core(b, k, spec.seed));
        sys.run_until(spec.instructions, spec.max_cycles)
    });
    let rows = EXTENSION_BENCHMARKS
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.name(),
                metrics[i * POLICY_SYSTEMS.len()..(i + 1) * POLICY_SYSTEMS.len()].to_vec(),
            )
        })
        .collect();
    PolicyComparison { rows }
}

impl PolicyComparison {
    /// Renders IPC normalised to Baseline for each system.
    pub fn render(&self) -> String {
        let header: Vec<String> = std::iter::once("benchmark".to_string())
            .chain(POLICY_SYSTEMS.iter().map(|k| k.label()))
            .collect();
        let mut t =
            TableBuilder::new("Extension — refresh-policy comparison (IPC normalised to Baseline)")
                .header(header);
        for (name, ms) in &self.rows {
            let base = ms[0].ipc();
            let mut cells = vec![name.to_string()];
            for m in ms {
                cells.push(format!("{:.3}", m.ipc() / base));
            }
            t.row(cells);
        }
        t.render()
    }
}

/// Result of the FGR sweep.
#[derive(Debug, Clone)]
pub struct FgrSweep {
    /// (benchmark, per-cell metrics in `FGR_MODES × {off, on}` order).
    pub rows: Vec<(&'static str, Vec<RunMetrics>)>,
}

/// FGR modes swept (refresh-interval divisor).
pub const FGR_MODES: [u32; 3] = [1, 2, 4];

/// Runs 1x/2x/4x refresh granularity, each without and with ROP.
pub fn run_fgr_sweep(spec: RunSpec) -> FgrSweep {
    use rop_dram::TimingParams;
    let mut items = Vec::new();
    for &b in &EXTENSION_BENCHMARKS {
        for &mode in &FGR_MODES {
            for rop in [false, true] {
                items.push((b, mode, rop));
            }
        }
    }
    let metrics = parallel_map(items, |&(b, mode, rop)| {
        let kind = if rop {
            SystemKind::Rop { buffer: 64 }
        } else {
            SystemKind::Baseline
        };
        let mut cfg = SystemConfig::single_core(b, kind, spec.seed);
        let mut ctrl = cfg.kind.memctrl_config(cfg.ranks, cfg.seed);
        ctrl.dram.timing = match mode {
            1 => TimingParams::ddr4_1600_8gb(),
            2 => TimingParams::ddr4_1600_8gb_fgr2x(),
            _ => TimingParams::ddr4_1600_8gb_fgr4x(),
        };
        if let Some(rc) = ctrl.rop.as_mut() {
            // Keep ROP's windows consistent with the shrunken tRFC.
            rc.observational_window = ctrl.dram.timing.t_rfc();
            rc.refresh_period = ctrl.dram.timing.t_rfc();
        }
        cfg.ctrl_override = Some(ctrl);
        let mut sys = System::new(cfg);
        sys.run_until(spec.instructions, spec.max_cycles)
    });
    let per = FGR_MODES.len() * 2;
    let rows = EXTENSION_BENCHMARKS
        .iter()
        .enumerate()
        .map(|(i, b)| (b.name(), metrics[i * per..(i + 1) * per].to_vec()))
        .collect();
    FgrSweep { rows }
}

impl FgrSweep {
    /// Renders IPC normalised to the 1x baseline cell.
    pub fn render(&self) -> String {
        let mut header = vec!["benchmark".to_string()];
        for &m in &FGR_MODES {
            header.push(format!("{m}x base"));
            header.push(format!("{m}x ROP"));
        }
        let mut t = TableBuilder::new(
            "Extension — fine-grained refresh sweep (IPC normalised to 1x baseline)",
        )
        .header(header);
        for (name, ms) in &self.rows {
            let base = ms[0].ipc();
            let mut cells = vec![name.to_string()];
            for m in ms {
                cells.push(format!("{:.3}", m.ipc() / base));
            }
            t.row(cells);
        }
        t.render()
    }
}

/// Result of the per-bank-refresh (REFpb) study.
#[derive(Debug, Clone)]
pub struct PerBankStudy {
    /// (benchmark, per-system metrics in [`PER_BANK_SYSTEMS`] order).
    pub rows: Vec<(&'static str, Vec<RunMetrics>)>,
}

/// Systems compared by [`run_per_bank_study`]: all-bank baseline, ROP on
/// all-bank refresh, per-bank baseline, ROP on per-bank refresh, and the
/// no-refresh bound.
pub const PER_BANK_SYSTEMS: [SystemKind; 5] = [
    SystemKind::Baseline,
    SystemKind::Rop { buffer: 64 },
    SystemKind::PerBankRefresh,
    SystemKind::RopPerBank { buffer: 64 },
    SystemKind::NoRefresh,
];

/// Runs the §VII future-work study: does refresh-oriented prefetching
/// still pay off when refresh granularity shrinks to a single bank?
pub fn run_per_bank_study(spec: RunSpec) -> PerBankStudy {
    let mut items = Vec::new();
    for &b in &EXTENSION_BENCHMARKS {
        for &k in &PER_BANK_SYSTEMS {
            items.push((b, k));
        }
    }
    let metrics = parallel_map(items, |&(b, k)| {
        let mut sys = System::new(SystemConfig::single_core(b, k, spec.seed));
        sys.run_until(spec.instructions, spec.max_cycles)
    });
    let rows = EXTENSION_BENCHMARKS
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.name(),
                metrics[i * PER_BANK_SYSTEMS.len()..(i + 1) * PER_BANK_SYSTEMS.len()].to_vec(),
            )
        })
        .collect();
    PerBankStudy { rows }
}

impl PerBankStudy {
    /// Renders IPC normalised to the all-bank Baseline.
    pub fn render(&self) -> String {
        let header: Vec<String> = std::iter::once("benchmark".to_string())
            .chain(PER_BANK_SYSTEMS.iter().map(|k| k.label()))
            .collect();
        let mut t = TableBuilder::new(
            "Extension (§VII) — per-bank refresh: IPC normalised to all-bank Baseline",
        )
        .header(header);
        for (name, ms) in &self.rows {
            let base = ms[0].ipc();
            let mut cells = vec![name.to_string()];
            for m in ms {
                cells.push(format!("{:.3}", m.ipc() / base));
            }
            t.row(cells);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_system_runs_and_refreshes() {
        let spec = RunSpec {
            instructions: 300_000,
            max_cycles: 60_000_000,
            seed: 3,
        };
        let mut sys = System::new(SystemConfig::single_core(
            Benchmark::Libquantum,
            SystemKind::ElasticRefresh,
            spec.seed,
        ));
        let m = sys.run_until(spec.instructions, spec.max_cycles);
        assert!(!m.hit_cycle_cap);
        assert!(m.refreshes > 0, "elastic must still refresh");
        // Long-run refresh rate stays near one per tREFI (debt bounded).
        let expected = m.total_cycles / 6240;
        assert!(
            m.refreshes + 8 >= expected,
            "refreshes {} vs expected {}",
            m.refreshes,
            expected
        );
    }

    #[test]
    fn fgr_modes_change_refresh_count() {
        use rop_dram::TimingParams;
        let spec = RunSpec {
            instructions: 300_000,
            max_cycles: 60_000_000,
            seed: 3,
        };
        let mut counts = Vec::new();
        for timing in [
            TimingParams::ddr4_1600_8gb(),
            TimingParams::ddr4_1600_8gb_fgr4x(),
        ] {
            let mut cfg =
                SystemConfig::single_core(Benchmark::Libquantum, SystemKind::Baseline, spec.seed);
            let mut ctrl = cfg.kind.memctrl_config(cfg.ranks, cfg.seed);
            ctrl.dram.timing = timing;
            cfg.ctrl_override = Some(ctrl);
            let mut sys = System::new(cfg);
            let m = sys.run_until(spec.instructions, spec.max_cycles);
            counts.push((m.refreshes, m.total_cycles));
        }
        // 4x mode refreshes ~4× as often per cycle.
        let (r1, c1) = counts[0];
        let (r4, c4) = counts[1];
        let rate1 = r1 as f64 / c1 as f64;
        let rate4 = r4 as f64 / c4 as f64;
        assert!(
            rate4 > 3.0 * rate1,
            "4x rate {rate4:.6} vs 1x rate {rate1:.6}"
        );
    }
}
