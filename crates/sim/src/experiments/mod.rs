//! One module per table/figure of the paper's evaluation, plus the
//! ablation studies called out in DESIGN.md.
//!
//! Every experiment exposes a `run(spec) -> …Result` function returning
//! structured rows and a `render()` on the result producing the ASCII
//! table the `repro` binary prints. Experiments sharing simulations
//! (e.g. Figures 2/3/4 and Table I all come from the same baseline runs)
//! share a backing module.

pub mod ablations;
pub mod analysis_figs;
pub mod driver;
pub mod extensions;
pub mod mechanisms;
pub mod multicore;
pub mod sensitivity;
pub mod singlecore;
pub mod tail_latency;

pub use ablations::{
    ablate_drain, ablate_drain_with, ablate_table, ablate_table_with, ablate_throttle,
    ablate_throttle_with, ablate_window, ablate_window_with, AblationResult,
};
pub use analysis_figs::{run_analysis, AnalysisResult};
pub use driver::{
    job_id, plan_experiment, plan_jobs, render_experiment, PlanExecutor, EXPERIMENTS,
};
pub use extensions::{
    run_fgr_sweep, run_per_bank_study, run_policy_comparison, FgrSweep, PerBankStudy,
    PolicyComparison,
};
pub use mechanisms::{
    run_mechanisms, run_mechanisms_on, run_mechanisms_with, MechanismsResult, MECHANISM_BENCHMARKS,
};
pub use multicore::{run_multicore, run_multicore_on, AloneIpcs, MulticoreResult};
pub use sensitivity::{run_llc_sweep, run_llc_sweep_with, LlcSweepResult};
pub use singlecore::{run_singlecore, run_singlecore_on, run_singlecore_with, SinglecoreResult};
pub use tail_latency::{
    run_tail_latency, run_tail_latency_with, tail_latency_jobs, TailLatencyResult,
    OFFERED_LOADS_RPKC,
};
