//! Experiment runner: builds and runs systems, with a scoped-thread
//! parallel map for sweeping benchmarks × systems.

use rop_trace::{Benchmark, WorkloadMix};

use crate::config::{SystemConfig, SystemKind};
use crate::metrics::RunMetrics;
use crate::system::System;
use crate::Cycle;

/// Work quota and safety cap for a run.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Instructions each core must retire.
    pub instructions: u64,
    /// Hard cycle cap (guards against pathological configurations).
    pub max_cycles: Cycle,
    /// Master seed.
    pub seed: u64,
}

impl RunSpec {
    /// Quick spec for tests and smoke runs.
    pub fn quick() -> Self {
        RunSpec {
            instructions: 300_000,
            max_cycles: 50_000_000,
            seed: 42,
        }
    }

    /// Full spec used by the `repro` binary (several thousand refreshes
    /// per run; minutes per figure on a laptop-class machine).
    pub fn full() -> Self {
        RunSpec {
            instructions: 20_000_000,
            max_cycles: 2_000_000_000,
            seed: 42,
        }
    }

    /// Reads `ROP_INSTR` (instructions per core) from the environment, or
    /// falls back to [`RunSpec::full`]. Lets CI shrink the workload.
    pub fn from_env() -> Self {
        Self::from_env_with(|key| std::env::var(key).ok())
    }

    /// [`RunSpec::from_env`] with an injected variable getter, so tests
    /// can exercise the parsing without mutating process-global state.
    pub fn from_env_with(getter: impl Fn(&str) -> Option<String>) -> Self {
        let mut spec = Self::full();
        if let Some(v) = getter("ROP_INSTR") {
            if let Ok(n) = v.trim().parse::<u64>() {
                spec.instructions = n.max(1);
            }
        }
        spec
    }
}

/// Runs one single-core experiment.
pub fn run_single(benchmark: Benchmark, kind: SystemKind, spec: RunSpec) -> RunMetrics {
    let mut sys = System::new(SystemConfig::single_core(benchmark, kind, spec.seed));
    sys.run_until(spec.instructions, spec.max_cycles)
}

/// Runs one single-core experiment through the per-cycle reference loop.
/// Produces bit-identical metrics to [`run_single`]; exists so benchmarks
/// and differential tests can compare engine implementations.
pub fn run_single_reference(benchmark: Benchmark, kind: SystemKind, spec: RunSpec) -> RunMetrics {
    let mut sys = System::new(SystemConfig::single_core(benchmark, kind, spec.seed));
    sys.run_until_reference(spec.instructions, spec.max_cycles)
}

/// Runs one 4-core multiprogram experiment with the given LLC size (MiB).
pub fn run_multi(mix: WorkloadMix, kind: SystemKind, llc_mib: usize, spec: RunSpec) -> RunMetrics {
    let mut cfg = SystemConfig::multi_core(mix.programs, kind, spec.seed);
    cfg.llc = rop_cache::CacheConfig::llc_mib(llc_mib);
    let mut sys = System::new(cfg);
    sys.run_until(spec.instructions, spec.max_cycles)
}

/// Applies `f` to every item of `items` on scoped worker threads and
/// returns the results in input order. The simulator is single-threaded
/// per system, so figure-level sweeps parallelise across runs.
///
/// Workers pull indices from a shared atomic counter and send each
/// `(index, result)` over a channel as soon as it is ready, so no lock
/// is held across runs and slow items don't serialize the rest.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, items, f) = (&next, &items, &f);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // A send error means the receiver is gone, which only
                // happens if the scope is unwinding from a panic.
                let _ = tx.send((i, f(&items[i])));
            });
        }
        drop(tx);
        for (i, r) in rx {
            results[i] = Some(r);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(items, |&x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn spec_from_env_parses() {
        // Injected getter: no process-global env mutation, safe under
        // the parallel test runner.
        let s = RunSpec::from_env_with(|k| (k == "ROP_INSTR").then(|| "1234".to_string()));
        assert_eq!(s.instructions, 1234);
        let s = RunSpec::from_env_with(|_| None);
        assert_eq!(s.instructions, RunSpec::full().instructions);
        // Garbage and zero values fall back / clamp.
        let s = RunSpec::from_env_with(|_| Some("not a number".to_string()));
        assert_eq!(s.instructions, RunSpec::full().instructions);
        let s = RunSpec::from_env_with(|_| Some("0".to_string()));
        assert_eq!(s.instructions, 1);
    }

    #[test]
    fn run_single_smoke() {
        let m = run_single(
            rop_trace::Benchmark::Bzip2,
            SystemKind::Baseline,
            RunSpec {
                instructions: 50_000,
                max_cycles: 10_000_000,
                seed: 1,
            },
        );
        assert!(!m.hit_cycle_cap);
        assert!(m.ipc() > 0.0);
    }
}
