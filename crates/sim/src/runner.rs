//! Experiment runner: builds and runs systems, with a scoped-thread
//! parallel map for sweeping benchmarks × systems.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use rop_trace::{Benchmark, WorkloadMix};

use crate::config::{SystemConfig, SystemKind};
use crate::metrics::RunMetrics;
use crate::system::System;
use crate::Cycle;

/// Cooperative cancellation and progress heartbeat shared between a
/// running simulation and an external watchdog.
///
/// The simulation side calls [`CancelToken::beat`] with its current
/// cycle on every engine iteration and [`CancelToken::checkpoint`]s at
/// the same cadence; a supervisor thread reads [`CancelToken::progress`]
/// from outside and calls [`CancelToken::cancel`] when the heartbeat
/// stalls (hung job) or exceeds a cycle budget. Cancellation surfaces as
/// a labeled panic at the next checkpoint, which the harness pool's
/// `catch_unwind` fault isolation converts into a retryable attempt
/// failure — so a cancelled job is indistinguishable from any other
/// isolated fault and the sweep keeps draining.
///
/// Deliberately built from atomics only: no wall-clock state lives in
/// this (deterministic) crate, and when nobody cancels, beating is a
/// pair of relaxed atomic operations that cannot perturb simulation
/// results.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
    heartbeat: AtomicU64,
}

impl CancelToken {
    /// A fresh, shareable token.
    pub fn new() -> Arc<CancelToken> {
        Arc::new(CancelToken::default())
    }

    /// Requests cancellation; the running job panics at its next
    /// [`CancelToken::checkpoint`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Publishes the job's progress (the current simulation cycle).
    pub fn beat(&self, progress: u64) {
        self.heartbeat.store(progress, Ordering::Relaxed);
    }

    /// The most recently published progress value.
    pub fn progress(&self) -> u64 {
        self.heartbeat.load(Ordering::Relaxed)
    }

    /// Cooperative cancellation point: panics when cancelled.
    pub fn checkpoint(&self) {
        if self.is_cancelled() {
            // Documented contract: cancellation IS a panic, so the
            // pool's fault isolation handles it like any other failure.
            panic!("cancelled by watchdog at cycle {}", self.progress()); // rop-lint: allow(no-panic)
        }
    }
}

/// Work quota and safety cap for a run.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Instructions each core must retire.
    pub instructions: u64,
    /// Hard cycle cap (guards against pathological configurations).
    pub max_cycles: Cycle,
    /// Master seed.
    pub seed: u64,
}

impl RunSpec {
    /// Quick spec for tests and smoke runs.
    pub fn quick() -> Self {
        RunSpec {
            instructions: 300_000,
            max_cycles: 50_000_000,
            seed: 42,
        }
    }

    /// Full spec used by the `repro` binary (several thousand refreshes
    /// per run; minutes per figure on a laptop-class machine).
    pub fn full() -> Self {
        RunSpec {
            instructions: 20_000_000,
            max_cycles: 2_000_000_000,
            seed: 42,
        }
    }

    /// Reads `ROP_INSTR` (instructions per core), `ROP_SEED` (master
    /// seed) and `ROP_MAX_CYCLES` (safety cap) from the environment,
    /// falling back to [`RunSpec::full`] for anything unset or
    /// malformed. Lets CI shrink the workload.
    pub fn from_env() -> Self {
        Self::from_env_with(|key| std::env::var(key).ok())
    }

    /// [`RunSpec::from_env`] with an injected variable getter, so tests
    /// can exercise the parsing without mutating process-global state.
    pub fn from_env_with(getter: impl Fn(&str) -> Option<String>) -> Self {
        let parse = |key: &str| -> Option<u64> { getter(key)?.trim().parse::<u64>().ok() };
        let mut spec = Self::full();
        if let Some(n) = parse("ROP_INSTR") {
            spec.instructions = n.max(1);
        }
        if let Some(n) = parse("ROP_SEED") {
            spec.seed = n;
        }
        if let Some(n) = parse("ROP_MAX_CYCLES") {
            spec.max_cycles = n.max(1);
        }
        spec
    }
}

/// Extracts the human-readable message from a panic payload (the
/// `Box<dyn Any>` that [`std::panic::catch_unwind`] returns).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, and if it panics re-raises with `label` prepended to the
/// panic message so sweep-level failures identify the offending
/// benchmark × system instead of an anonymous worker thread.
pub fn with_panic_label<R>(label: &str, f: impl FnOnce() -> R) -> R {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            std::panic::panic_any(format!("[{label}] {}", panic_message(payload.as_ref())))
        }
    }
}

/// Runs one single-core experiment.
pub fn run_single(benchmark: Benchmark, kind: SystemKind, spec: RunSpec) -> RunMetrics {
    let mut sys = System::new(SystemConfig::single_core(benchmark, kind, spec.seed));
    sys.run_until(spec.instructions, spec.max_cycles)
}

/// Runs one single-core experiment through the per-cycle reference loop.
/// Produces bit-identical metrics to [`run_single`]; exists so benchmarks
/// and differential tests can compare engine implementations.
pub fn run_single_reference(benchmark: Benchmark, kind: SystemKind, spec: RunSpec) -> RunMetrics {
    let mut sys = System::new(SystemConfig::single_core(benchmark, kind, spec.seed));
    sys.run_until_reference(spec.instructions, spec.max_cycles)
}

/// Runs one 4-core multiprogram experiment with the given LLC size (MiB).
pub fn run_multi(mix: WorkloadMix, kind: SystemKind, llc_mib: usize, spec: RunSpec) -> RunMetrics {
    let mut cfg = SystemConfig::multi_core(mix.programs, kind, spec.seed);
    cfg.llc = rop_cache::CacheConfig::llc_mib(llc_mib);
    let mut sys = System::new(cfg);
    sys.run_until(spec.instructions, spec.max_cycles)
}

/// One fully-resolved simulation in a sweep: everything needed to build
/// and run a [`System`], plus a human-readable label for progress
/// reporting and panic attribution.
///
/// Jobs are *declarative*: an experiment enumerates its jobs and hands
/// them to a [`SweepExecutor`], which decides how (and whether) to run
/// them — in-process for the classic figures, or through the persistent
/// `rop-harness` store for resumable sweeps.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Display label, e.g. `single/lbm/ROP-64`. Not part of the
    /// identity hash: relabeling must not invalidate stored results.
    pub label: String,
    /// The resolved system configuration (including any controller
    /// override an ablation applied).
    pub config: SystemConfig,
    /// Work quota and seed.
    pub spec: RunSpec,
    /// Run with the invariant auditor attached (see [`crate::audit`]).
    /// Deliberately *not* part of [`SweepJob::fingerprint`]: auditing
    /// checks a run, it does not change what is simulated, so stored
    /// results keep their identity either way.
    pub audit: bool,
}

impl SweepJob {
    /// A single-core job as the paper's single-core experiments run it.
    pub fn single(prefix: &str, benchmark: Benchmark, kind: SystemKind, spec: RunSpec) -> Self {
        SweepJob {
            label: format!("{prefix}/{}/{}", benchmark.name(), kind.label()),
            config: SystemConfig::single_core(benchmark, kind, spec.seed),
            spec,
            audit: false,
        }
    }

    /// A 4-core multiprogram job with an explicit LLC size.
    pub fn multi(mix: WorkloadMix, kind: SystemKind, llc_mib: usize, spec: RunSpec) -> Self {
        let mut config = SystemConfig::multi_core(mix.programs, kind, spec.seed);
        config.llc = rop_cache::CacheConfig::llc_mib(llc_mib);
        SweepJob {
            label: format!("multi/llc{llc_mib}/{}/{}", mix.name, kind.label()),
            config,
            spec,
            audit: false,
        }
    }

    /// A job over an arbitrary configuration (ablations, alone-IPC runs).
    pub fn custom(label: impl Into<String>, config: SystemConfig, spec: RunSpec) -> Self {
        SweepJob {
            label: label.into(),
            config,
            spec,
            audit: false,
        }
    }

    /// Returns the job with auditing switched on or off.
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// Content hash of the job identity: the fully-resolved
    /// configuration plus the run spec (instructions, cycle cap, seed).
    /// Two jobs with the same hash would simulate the identical system,
    /// so a results store can dedup on it; any config or spec change
    /// produces a fresh identity. FNV-1a over the `Debug` rendering of
    /// the resolved config — stable across runs of the same build, and
    /// deliberately *invalidated* when a config field is added or
    /// changed, which is exactly when cached metrics go stale.
    pub fn fingerprint(&self) -> u64 {
        let canonical = format!("{:?}|{:?}", self.config, self.spec);
        fnv1a_64(canonical.as_bytes())
    }

    /// Runs the simulation (panicking with this job's label on any
    /// internal failure, including config validation).
    pub fn run(&self) -> RunMetrics {
        self.run_with(CancelToken::new())
    }

    /// [`SweepJob::run`] under a cancellation token: the simulation
    /// beats `token` with its cycle count as it advances and panics
    /// (with this job's label) at the next engine iteration after
    /// `token.cancel()` — the seam a watchdog uses to reclaim hung
    /// jobs.
    pub fn run_with(&self, token: Arc<CancelToken>) -> RunMetrics {
        with_panic_label(&self.label, || {
            if let Err(e) = self.config.validate() {
                // Documented contract: run() panics with the job label so
                // the pool can record a labeled failure.
                panic!("invalid config: {e}"); // rop-lint: allow(no-panic)
            }
            if self.config.open_loop.is_some() {
                // Open-loop jobs run the datacenter-traffic injector
                // instead of the trace-driven core pipeline.
                let mut sys = crate::OpenLoopSystem::new(self.config.clone());
                sys.set_cancel_token(token.clone());
                if self.audit {
                    sys.enable_audit();
                }
                return sys.run();
            }
            let mut sys = System::new(self.config.clone());
            sys.set_cancel_token(token.clone());
            if self.audit {
                sys.enable_audit();
            }
            sys.run_until(self.spec.instructions, self.spec.max_cycles)
        })
    }

    /// Zeroed metrics shaped like this job's output (right core count
    /// and labels). Used by planners that enumerate jobs without
    /// running them.
    pub fn placeholder_metrics(&self) -> RunMetrics {
        RunMetrics {
            system: self.config.kind.label(),
            // Open-loop runs have no trace-driven cores; mirror that
            // shape so planners render the right columns.
            cores: if self.config.open_loop.is_some() {
                Vec::new()
            } else {
                self.config
                    .benchmarks
                    .iter()
                    .map(|b| crate::metrics::CoreMetrics {
                        benchmark: b.name().to_string(),
                        instructions: 0,
                        finish_cycle: 0,
                        ipc: 0.0,
                        llc_hits: 0,
                        read_misses: 0,
                        stall_cycles: 0,
                    })
                    .collect()
            },
            total_cycles: 0,
            energy: Default::default(),
            refreshes: 0,
            mechanism: self
                .config
                .kind
                .memctrl_config(self.config.ranks, self.config.seed)
                .mechanism
                .label()
                .to_string(),
            refresh_blocked_cycles: 0,
            refreshes_skipped: 0,
            refreshes_pulled_in: 0,
            sram_hit_rate: 0.0,
            sram_lookups: 0,
            prefetches: 0,
            analysis: Vec::new(),
            row_hit_rate: 0.0,
            avg_read_latency: 0.0,
            hit_cycle_cap: false,
            wall_seconds: 0.0,
            instructions_total: 0,
            events: 0,
            audit: None,
            open_loop: self
                .config
                .open_loop
                .as_ref()
                .map(|ol| crate::metrics::OpenLoopMetrics {
                    process: ol.process.label().to_string(),
                    offered_rpkc: ol.offered_rpkc,
                    achieved_rpkc: 0.0,
                    reads_injected: 0,
                    writes_injected: 0,
                    backlog_peak: 0,
                    backlog_final: 0,
                    saturated: false,
                    read_latency: Default::default(),
                    refresh_blocked_latency: Default::default(),
                }),
        }
    }
}

/// 64-bit FNV-1a — the store's stable content hash (no dependency on
/// `std::hash` internals, identical in every process and build).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Strategy for executing a batch of sweep jobs. `execute` must return
/// one [`RunMetrics`] per job, in input order.
///
/// The in-process [`LocalExecutor`] runs everything fresh via
/// [`parallel_map_labeled`]; the harness crate provides a store-backed
/// executor with persistence, fault isolation and resume.
pub trait SweepExecutor {
    /// Executes (or resolves from cache) every job, preserving order.
    fn execute(&self, jobs: Vec<SweepJob>) -> Vec<RunMetrics>;
}

/// Default executor: fresh in-process runs on scoped worker threads,
/// panics propagated (with job labels) on first failure.
pub struct LocalExecutor;

impl SweepExecutor for LocalExecutor {
    fn execute(&self, jobs: Vec<SweepJob>) -> Vec<RunMetrics> {
        parallel_map_labeled(
            jobs,
            |j| Some(j.label.clone()),
            |j| {
                if let Err(e) = j.config.validate() {
                    panic!("invalid config: {e}"); // rop-lint: allow(no-panic)
                }
                if j.config.open_loop.is_some() {
                    let mut sys = crate::OpenLoopSystem::new(j.config.clone());
                    if j.audit {
                        sys.enable_audit();
                    }
                    return sys.run();
                }
                let mut sys = System::new(j.config.clone());
                if j.audit {
                    sys.enable_audit();
                }
                sys.run_until(j.spec.instructions, j.spec.max_cycles)
            },
        )
    }
}

/// Executor adapter that switches auditing on for every job before
/// delegating to the wrapped executor. Lets `--audit` flags reuse the
/// experiment drivers unchanged — they keep constructing plain jobs.
pub struct AuditingExecutor<'a>(pub &'a dyn SweepExecutor);

impl SweepExecutor for AuditingExecutor<'_> {
    fn execute(&self, jobs: Vec<SweepJob>) -> Vec<RunMetrics> {
        self.0
            .execute(jobs.into_iter().map(|j| j.with_audit(true)).collect())
    }
}

/// Applies `f` to every item of `items` on scoped worker threads and
/// returns the results in input order. The simulator is single-threaded
/// per system, so figure-level sweeps parallelise across runs.
///
/// Workers pull indices from a shared atomic counter and send each
/// `(index, result)` over a channel as soon as it is ready, so no lock
/// is held across runs and slow items don't serialize the rest.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_labeled(items, |_| None, f)
}

/// [`parallel_map`] variant that labels each item: when a worker
/// panics, the propagated message is prefixed with the failing item's
/// label (see [`with_panic_label`]) instead of losing which input died.
pub fn parallel_map_labeled<T, R, F, L>(items: Vec<T>, label: L, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    L: Fn(&T) -> Option<String> + Sync,
{
    let run_one = |item: &T| -> R {
        match label(item) {
            Some(l) => with_panic_label(&l, || f(item)),
            None => f(item),
        }
    };
    if items.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    if threads <= 1 {
        return items.iter().map(run_one).collect();
    }

    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, items, run_one) = (&next, &items, &run_one);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // A send error means the receiver is gone, which only
                // happens if the scope is unwinding from a panic.
                let _ = tx.send((i, run_one(&items[i])));
            });
        }
        drop(tx);
        for (i, r) in rx {
            results[i] = Some(r);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(items, |&x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn spec_from_env_parses() {
        // Injected getter: no process-global env mutation, safe under
        // the parallel test runner.
        let s = RunSpec::from_env_with(|k| (k == "ROP_INSTR").then(|| "1234".to_string()));
        assert_eq!(s.instructions, 1234);
        let s = RunSpec::from_env_with(|_| None);
        assert_eq!(s.instructions, RunSpec::full().instructions);
        // Garbage values fall back; zero instruction quota clamps to 1.
        let s = RunSpec::from_env_with(|_| Some("not a number".to_string()));
        assert_eq!(s.instructions, RunSpec::full().instructions);
        let s = RunSpec::from_env_with(|k| (k == "ROP_INSTR").then(|| "0".to_string()));
        assert_eq!(s.instructions, 1);
    }

    #[test]
    fn spec_from_env_parses_seed_and_max_cycles() {
        let s = RunSpec::from_env_with(|k| match k {
            "ROP_SEED" => Some(" 77 ".to_string()),
            "ROP_MAX_CYCLES" => Some("123456".to_string()),
            _ => None,
        });
        assert_eq!(s.seed, 77);
        assert_eq!(s.max_cycles, 123_456);
        assert_eq!(s.instructions, RunSpec::full().instructions);
        // Malformed values leave the full-spec defaults untouched.
        let s = RunSpec::from_env_with(|k| match k {
            "ROP_SEED" => Some("-3".to_string()),
            "ROP_MAX_CYCLES" => Some("1e9".to_string()),
            _ => None,
        });
        assert_eq!(s.seed, RunSpec::full().seed);
        assert_eq!(s.max_cycles, RunSpec::full().max_cycles);
        // A zero cycle cap would spin forever doing nothing: clamp to 1.
        let s = RunSpec::from_env_with(|k| (k == "ROP_MAX_CYCLES").then(|| "0".to_string()));
        assert_eq!(s.max_cycles, 1);
    }

    #[test]
    fn labeled_panic_names_the_failing_item() {
        let items: Vec<u64> = (0..8).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map_labeled(
                items,
                |&x| Some(format!("job-{x}")),
                |&x| {
                    if x == 5 {
                        panic!("boom at {x}");
                    }
                    x
                },
            )
        }));
        let msg = panic_message(caught.unwrap_err().as_ref());
        assert!(msg.contains("[job-5]"), "label missing from '{msg}'");
        assert!(msg.contains("boom at 5"), "message lost in '{msg}'");
    }

    #[test]
    fn sweep_job_fingerprint_is_content_hash() {
        let spec = RunSpec::quick();
        let a = SweepJob::single(
            "single",
            rop_trace::Benchmark::Lbm,
            SystemKind::Baseline,
            spec,
        );
        let b = SweepJob::single(
            "single",
            rop_trace::Benchmark::Lbm,
            SystemKind::Baseline,
            spec,
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Label changes do NOT change identity…
        let mut c = a.clone();
        c.label = "renamed".into();
        assert_eq!(a.fingerprint(), c.fingerprint());
        // …but any config or spec change does.
        let d = SweepJob::single(
            "single",
            rop_trace::Benchmark::Lbm,
            SystemKind::Rop { buffer: 64 },
            spec,
        );
        assert_ne!(a.fingerprint(), d.fingerprint());
        let mut e = a.clone();
        e.spec.seed += 1;
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn local_executor_matches_run_single() {
        let spec = RunSpec {
            instructions: 20_000,
            max_cycles: 10_000_000,
            seed: 3,
        };
        let job = SweepJob::single("t", rop_trace::Benchmark::Bzip2, SystemKind::Baseline, spec);
        let via_exec = LocalExecutor.execute(vec![job]).pop().unwrap();
        let direct = run_single(rop_trace::Benchmark::Bzip2, SystemKind::Baseline, spec);
        assert_eq!(via_exec.total_cycles, direct.total_cycles);
        assert_eq!(via_exec.cores[0].instructions, direct.cores[0].instructions);
    }

    #[test]
    fn placeholder_metrics_match_core_count() {
        let spec = RunSpec::quick();
        let job = SweepJob::multi(rop_trace::WORKLOAD_MIXES[0], SystemKind::Baseline, 4, spec);
        let m = job.placeholder_metrics();
        assert_eq!(m.cores.len(), 4);
        assert_eq!(m.total_cycles, 0);
        assert!(m.open_loop.is_none());
    }

    #[test]
    fn executors_dispatch_open_loop_jobs_to_the_injector() {
        let spec = RunSpec {
            instructions: 30_000,
            max_cycles: 1_000_000,
            seed: 5,
        };
        let job = SweepJob::custom(
            "tail/test",
            crate::experiments::tail_latency::tail_config(
                SystemKind::Baseline,
                rop_trace::ArrivalProcess::Poisson,
                80.0,
                30_000,
                spec.seed,
            ),
            spec,
        );
        // Placeholder mirrors the open-loop shape (no cores, tail block).
        let ph = job.placeholder_metrics();
        assert!(ph.cores.is_empty());
        assert_eq!(ph.open_loop.as_ref().unwrap().process, "poisson");
        // Both executor paths route to the injector and agree exactly.
        let via_exec = LocalExecutor.execute(vec![job.clone()]).pop().unwrap();
        let direct = job.run();
        let ol = via_exec.open_loop.as_ref().expect("open-loop metrics");
        assert!(ol.read_latency.count() > 0);
        assert_eq!(
            ol.read_latency,
            direct.open_loop.as_ref().unwrap().read_latency
        );
        // An audited open-loop job runs clean end to end.
        let audited = LocalExecutor
            .execute(vec![job.with_audit(true)])
            .pop()
            .unwrap();
        assert_eq!(audited.audit.unwrap().violations, 0);
    }

    #[test]
    fn cancel_token_aborts_a_running_job_with_its_label() {
        let spec = RunSpec {
            instructions: 50_000_000, // far more work than we let it do
            max_cycles: u64::MAX / 2,
            seed: 1,
        };
        let job = SweepJob::single("t", rop_trace::Benchmark::Lbm, SystemKind::Baseline, spec);
        let token = CancelToken::new();
        token.cancel(); // pre-cancelled: the first checkpoint fires
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run_with(token.clone())));
        let msg = panic_message(caught.unwrap_err().as_ref());
        assert!(msg.contains("cancelled by watchdog"), "{msg}");
        assert!(msg.contains(&job.label), "label lost: {msg}");
    }

    #[test]
    fn heartbeat_reports_forward_progress() {
        let spec = RunSpec {
            instructions: 20_000,
            max_cycles: 10_000_000,
            seed: 2,
        };
        let job = SweepJob::single("t", rop_trace::Benchmark::Bzip2, SystemKind::Baseline, spec);
        let token = CancelToken::new();
        let m = job.run_with(token.clone());
        // The final beat left the last simulated cycle behind; an
        // uncancelled run is unaffected by the token.
        assert!(token.progress() > 0);
        assert!(token.progress() <= m.total_cycles + 1);
        assert!(!token.is_cancelled());
        let bare = job.run();
        assert_eq!(
            bare.total_cycles, m.total_cycles,
            "token must not perturb results"
        );
    }

    #[test]
    fn run_single_smoke() {
        let m = run_single(
            rop_trace::Benchmark::Bzip2,
            SystemKind::Baseline,
            RunSpec {
                instructions: 50_000,
                max_cycles: 10_000_000,
                seed: 1,
            },
        );
        assert!(!m.hit_cycle_cap);
        assert!(m.ipc() > 0.0);
    }
}
