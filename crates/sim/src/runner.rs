//! Experiment runner: builds and runs systems, with a scoped-thread
//! parallel map for sweeping benchmarks × systems.

use rop_trace::{Benchmark, WorkloadMix};

use crate::config::{SystemConfig, SystemKind};
use crate::metrics::RunMetrics;
use crate::system::System;
use crate::Cycle;

/// Work quota and safety cap for a run.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Instructions each core must retire.
    pub instructions: u64,
    /// Hard cycle cap (guards against pathological configurations).
    pub max_cycles: Cycle,
    /// Master seed.
    pub seed: u64,
}

impl RunSpec {
    /// Quick spec for tests and smoke runs.
    pub fn quick() -> Self {
        RunSpec {
            instructions: 300_000,
            max_cycles: 50_000_000,
            seed: 42,
        }
    }

    /// Full spec used by the `repro` binary (several thousand refreshes
    /// per run; minutes per figure on a laptop-class machine).
    pub fn full() -> Self {
        RunSpec {
            instructions: 20_000_000,
            max_cycles: 2_000_000_000,
            seed: 42,
        }
    }

    /// Reads `ROP_INSTR` (instructions per core) from the environment, or
    /// falls back to [`RunSpec::full`]. Lets CI shrink the workload.
    pub fn from_env() -> Self {
        let mut spec = Self::full();
        if let Ok(v) = std::env::var("ROP_INSTR") {
            if let Ok(n) = v.trim().parse::<u64>() {
                spec.instructions = n.max(1);
            }
        }
        spec
    }
}

/// Runs one single-core experiment.
pub fn run_single(benchmark: Benchmark, kind: SystemKind, spec: RunSpec) -> RunMetrics {
    let mut sys = System::new(SystemConfig::single_core(benchmark, kind, spec.seed));
    sys.run_until(spec.instructions, spec.max_cycles)
}

/// Runs one 4-core multiprogram experiment with the given LLC size (MiB).
pub fn run_multi(mix: WorkloadMix, kind: SystemKind, llc_mib: usize, spec: RunSpec) -> RunMetrics {
    let mut cfg = SystemConfig::multi_core(mix.programs, kind, spec.seed);
    cfg.llc = rop_cache::CacheConfig::llc_mib(llc_mib);
    let mut sys = System::new(cfg);
    sys.run_until(spec.instructions, spec.max_cycles)
}

/// Applies `f` to every item of `items` on scoped worker threads and
/// returns the results in input order. The simulator is single-threaded
/// per system, so figure-level sweeps parallelise across runs.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut results);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                let mut guard = results_mutex.lock().expect("no poisoned workers");
                guard[i] = Some(r);
            });
        }
    })
    .expect("worker thread panicked");
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(items, |&x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn spec_from_env_parses() {
        // Note: sets a process-global env var; value restored after.
        std::env::set_var("ROP_INSTR", "1234");
        let s = RunSpec::from_env();
        assert_eq!(s.instructions, 1234);
        std::env::remove_var("ROP_INSTR");
        let s = RunSpec::from_env();
        assert_eq!(s.instructions, RunSpec::full().instructions);
    }

    #[test]
    fn run_single_smoke() {
        let m = run_single(
            rop_trace::Benchmark::Bzip2,
            SystemKind::Baseline,
            RunSpec {
                instructions: 50_000,
                max_cycles: 10_000_000,
                seed: 1,
            },
        );
        assert!(!m.hit_cycle_cap);
        assert!(m.ipc() > 0.0);
    }
}
