//! System-level configuration: which memory system, which workloads.

use rop_cache::CacheConfig;
use rop_cpu::CoreConfig;
use rop_dram::DramConfig;
use rop_memctrl::MemCtrlConfig;
use rop_trace::{AddressPattern, ArrivalProcess, Benchmark};

use crate::Cycle;

/// The memory systems compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Auto-refresh baseline with conventional interleaved mapping.
    Baseline,
    /// Baseline plus rank partitioning (the paper's Baseline-RP).
    BaselineRp,
    /// Full ROP: rank partitioning + refresh-oriented prefetching with an
    /// SRAM buffer of this many cache lines.
    Rop {
        /// SRAM buffer capacity in cache lines (16/32/64/128 in the paper).
        buffer: usize,
    },
    /// Idealised memory that never refreshes (upper bound).
    NoRefresh,
    /// Baseline scheduling with Elastic Refresh (Stuecheli et al.,
    /// MICRO'10) — the related-work refresh-hiding scheduler, for
    /// quantitative comparison against ROP.
    ElasticRefresh,
    /// Baseline with per-bank refresh (REFpb): each bank refreshes
    /// independently, freezing only itself — the paper's §VII
    /// future-work memory model.
    PerBankRefresh,
    /// ROP running on top of per-bank refresh (§VII: "we anticipate
    /// similar efficacy in those memory systems as well").
    RopPerBank {
        /// SRAM buffer capacity in cache lines.
        buffer: usize,
    },
    /// DARP (Chang et al., HPCA'14): per-bank refresh with out-of-order
    /// idle-bank selection — refreshes are pulled into idle windows and
    /// write-drain phases instead of waiting for their nominal due.
    Darp,
    /// SARP (Chang et al., HPCA'14): subarray-level parallelism — only
    /// the refreshing subarray of a bank freezes; siblings keep serving.
    Sarp,
    /// RAIDR (Liu et al., ISCA'12): retention-aware binning — rows that
    /// retain longer than 64 ms are refreshed at 128/256 ms rates, so
    /// most rounds shrink or skip entirely.
    Raidr,
}

impl SystemKind {
    /// Display label as used in the paper's figures.
    pub fn label(&self) -> String {
        match self {
            SystemKind::Baseline => "Baseline".to_string(),
            SystemKind::BaselineRp => "Baseline-RP".to_string(),
            SystemKind::Rop { buffer } => format!("ROP-{buffer}"),
            SystemKind::NoRefresh => "No-Refresh".to_string(),
            SystemKind::ElasticRefresh => "Elastic".to_string(),
            SystemKind::PerBankRefresh => "REFpb".to_string(),
            SystemKind::RopPerBank { buffer } => format!("ROP-pb-{buffer}"),
            SystemKind::Darp => "DARP".to_string(),
            SystemKind::Sarp => "SARP".to_string(),
            SystemKind::Raidr => "RAIDR".to_string(),
        }
    }

    /// Builds the controller configuration for this system over `ranks`
    /// ranks. `seed` feeds ROP's probabilistic throttle.
    pub fn memctrl_config(&self, ranks: usize, seed: u64) -> MemCtrlConfig {
        match *self {
            SystemKind::Baseline => MemCtrlConfig::baseline(DramConfig::baseline(ranks)),
            SystemKind::BaselineRp => MemCtrlConfig::baseline_rp(DramConfig::baseline(ranks)),
            SystemKind::Rop { buffer } => {
                MemCtrlConfig::rop(DramConfig::baseline(ranks), buffer, seed)
            }
            SystemKind::NoRefresh => MemCtrlConfig::baseline(DramConfig::no_refresh(ranks)),
            SystemKind::ElasticRefresh => MemCtrlConfig::elastic(DramConfig::baseline(ranks)),
            SystemKind::PerBankRefresh => MemCtrlConfig::per_bank(DramConfig::baseline(ranks)),
            SystemKind::RopPerBank { buffer } => {
                MemCtrlConfig::rop_per_bank(DramConfig::baseline(ranks), buffer, seed)
            }
            SystemKind::Darp => MemCtrlConfig::darp(DramConfig::baseline(ranks)),
            SystemKind::Sarp => MemCtrlConfig::sarp(DramConfig::baseline(ranks)),
            SystemKind::Raidr => MemCtrlConfig::raidr(DramConfig::baseline(ranks), seed),
        }
    }

    /// The refresh-mechanism roster compared head-to-head (AllBank is
    /// the conventional baseline the others are measured against).
    pub const MECHANISMS: [SystemKind; 4] = [
        SystemKind::Baseline,
        SystemKind::Darp,
        SystemKind::Sarp,
        SystemKind::Raidr,
    ];
}

/// Open-loop (datacenter traffic) mode: arrivals on a wall-clock
/// schedule instead of trace-driven cores. Present on a
/// [`SystemConfig`] when the job runs the open-loop injector.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopSpec {
    /// Stochastic clock generating the arrival schedule.
    pub process: ArrivalProcess,
    /// Offered load in requests per kilo-cycle, *summed over tenants*
    /// (each tenant injects `offered_rpkc / tenants`).
    pub offered_rpkc: f64,
    /// Independent traffic sources, each pinned to its own rank via the
    /// rank-partitioned mapping (must not exceed the rank count).
    pub tenants: usize,
    /// Address pattern each tenant walks inside its footprint.
    pub pattern: AddressPattern,
    /// Per-tenant footprint in cache lines.
    pub region_lines: u64,
    /// Fraction of arrivals that are stores.
    pub write_fraction: f64,
    /// Simulated duration in memory cycles (the run is time-bounded,
    /// not work-bounded: tail quantiles need a fixed observation
    /// window).
    pub duration: Cycle,
}

impl OpenLoopSpec {
    /// Validates parameter sanity (process parameters, load, shape).
    pub fn validate(&self) -> Result<(), String> {
        self.process.validate()?;
        if !self.offered_rpkc.is_finite() || self.offered_rpkc <= 0.0 {
            return Err("open-loop offered_rpkc must be finite and positive".into());
        }
        if self.tenants == 0 {
            return Err("open-loop tenants must be non-zero".into());
        }
        if self.region_lines == 0 {
            return Err("open-loop region_lines must be non-zero".into());
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err("open-loop write_fraction must be in [0,1]".into());
        }
        if self.duration == 0 {
            return Err("open-loop duration must be non-zero".into());
        }
        Ok(())
    }
}

/// Everything needed to instantiate a [`crate::System`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Workloads, one per core (1 for single-core, 4 for multi-program).
    pub benchmarks: Vec<Benchmark>,
    /// Which memory system to build.
    pub kind: SystemKind,
    /// Shared LLC configuration (2 MB single-core, 1/2/4 MB multi-core).
    pub llc: CacheConfig,
    /// Core microarchitecture parameters.
    pub core: CoreConfig,
    /// Number of DRAM ranks (1 single-core, 4 multi-core in the paper).
    pub ranks: usize,
    /// Master seed (workloads and ROP derive their streams from it).
    pub seed: u64,
    /// When set, this controller configuration is used verbatim instead
    /// of the one derived from `kind` — the hook the ablation studies use
    /// to tweak individual knobs (window length, throttle mode, drain
    /// budget) while keeping everything else identical.
    pub ctrl_override: Option<MemCtrlConfig>,
    /// When set, the job runs the open-loop injector instead of the
    /// closed-loop core pipeline: `benchmarks` only sizes labels, and
    /// the arrival schedule below drives the memory system directly.
    pub open_loop: Option<OpenLoopSpec>,
}

impl SystemConfig {
    /// Paper single-core setup: one benchmark, 1 rank, 2 MB LLC.
    pub fn single_core(benchmark: Benchmark, kind: SystemKind, seed: u64) -> Self {
        SystemConfig {
            benchmarks: vec![benchmark],
            kind,
            llc: CacheConfig::llc_2mb(),
            core: CoreConfig::default_ooo(),
            ranks: 1,
            seed,
            ctrl_override: None,
            open_loop: None,
        }
    }

    /// Paper 4-core setup: four benchmarks, 4 ranks, 4 MB LLC by default.
    pub fn multi_core(benchmarks: [Benchmark; 4], kind: SystemKind, seed: u64) -> Self {
        SystemConfig {
            benchmarks: benchmarks.to_vec(),
            kind,
            llc: CacheConfig::llc_4mb(),
            core: CoreConfig::default_ooo(),
            ranks: 4,
            seed,
            ctrl_override: None,
            open_loop: None,
        }
    }

    /// Validates shape constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.benchmarks.is_empty() {
            return Err("need at least one core".into());
        }
        if self.benchmarks.len() > self.ranks
            && matches!(
                self.kind,
                SystemKind::BaselineRp | SystemKind::Rop { .. } | SystemKind::RopPerBank { .. }
            )
        {
            return Err(format!(
                "rank partitioning needs one rank per core ({} cores, {} ranks)",
                self.benchmarks.len(),
                self.ranks
            ));
        }
        self.llc.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rop_trace::WORKLOAD_MIXES;

    #[test]
    fn labels() {
        assert_eq!(SystemKind::Baseline.label(), "Baseline");
        assert_eq!(SystemKind::Rop { buffer: 64 }.label(), "ROP-64");
        assert_eq!(SystemKind::NoRefresh.label(), "No-Refresh");
        assert_eq!(SystemKind::BaselineRp.label(), "Baseline-RP");
    }

    #[test]
    fn kind_configs() {
        assert!(SystemKind::Baseline.memctrl_config(1, 0).rop.is_none());
        assert!(SystemKind::Rop { buffer: 32 }
            .memctrl_config(4, 0)
            .rop
            .is_some());
        assert!(
            !SystemKind::NoRefresh
                .memctrl_config(1, 0)
                .dram
                .refresh_enabled
        );
    }

    #[test]
    fn mechanism_roster_builds_valid_configs() {
        for kind in SystemKind::MECHANISMS {
            let cfg = kind.memctrl_config(1, 7);
            cfg.validate().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
        assert_eq!(SystemKind::Darp.label(), "DARP");
        assert_eq!(SystemKind::Sarp.label(), "SARP");
        assert_eq!(SystemKind::Raidr.label(), "RAIDR");
        assert_eq!(
            SystemKind::Raidr.memctrl_config(1, 3).mechanism.label(),
            "raidr"
        );
    }

    #[test]
    fn presets_validate() {
        SystemConfig::single_core(Benchmark::Lbm, SystemKind::Baseline, 1)
            .validate()
            .unwrap();
        SystemConfig::multi_core(
            WORKLOAD_MIXES[0].programs,
            SystemKind::Rop { buffer: 64 },
            1,
        )
        .validate()
        .unwrap();
    }

    #[test]
    fn partitioning_requires_enough_ranks() {
        let mut c = SystemConfig::multi_core(
            WORKLOAD_MIXES[0].programs,
            SystemKind::Rop { buffer: 64 },
            1,
        );
        c.ranks = 2;
        assert!(c.validate().is_err());
        c.kind = SystemKind::Baseline;
        c.validate().unwrap(); // interleaved mapping has no such constraint
    }
}
