//! Run-level metrics extracted from a finished simulation, plus their
//! stable serde-free JSON encoding (the sweep store's record payload).

use rop_dram::EnergyBreakdown;
use rop_memctrl::RefreshAnalysisReport;
use rop_stats::Json;

use crate::audit::AuditSummary;
use crate::Cycle;

/// Per-core results.
#[derive(Debug, Clone)]
pub struct CoreMetrics {
    /// Benchmark name driving this core.
    pub benchmark: String,
    /// Instructions the core retired (== the fixed-work target unless the
    /// run hit its cycle cap).
    pub instructions: u64,
    /// Memory cycle at which the core finished its work quota.
    pub finish_cycle: Cycle,
    /// Instructions per *core* cycle.
    pub ipc: f64,
    /// LLC hits observed by this core.
    pub llc_hits: u64,
    /// Reads that missed the LLC (DRAM reads issued).
    pub read_misses: u64,
    /// Memory cycles fully stalled.
    pub stall_cycles: u64,
}

impl CoreMetrics {
    /// Post-LLC read misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.read_misses as f64 * 1000.0 / self.instructions as f64
    }
}

/// Results of one system run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Label of the system that produced these metrics.
    pub system: String,
    /// Per-core metrics, in core order.
    pub cores: Vec<CoreMetrics>,
    /// Memory cycle at which the last core finished.
    pub total_cycles: Cycle,
    /// Energy breakdown at end of run.
    pub energy: EnergyBreakdown,
    /// Refreshes issued, summed over ranks.
    pub refreshes: u64,
    /// Refresh-mechanism label (`allbank`/`darp`/`sarp`/`raidr`).
    pub mechanism: String,
    /// Read-stall cycles attributable to refresh freezes: for every read
    /// queued across a refresh, the cycles from max(refresh start,
    /// arrival) to the thaw.
    pub refresh_blocked_cycles: u64,
    /// RAIDR: retention rounds skipped outright.
    pub refreshes_skipped: u64,
    /// DARP: refreshes pulled in ahead of their nominal due.
    pub refreshes_pulled_in: u64,
    /// SRAM buffer hit rate over reads arriving during refreshes
    /// (0 for systems without ROP, or when no such reads occurred).
    pub sram_hit_rate: f64,
    /// SRAM lookups performed (reads arriving during refreshes).
    pub sram_lookups: u64,
    /// ROP prefetch requests issued.
    pub prefetches: u64,
    /// Refresh analysis per rank (window multipliers 1×/2×/4×).
    pub analysis: Vec<[RefreshAnalysisReport; 3]>,
    /// Row-buffer hit rate at the controller.
    pub row_hit_rate: f64,
    /// Mean read latency in memory cycles (arrival → data).
    pub avg_read_latency: f64,
    /// True when the run hit its safety cycle cap before all cores
    /// finished their instruction quota.
    pub hit_cycle_cap: bool,
    /// Wall-clock seconds spent inside the simulation loop (measured
    /// with the monotonic clock; never fed back into simulated state).
    pub wall_seconds: f64,
    /// Instructions retired summed over all cores (each capped at its
    /// fixed-work target), for throughput reporting.
    pub instructions_total: u64,
    /// Engine loop iterations executed (events processed). The
    /// per-cycle reference loop runs one event per cycle; the
    /// event-driven engine runs far fewer. Events per wall-clock
    /// second is the honest engine-throughput metric — cycles/sec
    /// inflates with fast-forward span lengths.
    pub events: u64,
    /// Invariant-audit outcome, when the run was audited (`None` for
    /// ordinary runs; audited runs that *fail* panic instead, so a
    /// present summary always reports zero violations).
    pub audit: Option<AuditSummary>,
}

impl RunMetrics {
    /// IPC of core 0 (convenience for single-core experiments).
    pub fn ipc(&self) -> f64 {
        self.cores.first().map(|c| c.ipc).unwrap_or(0.0)
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Simulated memory-clock cycles per wall-clock second — the
    /// engine-throughput figure of merit (0 when timing was not captured).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.total_cycles as f64 / self.wall_seconds
    }

    /// Simulated instructions per wall-clock second, over all cores.
    pub fn instructions_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.instructions_total as f64 / self.wall_seconds
    }

    /// Engine events (loop iterations) per wall-clock second — the
    /// honest throughput figure for an event-driven engine (0 when
    /// timing was not captured).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.events as f64 / self.wall_seconds
    }

    /// Weighted speedup against per-benchmark alone-IPCs:
    /// `Σ IPC_shared / IPC_alone` (paper Equation 4).
    ///
    /// # Panics
    /// Panics if `alone_ipcs` has a different length than the core list.
    pub fn weighted_speedup(&self, alone_ipcs: &[f64]) -> f64 {
        assert_eq!(alone_ipcs.len(), self.cores.len(), "core count mismatch");
        self.cores
            .iter()
            .zip(alone_ipcs)
            .map(|(c, &alone)| if alone > 0.0 { c.ipc / alone } else { 0.0 })
            .sum()
    }
}

// --- JSON encoding -------------------------------------------------------
//
// Hand-rolled per the vendored-stubs policy: no serde in the workspace.
// Numbers use `Json`'s shortest-roundtrip float rendering, so metrics
// survive a store round-trip bit-exactly (figures rendered from a
// resumed store match an uninterrupted run byte-for-byte). Decoding is
// strict about types but lenient about *missing* fields (zero/empty
// defaults), so old stores keep loading after a field is added.

fn get_f64(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn get_u64(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn get_str(j: &Json, key: &str) -> String {
    j.get(key).and_then(Json::as_str).unwrap_or("").to_string()
}

fn energy_to_json(e: &EnergyBreakdown) -> Json {
    let mut j = Json::obj();
    j.push("act_pre_nj", Json::Num(e.act_pre_nj))
        .push("read_nj", Json::Num(e.read_nj))
        .push("write_nj", Json::Num(e.write_nj))
        .push("refresh_nj", Json::Num(e.refresh_nj))
        .push("background_nj", Json::Num(e.background_nj))
        .push("sram_nj", Json::Num(e.sram_nj));
    j
}

fn energy_from_json(j: &Json) -> EnergyBreakdown {
    EnergyBreakdown {
        act_pre_nj: get_f64(j, "act_pre_nj"),
        read_nj: get_f64(j, "read_nj"),
        write_nj: get_f64(j, "write_nj"),
        refresh_nj: get_f64(j, "refresh_nj"),
        background_nj: get_f64(j, "background_nj"),
        sram_nj: get_f64(j, "sram_nj"),
    }
}

fn report_to_json(r: &RefreshAnalysisReport) -> Json {
    let mut j = Json::obj();
    j.push("window_multiplier", Json::Num(r.window_multiplier as f64))
        .push("refreshes", Json::Num(r.refreshes as f64))
        .push("non_blocking_fraction", Json::Num(r.non_blocking_fraction))
        .push(
            "avg_blocked_per_blocking",
            Json::Num(r.avg_blocked_per_blocking),
        )
        .push("max_blocked", Json::Num(r.max_blocked as f64))
        .push("lambda", Json::Num(r.lambda))
        .push("beta", Json::Num(r.beta))
        .push("dominant_fraction", Json::Num(r.dominant_fraction));
    j
}

fn report_from_json(j: &Json) -> RefreshAnalysisReport {
    RefreshAnalysisReport {
        window_multiplier: get_u64(j, "window_multiplier"),
        refreshes: get_u64(j, "refreshes"),
        non_blocking_fraction: get_f64(j, "non_blocking_fraction"),
        avg_blocked_per_blocking: get_f64(j, "avg_blocked_per_blocking"),
        max_blocked: get_u64(j, "max_blocked"),
        lambda: get_f64(j, "lambda"),
        beta: get_f64(j, "beta"),
        dominant_fraction: get_f64(j, "dominant_fraction"),
    }
}

impl CoreMetrics {
    /// Encodes as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("benchmark", Json::Str(self.benchmark.clone()))
            .push("instructions", Json::Num(self.instructions as f64))
            .push("finish_cycle", Json::Num(self.finish_cycle as f64))
            .push("ipc", Json::Num(self.ipc))
            .push("llc_hits", Json::Num(self.llc_hits as f64))
            .push("read_misses", Json::Num(self.read_misses as f64))
            .push("stall_cycles", Json::Num(self.stall_cycles as f64));
        j
    }

    /// Decodes from [`CoreMetrics::to_json`] output.
    pub fn from_json(j: &Json) -> Result<CoreMetrics, String> {
        if !matches!(j, Json::Obj(_)) {
            return Err("core metrics: expected object".into());
        }
        Ok(CoreMetrics {
            benchmark: get_str(j, "benchmark"),
            instructions: get_u64(j, "instructions"),
            finish_cycle: get_u64(j, "finish_cycle"),
            ipc: get_f64(j, "ipc"),
            llc_hits: get_u64(j, "llc_hits"),
            read_misses: get_u64(j, "read_misses"),
            stall_cycles: get_u64(j, "stall_cycles"),
        })
    }
}

impl RunMetrics {
    /// Encodes as a JSON object (the sweep store's `metrics` payload).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("system", Json::Str(self.system.clone()))
            .push(
                "cores",
                Json::Arr(self.cores.iter().map(CoreMetrics::to_json).collect()),
            )
            .push("total_cycles", Json::Num(self.total_cycles as f64))
            .push("energy", energy_to_json(&self.energy))
            .push("refreshes", Json::Num(self.refreshes as f64))
            .push("mechanism", Json::Str(self.mechanism.clone()))
            .push(
                "refresh_blocked_cycles",
                Json::Num(self.refresh_blocked_cycles as f64),
            )
            .push(
                "refreshes_skipped",
                Json::Num(self.refreshes_skipped as f64),
            )
            .push(
                "refreshes_pulled_in",
                Json::Num(self.refreshes_pulled_in as f64),
            )
            .push("sram_hit_rate", Json::Num(self.sram_hit_rate))
            .push("sram_lookups", Json::Num(self.sram_lookups as f64))
            .push("prefetches", Json::Num(self.prefetches as f64))
            .push(
                "analysis",
                Json::Arr(
                    self.analysis
                        .iter()
                        .map(|trio| Json::Arr(trio.iter().map(report_to_json).collect()))
                        .collect(),
                ),
            )
            .push("row_hit_rate", Json::Num(self.row_hit_rate))
            .push("avg_read_latency", Json::Num(self.avg_read_latency))
            .push("hit_cycle_cap", Json::Bool(self.hit_cycle_cap))
            .push("wall_seconds", Json::Num(self.wall_seconds))
            .push(
                "instructions_total",
                Json::Num(self.instructions_total as f64),
            )
            .push("events", Json::Num(self.events as f64));
        if let Some(a) = self.audit {
            j.push("audit_events", Json::Num(a.events as f64))
                .push("audit_violations", Json::Num(a.violations as f64));
        }
        j
    }

    /// Decodes from [`RunMetrics::to_json`] output.
    pub fn from_json(j: &Json) -> Result<RunMetrics, String> {
        if !matches!(j, Json::Obj(_)) {
            return Err("run metrics: expected object".into());
        }
        let cores = j
            .get("cores")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(CoreMetrics::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let analysis = j
            .get("analysis")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|trio| -> Result<[RefreshAnalysisReport; 3], String> {
                let items = trio.as_arr().ok_or("analysis: expected array")?;
                if items.len() != 3 {
                    return Err(format!("analysis: expected 3 windows, got {}", items.len()));
                }
                Ok([
                    report_from_json(&items[0]),
                    report_from_json(&items[1]),
                    report_from_json(&items[2]),
                ])
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunMetrics {
            system: get_str(j, "system"),
            cores,
            total_cycles: get_u64(j, "total_cycles"),
            energy: energy_from_json(j.get("energy").unwrap_or(&Json::Null)),
            refreshes: get_u64(j, "refreshes"),
            mechanism: get_str(j, "mechanism"),
            refresh_blocked_cycles: get_u64(j, "refresh_blocked_cycles"),
            refreshes_skipped: get_u64(j, "refreshes_skipped"),
            refreshes_pulled_in: get_u64(j, "refreshes_pulled_in"),
            sram_hit_rate: get_f64(j, "sram_hit_rate"),
            sram_lookups: get_u64(j, "sram_lookups"),
            prefetches: get_u64(j, "prefetches"),
            analysis,
            row_hit_rate: get_f64(j, "row_hit_rate"),
            avg_read_latency: get_f64(j, "avg_read_latency"),
            hit_cycle_cap: j
                .get("hit_cycle_cap")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            wall_seconds: get_f64(j, "wall_seconds"),
            instructions_total: get_u64(j, "instructions_total"),
            events: get_u64(j, "events"),
            audit: j
                .get("audit_events")
                .and_then(Json::as_u64)
                .map(|events| AuditSummary {
                    events,
                    violations: get_u64(j, "audit_violations"),
                }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(ipc: f64) -> CoreMetrics {
        CoreMetrics {
            benchmark: "x".into(),
            instructions: 1000,
            finish_cycle: 100,
            ipc,
            llc_hits: 10,
            read_misses: 5,
            stall_cycles: 2,
        }
    }

    fn run(cores: Vec<CoreMetrics>) -> RunMetrics {
        RunMetrics {
            system: "test".into(),
            instructions_total: cores.iter().map(|c| c.instructions).sum(),
            cores,
            total_cycles: 100,
            energy: EnergyBreakdown::default(),
            refreshes: 0,
            mechanism: "allbank".into(),
            refresh_blocked_cycles: 0,
            refreshes_skipped: 0,
            refreshes_pulled_in: 0,
            sram_hit_rate: 0.0,
            sram_lookups: 0,
            prefetches: 0,
            analysis: Vec::new(),
            row_hit_rate: 0.0,
            avg_read_latency: 0.0,
            hit_cycle_cap: false,
            wall_seconds: 0.0,
            events: 0,
            audit: None,
        }
    }

    #[test]
    fn mpki() {
        let c = core(1.0);
        assert!((c.mpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_eq4() {
        let m = run(vec![core(1.0), core(2.0)]);
        let ws = m.weighted_speedup(&[2.0, 2.0]);
        assert!((ws - 1.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_handles_zero_alone() {
        let m = run(vec![core(1.0)]);
        assert_eq!(m.weighted_speedup(&[0.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn weighted_speedup_length_mismatch() {
        run(vec![core(1.0)]).weighted_speedup(&[1.0, 1.0]);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let mut m = run(vec![core(0.123456789012345), core(2.0 / 3.0)]);
        m.system = "ROP-64".into();
        m.total_cycles = 987_654_321;
        m.energy = EnergyBreakdown {
            act_pre_nj: 1.5,
            read_nj: 0.1 + 0.2, // deliberately non-representable sum
            write_nj: 3.25,
            refresh_nj: 1e-9,
            background_nj: 123456.789,
            sram_nj: 0.0,
        };
        m.refreshes = 4242;
        m.mechanism = "sarp".into();
        m.refresh_blocked_cycles = 31_337;
        m.refreshes_skipped = 11;
        m.refreshes_pulled_in = 23;
        m.sram_hit_rate = 0.6180339887498949;
        m.sram_lookups = 17;
        m.prefetches = 99;
        m.row_hit_rate = 0.75;
        m.avg_read_latency = 41.7;
        m.hit_cycle_cap = true;
        m.wall_seconds = 1.25;
        m.audit = Some(AuditSummary {
            events: 123_456,
            violations: 0,
        });
        m.analysis = vec![[
            RefreshAnalysisReport {
                window_multiplier: 1,
                refreshes: 100,
                non_blocking_fraction: 0.5,
                avg_blocked_per_blocking: 2.5,
                max_blocked: 7,
                lambda: 0.9,
                beta: 0.1,
                dominant_fraction: 0.8,
            },
            RefreshAnalysisReport {
                window_multiplier: 2,
                refreshes: 100,
                non_blocking_fraction: 0.25,
                avg_blocked_per_blocking: 3.5,
                max_blocked: 9,
                lambda: 0.95,
                beta: 0.05,
                dominant_fraction: 0.85,
            },
            RefreshAnalysisReport {
                window_multiplier: 4,
                refreshes: 100,
                non_blocking_fraction: 0.125,
                avg_blocked_per_blocking: 4.5,
                max_blocked: 11,
                lambda: 0.99,
                beta: 0.01,
                dominant_fraction: 0.9,
            },
        ]];

        let text = m.to_json().render();
        let back = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();

        // Bit-exact float fields and identical re-render.
        assert_eq!(back.to_json().render(), text);
        assert_eq!(back.system, m.system);
        assert_eq!(back.cores.len(), 2);
        assert_eq!(back.cores[0].ipc.to_bits(), m.cores[0].ipc.to_bits());
        assert_eq!(back.cores[1].ipc.to_bits(), m.cores[1].ipc.to_bits());
        assert_eq!(back.total_cycles, m.total_cycles);
        assert_eq!(back.energy.read_nj.to_bits(), m.energy.read_nj.to_bits());
        assert_eq!(back.sram_hit_rate.to_bits(), m.sram_hit_rate.to_bits());
        assert_eq!(back.mechanism, "sarp");
        assert_eq!(back.refresh_blocked_cycles, 31_337);
        assert_eq!(back.refreshes_skipped, 11);
        assert_eq!(back.refreshes_pulled_in, 23);
        assert_eq!(back.analysis.len(), 1);
        assert_eq!(back.analysis[0][2].window_multiplier, 4);
        assert_eq!(back.analysis[0][1].max_blocked, 9);
        assert!(back.hit_cycle_cap);
        assert_eq!(
            back.audit,
            Some(AuditSummary {
                events: 123_456,
                violations: 0
            })
        );
    }

    #[test]
    fn json_decode_rejects_non_objects() {
        assert!(RunMetrics::from_json(&Json::Num(1.0)).is_err());
        assert!(CoreMetrics::from_json(&Json::Arr(vec![])).is_err());
    }

    #[test]
    fn json_decode_tolerates_missing_fields() {
        // Forward compatibility: an older store without a newer field
        // still decodes, with zero defaults.
        let j = Json::parse(r#"{"system":"Baseline","cores":[]}"#).unwrap();
        let m = RunMetrics::from_json(&j).unwrap();
        assert_eq!(m.system, "Baseline");
        assert_eq!(m.total_cycles, 0);
        assert!(!m.hit_cycle_cap);
        // An un-audited record decodes to no audit summary.
        assert_eq!(m.audit, None);
    }
}
