//! Run-level metrics extracted from a finished simulation.

use rop_dram::EnergyBreakdown;
use rop_memctrl::RefreshAnalysisReport;

use crate::Cycle;

/// Per-core results.
#[derive(Debug, Clone)]
pub struct CoreMetrics {
    /// Benchmark name driving this core.
    pub benchmark: String,
    /// Instructions the core retired (== the fixed-work target unless the
    /// run hit its cycle cap).
    pub instructions: u64,
    /// Memory cycle at which the core finished its work quota.
    pub finish_cycle: Cycle,
    /// Instructions per *core* cycle.
    pub ipc: f64,
    /// LLC hits observed by this core.
    pub llc_hits: u64,
    /// Reads that missed the LLC (DRAM reads issued).
    pub read_misses: u64,
    /// Memory cycles fully stalled.
    pub stall_cycles: u64,
}

impl CoreMetrics {
    /// Post-LLC read misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.read_misses as f64 * 1000.0 / self.instructions as f64
    }
}

/// Results of one system run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Label of the system that produced these metrics.
    pub system: String,
    /// Per-core metrics, in core order.
    pub cores: Vec<CoreMetrics>,
    /// Memory cycle at which the last core finished.
    pub total_cycles: Cycle,
    /// Energy breakdown at end of run.
    pub energy: EnergyBreakdown,
    /// Refreshes issued, summed over ranks.
    pub refreshes: u64,
    /// SRAM buffer hit rate over reads arriving during refreshes
    /// (0 for systems without ROP, or when no such reads occurred).
    pub sram_hit_rate: f64,
    /// SRAM lookups performed (reads arriving during refreshes).
    pub sram_lookups: u64,
    /// ROP prefetch requests issued.
    pub prefetches: u64,
    /// Refresh analysis per rank (window multipliers 1×/2×/4×).
    pub analysis: Vec<[RefreshAnalysisReport; 3]>,
    /// Row-buffer hit rate at the controller.
    pub row_hit_rate: f64,
    /// Mean read latency in memory cycles (arrival → data).
    pub avg_read_latency: f64,
    /// True when the run hit its safety cycle cap before all cores
    /// finished their instruction quota.
    pub hit_cycle_cap: bool,
    /// Wall-clock seconds spent inside the simulation loop.
    pub wall_seconds: f64,
    /// Instructions retired summed over all cores (each capped at its
    /// fixed-work target), for throughput reporting.
    pub instructions_total: u64,
}

impl RunMetrics {
    /// IPC of core 0 (convenience for single-core experiments).
    pub fn ipc(&self) -> f64 {
        self.cores.first().map(|c| c.ipc).unwrap_or(0.0)
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Simulated memory-clock cycles per wall-clock second — the
    /// engine-throughput figure of merit (0 when timing was not captured).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.total_cycles as f64 / self.wall_seconds
    }

    /// Simulated instructions per wall-clock second, over all cores.
    pub fn instructions_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.instructions_total as f64 / self.wall_seconds
    }

    /// Weighted speedup against per-benchmark alone-IPCs:
    /// `Σ IPC_shared / IPC_alone` (paper Equation 4).
    ///
    /// # Panics
    /// Panics if `alone_ipcs` has a different length than the core list.
    pub fn weighted_speedup(&self, alone_ipcs: &[f64]) -> f64 {
        assert_eq!(alone_ipcs.len(), self.cores.len(), "core count mismatch");
        self.cores
            .iter()
            .zip(alone_ipcs)
            .map(|(c, &alone)| if alone > 0.0 { c.ipc / alone } else { 0.0 })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(ipc: f64) -> CoreMetrics {
        CoreMetrics {
            benchmark: "x".into(),
            instructions: 1000,
            finish_cycle: 100,
            ipc,
            llc_hits: 10,
            read_misses: 5,
            stall_cycles: 2,
        }
    }

    fn run(cores: Vec<CoreMetrics>) -> RunMetrics {
        RunMetrics {
            system: "test".into(),
            instructions_total: cores.iter().map(|c| c.instructions).sum(),
            cores,
            total_cycles: 100,
            energy: EnergyBreakdown::default(),
            refreshes: 0,
            sram_hit_rate: 0.0,
            sram_lookups: 0,
            prefetches: 0,
            analysis: Vec::new(),
            row_hit_rate: 0.0,
            avg_read_latency: 0.0,
            hit_cycle_cap: false,
            wall_seconds: 0.0,
        }
    }

    #[test]
    fn mpki() {
        let c = core(1.0);
        assert!((c.mpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_eq4() {
        let m = run(vec![core(1.0), core(2.0)]);
        let ws = m.weighted_speedup(&[2.0, 2.0]);
        assert!((ws - 1.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_handles_zero_alone() {
        let m = run(vec![core(1.0)]);
        assert_eq!(m.weighted_speedup(&[0.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn weighted_speedup_length_mismatch() {
        run(vec![core(1.0)]).weighted_speedup(&[1.0, 1.0]);
    }
}
