//! Run-level metrics extracted from a finished simulation, plus their
//! stable serde-free JSON encoding (the sweep store's record payload).

use rop_dram::EnergyBreakdown;
use rop_memctrl::RefreshAnalysisReport;
use rop_stats::Json;

use crate::audit::AuditSummary;
use crate::Cycle;

/// Per-core results.
#[derive(Debug, Clone)]
pub struct CoreMetrics {
    /// Benchmark name driving this core.
    pub benchmark: String,
    /// Instructions the core retired (== the fixed-work target unless the
    /// run hit its cycle cap).
    pub instructions: u64,
    /// Memory cycle at which the core finished its work quota.
    pub finish_cycle: Cycle,
    /// Instructions per *core* cycle.
    pub ipc: f64,
    /// LLC hits observed by this core.
    pub llc_hits: u64,
    /// Reads that missed the LLC (DRAM reads issued).
    pub read_misses: u64,
    /// Memory cycles fully stalled.
    pub stall_cycles: u64,
}

impl CoreMetrics {
    /// Post-LLC read misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.read_misses as f64 * 1000.0 / self.instructions as f64
    }
}

/// Number of fixed log2 buckets in a [`LatencyHistogram`]. Bucket 39
/// tops out at 2³⁸ cycles ≈ 5.7 minutes of DDR4-1600 memory clock —
/// far beyond any latency a bounded-duration run can produce.
pub const LATENCY_BUCKETS: usize = 40;

/// Fixed-bucket log2 latency histogram.
///
/// Bucket 0 counts exact zeros (SRAM same-cycle hits are the only
/// producer); bucket `i ≥ 1` counts values in `[2^(i-1), 2^i)`. The
/// bucket count is a compile-time constant, so the JSON encoding is a
/// fixed-width integer array that round-trips bit-exactly — a figure
/// rendered from a resumed store matches an uninterrupted run
/// byte-for-byte, like the rest of [`RunMetrics`].
///
/// Quantiles are reported as the inclusive upper edge of the bucket the
/// target rank lands in (clamped to the observed maximum), making them
/// conservative: the true quantile is never above the reported one by
/// construction of the bucket, and the log2 width bounds the relative
/// error at 2×.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            return 0;
        }
        ((64 - v.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Records one latency sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `q`-quantile (`q` in [0,1]) as the upper edge of the bucket
    /// holding the target rank, clamped to the observed maximum.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                if i == 0 {
                    return 0;
                }
                let upper = (1u64 << i) - 1;
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median read latency.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile read latency.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile read latency.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Encodes as a JSON object (fixed-width bucket array).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push(
            "buckets",
            Json::Arr(self.buckets.iter().map(|&n| Json::Num(n as f64)).collect()),
        )
        .push("count", Json::Num(self.count as f64))
        .push("sum", Json::Num(self.sum as f64))
        .push("max", Json::Num(self.max as f64));
        j
    }

    /// Decodes from [`LatencyHistogram::to_json`] output. Strict: the
    /// bucket array must hold exactly [`LATENCY_BUCKETS`] integers.
    pub fn from_json(j: &Json) -> Result<LatencyHistogram, String> {
        if !matches!(j, Json::Obj(_)) {
            return Err("latency histogram: expected object".into());
        }
        let arr = j
            .get("buckets")
            .ok_or("latency histogram: missing field `buckets`")?
            .as_arr()
            .ok_or("latency histogram: field `buckets`: expected array")?;
        if arr.len() != LATENCY_BUCKETS {
            return Err(format!(
                "latency histogram: expected {LATENCY_BUCKETS} buckets, got {}",
                arr.len()
            ));
        }
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (slot, v) in buckets.iter_mut().zip(arr) {
            *slot = v
                .as_u64()
                .ok_or("latency histogram: bucket: expected unsigned integer")?;
        }
        Ok(LatencyHistogram {
            buckets,
            count: req_u64(j, "count")?,
            sum: req_u64(j, "sum")?,
            max: req_u64(j, "max")?,
        })
    }
}

/// Open-loop (datacenter traffic) results attached to a run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopMetrics {
    /// Arrival-process label (`poisson`/`mmpp`/`diurnal`).
    pub process: String,
    /// Configured offered load in requests per kilo-cycle.
    pub offered_rpkc: f64,
    /// Reads completed per kilo-cycle actually delivered.
    pub achieved_rpkc: f64,
    /// Read requests injected (accepted by the controller).
    pub reads_injected: u64,
    /// Write requests injected.
    pub writes_injected: u64,
    /// Largest frontend backlog observed (requests waiting because the
    /// controller queues were full).
    pub backlog_peak: u64,
    /// Frontend backlog remaining at end of run.
    pub backlog_final: u64,
    /// True when the run ended with the memory system behind the
    /// arrival schedule (backlog exceeding the read-queue capacity):
    /// the offered load is past the saturation point.
    pub saturated: bool,
    /// Frontend-arrival → data latency of every completed read.
    pub read_latency: LatencyHistogram,
    /// Latency of the subset of reads that overlapped a refresh freeze
    /// (the refresh-attributed tail).
    pub refresh_blocked_latency: LatencyHistogram,
}

impl OpenLoopMetrics {
    /// Encodes as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("process", Json::Str(self.process.clone()))
            .push("offered_rpkc", Json::Num(self.offered_rpkc))
            .push("achieved_rpkc", Json::Num(self.achieved_rpkc))
            .push("reads_injected", Json::Num(self.reads_injected as f64))
            .push("writes_injected", Json::Num(self.writes_injected as f64))
            .push("backlog_peak", Json::Num(self.backlog_peak as f64))
            .push("backlog_final", Json::Num(self.backlog_final as f64))
            .push("saturated", Json::Bool(self.saturated))
            .push("read_latency", self.read_latency.to_json())
            .push(
                "refresh_blocked_latency",
                self.refresh_blocked_latency.to_json(),
            );
        j
    }

    /// Decodes from [`OpenLoopMetrics::to_json`] output (strict).
    pub fn from_json(j: &Json) -> Result<OpenLoopMetrics, String> {
        if !matches!(j, Json::Obj(_)) {
            return Err("open-loop metrics: expected object".into());
        }
        Ok(OpenLoopMetrics {
            process: req_str(j, "process")?,
            offered_rpkc: req_f64(j, "offered_rpkc")?,
            achieved_rpkc: req_f64(j, "achieved_rpkc")?,
            reads_injected: req_u64(j, "reads_injected")?,
            writes_injected: req_u64(j, "writes_injected")?,
            backlog_peak: req_u64(j, "backlog_peak")?,
            backlog_final: req_u64(j, "backlog_final")?,
            saturated: req_bool(j, "saturated")?,
            read_latency: LatencyHistogram::from_json(
                j.get("read_latency")
                    .ok_or("open-loop metrics: missing field `read_latency`")?,
            )?,
            refresh_blocked_latency: LatencyHistogram::from_json(
                j.get("refresh_blocked_latency")
                    .ok_or("open-loop metrics: missing field `refresh_blocked_latency`")?,
            )?,
        })
    }
}

/// Results of one system run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Label of the system that produced these metrics.
    pub system: String,
    /// Per-core metrics, in core order.
    pub cores: Vec<CoreMetrics>,
    /// Memory cycle at which the last core finished.
    pub total_cycles: Cycle,
    /// Energy breakdown at end of run.
    pub energy: EnergyBreakdown,
    /// Refreshes issued, summed over ranks.
    pub refreshes: u64,
    /// Refresh-mechanism label (`allbank`/`darp`/`sarp`/`raidr`).
    pub mechanism: String,
    /// Read-stall cycles attributable to refresh freezes: for every read
    /// queued across a refresh, the cycles from max(refresh start,
    /// arrival) to the thaw.
    pub refresh_blocked_cycles: u64,
    /// RAIDR: retention rounds skipped outright.
    pub refreshes_skipped: u64,
    /// DARP: refreshes pulled in ahead of their nominal due.
    pub refreshes_pulled_in: u64,
    /// SRAM buffer hit rate over reads arriving during refreshes
    /// (0 for systems without ROP, or when no such reads occurred).
    pub sram_hit_rate: f64,
    /// SRAM lookups performed (reads arriving during refreshes).
    pub sram_lookups: u64,
    /// ROP prefetch requests issued.
    pub prefetches: u64,
    /// Refresh analysis per rank (window multipliers 1×/2×/4×).
    pub analysis: Vec<[RefreshAnalysisReport; 3]>,
    /// Row-buffer hit rate at the controller.
    pub row_hit_rate: f64,
    /// Mean read latency in memory cycles (arrival → data).
    pub avg_read_latency: f64,
    /// True when the run hit its safety cycle cap before all cores
    /// finished their instruction quota.
    pub hit_cycle_cap: bool,
    /// Wall-clock seconds spent inside the simulation loop (measured
    /// with the monotonic clock; never fed back into simulated state).
    pub wall_seconds: f64,
    /// Instructions retired summed over all cores (each capped at its
    /// fixed-work target), for throughput reporting.
    pub instructions_total: u64,
    /// Engine loop iterations executed (events processed). The
    /// per-cycle reference loop runs one event per cycle; the
    /// event-driven engine runs far fewer. Events per wall-clock
    /// second is the honest engine-throughput metric — cycles/sec
    /// inflates with fast-forward span lengths.
    pub events: u64,
    /// Invariant-audit outcome, when the run was audited (`None` for
    /// ordinary runs; audited runs that *fail* panic instead, so a
    /// present summary always reports zero violations).
    pub audit: Option<AuditSummary>,
    /// Open-loop traffic results (`None` for closed-loop runs).
    pub open_loop: Option<OpenLoopMetrics>,
}

impl RunMetrics {
    /// IPC of core 0 (convenience for single-core experiments).
    pub fn ipc(&self) -> f64 {
        self.cores.first().map(|c| c.ipc).unwrap_or(0.0)
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Simulated memory-clock cycles per wall-clock second — the
    /// engine-throughput figure of merit (0 when timing was not captured).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.total_cycles as f64 / self.wall_seconds
    }

    /// Simulated instructions per wall-clock second, over all cores.
    pub fn instructions_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.instructions_total as f64 / self.wall_seconds
    }

    /// Engine events (loop iterations) per wall-clock second — the
    /// honest throughput figure for an event-driven engine (0 when
    /// timing was not captured).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.events as f64 / self.wall_seconds
    }

    /// Weighted speedup against per-benchmark alone-IPCs:
    /// `Σ IPC_shared / IPC_alone` (paper Equation 4).
    ///
    /// # Panics
    /// Panics if `alone_ipcs` has a different length than the core list.
    pub fn weighted_speedup(&self, alone_ipcs: &[f64]) -> f64 {
        assert_eq!(alone_ipcs.len(), self.cores.len(), "core count mismatch");
        self.cores
            .iter()
            .zip(alone_ipcs)
            .map(|(c, &alone)| if alone > 0.0 { c.ipc / alone } else { 0.0 })
            .sum()
    }
}

// --- JSON encoding -------------------------------------------------------
//
// Hand-rolled per the vendored-stubs policy: no serde in the workspace.
// Numbers use `Json`'s shortest-roundtrip float rendering, so metrics
// survive a store round-trip bit-exactly (figures rendered from a
// resumed store match an uninterrupted run byte-for-byte).
//
// Decoding is strict: a missing or mistyped field is a hard error, so a
// record written before a schema change is quarantined as corrupt by the
// store instead of deserializing as phantom zeros (which `rop-sweep
// diff`/`export` would then report as fake regressions). The only
// exceptions go through the `opt_*` helpers below, which carry an
// explicit default for fields that legitimately predate the v1 record
// schema — absent is fine (the documented default applies), but a
// present-yet-mistyped value is still an error.

fn req_f64(j: &Json, key: &str) -> Result<f64, String> {
    match j.get(key) {
        None => Err(format!("metrics: missing field `{key}`")),
        // The encoder degrades non-finite floats to `null` (JSON has no
        // NaN/Inf); reading that back as 0.0 keeps the store round trip
        // total. Anything else non-numeric is a schema error.
        Some(Json::Null) => Ok(0.0),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("metrics: field `{key}`: expected number")),
    }
}

fn req_u64(j: &Json, key: &str) -> Result<u64, String> {
    match j.get(key) {
        None => Err(format!("metrics: missing field `{key}`")),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("metrics: field `{key}`: expected unsigned integer")),
    }
}

fn req_str(j: &Json, key: &str) -> Result<String, String> {
    match j.get(key) {
        None => Err(format!("metrics: missing field `{key}`")),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("metrics: field `{key}`: expected string")),
    }
}

fn req_bool(j: &Json, key: &str) -> Result<bool, String> {
    match j.get(key) {
        None => Err(format!("metrics: missing field `{key}`")),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("metrics: field `{key}`: expected bool")),
    }
}

fn opt_f64(j: &Json, key: &str, default: f64) -> Result<f64, String> {
    match j.get(key) {
        None => Ok(default),
        Some(Json::Null) => Ok(0.0),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("metrics: field `{key}`: expected number")),
    }
}

fn opt_u64(j: &Json, key: &str, default: u64) -> Result<u64, String> {
    match j.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("metrics: field `{key}`: expected unsigned integer")),
    }
}

fn opt_str(j: &Json, key: &str, default: &str) -> Result<String, String> {
    match j.get(key) {
        None => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("metrics: field `{key}`: expected string")),
    }
}

fn energy_to_json(e: &EnergyBreakdown) -> Json {
    let mut j = Json::obj();
    j.push("act_pre_nj", Json::Num(e.act_pre_nj))
        .push("read_nj", Json::Num(e.read_nj))
        .push("write_nj", Json::Num(e.write_nj))
        .push("refresh_nj", Json::Num(e.refresh_nj))
        .push("background_nj", Json::Num(e.background_nj))
        .push("sram_nj", Json::Num(e.sram_nj));
    j
}

fn energy_from_json(j: &Json) -> Result<EnergyBreakdown, String> {
    if !matches!(j, Json::Obj(_)) {
        return Err("metrics: field `energy`: expected object".into());
    }
    Ok(EnergyBreakdown {
        act_pre_nj: req_f64(j, "act_pre_nj")?,
        read_nj: req_f64(j, "read_nj")?,
        write_nj: req_f64(j, "write_nj")?,
        refresh_nj: req_f64(j, "refresh_nj")?,
        background_nj: req_f64(j, "background_nj")?,
        sram_nj: req_f64(j, "sram_nj")?,
    })
}

fn report_to_json(r: &RefreshAnalysisReport) -> Json {
    let mut j = Json::obj();
    j.push("window_multiplier", Json::Num(r.window_multiplier as f64))
        .push("refreshes", Json::Num(r.refreshes as f64))
        .push("non_blocking_fraction", Json::Num(r.non_blocking_fraction))
        .push(
            "avg_blocked_per_blocking",
            Json::Num(r.avg_blocked_per_blocking),
        )
        .push("max_blocked", Json::Num(r.max_blocked as f64))
        .push("lambda", Json::Num(r.lambda))
        .push("beta", Json::Num(r.beta))
        .push("dominant_fraction", Json::Num(r.dominant_fraction));
    j
}

fn report_from_json(j: &Json) -> Result<RefreshAnalysisReport, String> {
    if !matches!(j, Json::Obj(_)) {
        return Err("metrics: analysis report: expected object".into());
    }
    Ok(RefreshAnalysisReport {
        window_multiplier: req_u64(j, "window_multiplier")?,
        refreshes: req_u64(j, "refreshes")?,
        non_blocking_fraction: req_f64(j, "non_blocking_fraction")?,
        avg_blocked_per_blocking: req_f64(j, "avg_blocked_per_blocking")?,
        max_blocked: req_u64(j, "max_blocked")?,
        lambda: req_f64(j, "lambda")?,
        beta: req_f64(j, "beta")?,
        dominant_fraction: req_f64(j, "dominant_fraction")?,
    })
}

impl CoreMetrics {
    /// Encodes as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("benchmark", Json::Str(self.benchmark.clone()))
            .push("instructions", Json::Num(self.instructions as f64))
            .push("finish_cycle", Json::Num(self.finish_cycle as f64))
            .push("ipc", Json::Num(self.ipc))
            .push("llc_hits", Json::Num(self.llc_hits as f64))
            .push("read_misses", Json::Num(self.read_misses as f64))
            .push("stall_cycles", Json::Num(self.stall_cycles as f64));
        j
    }

    /// Decodes from [`CoreMetrics::to_json`] output.
    pub fn from_json(j: &Json) -> Result<CoreMetrics, String> {
        if !matches!(j, Json::Obj(_)) {
            return Err("core metrics: expected object".into());
        }
        Ok(CoreMetrics {
            benchmark: req_str(j, "benchmark")?,
            instructions: req_u64(j, "instructions")?,
            finish_cycle: req_u64(j, "finish_cycle")?,
            ipc: req_f64(j, "ipc")?,
            llc_hits: req_u64(j, "llc_hits")?,
            read_misses: req_u64(j, "read_misses")?,
            stall_cycles: req_u64(j, "stall_cycles")?,
        })
    }
}

impl RunMetrics {
    /// Encodes as a JSON object (the sweep store's `metrics` payload).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("system", Json::Str(self.system.clone()))
            .push(
                "cores",
                Json::Arr(self.cores.iter().map(CoreMetrics::to_json).collect()),
            )
            .push("total_cycles", Json::Num(self.total_cycles as f64))
            .push("energy", energy_to_json(&self.energy))
            .push("refreshes", Json::Num(self.refreshes as f64))
            .push("mechanism", Json::Str(self.mechanism.clone()))
            .push(
                "refresh_blocked_cycles",
                Json::Num(self.refresh_blocked_cycles as f64),
            )
            .push(
                "refreshes_skipped",
                Json::Num(self.refreshes_skipped as f64),
            )
            .push(
                "refreshes_pulled_in",
                Json::Num(self.refreshes_pulled_in as f64),
            )
            .push("sram_hit_rate", Json::Num(self.sram_hit_rate))
            .push("sram_lookups", Json::Num(self.sram_lookups as f64))
            .push("prefetches", Json::Num(self.prefetches as f64))
            .push(
                "analysis",
                Json::Arr(
                    self.analysis
                        .iter()
                        .map(|trio| Json::Arr(trio.iter().map(report_to_json).collect()))
                        .collect(),
                ),
            )
            .push("row_hit_rate", Json::Num(self.row_hit_rate))
            .push("avg_read_latency", Json::Num(self.avg_read_latency))
            .push("hit_cycle_cap", Json::Bool(self.hit_cycle_cap))
            .push("wall_seconds", Json::Num(self.wall_seconds))
            .push(
                "instructions_total",
                Json::Num(self.instructions_total as f64),
            )
            .push("events", Json::Num(self.events as f64));
        if let Some(a) = self.audit {
            j.push("audit_events", Json::Num(a.events as f64))
                .push("audit_violations", Json::Num(a.violations as f64));
        }
        if let Some(ol) = &self.open_loop {
            j.push("open_loop", ol.to_json());
        }
        j
    }

    /// Decodes from [`RunMetrics::to_json`] output.
    pub fn from_json(j: &Json) -> Result<RunMetrics, String> {
        if !matches!(j, Json::Obj(_)) {
            return Err("run metrics: expected object".into());
        }
        let cores = j
            .get("cores")
            .ok_or("metrics: missing field `cores`")?
            .as_arr()
            .ok_or("metrics: field `cores`: expected array")?
            .iter()
            .map(CoreMetrics::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let analysis = j
            .get("analysis")
            .ok_or("metrics: missing field `analysis`")?
            .as_arr()
            .ok_or("metrics: field `analysis`: expected array")?
            .iter()
            .map(|trio| -> Result<[RefreshAnalysisReport; 3], String> {
                let items = trio.as_arr().ok_or("analysis: expected array")?;
                if items.len() != 3 {
                    return Err(format!("analysis: expected 3 windows, got {}", items.len()));
                }
                Ok([
                    report_from_json(&items[0])?,
                    report_from_json(&items[1])?,
                    report_from_json(&items[2])?,
                ])
            })
            .collect::<Result<Vec<_>, _>>()?;
        let audit = match j.get("audit_events") {
            None => None,
            Some(v) => {
                let events = v
                    .as_u64()
                    .ok_or("metrics: field `audit_events`: expected unsigned integer")?;
                Some(AuditSummary {
                    events,
                    violations: req_u64(j, "audit_violations")?,
                })
            }
        };
        Ok(RunMetrics {
            system: req_str(j, "system")?,
            cores,
            total_cycles: req_u64(j, "total_cycles")?,
            energy: energy_from_json(j.get("energy").ok_or("metrics: missing field `energy`")?)?,
            refreshes: req_u64(j, "refreshes")?,
            // Fields below the schema's v1 floor decode with explicit
            // defaults when absent: they predate the strict decoder, so
            // genuinely old records carry none of them.
            mechanism: opt_str(j, "mechanism", "allbank")?,
            refresh_blocked_cycles: opt_u64(j, "refresh_blocked_cycles", 0)?,
            refreshes_skipped: opt_u64(j, "refreshes_skipped", 0)?,
            refreshes_pulled_in: opt_u64(j, "refreshes_pulled_in", 0)?,
            sram_hit_rate: req_f64(j, "sram_hit_rate")?,
            sram_lookups: req_u64(j, "sram_lookups")?,
            prefetches: req_u64(j, "prefetches")?,
            analysis,
            row_hit_rate: req_f64(j, "row_hit_rate")?,
            avg_read_latency: req_f64(j, "avg_read_latency")?,
            hit_cycle_cap: req_bool(j, "hit_cycle_cap")?,
            wall_seconds: opt_f64(j, "wall_seconds", 0.0)?,
            instructions_total: opt_u64(j, "instructions_total", 0)?,
            events: opt_u64(j, "events", 0)?,
            audit,
            open_loop: match j.get("open_loop") {
                None => None,
                Some(ol) => Some(OpenLoopMetrics::from_json(ol)?),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(ipc: f64) -> CoreMetrics {
        CoreMetrics {
            benchmark: "x".into(),
            instructions: 1000,
            finish_cycle: 100,
            ipc,
            llc_hits: 10,
            read_misses: 5,
            stall_cycles: 2,
        }
    }

    fn run(cores: Vec<CoreMetrics>) -> RunMetrics {
        RunMetrics {
            system: "test".into(),
            instructions_total: cores.iter().map(|c| c.instructions).sum(),
            cores,
            total_cycles: 100,
            energy: EnergyBreakdown::default(),
            refreshes: 0,
            mechanism: "allbank".into(),
            refresh_blocked_cycles: 0,
            refreshes_skipped: 0,
            refreshes_pulled_in: 0,
            sram_hit_rate: 0.0,
            sram_lookups: 0,
            prefetches: 0,
            analysis: Vec::new(),
            row_hit_rate: 0.0,
            avg_read_latency: 0.0,
            hit_cycle_cap: false,
            wall_seconds: 0.0,
            events: 0,
            audit: None,
            open_loop: None,
        }
    }

    #[test]
    fn mpki() {
        let c = core(1.0);
        assert!((c.mpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_eq4() {
        let m = run(vec![core(1.0), core(2.0)]);
        let ws = m.weighted_speedup(&[2.0, 2.0]);
        assert!((ws - 1.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_handles_zero_alone() {
        let m = run(vec![core(1.0)]);
        assert_eq!(m.weighted_speedup(&[0.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn weighted_speedup_length_mismatch() {
        run(vec![core(1.0)]).weighted_speedup(&[1.0, 1.0]);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let mut m = run(vec![core(0.123456789012345), core(2.0 / 3.0)]);
        m.system = "ROP-64".into();
        m.total_cycles = 987_654_321;
        m.energy = EnergyBreakdown {
            act_pre_nj: 1.5,
            read_nj: 0.1 + 0.2, // deliberately non-representable sum
            write_nj: 3.25,
            refresh_nj: 1e-9,
            background_nj: 123456.789,
            sram_nj: 0.0,
        };
        m.refreshes = 4242;
        m.mechanism = "sarp".into();
        m.refresh_blocked_cycles = 31_337;
        m.refreshes_skipped = 11;
        m.refreshes_pulled_in = 23;
        m.sram_hit_rate = 0.6180339887498949;
        m.sram_lookups = 17;
        m.prefetches = 99;
        m.row_hit_rate = 0.75;
        m.avg_read_latency = 41.7;
        m.hit_cycle_cap = true;
        m.wall_seconds = 1.25;
        m.audit = Some(AuditSummary {
            events: 123_456,
            violations: 0,
        });
        m.analysis = vec![[
            RefreshAnalysisReport {
                window_multiplier: 1,
                refreshes: 100,
                non_blocking_fraction: 0.5,
                avg_blocked_per_blocking: 2.5,
                max_blocked: 7,
                lambda: 0.9,
                beta: 0.1,
                dominant_fraction: 0.8,
            },
            RefreshAnalysisReport {
                window_multiplier: 2,
                refreshes: 100,
                non_blocking_fraction: 0.25,
                avg_blocked_per_blocking: 3.5,
                max_blocked: 9,
                lambda: 0.95,
                beta: 0.05,
                dominant_fraction: 0.85,
            },
            RefreshAnalysisReport {
                window_multiplier: 4,
                refreshes: 100,
                non_blocking_fraction: 0.125,
                avg_blocked_per_blocking: 4.5,
                max_blocked: 11,
                lambda: 0.99,
                beta: 0.01,
                dominant_fraction: 0.9,
            },
        ]];

        let text = m.to_json().render();
        let back = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();

        // Bit-exact float fields and identical re-render.
        assert_eq!(back.to_json().render(), text);
        assert_eq!(back.system, m.system);
        assert_eq!(back.cores.len(), 2);
        assert_eq!(back.cores[0].ipc.to_bits(), m.cores[0].ipc.to_bits());
        assert_eq!(back.cores[1].ipc.to_bits(), m.cores[1].ipc.to_bits());
        assert_eq!(back.total_cycles, m.total_cycles);
        assert_eq!(back.energy.read_nj.to_bits(), m.energy.read_nj.to_bits());
        assert_eq!(back.sram_hit_rate.to_bits(), m.sram_hit_rate.to_bits());
        assert_eq!(back.mechanism, "sarp");
        assert_eq!(back.refresh_blocked_cycles, 31_337);
        assert_eq!(back.refreshes_skipped, 11);
        assert_eq!(back.refreshes_pulled_in, 23);
        assert_eq!(back.analysis.len(), 1);
        assert_eq!(back.analysis[0][2].window_multiplier, 4);
        assert_eq!(back.analysis[0][1].max_blocked, 9);
        assert!(back.hit_cycle_cap);
        assert_eq!(
            back.audit,
            Some(AuditSummary {
                events: 123_456,
                violations: 0
            })
        );
    }

    fn sample_open_loop() -> OpenLoopMetrics {
        let mut read_latency = LatencyHistogram::new();
        let mut refresh_blocked_latency = LatencyHistogram::new();
        for v in [0u64, 1, 3, 17, 40, 41, 42, 95, 300, 301, 1023, 5000] {
            read_latency.record(v);
        }
        for v in [300u64, 301, 1023, 5000] {
            refresh_blocked_latency.record(v);
        }
        OpenLoopMetrics {
            process: "mmpp".into(),
            offered_rpkc: 120.5,
            achieved_rpkc: 119.875,
            reads_injected: 36_000,
            writes_injected: 12_000,
            backlog_peak: 130,
            backlog_final: 0,
            saturated: false,
            read_latency,
            refresh_blocked_latency,
        }
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_edges() {
        let mut h = LatencyHistogram::new();
        // 99 samples at 40 cycles (bucket [32,64)), 1 at 5000
        // (bucket [4096,8192)).
        for _ in 0..99 {
            h.record(40);
        }
        h.record(5000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 5000);
        assert_eq!(h.p50(), 63); // upper edge of [32,64)
        assert_eq!(h.p99(), 63); // rank 99 still in the 40s bucket
        assert_eq!(h.p999(), 5000); // rank 100, clamped to observed max
        assert!((h.mean() - (99.0 * 40.0 + 5000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.mean(), 0.0);
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_json_roundtrip_is_exact() {
        let m = sample_open_loop();
        let text = m.read_latency.to_json().render();
        let back = LatencyHistogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m.read_latency);
        assert_eq!(back.to_json().render(), text);
        // Strict: a truncated bucket array is rejected.
        let bad = Json::parse(r#"{"buckets":[1,2,3],"count":6,"sum":6,"max":3}"#).unwrap();
        assert!(LatencyHistogram::from_json(&bad).is_err());
    }

    #[test]
    fn open_loop_metrics_roundtrip_in_run_metrics() {
        let mut m = run(vec![]);
        m.open_loop = Some(sample_open_loop());
        let text = m.to_json().render();
        let back = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().render(), text);
        let ol = back.open_loop.expect("open_loop must survive");
        assert_eq!(ol, sample_open_loop());
        assert_eq!(ol.offered_rpkc.to_bits(), 120.5f64.to_bits());
        // A closed-loop record decodes to no open-loop block.
        let closed = run(vec![core(1.0)]);
        let back =
            RunMetrics::from_json(&Json::parse(&closed.to_json().render()).unwrap()).unwrap();
        assert_eq!(back.open_loop, None);
        // A present-but-stripped open-loop block fails loud.
        let mut j = m.to_json();
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "open_loop" {
                    *v = strip_key(v, "saturated");
                }
            }
        }
        assert!(RunMetrics::from_json(&j).is_err());
    }

    #[test]
    fn json_decode_rejects_non_objects() {
        assert!(RunMetrics::from_json(&Json::Num(1.0)).is_err());
        assert!(CoreMetrics::from_json(&Json::Arr(vec![])).is_err());
    }

    #[test]
    fn json_decode_fails_loud_on_stripped_fields() {
        // Regression (ISSUE 8): the old decoder silently defaulted
        // missing fields to zero, so a record from before a schema
        // change deserialized as phantom zeros and diff/export reported
        // fake regressions. Stripping any required field must now be a
        // hard decode error that names the missing key.
        let full = run(vec![core(1.0)]).to_json().render();
        let parsed = Json::parse(&full).unwrap();
        assert!(RunMetrics::from_json(&parsed).is_ok());

        for key in [
            "system",
            "cores",
            "total_cycles",
            "energy",
            "refreshes",
            "sram_hit_rate",
            "sram_lookups",
            "prefetches",
            "analysis",
            "row_hit_rate",
            "avg_read_latency",
            "hit_cycle_cap",
        ] {
            let stripped = strip_key(&parsed, key);
            let err = RunMetrics::from_json(&stripped)
                .expect_err(&format!("decode must fail without `{key}`"));
            assert!(err.contains(key), "error for `{key}` should name it: {err}");
        }

        // A bare skeleton (the old lenient decoder's happy case) fails.
        let j = Json::parse(r#"{"system":"Baseline","cores":[]}"#).unwrap();
        assert!(RunMetrics::from_json(&j).is_err());
    }

    fn strip_key(j: &Json, key: &str) -> Json {
        match j {
            Json::Obj(pairs) => {
                Json::Obj(pairs.iter().filter(|(k, _)| k != key).cloned().collect())
            }
            other => other.clone(),
        }
    }

    #[test]
    fn json_decode_rejects_mistyped_fields() {
        let full = run(vec![core(1.0)]).to_json();
        let mut pairs = match full {
            Json::Obj(p) => p,
            _ => unreachable!(),
        };
        for (k, v) in pairs.iter_mut() {
            if k == "total_cycles" {
                *v = Json::Str("fifty".into());
            }
        }
        let err = RunMetrics::from_json(&Json::Obj(pairs)).unwrap_err();
        assert!(err.contains("total_cycles"), "{err}");
    }

    #[test]
    fn json_decode_applies_pre_v1_defaults() {
        // Fields that predate the strict decoder carry explicit
        // versioned defaults: absent is fine, mistyped is still an
        // error (covered above for required fields; same helpers).
        let full = run(vec![core(1.0)]).to_json();
        let mut j = full;
        for key in [
            "mechanism",
            "refresh_blocked_cycles",
            "refreshes_skipped",
            "refreshes_pulled_in",
            "wall_seconds",
            "instructions_total",
            "events",
        ] {
            j = strip_key(&j, key);
        }
        let m = RunMetrics::from_json(&j).unwrap();
        assert_eq!(m.mechanism, "allbank");
        assert_eq!(m.refresh_blocked_cycles, 0);
        assert_eq!(m.refreshes_skipped, 0);
        assert_eq!(m.refreshes_pulled_in, 0);
        assert_eq!(m.wall_seconds, 0.0);
        assert_eq!(m.instructions_total, 0);
        assert_eq!(m.events, 0);
        // An un-audited record decodes to no audit summary.
        assert_eq!(m.audit, None);
    }
}
