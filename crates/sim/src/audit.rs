//! Online invariant auditor over the memory system's event trace.
//!
//! The [`Auditor`] is an [`EventSink`]: wire it to
//! `MemController::drain_trace` (the [`crate::System`] does this when
//! audit mode is on) and it checks, event by event:
//!
//! * **DRAM timing legality** — an independent shadow model of every
//!   bank re-derives the tRCD/tRP/tRAS/tRC/tRRD/tFAW/tCCD constraints
//!   from the issued command stream, plus tRFC freezes: no command may
//!   touch a refreshing scope, and a refresh completion may not be
//!   observed before `start + tRFC` has elapsed.
//! * **Refresh-postpone bound** — under the Standard policy a drain may
//!   hold a due refresh back at most `max_refresh_postpone` cycles (plus
//!   a bounded quiesce allowance for the final precharges); under
//!   Elastic the traced debt may never exceed `max_debt` plus the
//!   refreshes that can legitimately fall due while one is in flight.
//! * **SRAM never-serve-stale** — replays fills/evictions/clears into a
//!   shadow membership set; a hit on a line the shadow does not hold
//!   means the buffer served data it was never given.
//! * **Profiler A/B consistency** — recomputes the per-refresh `(B, A)`
//!   pair from the raw demand-arrival events and compares it with what
//!   the ROP engine latched, so the profiler that drives λ/β estimation
//!   can never silently drift from the controller-observed request
//!   stream.
//!
//! Every violation captures a ring-buffer tail of the most recent trace
//! events, so a failed run's report shows the lead-up, not just the
//! offending event.

use std::collections::{HashSet, VecDeque};
use std::fmt;

use rop_dram::TimingParams;
use rop_events::{CmdKind, Cycle, EventSink, TraceEvent};
use rop_memctrl::{MechanismKind, MemCtrlConfig, RefreshPolicy};

/// How many trailing events a violation report keeps.
const TAIL_CAPACITY: usize = 64;
/// How many violations keep their full detail (all are counted).
const MAX_DETAILED: usize = 16;

/// Everything the auditor needs to know about the system under audit,
/// extracted from the controller configuration.
#[derive(Debug, Clone)]
pub struct AuditorConfig {
    /// DRAM timing parameters the shadow model enforces.
    pub timing: TimingParams,
    /// Ranks on the channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// True when refreshes are per-bank (REFpb).
    pub per_bank: bool,
    /// Drain-before-refresh postpone budget (cycles).
    pub max_refresh_postpone: Cycle,
    /// Elastic-policy debt cap, when that policy is active.
    pub elastic_max_debt: Option<u32>,
    /// ROP observational window (cycles), when ROP is enabled.
    pub observational_window: Option<Cycle>,
    /// Rows per subarray (for SARP: maps an ACT's row to its subarray).
    pub rows_per_subarray: usize,
    /// Subarrays per bank (for SARP: a REFsa naming a subarray outside
    /// this range targets rows that do not exist, i.e. refreshes
    /// nothing while the mechanism believes it made progress).
    pub subarrays_per_bank: usize,
    /// RAIDR's shortest retention-bin period, when that mechanism runs;
    /// drives the bin-deadline coverage check.
    pub raidr_bin_period: Option<Cycle>,
}

impl AuditorConfig {
    /// Derives the audit parameters from a controller configuration.
    pub fn from_ctrl(cfg: &MemCtrlConfig) -> Self {
        AuditorConfig {
            timing: cfg.dram.timing,
            ranks: cfg.dram.geometry.ranks,
            banks_per_rank: cfg.dram.geometry.banks_per_rank,
            per_bank: cfg.per_bank_refresh,
            max_refresh_postpone: cfg.max_refresh_postpone,
            elastic_max_debt: match cfg.refresh_policy {
                RefreshPolicy::Elastic { max_debt } => Some(max_debt),
                RefreshPolicy::Standard => None,
            },
            observational_window: cfg.rop.as_ref().map(|r| r.observational_window),
            rows_per_subarray: cfg.dram.geometry.rows_per_subarray(),
            subarrays_per_bank: cfg.dram.geometry.subarrays_per_bank,
            raidr_bin_period: match cfg.mechanism {
                MechanismKind::Raidr { bin_period, .. } => Some(bin_period),
                _ => None,
            },
        }
    }

    /// Slack allowed past `max_refresh_postpone` before a Standard-policy
    /// drain counts as a violation: after the deadline the controller
    /// still has to precharge every open bank in the scope (one command
    /// bus, so up to `banks` precharges each gated by up to ~tRC of bank
    /// timing) and other slots' refresh preparation can interleave.
    fn quiesce_slack(&self) -> Cycle {
        let banks = self.banks_per_rank as Cycle;
        let slots = if self.per_bank {
            (self.ranks * self.banks_per_rank) as Cycle
        } else {
            self.ranks as Cycle
        };
        slots * (self.timing.t_rc + banks * (self.timing.t_rp + 1))
    }

    /// Debt the Elastic policy can legitimately reach: the configured cap
    /// plus refreshes that fall due while a drain/refresh is in flight
    /// (debt keeps accruing during those states).
    fn elastic_debt_bound(&self, max_debt: u32) -> u64 {
        let in_flight = self.max_refresh_postpone + self.quiesce_slack() + self.timing.t_rfc();
        u64::from(max_debt) + in_flight / self.timing.t_refi().max(1) + 1
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed, e.g. `timing.tRCD` or `sram.stale-serve`.
    pub invariant: &'static str,
    /// Cycle stamp of the offending event.
    pub cycle: Cycle,
    /// Human-readable description with the observed and required values.
    pub message: String,
    /// The most recent trace events up to and including the offender.
    pub tail: Vec<TraceEvent>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] at cycle {}: {}",
            self.invariant, self.cycle, self.message
        )?;
        writeln!(f, "  last {} events:", self.tail.len())?;
        for e in &self.tail {
            writeln!(f, "    {e:?}")?;
        }
        Ok(())
    }
}

/// Counts reported by a finished audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditSummary {
    /// Trace events consumed.
    pub events: u64,
    /// Invariant violations detected.
    pub violations: u64,
}

/// Shadow state of one DRAM bank.
#[derive(Debug, Clone, Copy, Default)]
struct ShadowBank {
    /// Row currently open in the bank, if any (REFsa needs the row to
    /// decide whether the open page conflicts with the target subarray).
    open: Option<usize>,
    /// Cycle of the last ACT, if any.
    last_act: Option<Cycle>,
    /// Cycle of the last PRE, if any.
    last_pre: Option<Cycle>,
}

/// Shadow state of one rank.
#[derive(Debug, Clone, Default)]
struct ShadowRank {
    /// Cycle of the last activate-class command (ACT or REFpb).
    last_act: Option<Cycle>,
    /// Issue cycles of the last four activate-class commands (tFAW).
    act_history: VecDeque<Cycle>,
    /// All-bank refresh in flight: the start cycle.
    frozen_since: Option<Cycle>,
    /// The in-flight all-bank refresh is a RAIDR scaled round (variable
    /// duration, so the tRFC lower bound does not apply).
    frozen_scaled: bool,
    /// Per-bank refresh in flight per bank: the start cycle.
    bank_frozen_since: Vec<Option<Cycle>>,
    /// Subarray scope of the per-bank refresh in flight (`None` =
    /// whole-bank REFpb; `Some` = SARP, siblings stay accessible).
    bank_frozen_sa: Vec<Option<usize>>,
    /// RAIDR: pending RetentionRound for this cycle (coverage flags);
    /// consumed by the RefreshStart that follows at the same cycle.
    pending_retention: Option<(Cycle, bool, bool)>,
    /// RAIDR: cycle of the last refresh covering the 64/128/256 ms bins.
    last_cover: [Option<Cycle>; 3],
    /// Standard-policy drain in progress: the start cycle.
    drain_since: Option<Cycle>,
    /// Profiler window replication.
    window_open: bool,
    /// Scope bank of the open window (`None` = whole rank).
    window_bank: Option<usize>,
    /// `B` the engine latched at window open.
    latched_b: u64,
    /// The auditor's independently accumulated `A`.
    expect_a: u64,
    /// Demand arrival cycles inside the observational window.
    arrivals: VecDeque<Cycle>,
}

/// The online invariant checker. Feed it the merged trace via
/// [`EventSink::record`]; read the outcome with
/// [`Auditor::summary`] / [`Auditor::violations`] / [`Auditor::report`].
#[derive(Debug)]
pub struct Auditor {
    cfg: AuditorConfig,
    banks: Vec<ShadowBank>,
    ranks: Vec<ShadowRank>,
    /// Channel-wide last column-read issue (tCCD read-to-read).
    last_read: Option<Cycle>,
    /// Channel-wide last column-write issue (tCCD write-to-write).
    last_write: Option<Cycle>,
    /// Shadow of the SRAM buffer's resident line keys.
    sram: HashSet<u64>,
    /// Ring buffer of recent events for violation tails.
    tail: VecDeque<TraceEvent>,
    violations: Vec<Violation>,
    events_seen: u64,
    violation_count: u64,
}

impl Auditor {
    /// Creates an auditor for the given system shape.
    pub fn new(cfg: AuditorConfig) -> Self {
        let ranks = cfg.ranks;
        let banks = cfg.banks_per_rank;
        Auditor {
            banks: vec![ShadowBank::default(); ranks * banks],
            ranks: (0..ranks)
                .map(|_| ShadowRank {
                    bank_frozen_since: vec![None; banks],
                    bank_frozen_sa: vec![None; banks],
                    ..ShadowRank::default()
                })
                .collect(),
            last_read: None,
            last_write: None,
            sram: HashSet::new(),
            tail: VecDeque::with_capacity(TAIL_CAPACITY),
            violations: Vec::new(),
            events_seen: 0,
            violation_count: 0,
            cfg,
        }
    }

    /// Total events consumed and violations found.
    pub fn summary(&self) -> AuditSummary {
        AuditSummary {
            events: self.events_seen,
            violations: self.violation_count,
        }
    }

    /// The detailed violations (the first [`MAX_DETAILED`]; the summary
    /// counts all of them).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Renders every detailed violation into one labelled report.
    pub fn report(&self) -> String {
        let mut out = format!(
            "audit failed: {} violation(s) over {} events\n",
            self.violation_count, self.events_seen
        );
        for v in &self.violations {
            out.push_str(&v.to_string());
        }
        if self.violation_count > self.violations.len() as u64 {
            out.push_str(&format!(
                "  … and {} more\n",
                self.violation_count - self.violations.len() as u64
            ));
        }
        out
    }

    fn violate(&mut self, invariant: &'static str, cycle: Cycle, message: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_DETAILED {
            self.violations.push(Violation {
                invariant,
                cycle,
                message,
                tail: self.tail.iter().copied().collect(),
            });
        }
    }

    #[inline]
    fn bank_mut(&mut self, rank: usize, bank: usize) -> &mut ShadowBank {
        &mut self.banks[rank * self.cfg.banks_per_rank + bank]
    }

    #[inline]
    fn bank(&self, rank: usize, bank: usize) -> &ShadowBank {
        &self.banks[rank * self.cfg.banks_per_rank + bank]
    }

    /// Checks and records one activate-class command (ACT or REFpb) for
    /// the rank-level tRRD/tFAW constraints.
    fn check_rank_activate(&mut self, kind: &'static str, rank: usize, cycle: Cycle) {
        let t_rrd = self.cfg.timing.t_rrd;
        let t_faw = self.cfg.timing.t_faw;
        let r = &self.ranks[rank];
        if let Some(last) = r.last_act {
            if cycle < last + t_rrd {
                self.violate(
                    "timing.tRRD",
                    cycle,
                    format!("{kind} on rank {rank} only {} cycles after the previous activate (tRRD {t_rrd})", cycle - last),
                );
            }
        }
        let r = &self.ranks[rank];
        if r.act_history.len() == 4 {
            let oldest = *r.act_history.front().expect("len checked");
            if cycle < oldest + t_faw {
                self.violate(
                    "timing.tFAW",
                    cycle,
                    format!("{kind} on rank {rank} is the fifth activate within {} cycles (tFAW {t_faw})", cycle - oldest),
                );
            }
        }
        let r = &mut self.ranks[rank];
        r.last_act = Some(cycle);
        r.act_history.push_back(cycle);
        if r.act_history.len() > 4 {
            r.act_history.pop_front();
        }
    }

    /// True when the command conflicts with a frozen refresh scope. A
    /// whole-rank or whole-bank freeze admits nothing; a SARP freeze
    /// (subarray-scoped) admits everything except an ACT whose row maps
    /// into the refreshing subarray — sibling subarrays stay accessible,
    /// and column commands can only land on rows opened legally.
    fn freeze_conflict(&self, rank: usize, bank: Option<usize>, row: Option<usize>) -> bool {
        let r = &self.ranks[rank];
        if r.frozen_since.is_some() {
            return true;
        }
        match bank {
            Some(b) => {
                if r.bank_frozen_since[b].is_none() {
                    return false;
                }
                match r.bank_frozen_sa[b] {
                    None => true,
                    Some(sa) => row.is_some_and(|row| row / self.cfg.rows_per_subarray == sa),
                }
            }
            // Rank-wide commands (REF) conflict with any frozen bank.
            None => r.bank_frozen_since.iter().any(Option::is_some),
        }
    }

    fn on_command(
        &mut self,
        cycle: Cycle,
        kind: CmdKind,
        rank: usize,
        bank: Option<usize>,
        row: Option<usize>,
    ) {
        if rank >= self.cfg.ranks || bank.is_some_and(|b| b >= self.cfg.banks_per_rank) {
            self.violate(
                "trace.malformed",
                cycle,
                format!("command {kind:?} targets rank {rank} bank {bank:?} outside the geometry"),
            );
            return;
        }
        let t = self.cfg.timing;
        // A refresh command *initiates* the freeze it belongs to, so the
        // frozen-scope check applies to every other command kind.
        if !matches!(
            kind,
            CmdKind::Refresh | CmdKind::RefreshBank | CmdKind::RefreshSubarray
        ) && self.freeze_conflict(rank, bank, row)
        {
            self.violate(
                "timing.tRFC",
                cycle,
                format!("{kind:?} issued to rank {rank} bank {bank:?} while its refresh scope is frozen"),
            );
        }
        match kind {
            CmdKind::Activate => {
                let b = bank.expect("ACT carries a bank");
                let sb = *self.bank(rank, b);
                if sb.open.is_some() {
                    self.violate(
                        "timing.structure",
                        cycle,
                        format!("ACT on rank {rank} bank {b} while a row is already open"),
                    );
                }
                if let Some(pre) = sb.last_pre {
                    if cycle < pre + t.t_rp {
                        self.violate(
                            "timing.tRP",
                            cycle,
                            format!(
                                "ACT on rank {rank} bank {b} only {} cycles after PRE (tRP {})",
                                cycle - pre,
                                t.t_rp
                            ),
                        );
                    }
                }
                if let Some(act) = sb.last_act {
                    if cycle < act + t.t_rc {
                        self.violate(
                            "timing.tRC",
                            cycle,
                            format!("ACT on rank {rank} bank {b} only {} cycles after the previous ACT (tRC {})", cycle - act, t.t_rc),
                        );
                    }
                }
                self.check_rank_activate("ACT", rank, cycle);
                let sb = self.bank_mut(rank, b);
                sb.open = Some(row.unwrap_or(0));
                sb.last_act = Some(cycle);
            }
            CmdKind::Precharge => {
                let b = bank.expect("PRE carries a bank");
                let sb = *self.bank(rank, b);
                if sb.open.is_some() {
                    if let Some(act) = sb.last_act {
                        if cycle < act + t.t_ras {
                            self.violate(
                                "timing.tRAS",
                                cycle,
                                format!("PRE on rank {rank} bank {b} only {} cycles after ACT (tRAS {})", cycle - act, t.t_ras),
                            );
                        }
                    }
                }
                let sb = self.bank_mut(rank, b);
                sb.open = None;
                sb.last_pre = Some(cycle);
            }
            CmdKind::Read | CmdKind::Write => {
                let b = bank.expect("column command carries a bank");
                let sb = *self.bank(rank, b);
                if sb.open.is_none() {
                    self.violate(
                        "timing.structure",
                        cycle,
                        format!("{kind:?} on rank {rank} bank {b} with no open row"),
                    );
                }
                if let Some(act) = sb.last_act {
                    if cycle < act + t.t_rcd {
                        self.violate(
                            "timing.tRCD",
                            cycle,
                            format!("{kind:?} on rank {rank} bank {b} only {} cycles after ACT (tRCD {})", cycle - act, t.t_rcd),
                        );
                    }
                }
                let last_same = if kind == CmdKind::Read {
                    self.last_read
                } else {
                    self.last_write
                };
                if let Some(prev) = last_same {
                    if cycle < prev + t.t_ccd {
                        self.violate(
                            "timing.tCCD",
                            cycle,
                            format!(
                                "{kind:?} only {} cycles after the previous {kind:?} (tCCD {})",
                                cycle - prev,
                                t.t_ccd
                            ),
                        );
                    }
                }
                if kind == CmdKind::Read {
                    self.last_read = Some(cycle);
                } else {
                    self.last_write = Some(cycle);
                }
            }
            CmdKind::Refresh => {
                for b in 0..self.cfg.banks_per_rank {
                    let sb = *self.bank(rank, b);
                    if sb.open.is_some() {
                        self.violate(
                            "timing.structure",
                            cycle,
                            format!("REF on rank {rank} with bank {b} still open"),
                        );
                    }
                    if let Some(pre) = sb.last_pre {
                        if cycle < pre + t.t_rp {
                            self.violate(
                                "timing.tRP",
                                cycle,
                                format!("REF on rank {rank} only {} cycles after bank {b}'s PRE (tRP {})", cycle - pre, t.t_rp),
                            );
                        }
                    }
                }
            }
            CmdKind::RefreshBank => {
                let b = bank.expect("REFpb carries a bank");
                let sb = *self.bank(rank, b);
                if sb.open.is_some() {
                    self.violate(
                        "timing.structure",
                        cycle,
                        format!("REFpb on rank {rank} bank {b} while a row is open"),
                    );
                }
                if let Some(pre) = sb.last_pre {
                    if cycle < pre + t.t_rp {
                        self.violate(
                            "timing.tRP",
                            cycle,
                            format!(
                                "REFpb on rank {rank} bank {b} only {} cycles after PRE (tRP {})",
                                cycle - pre,
                                t.t_rp
                            ),
                        );
                    }
                }
                // REFpb occupies an activate slot for tRRD/tFAW purposes
                // (the device records it in the activate history).
                self.check_rank_activate("REFpb", rank, cycle);
            }
            CmdKind::RefreshSubarray => {
                let b = bank.expect("REFsa carries a bank");
                let sa = row.map(|r| r / self.cfg.rows_per_subarray);
                let sb = *self.bank(rank, b);
                // Sibling subarrays stay open under SARP; only a page
                // inside the refreshing subarray conflicts.
                if sb.open.is_some_and(|open| {
                    sa.is_some_and(|sa| open / self.cfg.rows_per_subarray == sa)
                }) {
                    self.violate(
                        "timing.structure",
                        cycle,
                        format!(
                            "REFsa on rank {rank} bank {b} with a row open in the target subarray"
                        ),
                    );
                }
                if let Some(pre) = sb.last_pre {
                    if cycle < pre + t.t_rp {
                        self.violate(
                            "timing.tRP",
                            cycle,
                            format!(
                                "REFsa on rank {rank} bank {b} only {} cycles after PRE (tRP {})",
                                cycle - pre,
                                t.t_rp
                            ),
                        );
                    }
                }
                // Like REFpb, REFsa consumes an activate slot in the
                // rank's power windows.
                self.check_rank_activate("REFsa", rank, cycle);
            }
        }
    }

    /// RAIDR bin-deadline coverage: every actual refresh covers the
    /// 64 ms bin; rounds flagged `covers_128`/`covers_256` (and full
    /// REFs, which carry no RetentionRound) cover the longer bins. The
    /// gap between consecutive covers of a bin must stay within its
    /// period plus the drain/quiesce slack every refresh is allowed.
    fn note_bin_coverage(&mut self, cycle: Cycle, rank: usize, covers_128: bool, covers_256: bool) {
        let Some(bin) = self.cfg.raidr_bin_period else {
            return;
        };
        let slack =
            self.cfg.max_refresh_postpone + self.cfg.quiesce_slack() + self.cfg.timing.t_refi();
        let covered = [true, covers_128, covers_256];
        for (i, &c) in covered.iter().enumerate() {
            if !c {
                continue;
            }
            let deadline = bin * (1 << i) + slack;
            if let Some(prev) = self.ranks[rank].last_cover[i] {
                if cycle.saturating_sub(prev) > deadline {
                    self.violate(
                        "raidr.bin-deadline",
                        cycle,
                        format!(
                            "rank {rank} {} ms-bin rows went {} cycles without refresh (deadline {deadline})",
                            64 << i,
                            cycle - prev
                        ),
                    );
                }
            }
            self.ranks[rank].last_cover[i] = Some(cycle);
        }
    }

    fn on_refresh_start(
        &mut self,
        cycle: Cycle,
        rank: usize,
        bank: Option<usize>,
        subarray: Option<usize>,
    ) {
        if rank >= self.cfg.ranks {
            return;
        }
        // Postpone bound (Standard policy: bounded drain; under Elastic
        // the drain starts only once the policy decides to issue, and the
        // debt check below covers postponement instead).
        if self.cfg.elastic_max_debt.is_none() {
            if let Some(start) = self.ranks[rank].drain_since {
                let bound = self.cfg.max_refresh_postpone + self.cfg.quiesce_slack();
                if cycle.saturating_sub(start) > bound {
                    self.violate(
                        "refresh.postpone-bound",
                        cycle,
                        format!("refresh on rank {rank} issued {} cycles after its drain began (bound {bound})", cycle - start),
                    );
                }
            }
        }
        self.ranks[rank].drain_since = None;
        match bank {
            Some(b) if b < self.cfg.banks_per_rank => {
                if let Some(sa) = subarray {
                    if sa >= self.cfg.subarrays_per_bank {
                        self.violate(
                            "refresh.subarray-scope",
                            cycle,
                            format!("REFsa on rank {rank} bank {b} targets subarray {sa}, but banks have only {} subarrays — the round refreshes no real rows", self.cfg.subarrays_per_bank),
                        );
                    }
                }
                self.ranks[rank].bank_frozen_since[b] = Some(cycle);
                self.ranks[rank].bank_frozen_sa[b] = subarray;
            }
            Some(_) => {}
            None => {
                // A RetentionRound stamped this cycle marks the refresh
                // as a RAIDR scaled round (variable duration, partial
                // bin coverage); a plain REF on a RAIDR rank is a full
                // round and covers every bin.
                let pending = self.ranks[rank].pending_retention.take();
                let (scaled, covers_128, covers_256) = match pending {
                    Some((c, c128, c256)) if c == cycle => (true, c128, c256),
                    _ => (false, true, true),
                };
                self.ranks[rank].frozen_since = Some(cycle);
                self.ranks[rank].frozen_scaled = scaled;
                self.note_bin_coverage(cycle, rank, covers_128, covers_256);
            }
        }
    }

    fn on_refresh_end(&mut self, cycle: Cycle, rank: usize, bank: Option<usize>) {
        if rank >= self.cfg.ranks {
            return;
        }
        let (started, t_rfc, scope) = match bank {
            Some(b) if b < self.cfg.banks_per_rank => {
                let started = self.ranks[rank].bank_frozen_since[b].take();
                // A subarray-scoped refresh (SARP) runs tRFCsa, not the
                // full per-bank tRFCpb.
                match self.ranks[rank].bank_frozen_sa[b].take() {
                    Some(_) => (started, self.cfg.timing.t_rfc_sa, "REFsa"),
                    None => (started, self.cfg.timing.t_rfc_pb, "REFpb"),
                }
            }
            Some(_) => (None, 0, "REFpb"),
            None => {
                let started = self.ranks[rank].frozen_since.take();
                if std::mem::take(&mut self.ranks[rank].frozen_scaled) {
                    // RAIDR scaled round: the duration is pro-rated to
                    // the weak-row fraction, so only a lower bound of
                    // one cycle applies.
                    (started, 1, "REF(scaled)")
                } else {
                    (started, self.cfg.timing.t_rfc(), "REF")
                }
            }
        };
        match started {
            Some(start) => {
                if cycle < start + t_rfc {
                    self.violate(
                        "timing.tRFC",
                        cycle,
                        format!("{scope} on rank {rank} bank {bank:?} completed after only {} cycles (tRFC {t_rfc})", cycle - start),
                    );
                }
            }
            None => self.violate(
                "trace.malformed",
                cycle,
                format!("{scope} completion on rank {rank} bank {bank:?} without a matching start"),
            ),
        }
    }

    fn on_window_open(&mut self, cycle: Cycle, rank: usize, bank: Option<usize>, b: u64) {
        let Some(window) = self.cfg.observational_window else {
            return;
        };
        if rank >= self.cfg.ranks {
            return;
        }
        let r = &mut self.ranks[rank];
        // Replicate AccessWindow::count(now): arrivals in (now-window, now].
        let cutoff = cycle.saturating_sub(window);
        while let Some(&front) = r.arrivals.front() {
            if front <= cutoff {
                r.arrivals.pop_front();
            } else {
                break;
            }
        }
        let expected = r.arrivals.len() as u64;
        r.window_open = true;
        r.window_bank = bank;
        r.latched_b = b;
        r.expect_a = 0;
        if b != expected {
            self.violate(
                "profiler.B",
                cycle,
                format!("rank {rank} latched B={b} at refresh start but the trace shows {expected} arrivals in the last {window} cycles"),
            );
        }
    }

    fn on_window_close(&mut self, cycle: Cycle, rank: usize, b: u64, a: u64) {
        if self.cfg.observational_window.is_none() || rank >= self.cfg.ranks {
            return;
        }
        let r = &mut self.ranks[rank];
        if !r.window_open {
            self.violate(
                "profiler.window",
                cycle,
                format!("rank {rank} closed a profiler window that was never opened"),
            );
            return;
        }
        r.window_open = false;
        let (latched_b, expect_a) = (r.latched_b, r.expect_a);
        if b != latched_b {
            self.violate(
                "profiler.B",
                cycle,
                format!(
                    "rank {rank} reported B={b} at window close but latched {latched_b} at open"
                ),
            );
        }
        if a != expect_a {
            self.violate(
                "profiler.A",
                cycle,
                format!("rank {rank} reported A={a} but the trace accounts for {expect_a} blocked reads"),
            );
        }
    }

    fn on_demand(&mut self, cycle: Cycle, rank: usize, bank: usize, is_read: bool) {
        if self.cfg.observational_window.is_none() || rank >= self.cfg.ranks {
            return;
        }
        let r = &mut self.ranks[rank];
        r.arrivals.push_back(cycle);
        if r.window_open && is_read && r.window_bank.is_none_or(|wb| wb == bank) {
            r.expect_a += 1;
        }
    }

    fn observe(&mut self, event: TraceEvent) {
        self.events_seen += 1;
        if self.tail.len() == TAIL_CAPACITY {
            self.tail.pop_front();
        }
        self.tail.push_back(event);
        match event {
            TraceEvent::CmdIssued {
                cycle,
                kind,
                rank,
                bank,
                row,
            } => self.on_command(cycle, kind, rank, bank, row),
            TraceEvent::RefreshStart {
                cycle,
                rank,
                bank,
                subarray,
            } => self.on_refresh_start(cycle, rank, bank, subarray),
            TraceEvent::RefreshEnd { cycle, rank, bank } => self.on_refresh_end(cycle, rank, bank),
            TraceEvent::RefreshPostponed { cycle, rank, debt } => {
                if let Some(max_debt) = self.cfg.elastic_max_debt {
                    let bound = self.cfg.elastic_debt_bound(max_debt);
                    if debt > bound {
                        self.violate(
                            "refresh.postpone-bound",
                            cycle,
                            format!(
                                "rank {rank} accumulated a refresh debt of {debt} (bound {bound})"
                            ),
                        );
                    }
                }
            }
            TraceEvent::DrainStart { cycle, rank } => {
                if rank < self.cfg.ranks && self.ranks[rank].drain_since.is_none() {
                    self.ranks[rank].drain_since = Some(cycle);
                }
            }
            TraceEvent::DrainEnd { .. } => {}
            TraceEvent::SramFill { cycle, line } => {
                let _ = cycle;
                self.sram.insert(line);
            }
            TraceEvent::SramEvict { cycle, line } => {
                if !self.sram.remove(&line) {
                    self.violate(
                        "sram.phantom-evict",
                        cycle,
                        format!("line {line:#x} evicted but the shadow set never saw it filled"),
                    );
                }
            }
            TraceEvent::SramClear { .. } => self.sram.clear(),
            TraceEvent::SramHit { cycle, line } => {
                if !self.sram.contains(&line) {
                    self.violate(
                        "sram.stale-serve",
                        cycle,
                        format!("read served for line {line:#x} which is not resident in the shadow buffer"),
                    );
                }
            }
            TraceEvent::ProfilerWindowOpen {
                cycle,
                rank,
                bank,
                b,
            } => self.on_window_open(cycle, rank, bank, b),
            TraceEvent::ProfilerWindowClose { cycle, rank, b, a } => {
                self.on_window_close(cycle, rank, b, a)
            }
            TraceEvent::DemandObserved {
                cycle,
                rank,
                bank,
                is_read,
            } => self.on_demand(cycle, rank, bank, is_read),
            TraceEvent::RetentionRound {
                cycle,
                rank,
                round: _,
                covers_128,
                covers_256,
            } => {
                if rank < self.cfg.ranks {
                    // Stash for the RefreshStart this cycle. A skipped
                    // round has no RefreshStart and covers nothing, so
                    // an unconsumed stash is simply overwritten.
                    self.ranks[rank].pending_retention = Some((cycle, covers_128, covers_256));
                }
            }
            TraceEvent::BlockedQueued { cycle, rank, count } => {
                let _ = cycle;
                if self.cfg.observational_window.is_some()
                    && rank < self.cfg.ranks
                    && self.ranks[rank].window_open
                {
                    self.ranks[rank].expect_a += count;
                }
            }
        }
    }
}

impl EventSink for Auditor {
    fn record(&mut self, event: TraceEvent) {
        self.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rop_dram::DramConfig;

    fn auditor() -> Auditor {
        Auditor::new(AuditorConfig::from_ctrl(&MemCtrlConfig::baseline(
            DramConfig::baseline(1),
        )))
    }

    fn rop_auditor() -> Auditor {
        Auditor::new(AuditorConfig::from_ctrl(&MemCtrlConfig::rop(
            DramConfig::baseline(1),
            64,
            42,
        )))
    }

    fn act(cycle: Cycle, bank: usize) -> TraceEvent {
        act_row(cycle, bank, 0)
    }

    fn act_row(cycle: Cycle, bank: usize, row: usize) -> TraceEvent {
        TraceEvent::CmdIssued {
            cycle,
            kind: CmdKind::Activate,
            rank: 0,
            bank: Some(bank),
            row: Some(row),
        }
    }

    fn rd(cycle: Cycle, bank: usize) -> TraceEvent {
        TraceEvent::CmdIssued {
            cycle,
            kind: CmdKind::Read,
            rank: 0,
            bank: Some(bank),
            row: None,
        }
    }

    fn pre(cycle: Cycle, bank: usize) -> TraceEvent {
        TraceEvent::CmdIssued {
            cycle,
            kind: CmdKind::Precharge,
            rank: 0,
            bank: Some(bank),
            row: None,
        }
    }

    fn ref_start(cycle: Cycle, bank: Option<usize>, subarray: Option<usize>) -> TraceEvent {
        TraceEvent::RefreshStart {
            cycle,
            rank: 0,
            bank,
            subarray,
        }
    }

    #[test]
    fn legal_sequence_passes() {
        let mut a = auditor();
        // ACT, wait tRCD (11), RD, wait, PRE after tRAS (28), ACT after tRP.
        a.record(act(0, 0));
        a.record(rd(11, 0));
        a.record(pre(28, 0));
        a.record(act(39, 0));
        assert_eq!(a.summary().violations, 0);
        assert_eq!(a.summary().events, 4);
    }

    #[test]
    fn trcd_violation_detected() {
        let mut a = auditor();
        a.record(act(0, 0));
        a.record(rd(5, 0)); // tRCD is 11
        assert_eq!(a.summary().violations, 1);
        assert_eq!(a.violations()[0].invariant, "timing.tRCD");
        assert!(a.violations()[0].message.contains("tRCD"));
        assert_eq!(a.violations()[0].tail.len(), 2);
    }

    #[test]
    fn trp_and_tras_violations_detected() {
        let mut a = auditor();
        a.record(act(0, 0));
        a.record(pre(10, 0)); // tRAS is 28
        a.record(act(12, 0)); // tRP is 11
        let kinds: Vec<_> = a.violations().iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&"timing.tRAS"), "{kinds:?}");
        assert!(kinds.contains(&"timing.tRP"), "{kinds:?}");
    }

    #[test]
    fn tfaw_violation_detected() {
        let mut a = auditor();
        // Five activates to distinct banks, tRRD (5) apart: the fifth at
        // cycle 20 sits inside the first's tFAW window (24).
        for (i, c) in [0u64, 5, 10, 15, 20].iter().enumerate() {
            a.record(act(*c, i));
        }
        let kinds: Vec<_> = a.violations().iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&"timing.tFAW"), "{kinds:?}");
        // Spacing out the fifth is legal.
        let mut a = auditor();
        for (i, c) in [0u64, 5, 10, 15, 24].iter().enumerate() {
            a.record(act(*c, i));
        }
        assert_eq!(a.summary().violations, 0);
    }

    #[test]
    fn tccd_violation_detected() {
        let mut a = auditor();
        a.record(act(0, 0));
        a.record(act(5, 1));
        a.record(rd(16, 0));
        a.record(rd(18, 1)); // tCCD is 5
        let kinds: Vec<_> = a.violations().iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&"timing.tCCD"), "{kinds:?}");
    }

    #[test]
    fn command_to_frozen_rank_is_a_violation() {
        let mut a = auditor();
        a.record(ref_start(100, None, None));
        a.record(act(150, 0));
        let kinds: Vec<_> = a.violations().iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&"timing.tRFC"), "{kinds:?}");
    }

    #[test]
    fn short_refresh_is_a_violation() {
        let mut a = auditor();
        a.record(ref_start(100, None, None));
        a.record(TraceEvent::RefreshEnd {
            cycle: 200, // tRFC is 280
            rank: 0,
            bank: None,
        });
        assert_eq!(a.violations()[0].invariant, "timing.tRFC");
        // A full-length refresh passes.
        let mut a = auditor();
        a.record(ref_start(100, None, None));
        a.record(TraceEvent::RefreshEnd {
            cycle: 380,
            rank: 0,
            bank: None,
        });
        assert_eq!(a.summary().violations, 0);
    }

    #[test]
    fn postpone_bound_enforced() {
        let mut a = auditor();
        let bound = a.cfg.max_refresh_postpone + a.cfg.quiesce_slack();
        a.record(TraceEvent::DrainStart { cycle: 0, rank: 0 });
        a.record(ref_start(bound + 1, None, None));
        assert_eq!(a.violations()[0].invariant, "refresh.postpone-bound");
        // Inside the bound is fine.
        let mut a = auditor();
        a.record(TraceEvent::DrainStart { cycle: 0, rank: 0 });
        a.record(ref_start(bound, None, None));
        assert_eq!(a.summary().violations, 0);
    }

    #[test]
    fn stale_sram_serve_detected() {
        let mut a = rop_auditor();
        a.record(TraceEvent::SramFill { cycle: 1, line: 7 });
        a.record(TraceEvent::SramHit { cycle: 2, line: 7 });
        assert_eq!(a.summary().violations, 0);
        a.record(TraceEvent::SramClear { cycle: 3 });
        a.record(TraceEvent::SramHit { cycle: 4, line: 7 });
        assert_eq!(a.violations()[0].invariant, "sram.stale-serve");
    }

    #[test]
    fn profiler_ab_replication() {
        let mut a = rop_auditor();
        let demand = |cycle| TraceEvent::DemandObserved {
            cycle,
            rank: 0,
            bank: 0,
            is_read: true,
        };
        // Two arrivals inside the 280-cycle window, one outside it.
        a.record(demand(10));
        a.record(demand(900));
        a.record(demand(950));
        a.record(TraceEvent::ProfilerWindowOpen {
            cycle: 1000,
            rank: 0,
            bank: None,
            b: 2,
        });
        // One read during the refresh plus three already-blocked reads.
        a.record(demand(1010));
        a.record(TraceEvent::BlockedQueued {
            cycle: 1000,
            rank: 0,
            count: 3,
        });
        a.record(TraceEvent::ProfilerWindowClose {
            cycle: 1280,
            rank: 0,
            b: 2,
            a: 4,
        });
        assert_eq!(a.summary().violations, 0, "{}", a.report());
        // A mismatching A is flagged.
        a.record(TraceEvent::ProfilerWindowOpen {
            cycle: 2000,
            rank: 0,
            bank: None,
            b: 0,
        });
        a.record(TraceEvent::ProfilerWindowClose {
            cycle: 2280,
            rank: 0,
            b: 0,
            a: 9,
        });
        assert_eq!(a.violations()[0].invariant, "profiler.A");
    }

    fn sarp_auditor() -> Auditor {
        Auditor::new(AuditorConfig::from_ctrl(&MemCtrlConfig::sarp(
            DramConfig::baseline(1),
        )))
    }

    #[test]
    fn sarp_freeze_admits_only_sibling_subarrays() {
        let mut a = sarp_auditor();
        let rps = a.cfg.rows_per_subarray;
        // Bank 0 refreshes subarray 0; an ACT into subarray 1 is legal.
        a.record(ref_start(100, Some(0), Some(0)));
        a.record(act_row(110, 0, rps));
        assert_eq!(a.summary().violations, 0, "{}", a.report());
        // An ACT into the refreshing subarray is not.
        let mut a = sarp_auditor();
        a.record(ref_start(100, Some(0), Some(0)));
        a.record(act_row(110, 0, rps - 1));
        let kinds: Vec<_> = a.violations().iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&"timing.tRFC"), "{kinds:?}");
    }

    #[test]
    fn out_of_range_subarray_is_flagged() {
        let mut a = sarp_auditor();
        let sas = a.cfg.subarrays_per_bank;
        // The last real subarray is fine; one past the end is a scope
        // violation (the round refreshes rows that do not exist).
        a.record(ref_start(100, Some(0), Some(sas - 1)));
        assert_eq!(a.summary().violations, 0, "{}", a.report());
        a.record(ref_start(500, Some(1), Some(sas)));
        let kinds: Vec<_> = a.violations().iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&"refresh.subarray-scope"), "{kinds:?}");
    }

    #[test]
    fn whole_bank_freeze_still_admits_nothing() {
        let mut a = auditor();
        a.record(ref_start(100, Some(0), None));
        a.record(act_row(110, 0, 0));
        let kinds: Vec<_> = a.violations().iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&"timing.tRFC"), "{kinds:?}");
    }

    #[test]
    fn sarp_refresh_end_checks_trfcsa() {
        let mut a = sarp_auditor();
        let t_rfc_sa = a.cfg.timing.t_rfc_sa;
        a.record(ref_start(100, Some(0), Some(0)));
        a.record(TraceEvent::RefreshEnd {
            cycle: 100 + t_rfc_sa,
            rank: 0,
            bank: Some(0),
        });
        assert_eq!(a.summary().violations, 0, "{}", a.report());
        let mut a = sarp_auditor();
        a.record(ref_start(100, Some(0), Some(0)));
        a.record(TraceEvent::RefreshEnd {
            cycle: 100 + t_rfc_sa - 1,
            rank: 0,
            bank: Some(0),
        });
        assert_eq!(a.violations()[0].invariant, "timing.tRFC");
    }

    fn raidr_auditor() -> Auditor {
        Auditor::new(AuditorConfig::from_ctrl(&MemCtrlConfig::raidr(
            DramConfig::baseline(1),
            7,
        )))
    }

    #[test]
    fn raidr_scaled_round_may_end_early() {
        let mut a = raidr_auditor();
        a.record(TraceEvent::RetentionRound {
            cycle: 100,
            rank: 0,
            round: 2,
            covers_128: false,
            covers_256: false,
        });
        a.record(ref_start(100, None, None));
        a.record(TraceEvent::RefreshEnd {
            cycle: 140, // far below tRFC: fine, the round was scaled
            rank: 0,
            bank: None,
        });
        assert_eq!(a.summary().violations, 0, "{}", a.report());
    }

    #[test]
    fn raidr_bin_deadline_enforced() {
        let mut a = raidr_auditor();
        let bin = a.cfg.raidr_bin_period.expect("raidr config");
        let slack = a.cfg.max_refresh_postpone + a.cfg.quiesce_slack() + a.cfg.timing.t_refi();
        let t_rfc = a.cfg.timing.t_rfc();
        // Two full refreshes a legal distance apart.
        a.record(ref_start(0, None, None));
        a.record(TraceEvent::RefreshEnd {
            cycle: t_rfc,
            rank: 0,
            bank: None,
        });
        a.record(ref_start(bin, None, None));
        a.record(TraceEvent::RefreshEnd {
            cycle: bin + t_rfc,
            rank: 0,
            bank: None,
        });
        assert_eq!(a.summary().violations, 0, "{}", a.report());
        // The next cover of the 64 ms bin arrives too late.
        let late = bin + bin + slack + 1;
        a.record(TraceEvent::RetentionRound {
            cycle: late,
            rank: 0,
            round: 2,
            covers_128: false,
            covers_256: false,
        });
        a.record(ref_start(late, None, None));
        let kinds: Vec<_> = a.violations().iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&"raidr.bin-deadline"), "{kinds:?}");
    }

    #[test]
    fn tail_is_bounded() {
        let mut a = auditor();
        for i in 0..200u64 {
            a.record(TraceEvent::DrainStart { cycle: i, rank: 0 });
            a.record(TraceEvent::DrainEnd { cycle: i, rank: 0 });
            // Reset drain tracking so no postpone violation fires.
            a.ranks[0].drain_since = None;
        }
        a.record(act(10_000, 0));
        a.record(rd(10_001, 0)); // tRCD violation
        let v = &a.violations()[0];
        assert_eq!(v.tail.len(), TAIL_CAPACITY);
        assert_eq!(v.tail.last().copied(), Some(rd(10_001, 0)));
    }
}
