//! Calibration probe: per-benchmark baseline characteristics used to tune
//! the synthetic workload parameters against the paper's §III analysis.
//!
//! Prints, for each benchmark: baseline IPC, post-LLC read MPKI,
//! non-blocking refresh fraction (1×), avg/max blocked reads, λ/β, the
//! E1∪E2 coverage, and the refresh perf/energy overhead vs. no-refresh.

use rop_sim_system::runner::{parallel_map, run_single, RunSpec};
use rop_sim_system::SystemKind;
use rop_trace::ALL_BENCHMARKS;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let instr: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let spec = RunSpec {
        instructions: instr,
        max_cycles: 400_000_000,
        seed: 42,
    };
    println!(
        "{:<11} {:>6} {:>6} {:>6} {:>9} {:>6} {:>6} {:>5} {:>5} {:>5} {:>7} {:>7}",
        "bench",
        "IPC",
        "MPKI",
        "rowhit",
        "refreshes",
        "nonblk",
        "avgblk",
        "maxB",
        "lam",
        "beta",
        "dperf%",
        "dener%"
    );
    let rows = parallel_map(ALL_BENCHMARKS.to_vec(), |&b| {
        let base = run_single(b, SystemKind::Baseline, spec);
        let ideal = run_single(b, SystemKind::NoRefresh, spec);
        (b, base, ideal)
    });
    for (b, base, ideal) in rows {
        let r = base.analysis[0][0];
        let dperf = (ideal.ipc() - base.ipc()) / base.ipc() * 100.0;
        let dener =
            (base.energy.total_nj() - ideal.energy.total_nj()) / ideal.energy.total_nj() * 100.0;
        println!(
            "{:<11} {:>6.3} {:>6.1} {:>6.2} {:>9} {:>6.2} {:>6.2} {:>5} {:>5.2} {:>5.2} {:>7.2} {:>7.1}{}",
            b.name(),
            base.ipc(),
            base.cores[0].mpki(),
            base.row_hit_rate,
            r.refreshes,
            r.non_blocking_fraction,
            r.avg_blocked_per_blocking,
            r.max_blocked,
            r.lambda,
            r.beta,
            dperf,
            dener,
            if base.hit_cycle_cap { " CAP!" } else { "" }
        );
    }
}
// (energy breakdown appended by calibration runs via ROP_EBREAK)
