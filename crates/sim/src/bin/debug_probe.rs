//! Developer probe: run one configuration and dump internals.
//! Not part of the reproduction surface; used to diagnose dynamics.

use rop_sim_system::{System, SystemConfig, SystemKind};
use rop_trace::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let instr: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(900_000);
    let mut sys = System::new(SystemConfig::single_core(
        Benchmark::Libquantum,
        SystemKind::Rop { buffer: 64 },
        42,
    ));
    let m = sys.run_until(instr, 100_000_000);
    let ctrl = sys.controller();
    println!(
        "cycles={} ipc={:.3} cap={}",
        m.total_cycles,
        m.ipc(),
        m.hit_cycle_cap
    );
    println!(
        "refreshes={} prefetches={} fills={} sram_lookups={} sram_hits={} from_sram_total={} dropped={}",
        m.refreshes,
        m.prefetches,
        ctrl.stats().prefetch_fills,
        ctrl.stats().sram_lookups,
        ctrl.stats().sram_hits,
        ctrl.stats().reads_from_sram,
        ctrl.stats().prefetches_dropped,
    );
    println!(
        "blocked={} rq_full={} wq_full={} row_hit={:.2} avg_lat={:.1}",
        ctrl.stats().reads_blocked_by_refresh,
        ctrl.stats().read_queue_full,
        ctrl.stats().write_queue_full,
        ctrl.stats().row_buffer.ratio(),
        m.avg_read_latency
    );
    println!(
        "phase={:?} lambda/beta={:?} engine={:?}",
        ctrl.rop_phase(0),
        ctrl.rop_probabilities(0),
        ctrl.rop_engine_stats(0)
    );
    let r = m.analysis[0][0];
    println!(
        "analysis 1x: refreshes={} nonblock={:.2} avg_blocked={:.2} max={} lambda={:.2} beta={:.2}",
        r.refreshes,
        r.non_blocking_fraction,
        r.avg_blocked_per_blocking,
        r.max_blocked,
        r.lambda,
        r.beta
    );
    let e = &m.energy;
    println!(
        "energy nJ: act={:.0} rd={:.0} wr={:.0} ref={:.0} bg={:.0} sram={:.1} total={:.0}",
        e.act_pre_nj,
        e.read_nj,
        e.write_nj,
        e.refresh_nj,
        e.background_nj,
        e.sram_nj,
        e.total_nj()
    );
    println!(
        "core: instr={} misses={} stall={} mpki={:.1}",
        m.cores[0].instructions,
        m.cores[0].read_misses,
        m.cores[0].stall_cycles,
        m.cores[0].mpki()
    );
}
