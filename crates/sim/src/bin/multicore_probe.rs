//! Calibration probe for the 4-core experiments (Figures 10/11).

use rop_sim_system::experiments::multicore::run_multicore;
use rop_sim_system::runner::RunSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let instr: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let llc_mib: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let spec = RunSpec {
        instructions: instr,
        max_cycles: 2_000_000_000,
        seed: 42,
    };
    let res = run_multicore(llc_mib, spec);
    println!("{}", res.render_fig10());
    println!("{}", res.render_fig11());
    for r in &res.rows {
        println!(
            "{}: WS base={:.3} rp={:.3} rop={:.3}  rop_hit={:.2} pf={} cap={} {}",
            r.mix,
            r.ws[0],
            r.ws[1],
            r.ws[2],
            r.rop.sram_hit_rate,
            r.rop.prefetches,
            r.baseline.hit_cycle_cap as u8,
            if r.rop.hit_cycle_cap { "ROP-CAP!" } else { "" }
        );
    }
}
