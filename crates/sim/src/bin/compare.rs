//! Comparison probe: Baseline vs ROP-{16,64,128} vs No-Refresh per
//! benchmark — the quick view of Figures 7/8/9 used while calibrating.

use rop_sim_system::runner::{parallel_map, run_single, RunSpec};
use rop_sim_system::SystemKind;
use rop_trace::ALL_BENCHMARKS;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let instr: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let spec = RunSpec {
        instructions: instr,
        max_cycles: 800_000_000,
        seed: 42,
    };
    let kinds = [
        SystemKind::Baseline,
        SystemKind::Rop { buffer: 16 },
        SystemKind::Rop { buffer: 64 },
        SystemKind::Rop { buffer: 128 },
        SystemKind::NoRefresh,
    ];
    println!(
        "{:<11} {:>7} {:>7} {:>7} {:>7} {:>7} {:>6} {:>6} {:>7} {:>7}",
        "bench", "base", "rop16", "rop64", "rop128", "noref", "hit64", "pf64", "E64", "Enoref"
    );
    let mut items = Vec::new();
    for &b in &ALL_BENCHMARKS {
        for &k in &kinds {
            items.push((b, k));
        }
    }
    let all = parallel_map(items, |&(b, k)| run_single(b, k, spec));
    for (i, &b) in ALL_BENCHMARKS.iter().enumerate() {
        let ms = &all[i * kinds.len()..(i + 1) * kinds.len()];
        let base = ms[0].ipc();
        let be = ms[0].energy.total_nj();
        println!(
            "{:<11} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>6.2} {:>6} {:>7.3} {:>7.3}",
            b.name(),
            1.0,
            ms[1].ipc() / base,
            ms[2].ipc() / base,
            ms[3].ipc() / base,
            ms[4].ipc() / base,
            ms[2].sram_hit_rate,
            ms[2].prefetches,
            ms[2].energy.total_nj() / be,
            ms[4].energy.total_nj() / be,
        );
    }
}
