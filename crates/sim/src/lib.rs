//! Full-system simulator and experiment harness for the ROP reproduction.
//!
//! This crate assembles the substrate crates into runnable systems —
//! trace-driven cores ([`rop_cpu`]) → shared LLC ([`rop_cache`]) → memory
//! controller with optional ROP ([`rop_memctrl`]) → cycle-level DDR4
//! ([`rop_dram`]) — and implements one experiment module per table/figure
//! of the paper's evaluation (see DESIGN.md's experiment index).
//!
//! The simulation runs everything on the 800 MHz memory clock with a
//! fast-forward loop: when every core is stalled and the controller
//! reports no work before cycle `t`, the clock jumps straight to `t`.
//! Runs are *fixed-work*: each core executes a target instruction count
//! (as the paper does with its 1-billion-instruction SPEC slices), so
//! execution-time differences show up in both IPC and energy.

#![forbid(unsafe_code)]

pub mod audit;
pub mod config;
pub mod engine_stats;
pub mod experiments;
pub mod metrics;
pub mod openloop;
pub mod runner;
pub mod system;
pub mod wheel;

pub use audit::{AuditSummary, Auditor, AuditorConfig, Violation};
pub use config::{OpenLoopSpec, SystemConfig, SystemKind};
pub use metrics::{CoreMetrics, LatencyHistogram, OpenLoopMetrics, RunMetrics};
pub use openloop::OpenLoopSystem;
pub use runner::{
    parallel_map, run_multi, run_single, AuditingExecutor, LocalExecutor, RunSpec, SweepExecutor,
    SweepJob,
};
pub use system::System;

/// Memory-clock cycle.
pub type Cycle = u64;
