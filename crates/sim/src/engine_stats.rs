//! Process-wide engine throughput accounting.
//!
//! Every finished [`crate::system::System`] run adds its simulated cycle,
//! instruction, and engine-event counts here. Drivers that fan runs out
//! across threads (the `repro` binary's figure sweeps) can then report
//! aggregate simulated cycles/sec, instructions/sec, and events/sec
//! against their own wall clock, making engine speedups measurable
//! run-over-run without threading per-run timing through every
//! experiment result type.
//!
//! Cycles/sec flatters an event-driven engine (fast-forward makes the
//! cycle count grow without bound at near-zero cost); events/sec counts
//! actual engine iterations and is the honest throughput metric.

use std::sync::atomic::{AtomicU64, Ordering};

static CYCLES: AtomicU64 = AtomicU64::new(0);
static INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Totals simulated by this process so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineTotals {
    /// Simulated memory-clock cycles, summed over all finished runs.
    pub cycles: u64,
    /// Retired instructions, summed over all cores of all finished runs.
    pub instructions: u64,
    /// Engine loop iterations (events processed), summed over all
    /// finished runs. For the per-cycle reference loop this equals the
    /// cycle count; for the event-driven engine it is much smaller.
    pub events: u64,
}

/// Adds one finished run to the process totals.
pub(crate) fn record(cycles: u64, instructions: u64, events: u64) {
    CYCLES.fetch_add(cycles, Ordering::Relaxed);
    INSTRUCTIONS.fetch_add(instructions, Ordering::Relaxed);
    EVENTS.fetch_add(events, Ordering::Relaxed);
}

/// Snapshot of the process totals.
pub fn totals() -> EngineTotals {
    EngineTotals {
        cycles: CYCLES.load(Ordering::Relaxed),
        instructions: INSTRUCTIONS.load(Ordering::Relaxed),
        events: EVENTS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_monotonically() {
        let before = totals();
        record(100, 40, 25);
        let after = totals();
        assert!(after.cycles >= before.cycles + 100);
        assert!(after.instructions >= before.instructions + 40);
        assert!(after.events >= before.events + 25);
    }
}
