//! Process-wide engine throughput accounting.
//!
//! Every finished [`crate::system::System`] run adds its simulated cycle
//! and instruction counts here. Drivers that fan runs out across threads
//! (the `repro` binary's figure sweeps) can then report aggregate
//! simulated cycles/sec and instructions/sec against their own wall
//! clock, making engine speedups measurable run-over-run without
//! threading per-run timing through every experiment result type.

use std::sync::atomic::{AtomicU64, Ordering};

static CYCLES: AtomicU64 = AtomicU64::new(0);
static INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// Totals simulated by this process so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineTotals {
    /// Simulated memory-clock cycles, summed over all finished runs.
    pub cycles: u64,
    /// Retired instructions, summed over all cores of all finished runs.
    pub instructions: u64,
}

/// Adds one finished run to the process totals.
pub(crate) fn record(cycles: u64, instructions: u64) {
    CYCLES.fetch_add(cycles, Ordering::Relaxed);
    INSTRUCTIONS.fetch_add(instructions, Ordering::Relaxed);
}

/// Snapshot of the process totals.
pub fn totals() -> EngineTotals {
    EngineTotals {
        cycles: CYCLES.load(Ordering::Relaxed),
        instructions: INSTRUCTIONS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_monotonically() {
        let before = totals();
        record(100, 40);
        let after = totals();
        assert!(after.cycles >= before.cycles + 100);
        assert!(after.instructions >= before.instructions + 40);
    }
}
