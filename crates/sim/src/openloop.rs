//! Open-loop traffic injector: the datacenter-mode engine.
//!
//! [`crate::System`] is closed-loop — a stalled core stops issuing, so
//! the request rate adapts to the memory system and mean IPC is the
//! natural metric. Datacenter front-ends are open-loop: requests arrive
//! on a wall-clock schedule regardless of how the memory system is
//! doing, queue up in front of it when it falls behind, and the metric
//! that matters is the *tail* of schedule-to-data latency (DSARP's
//! motivation, Chang et al., HPCA 2014). [`OpenLoopSystem`] drives the
//! unmodified [`MemController`] with seeded arrival processes
//! ([`rop_trace::arrival`]) and collects fixed-bucket log2 latency
//! histograms ([`crate::metrics::LatencyHistogram`]).
//!
//! Semantics:
//!
//! * Each of `tenants` traffic sources owns one rank-partition worth of
//!   lines (base line `t × lines_per_rank`), so under the
//!   rank-partitioned mapping tenant *t*'s requests land on rank *t* —
//!   the same isolation contrast the closed-loop multicore runs use.
//! * Arrivals from all tenants merge into one FIFO frontend backlog in
//!   `(arrival cycle, tenant)` order. The head of the backlog is
//!   offered to the controller every cycle; when the controller refuses
//!   (queue full), the backlog grows — there is no back-pressure on the
//!   generators. Latency is measured from the *scheduled arrival*, so
//!   backlog wait counts toward the tail, exactly like a datacenter SLO
//!   clock that starts when the request hits the front-end.
//! * Reads whose lifetime overlaps a refresh freeze (tracked by the
//!   controller's opt-in id tap) are additionally recorded in a second
//!   histogram — the refresh-attributed tail.
//! * The run is time-bounded (`duration` cycles), not work-bounded:
//!   quantiles need a fixed observation window. Reads still in flight
//!   or still backlogged at the end are censored (counted in
//!   `backlog_final`, not in the histogram).
//!
//! The injector never touches the closed-loop engine path: it is a
//! separate loop over the same controller, and the closed-loop
//! differential guard in the tests proves `System` output is
//! byte-identical with this module compiled in.

use std::collections::VecDeque;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use rop_memctrl::{Completion, MemController};
use rop_trace::{Arrival, ArrivalGen};

use crate::audit::{Auditor, AuditorConfig};
use crate::config::{OpenLoopSpec, SystemConfig};
use crate::metrics::{LatencyHistogram, OpenLoopMetrics, RunMetrics};
use crate::wheel::TimingWheel;
use crate::Cycle;

/// One request waiting in the frontend backlog.
#[derive(Debug, Clone, Copy)]
struct PendingReq {
    /// Scheduled arrival cycle (the SLO clock start).
    at: Cycle,
    /// Tenant index (doubles as the controller's `core` id).
    tenant: usize,
    /// Absolute line address inside the tenant's partition.
    line_addr: u64,
    is_write: bool,
}

/// A complete open-loop machine: arrival generators → frontend backlog
/// → controller → DRAM.
pub struct OpenLoopSystem {
    cfg: SystemConfig,
    spec: OpenLoopSpec,
    ctrl: MemController,
    gens: Vec<ArrivalGen>,
    /// Peeked next arrival per tenant (generators are infinite).
    heads: Vec<Arrival>,
    /// Base line address of each tenant's footprint.
    tenant_base: Vec<u64>,
    /// FIFO of requests that have arrived but not yet been accepted.
    backlog: VecDeque<PendingReq>,
    /// Read id → scheduled arrival cycle, for latency on completion.
    arrival_of: BTreeMap<u64, Cycle>,
    /// Read ids observed blocked by a refresh freeze (dedup set).
    blocked: BTreeSet<u64>,
    blocked_scratch: Vec<u64>,
    inflight: TimingWheel,
    due: Vec<Completion>,
    now: Cycle,
    read_hist: LatencyHistogram,
    refresh_hist: LatencyHistogram,
    reads_injected: u64,
    writes_injected: u64,
    backlog_peak: u64,
    wall_seconds: f64,
    events: u64,
    auditor: Option<Auditor>,
    cancel: Option<std::sync::Arc<crate::runner::CancelToken>>,
}

impl OpenLoopSystem {
    /// Builds the open-loop machine described by `cfg` (whose
    /// `open_loop` field must be set).
    ///
    /// # Panics
    /// Panics on an invalid configuration: missing/invalid open-loop
    /// spec, more tenants than ranks, or a tenant footprint larger than
    /// one rank partition.
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate().expect("invalid system configuration");
        let spec = cfg
            .open_loop
            .clone()
            .expect("OpenLoopSystem requires cfg.open_loop");
        spec.validate().expect("invalid open-loop spec");
        let ctrl_cfg = cfg
            .ctrl_override
            .clone()
            .unwrap_or_else(|| cfg.kind.memctrl_config(cfg.ranks, cfg.seed));
        let ctrl = MemController::new(ctrl_cfg);
        let lines_per_rank = ctrl.mapping().lines_per_rank();
        assert!(
            spec.tenants <= cfg.ranks,
            "open-loop tenants ({}) exceed ranks ({})", // rop-lint: allow(no-panic)
            spec.tenants,
            cfg.ranks
        );
        assert!(
            spec.region_lines <= lines_per_rank,
            "tenant footprint ({} lines) exceeds one rank partition ({lines_per_rank})", // rop-lint: allow(no-panic)
            spec.region_lines
        );
        let per_tenant_rpkc = spec.offered_rpkc / spec.tenants as f64;
        let mut gens: Vec<ArrivalGen> = (0..spec.tenants)
            .map(|t| {
                ArrivalGen::new(
                    spec.process.clone(),
                    per_tenant_rpkc,
                    spec.pattern.clone(),
                    spec.region_lines,
                    spec.write_fraction,
                    cfg.seed.wrapping_add(t as u64 * 7919),
                )
            })
            .collect();
        let heads = gens.iter_mut().map(|g| g.next_arrival()).collect();
        let tenant_base = (0..spec.tenants)
            .map(|t| t as u64 * lines_per_rank)
            .collect();
        let mut sys = OpenLoopSystem {
            cfg,
            spec,
            ctrl,
            gens,
            heads,
            tenant_base,
            backlog: VecDeque::new(),
            arrival_of: BTreeMap::new(),
            blocked: BTreeSet::new(),
            blocked_scratch: Vec::new(),
            inflight: TimingWheel::new(),
            due: Vec::new(),
            now: 0,
            read_hist: LatencyHistogram::new(),
            refresh_hist: LatencyHistogram::new(),
            reads_injected: 0,
            writes_injected: 0,
            backlog_peak: 0,
            wall_seconds: 0.0,
            events: 0,
            auditor: None,
            cancel: None,
        };
        sys.ctrl.set_track_refresh_blocked(true);
        sys
    }

    /// Attaches a cancellation token (see [`crate::runner::CancelToken`]).
    pub fn set_cancel_token(&mut self, token: std::sync::Arc<crate::runner::CancelToken>) {
        self.cancel = Some(token);
    }

    /// Enables audit mode with parameters derived from the controller
    /// configuration, exactly like [`crate::System::enable_audit`].
    pub fn enable_audit(&mut self) {
        let cfg = AuditorConfig::from_ctrl(self.ctrl.config());
        self.ctrl.set_trace_enabled(true);
        self.auditor = Some(Auditor::new(cfg));
    }

    /// Immutable access to the controller (for inspection in tests).
    pub fn controller(&self) -> &MemController {
        &self.ctrl
    }

    /// Moves every arrival scheduled at or before `now` from the
    /// generators into the backlog, in `(arrival, tenant)` order.
    fn merge_arrivals(&mut self, now: Cycle) {
        loop {
            let mut best: Option<usize> = None;
            for (t, h) in self.heads.iter().enumerate() {
                if h.at > now {
                    continue;
                }
                // Ascending tenant iteration makes the first strict
                // minimum the (at, tenant) winner.
                if best.is_none_or(|b| h.at < self.heads[b].at) {
                    best = Some(t);
                }
            }
            let Some(t) = best else { break };
            let h = self.heads[t];
            self.backlog.push_back(PendingReq {
                at: h.at,
                tenant: t,
                line_addr: self.tenant_base[t] + h.line_offset,
                is_write: h.is_write,
            });
            self.heads[t] = self.gens[t].next_arrival();
        }
        self.backlog_peak = self.backlog_peak.max(self.backlog.len() as u64);
    }

    /// Offers the backlog head to the controller until it refuses.
    /// Head-of-line blocking is deliberate: the frontend is a FIFO, so
    /// one full queue stalls everything behind it (that wait is real
    /// latency and must show in the tail).
    fn inject(&mut self, now: Cycle) {
        while let Some(&head) = self.backlog.front() {
            if head.is_write {
                if !self.ctrl.enqueue_write(head.line_addr, head.tenant, now) {
                    break;
                }
                self.writes_injected += 1;
            } else {
                let Some(id) = self.ctrl.enqueue_read(head.line_addr, head.tenant, now) else {
                    break;
                };
                self.arrival_of.insert(id, head.at);
                self.reads_injected += 1;
            }
            self.backlog.pop_front();
        }
    }

    /// Runs the injector for the configured duration and returns the
    /// metrics (with `open_loop` populated).
    pub fn run(&mut self) -> RunMetrics {
        // Wall-clock throughput metadata only — never fed back into
        // simulated state, so determinism is unaffected.
        let start = Instant::now(); // rop-lint: allow(wallclock)
        let duration = self.spec.duration;
        while self.now < duration {
            let now = self.now;
            self.events += 1;
            if let Some(token) = &self.cancel {
                token.beat(now);
                token.checkpoint(); // panics when a watchdog cancelled us
            }

            // Deliver read data that has arrived, in `(done_at, id)`
            // order, and score each read against its SLO clock.
            self.inflight.pop_due(now, &mut self.due);
            for i in 0..self.due.len() {
                let c = self.due[i];
                if let Some(at) = self.arrival_of.remove(&c.id) {
                    let latency = c.done_at.saturating_sub(at);
                    self.read_hist.record(latency);
                    if self.blocked.remove(&c.id) {
                        self.refresh_hist.record(latency);
                    }
                }
            }
            self.due.clear();

            // Frontend: pull due arrivals, then push at the controller.
            self.merge_arrivals(now);
            self.inject(now);

            // Tick the controller and collect fresh completions.
            let hint = self.ctrl.tick(now);
            if let Some(auditor) = &mut self.auditor {
                self.ctrl.drain_trace(auditor);
            }
            self.ctrl.drain_completions_into(&mut self.due);
            for i in 0..self.due.len() {
                self.inflight.push(self.due[i]);
            }
            self.due.clear();
            self.ctrl
                .drain_refresh_blocked_into(&mut self.blocked_scratch);
            for &id in &self.blocked_scratch {
                self.blocked.insert(id);
            }
            self.blocked_scratch.clear();

            // Advance straight to the earliest next event: controller
            // hint, next read completion, or next scheduled arrival. A
            // non-empty backlog forces per-cycle stepping — a queue
            // slot can open at any controller event, and the frontend
            // must retry immediately.
            let mut next = hint;
            if let Some(done_at) = self.inflight.peek_earliest() {
                next = next.min(done_at);
            }
            if let Some(at) = self.heads.iter().map(|h| h.at).min() {
                next = next.min(at);
            }
            if !self.backlog.is_empty() {
                next = now + 1;
            }
            self.now = next.max(now + 1).min(duration);
        }
        if let Some(token) = &self.cancel {
            token.beat(self.now);
        }
        self.wall_seconds += start.elapsed().as_secs_f64();
        if let Some(auditor) = &self.auditor {
            if auditor.summary().violations > 0 {
                panic!("{}", auditor.report()); // rop-lint: allow(no-panic)
            }
        }
        self.collect()
    }

    fn collect(&mut self) -> RunMetrics {
        let duration = self.spec.duration.max(1);
        self.ctrl.finalize_analysis();
        let energy = self.ctrl.energy_breakdown(duration);
        let analysis = (0..self.ctrl.refresh_slots())
            .map(|slot| self.ctrl.analysis(slot).reports())
            .collect();
        let stats = self.ctrl.stats().clone();
        let refreshes: u64 = (0..self.cfg.ranks)
            .map(|r| self.ctrl.refreshes_issued(r))
            .sum();
        crate::engine_stats::record(duration, 0, self.events);
        let open_loop = OpenLoopMetrics {
            process: self.spec.process.label().to_string(),
            offered_rpkc: self.spec.offered_rpkc,
            achieved_rpkc: self.read_hist.count() as f64 * 1000.0 / duration as f64,
            reads_injected: self.reads_injected,
            writes_injected: self.writes_injected,
            backlog_peak: self.backlog_peak,
            backlog_final: self.backlog.len() as u64,
            // Behind schedule by more than one controller queue's worth
            // at the end of the window: the offered load is past this
            // mechanism's saturation point.
            saturated: self.backlog.len() > self.ctrl.config().read_queue_capacity,
            read_latency: self.read_hist.clone(),
            refresh_blocked_latency: self.refresh_hist.clone(),
        };
        RunMetrics {
            system: self.cfg.kind.label(),
            cores: Vec::new(),
            total_cycles: duration,
            energy,
            refreshes,
            mechanism: self.ctrl.mechanism().label().to_string(),
            refresh_blocked_cycles: stats.refresh_blocked_cycles,
            refreshes_skipped: self.ctrl.refreshes_skipped(),
            refreshes_pulled_in: self.ctrl.refreshes_pulled_in(),
            sram_hit_rate: if stats.sram_lookups == 0 {
                0.0
            } else {
                stats.sram_hits as f64 / stats.sram_lookups as f64
            },
            sram_lookups: stats.sram_lookups,
            prefetches: stats.prefetches_issued,
            analysis,
            row_hit_rate: stats.row_buffer.ratio(),
            avg_read_latency: self.read_hist.mean(),
            hit_cycle_cap: false,
            wall_seconds: self.wall_seconds,
            instructions_total: 0,
            events: self.events,
            audit: self.auditor.as_ref().map(|a| a.summary()),
            open_loop: Some(open_loop),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;
    use rop_memctrl::MappingScheme;
    use rop_trace::{AddressPattern, ArrivalProcess, Benchmark};

    fn open_loop_config(kind: SystemKind, rpkc: f64, duration: Cycle) -> SystemConfig {
        let mut cfg = SystemConfig::multi_core(
            [
                Benchmark::Lbm,
                Benchmark::Libquantum,
                Benchmark::Bwaves,
                Benchmark::GemsFDTD,
            ],
            kind,
            42,
        );
        // Pin tenants to ranks regardless of the mechanism's default
        // mapping (the tail-latency experiment does the same).
        let mut ctrl = kind.memctrl_config(cfg.ranks, cfg.seed);
        ctrl.mapping = MappingScheme::RankPartitioned;
        cfg.ctrl_override = Some(ctrl);
        cfg.open_loop = Some(OpenLoopSpec {
            process: ArrivalProcess::Poisson,
            offered_rpkc: rpkc,
            tenants: 4,
            pattern: AddressPattern::Random,
            region_lines: 1 << 12,
            write_fraction: 0.25,
            duration,
        });
        cfg
    }

    #[test]
    fn runs_and_reports_latency() {
        let mut sys = OpenLoopSystem::new(open_loop_config(SystemKind::Baseline, 80.0, 100_000));
        let m = sys.run();
        let ol = m.open_loop.expect("open-loop metrics");
        assert!(ol.reads_injected > 1_000, "{}", ol.reads_injected);
        assert!(ol.read_latency.count() > 1_000);
        assert!(ol.read_latency.p50() > 0);
        assert!(ol.read_latency.p999() >= ol.read_latency.p99());
        assert!(ol.read_latency.p99() >= ol.read_latency.p50());
        assert!(!ol.saturated);
        assert!(
            (ol.achieved_rpkc - 80.0 * 0.75).abs() < 12.0,
            "{}",
            ol.achieved_rpkc
        );
        assert_eq!(m.total_cycles, 100_000);
        assert!(m.refreshes > 0);
        // Refresh-attributed tail: some reads overlapped a freeze, and
        // the blocked subset is worse (or equal) at the median.
        assert!(ol.refresh_blocked_latency.count() > 0);
        assert!(ol.refresh_blocked_latency.p50() >= ol.read_latency.p50());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sys = OpenLoopSystem::new(open_loop_config(SystemKind::Darp, 120.0, 60_000));
            let mut m = sys.run();
            // Wall-clock timing is the one legitimately nondeterministic
            // field; everything else must be byte-identical.
            m.wall_seconds = 0.0;
            m.to_json().render()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn audit_clean_for_every_mechanism() {
        for kind in SystemKind::MECHANISMS {
            let mut sys = OpenLoopSystem::new(open_loop_config(kind, 60.0, 40_000));
            sys.enable_audit();
            let m = sys.run(); // panics on any violation
            let audit = m.audit.expect("audited run");
            assert!(audit.events > 0, "{kind:?}: no events audited");
            assert_eq!(audit.violations, 0);
        }
    }

    #[test]
    fn saturates_past_the_bus_ceiling() {
        // DDR4-1600, burst 4: the data bus serves at most 250 rpkc.
        // Offering 400 rpkc must leave the frontend behind schedule.
        let mut sys = OpenLoopSystem::new(open_loop_config(SystemKind::Baseline, 400.0, 80_000));
        let m = sys.run();
        let ol = m.open_loop.unwrap();
        assert!(ol.saturated, "backlog_final = {}", ol.backlog_final);
        assert!(ol.achieved_rpkc < 300.0);
        // Saturation shows up as queueing-dominated latency: the tail is
        // thousands of cycles, far past any DRAM service time.
        assert!(ol.read_latency.p999() > 2_048, "{}", ol.read_latency.p999());
    }

    #[test]
    fn higher_load_has_fatter_tail() {
        let p999 = |rpkc: f64| {
            let mut sys =
                OpenLoopSystem::new(open_loop_config(SystemKind::Baseline, rpkc, 120_000));
            let m = sys.run();
            m.open_loop.unwrap().read_latency.p999()
        };
        assert!(p999(220.0) > p999(40.0));
    }

    #[test]
    #[should_panic(expected = "tenants")]
    fn more_tenants_than_ranks_panics() {
        let mut cfg = open_loop_config(SystemKind::Baseline, 60.0, 10_000);
        cfg.open_loop.as_mut().unwrap().tenants = 8;
        let _ = OpenLoopSystem::new(cfg);
    }

    #[test]
    fn mechanism_config_without_override_works() {
        // No ctrl_override: the mechanism's own mapping applies
        // (footprints stay disjoint even when not rank-pinned).
        let mut cfg = open_loop_config(SystemKind::Sarp, 60.0, 30_000);
        cfg.ctrl_override = None;
        let m = OpenLoopSystem::new(cfg).run();
        assert!(m.open_loop.unwrap().read_latency.count() > 100);
    }

    /// Closed-loop differential guard: constructing/running the
    /// open-loop engine must not perturb the closed-loop path — a
    /// `System` run before and after an interleaved `OpenLoopSystem`
    /// run is byte-identical.
    #[test]
    fn closed_loop_engine_is_unperturbed() {
        let closed = || {
            let cfg = SystemConfig::single_core(Benchmark::Lbm, SystemKind::Rop { buffer: 64 }, 7);
            let mut sys = crate::System::new(cfg);
            let mut m = sys.run_until(20_000, 2_000_000);
            m.wall_seconds = 0.0;
            m.to_json().render()
        };
        let before = closed();
        let mut ol = OpenLoopSystem::new(open_loop_config(SystemKind::Baseline, 120.0, 30_000));
        let _ = ol.run();
        let after = closed();
        assert_eq!(before, after);
    }

    /// The open-loop config knob itself must not leak into the
    /// closed-loop engine: `System::new` ignores `open_loop` entirely
    /// (planners route by its presence, not the engine).
    #[test]
    fn run_metrics_roundtrip_from_openloop_run() {
        let mut sys = OpenLoopSystem::new(open_loop_config(SystemKind::Raidr, 100.0, 50_000));
        let m = sys.run();
        let text = m.to_json().render();
        let back = RunMetrics::from_json(&rop_stats::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().render(), text);
        let ol = back.open_loop.unwrap();
        assert_eq!(
            ol.read_latency.p999(),
            m.open_loop.as_ref().unwrap().read_latency.p999()
        );
    }
}
