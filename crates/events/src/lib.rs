//! Cycle-stamped structured trace events for the memory system.
//!
//! Every layer of the stack (DRAM device, memory controller, ROP engine,
//! SRAM buffer) owns a [`TraceBuffer`] and pushes [`TraceEvent`]s into it
//! as state changes happen. The buffers are disabled by default and the
//! emit path takes a closure, so a disabled trace costs one branch per
//! call site and never constructs an event — the simulation loops run at
//! full speed unless an auditor asked for the stream.
//!
//! The controller merges all buffers once per tick (its own first, then
//! the device's, then per-rank engine buffers, then the SRAM buffer's),
//! which gives consumers a deterministic order: demand arrivals recorded
//! before a tick precede that tick's refresh transitions, and controller
//! events of a tick precede engine profiler-window events of the same
//! tick. The `Auditor` in `rop-sim-system` relies on exactly this order.

#![forbid(unsafe_code)]

/// Memory-clock cycle (same unit as `rop-dram`).
pub type Cycle = u64;

/// Discriminant of a DRAM command in the trace (mirrors
/// `rop_dram::CommandKind` without depending on it; this crate sits
/// below the device model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    /// Row activation.
    Activate,
    /// Precharge (row close).
    Precharge,
    /// Column read (one BL8 burst).
    Read,
    /// Column write.
    Write,
    /// All-bank auto-refresh (locks the rank for tRFC).
    Refresh,
    /// Per-bank refresh (REFpb; locks one bank for tRFCpb).
    RefreshBank,
    /// Subarray-scoped refresh (SARP; locks one subarray for tRFCsa —
    /// `row` carries the subarray's first row so observers can recover
    /// the scope).
    RefreshSubarray,
}

/// One structured event in the memory-system trace.
///
/// Every variant carries the memory-clock cycle at which it happened.
/// Variants are grouped by emitter: the DRAM device stamps commands, the
/// controller stamps refresh/drain transitions, the ROP engine stamps
/// demand observations and profiler windows, and the SRAM buffer stamps
/// its own fills/hits/evictions (its internal FIFO eviction is visible
/// nowhere else).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// The device accepted a command (emitted only on successful issue).
    CmdIssued {
        /// Issue cycle.
        cycle: Cycle,
        /// Command discriminant.
        kind: CmdKind,
        /// Target rank.
        rank: usize,
        /// Target bank (`None` for all-bank refresh).
        bank: Option<usize>,
        /// Target row for ACT (the auditor needs it to judge subarray
        /// admission under SARP); `None` for non-ACT commands.
        row: Option<usize>,
    },
    /// A refresh began on `rank` (`bank` set for REFpb scope).
    RefreshStart {
        /// Issue cycle of the REF/REFpb command.
        cycle: Cycle,
        /// Refreshing rank.
        rank: usize,
        /// Refreshing bank for per-bank refresh, `None` for all-bank.
        bank: Option<usize>,
        /// Refreshing subarray for SARP-scoped refresh, `None` when the
        /// freeze covers the whole bank/rank.
        subarray: Option<usize>,
    },
    /// The controller observed a refresh completing on `rank`.
    RefreshEnd {
        /// Cycle the completion was observed (>= start + tRFC).
        cycle: Cycle,
        /// Rank whose refresh ended.
        rank: usize,
        /// Bank for per-bank refresh, `None` for all-bank.
        bank: Option<usize>,
    },
    /// A due refresh was postponed past another tREFI (Elastic policy
    /// debt accrual). `debt` is the pending-refresh count afterwards.
    RefreshPostponed {
        /// Cycle the postponement was decided.
        cycle: Cycle,
        /// Rank whose refresh was postponed.
        rank: usize,
        /// Outstanding postponed refreshes after this one.
        debt: u64,
    },
    /// The controller began draining queued demands ahead of a refresh.
    DrainStart {
        /// Cycle the refresh fell due and draining began.
        cycle: Cycle,
        /// Rank being drained.
        rank: usize,
    },
    /// Draining finished (the refresh issues next) or was abandoned.
    DrainEnd {
        /// Cycle the drain ended.
        cycle: Cycle,
        /// Rank that was being drained.
        rank: usize,
    },
    /// The SRAM buffer stored a line.
    SramFill {
        /// Fill cycle.
        cycle: Cycle,
        /// Global line key.
        line: u64,
    },
    /// The SRAM buffer served a read from a resident line.
    SramHit {
        /// Service cycle.
        cycle: Cycle,
        /// Global line key served.
        line: u64,
    },
    /// The SRAM buffer evicted a line to make room (FIFO).
    SramEvict {
        /// Eviction cycle.
        cycle: Cycle,
        /// Global line key evicted.
        line: u64,
    },
    /// The SRAM buffer dropped every line (flush or power-off).
    SramClear {
        /// Clear cycle.
        cycle: Cycle,
    },
    /// A profiler observation window opened: a refresh started and the
    /// engine latched `b` (arrivals inside the observational window).
    ProfilerWindowOpen {
        /// Refresh start cycle.
        cycle: Cycle,
        /// Rank whose engine opened the window.
        rank: usize,
        /// Bank scope for per-bank refresh, `None` for all-bank.
        bank: Option<usize>,
        /// The `B` count the engine latched at refresh start.
        b: u64,
    },
    /// The window closed: the refresh completed and the engine finalised
    /// its `(B, A)` pair for the profiler.
    ProfilerWindowClose {
        /// Refresh completion cycle.
        cycle: Cycle,
        /// Rank whose engine closed the window.
        rank: usize,
        /// The `B` latched at open.
        b: u64,
        /// The `A` accumulated during the refresh (reads arriving while
        /// frozen, plus reads already queued when the freeze began).
        a: u64,
    },
    /// The engine observed one demand access (feeds its access window
    /// and, during a refresh, the `A` count).
    DemandObserved {
        /// Arrival cycle.
        cycle: Cycle,
        /// Rank the access targets.
        rank: usize,
        /// Bank the access targets.
        bank: usize,
        /// True for reads (only reads count toward `A`).
        is_read: bool,
    },
    /// Reads already queued when a refresh started were counted into `A`.
    BlockedQueued {
        /// Refresh start cycle.
        cycle: Cycle,
        /// Rank whose queue was swept.
        rank: usize,
        /// Number of blocked reads counted.
        count: u64,
    },
    /// A RAIDR retention round completed on `rank`: the refresh
    /// mechanism recharged the 64 ms bin and, depending on the round
    /// index, the slower bins too. The auditor uses the stream of these
    /// events to prove every bin is covered within its retention period.
    RetentionRound {
        /// Cycle the round's refresh (or skip decision) was taken.
        cycle: Cycle,
        /// Rank the round covers.
        rank: usize,
        /// Monotonic round index (one per tREFI slot period).
        round: u64,
        /// True when the 128 ms bin was recharged this round.
        covers_128: bool,
        /// True when the 256 ms bin (all remaining rows) was recharged.
        covers_256: bool,
    },
}

impl TraceEvent {
    /// The cycle stamp of this event.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::CmdIssued { cycle, .. }
            | TraceEvent::RefreshStart { cycle, .. }
            | TraceEvent::RefreshEnd { cycle, .. }
            | TraceEvent::RefreshPostponed { cycle, .. }
            | TraceEvent::DrainStart { cycle, .. }
            | TraceEvent::DrainEnd { cycle, .. }
            | TraceEvent::SramFill { cycle, .. }
            | TraceEvent::SramHit { cycle, .. }
            | TraceEvent::SramEvict { cycle, .. }
            | TraceEvent::SramClear { cycle }
            | TraceEvent::ProfilerWindowOpen { cycle, .. }
            | TraceEvent::ProfilerWindowClose { cycle, .. }
            | TraceEvent::DemandObserved { cycle, .. }
            | TraceEvent::BlockedQueued { cycle, .. }
            | TraceEvent::RetentionRound { cycle, .. } => cycle,
        }
    }
}

/// Anything that can receive trace events. [`TraceBuffer`] is the one
/// concrete sink the simulation uses; the trait exists so tests and
/// external tools can consume the stream directly.
pub trait EventSink {
    /// Receives one event.
    fn record(&mut self, event: TraceEvent);
}

impl EventSink for Vec<TraceEvent> {
    fn record(&mut self, event: TraceEvent) {
        self.push(event);
    }
}

/// A per-component event buffer, disabled by default.
///
/// Components call [`TraceBuffer::emit`] with a closure; when the buffer
/// is disabled the closure is never evaluated, so tracing has no cost
/// beyond one predictable branch. An owner periodically drains the
/// buffer into a merged stream with [`TraceBuffer::drain_into`].
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// A disabled buffer (the default for every component).
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns event collection on or off. Disabling drops any buffered
    /// events.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.events.clear();
        }
    }

    /// True when events are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records the event built by `f` — only evaluated when enabled.
    #[inline]
    pub fn emit(&mut self, f: impl FnOnce() -> TraceEvent) {
        if self.enabled {
            self.events.push(f());
        }
    }

    /// Number of buffered (undrained) events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Moves every buffered event into `sink`, preserving order.
    pub fn drain_into(&mut self, sink: &mut impl EventSink) {
        for e in self.events.drain(..) {
            sink.record(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_never_evaluates_the_closure() {
        let mut buf = TraceBuffer::new();
        let mut evaluated = false;
        buf.emit(|| {
            evaluated = true;
            TraceEvent::SramClear { cycle: 1 }
        });
        assert!(!evaluated);
        assert!(buf.is_empty());
    }

    #[test]
    fn enabled_buffer_collects_and_drains_in_order() {
        let mut buf = TraceBuffer::new();
        buf.set_enabled(true);
        buf.emit(|| TraceEvent::DrainStart { cycle: 5, rank: 0 });
        buf.emit(|| TraceEvent::RefreshStart {
            cycle: 9,
            rank: 0,
            bank: None,
            subarray: None,
        });
        assert_eq!(buf.len(), 2);
        let mut out = Vec::new();
        buf.drain_into(&mut out);
        assert!(buf.is_empty());
        assert_eq!(out[0].cycle(), 5);
        assert_eq!(out[1].cycle(), 9);
    }

    #[test]
    fn disabling_drops_buffered_events() {
        let mut buf = TraceBuffer::new();
        buf.set_enabled(true);
        buf.emit(|| TraceEvent::SramClear { cycle: 3 });
        buf.set_enabled(false);
        assert!(buf.is_empty());
        // Emissions while disabled are ignored.
        buf.emit(|| TraceEvent::SramClear { cycle: 4 });
        assert!(buf.is_empty());
    }
}
