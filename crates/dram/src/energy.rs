//! Current-based (IDD) DRAM energy model, in the style of the Micron
//! system power calculator the paper used.
//!
//! Energy is attributed to five buckets:
//!
//! * **activate/precharge** — one quantum per ACT (covers the ACT+PRE
//!   pair): `(IDD0·tRC − (IDD3N·tRAS + IDD2N·(tRC−tRAS))) · VDD`;
//! * **read / write burst** — `(IDD4R/W − IDD3N) · VDD · BL/2` per column
//!   command;
//! * **refresh** — `(IDD5B − IDD2N) · VDD · tRFC` per REF command;
//! * **background** — standby current integrated over time, split by the
//!   rank power state (IDD3N with a row open, IDD2N all-precharged; the
//!   refresh window's background is folded into the refresh quantum).
//!
//! Values are per-rank (the x8 devices of a rank switch in lockstep, so we
//! scale device currents by the device count once, here in the preset).
//! Absolute joules are not the point — the paper's energy *ratios*
//! (refresh overhead vs. no-refresh, ROP savings) are what we reproduce —
//! but the magnitudes are kept realistic so the ratios are meaningful.

use crate::timing::TimingParams;
use crate::Cycle;

/// Energy-model parameters. Currents in milliamps (already scaled to the
/// whole rank), voltage in volts, clock period in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// One ACT+PRE pair average current over tRC.
    pub idd0_ma: f64,
    /// Precharge-standby current (all banks closed).
    pub idd2n_ma: f64,
    /// Active-standby current (some bank open).
    pub idd3n_ma: f64,
    /// Read-burst current.
    pub idd4r_ma: f64,
    /// Write-burst current.
    pub idd4w_ma: f64,
    /// Refresh-burst current.
    pub idd5b_ma: f64,
    /// Supply voltage.
    pub vdd_v: f64,
    /// Memory-clock period in nanoseconds.
    pub t_ck_ns: f64,
}

impl EnergyParams {
    /// 8 Gb DDR4-1600 rank of eight x8 devices (currents × 8 devices).
    ///
    /// Per-device values follow 8 Gb datasheet magnitudes. Note the high
    /// `IDD5B`: refresh-burst current grows steeply with density (each
    /// REF must recharge vastly more cells), which is precisely why the
    /// paper's Figure 1 shows refresh contributing up to ~40% extra
    /// energy on idle-heavy workloads at the 8 Gb node.
    pub fn ddr4_8gb() -> Self {
        let devices = 8.0;
        EnergyParams {
            idd0_ma: 45.0 * devices,
            idd2n_ma: 26.0 * devices,
            idd3n_ma: 34.0 * devices,
            idd4r_ma: 110.0 * devices,
            idd4w_ma: 105.0 * devices,
            idd5b_ma: 380.0 * devices,
            vdd_v: 1.2,
            t_ck_ns: 1.25,
        }
    }

    /// Energy in nanojoules for `current_ma` flowing for `cycles`.
    #[inline]
    fn energy_nj(&self, current_ma: f64, cycles: f64) -> f64 {
        // mA * V * ns = pJ; divide by 1000 for nJ.
        current_ma * self.vdd_v * cycles * self.t_ck_ns / 1000.0
    }

    /// Energy of one ACT+PRE pair, in nJ.
    pub fn act_pre_energy_nj(&self, t: &TimingParams) -> f64 {
        let gross = self.energy_nj(self.idd0_ma, t.t_rc as f64);
        let standby = self.energy_nj(self.idd3n_ma, t.t_ras as f64)
            + self.energy_nj(self.idd2n_ma, (t.t_rc - t.t_ras) as f64);
        (gross - standby).max(0.0)
    }

    /// Energy of one read burst, in nJ (incremental over active standby).
    pub fn read_energy_nj(&self, t: &TimingParams) -> f64 {
        self.energy_nj(self.idd4r_ma - self.idd3n_ma, t.burst_cycles() as f64)
    }

    /// Energy of one write burst, in nJ.
    pub fn write_energy_nj(&self, t: &TimingParams) -> f64 {
        self.energy_nj(self.idd4w_ma - self.idd3n_ma, t.burst_cycles() as f64)
    }

    /// Energy of one all-bank refresh, in nJ (incremental over precharge
    /// standby; the background of the tRFC window is charged here).
    pub fn refresh_energy_nj(&self, t: &TimingParams) -> f64 {
        self.energy_nj(self.idd5b_ma, t.t_rfc() as f64)
    }

    /// Energy of one per-bank refresh, in nJ. A REFpb recharges one
    /// bank's row group, so its current is roughly an all-bank refresh's
    /// divided by the bank count, flowing for `tRFCpb`.
    pub fn refresh_pb_energy_nj(&self, t: &TimingParams) -> f64 {
        self.energy_nj(self.idd5b_ma / 8.0, t.t_rfc_pb as f64)
    }

    /// Energy of one subarray-scoped refresh (SARP), in nJ: a REFpb's
    /// current profile flowing only for the shorter `tRFCsa` window.
    pub fn refresh_sa_energy_nj(&self, t: &TimingParams) -> f64 {
        self.energy_nj(self.idd5b_ma / 8.0, t.t_rfc_sa as f64)
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::ddr4_8gb()
    }
}

/// Accumulated energy, split by source. All values in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// ACT+PRE pair energy.
    pub act_pre_nj: f64,
    /// Read-burst energy.
    pub read_nj: f64,
    /// Write-burst energy.
    pub write_nj: f64,
    /// Refresh energy.
    pub refresh_nj: f64,
    /// Background standby energy (active + precharged states).
    pub background_nj: f64,
    /// SRAM prefetch-buffer energy added by ROP (reads+writes+leakage);
    /// zero for non-ROP systems.
    pub sram_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.act_pre_nj
            + self.read_nj
            + self.write_nj
            + self.refresh_nj
            + self.background_nj
            + self.sram_nj
    }

    /// Total energy in millijoules (convenience for reports).
    pub fn total_mj(&self) -> f64 {
        self.total_nj() / 1e6
    }

    /// Adds another breakdown (e.g. across ranks or cores).
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.act_pre_nj += other.act_pre_nj;
        self.read_nj += other.read_nj;
        self.write_nj += other.write_nj;
        self.refresh_nj += other.refresh_nj;
        self.background_nj += other.background_nj;
        self.sram_nj += other.sram_nj;
    }
}

/// Event-count view used by [`crate::DramDevice`] to build a breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyEvents {
    /// Number of ACT commands issued.
    pub activates: u64,
    /// Number of READ commands issued.
    pub reads: u64,
    /// Number of WRITE commands issued.
    pub writes: u64,
    /// Number of REF commands issued.
    pub refreshes: u64,
    /// Number of per-bank REFpb commands issued.
    pub refreshes_pb: u64,
    /// Number of subarray-scoped refreshes issued (SARP).
    pub refreshes_sa: u64,
    /// Total cycles spent in *partial* all-bank refreshes (RAIDR rounds
    /// that only recharge a retention bin's rows); charged per cycle at
    /// the refresh-burst current instead of per full REF quantum.
    pub refresh_partial_cycles: Cycle,
    /// Cycles with at least one row open (per rank, summed).
    pub cycles_some_active: Cycle,
    /// Cycles all-precharged (per rank, summed).
    pub cycles_all_precharged: Cycle,
}

impl EnergyEvents {
    /// Converts event counts into an energy breakdown.
    pub fn breakdown(&self, p: &EnergyParams, t: &TimingParams) -> EnergyBreakdown {
        EnergyBreakdown {
            act_pre_nj: self.activates as f64 * p.act_pre_energy_nj(t),
            read_nj: self.reads as f64 * p.read_energy_nj(t),
            write_nj: self.writes as f64 * p.write_energy_nj(t),
            refresh_nj: self.refreshes as f64 * p.refresh_energy_nj(t)
                + self.refreshes_pb as f64 * p.refresh_pb_energy_nj(t)
                + self.refreshes_sa as f64 * p.refresh_sa_energy_nj(t)
                + p.energy_nj(p.idd5b_ma, self.refresh_partial_cycles as f64),
            background_nj: p.energy_nj(p.idd3n_ma, self.cycles_some_active as f64)
                + p.energy_nj(p.idd2n_ma, self.cycles_all_precharged as f64),
            sram_nj: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (EnergyParams, TimingParams) {
        (EnergyParams::ddr4_8gb(), TimingParams::ddr4_1600_8gb())
    }

    #[test]
    fn quanta_are_positive() {
        let (p, t) = setup();
        assert!(p.act_pre_energy_nj(&t) > 0.0);
        assert!(p.read_energy_nj(&t) > 0.0);
        assert!(p.write_energy_nj(&t) > 0.0);
        assert!(p.refresh_energy_nj(&t) > 0.0);
        assert!(p.refresh_sa_energy_nj(&t) > 0.0);
        // Narrower refresh scopes cost strictly less.
        assert!(p.refresh_sa_energy_nj(&t) < p.refresh_pb_energy_nj(&t));
        assert!(p.refresh_pb_energy_nj(&t) < p.refresh_energy_nj(&t));
    }

    #[test]
    fn partial_refresh_cycles_charge_pro_rata() {
        let (p, t) = setup();
        let full = EnergyEvents {
            refreshes: 1,
            ..Default::default()
        };
        let partial = EnergyEvents {
            refresh_partial_cycles: t.t_rfc(),
            ..Default::default()
        };
        // A partial refresh spanning a full tRFC equals one REF quantum.
        let a = full.breakdown(&p, &t).refresh_nj;
        let b = partial.breakdown(&p, &t).refresh_nj;
        assert!((a - b).abs() < 1e-9);
        let quarter = EnergyEvents {
            refresh_partial_cycles: t.t_rfc() / 4,
            ..Default::default()
        };
        assert!(quarter.breakdown(&p, &t).refresh_nj < a / 3.9);
    }

    #[test]
    fn refresh_quantum_dominates_single_access() {
        let (p, t) = setup();
        // A refresh burns a whole tRFC at IDD5B; far more than one read.
        assert!(p.refresh_energy_nj(&t) > 10.0 * p.read_energy_nj(&t));
    }

    #[test]
    fn breakdown_totals() {
        let (p, t) = setup();
        let ev = EnergyEvents {
            activates: 10,
            reads: 100,
            writes: 50,
            refreshes: 2,
            refreshes_pb: 4,
            refreshes_sa: 3,
            refresh_partial_cycles: 70,
            cycles_some_active: 1000,
            cycles_all_precharged: 5000,
        };
        let b = ev.breakdown(&p, &t);
        let manual = b.act_pre_nj + b.read_nj + b.write_nj + b.refresh_nj + b.background_nj;
        assert!((b.total_nj() - manual).abs() < 1e-9);
        assert!(b.total_nj() > 0.0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = EnergyBreakdown {
            act_pre_nj: 1.0,
            read_nj: 2.0,
            write_nj: 3.0,
            refresh_nj: 4.0,
            background_nj: 5.0,
            sram_nj: 6.0,
        };
        a.merge(&a.clone());
        assert!((a.total_nj() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_activity() {
        let (p, t) = setup();
        let quiet = EnergyEvents {
            reads: 10,
            cycles_all_precharged: 10_000,
            ..Default::default()
        };
        let busy = EnergyEvents {
            reads: 10_000,
            activates: 1_000,
            cycles_some_active: 10_000,
            ..Default::default()
        };
        assert!(busy.breakdown(&p, &t).total_nj() > quiet.breakdown(&p, &t).total_nj());
    }
}
