//! The DRAM device: command validation, timing enforcement, and
//! energy/event accounting for one memory channel.

use crate::command::{Command, CommandKind};
use crate::config::DramConfig;
use crate::energy::{EnergyBreakdown, EnergyEvents};
use crate::soa::ChannelTiming;
use crate::Cycle;
use rop_events::{CmdKind, TraceBuffer, TraceEvent};

/// Why a command cannot be issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueError {
    /// Rank or bank index out of range for the configured geometry.
    BadIndex,
    /// ACT targeted a bank that already has an open row.
    BankNotIdle,
    /// READ/WRITE/PRE targeted a bank with no open row.
    BankNotOpen,
    /// READ/WRITE targeted a column of a different row than the open one.
    RowMismatch {
        /// Row currently open in the bank.
        open: usize,
    },
    /// REF issued while some bank of the rank still has an open row.
    RefreshNeedsIdleBanks,
    /// REF issued while the rank is already refreshing.
    AlreadyRefreshing,
    /// The command is structurally fine but violates a timing constraint;
    /// `earliest` is the first cycle at which it could issue.
    TooEarly {
        /// Earliest legal issue cycle.
        earliest: Cycle,
    },
}

/// Successful command issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueOutcome {
    /// Cycle the command issued (the `now` passed in).
    pub issued_at: Cycle,
    /// For READ: cycle the last data beat reaches the controller.
    /// For WRITE: cycle the last data beat is driven. `None` otherwise.
    pub data_at: Option<Cycle>,
    /// Cycle at which the command's effect completes (refresh end, row
    /// open, precharge done, or the data completion).
    pub completes_at: Cycle,
}

/// Per-kind command counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommandCounts {
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// READ commands issued.
    pub reads: u64,
    /// WRITE commands issued.
    pub writes: u64,
    /// REF commands issued.
    pub refreshes: u64,
    /// Per-bank REFpb commands issued.
    pub refreshes_pb: u64,
    /// Subarray-scoped refreshes issued (SARP).
    pub refreshes_sa: u64,
    /// Partial all-bank refreshes issued (RAIDR bin rounds).
    pub refreshes_partial: u64,
    /// Total cycles spent in partial all-bank refreshes.
    pub refresh_partial_cycles: u64,
}

/// Cycle-level model of the DRAM behind one channel.
///
/// The device is a *passive* timing oracle: the controller asks when a
/// command may issue ([`Self::earliest_issue`]) and commits it with
/// [`Self::try_issue`]. All state transitions happen at issue time with
/// future effects encoded as earliest-issue registers, which is what makes
/// the fast-forwarding simulation loop exact.
#[derive(Debug, Clone)]
pub struct DramDevice {
    config: DramConfig,
    /// All per-bank/per-rank timing registers, flattened into
    /// struct-of-arrays columns (see [`ChannelTiming`]).
    state: ChannelTiming,
    /// Channel-level earliest cycle for the next READ (CAS-to-CAS and
    /// write-to-read turnaround).
    next_read_ok: Cycle,
    /// Channel-level earliest cycle for the next WRITE.
    next_write_ok: Cycle,
    /// Cycle until which the shared data bus is busy.
    data_bus_free: Cycle,
    /// Rank that last drove the data bus (for the tRTRS switch penalty).
    last_data_rank: Option<usize>,
    counts: CommandCounts,
    /// Trace sink stamping every successfully issued command (disabled
    /// by default; the controller enables and drains it when auditing).
    trace: TraceBuffer,
}

/// Trace discriminant of a command.
fn trace_kind(cmd: &Command) -> CmdKind {
    match cmd.kind() {
        CommandKind::Activate => CmdKind::Activate,
        CommandKind::Precharge => CmdKind::Precharge,
        CommandKind::Read => CmdKind::Read,
        CommandKind::Write => CmdKind::Write,
        CommandKind::Refresh => CmdKind::Refresh,
        CommandKind::RefreshBank => CmdKind::RefreshBank,
    }
}

impl DramDevice {
    /// Builds a device for `config`.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: DramConfig) -> Self {
        config.validate().expect("invalid DRAM configuration");
        let state = ChannelTiming::new(config.geometry.ranks, config.geometry.banks_per_rank);
        DramDevice {
            config,
            state,
            next_read_ok: 0,
            next_write_ok: 0,
            data_bus_free: 0,
            last_data_rank: None,
            counts: CommandCounts::default(),
            trace: TraceBuffer::new(),
        }
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The device's trace buffer (enable/drain it from the owner).
    pub fn trace_mut(&mut self) -> &mut TraceBuffer {
        &mut self.trace
    }

    /// Command counts so far.
    pub fn counts(&self) -> CommandCounts {
        self.counts
    }

    /// True while `rank` is frozen by an in-progress refresh.
    pub fn is_rank_refreshing(&self, rank: usize, now: Cycle) -> bool {
        self.state.is_refreshing(rank, now)
    }

    /// Completion cycle of the in-progress refresh on `rank` (0 if none
    /// ever started).
    pub fn refresh_done_at(&self, rank: usize) -> Cycle {
        self.state.refresh_done_at(rank)
    }

    /// The row currently open in `(rank, bank)`, if any.
    pub fn open_row(&self, rank: usize, bank: usize) -> Option<usize> {
        self.state.open_row(self.state.bank_index(rank, bank))
    }

    /// True when every bank of `rank` is precharged.
    pub fn rank_idle(&self, rank: usize) -> bool {
        self.state.all_banks_idle(rank)
    }

    /// True while `(rank, bank)` is held by a per-bank refresh (REFpb).
    pub fn is_bank_refreshing(&self, rank: usize, bank: usize, now: Cycle) -> bool {
        self.state
            .is_bank_refreshing(self.state.bank_index(rank, bank), now)
    }

    /// Completion cycle of `(rank, bank)`'s in-flight REFpb (0 if never).
    pub fn bank_refresh_done_at(&self, rank: usize, bank: usize) -> Cycle {
        self.state
            .bank_refresh_done_at(self.state.bank_index(rank, bank))
    }

    /// The subarray locked by `(rank, bank)`'s in-flight refresh at
    /// `now`: `Some(sa)` only for SARP-scoped refreshes. `None` means
    /// either no refresh or a bank-wide freeze (check
    /// [`Self::is_bank_refreshing`] to distinguish).
    // rop-lint: hot
    pub fn frozen_subarray(&self, rank: usize, bank: usize, now: Cycle) -> Option<usize> {
        self.state
            .frozen_subarray(self.state.bank_index(rank, bank), now)
    }

    /// Subarray containing `row` under the configured geometry.
    // rop-lint: hot
    #[inline]
    pub fn subarray_of_row(&self, row: usize) -> usize {
        self.config.geometry.subarray_of_row(row)
    }

    fn check_index(&self, cmd: &Command) -> Result<(), IssueError> {
        let g = &self.config.geometry;
        if cmd.rank() >= g.ranks {
            return Err(IssueError::BadIndex);
        }
        if let Some(bank) = cmd.bank() {
            if bank >= g.banks_per_rank {
                return Err(IssueError::BadIndex);
            }
        }
        if let Command::Activate { row, .. } = *cmd {
            if row >= g.rows_per_bank {
                return Err(IssueError::BadIndex);
            }
        }
        if let Command::Read { column, .. } | Command::Write { column, .. } = *cmd {
            if column >= g.lines_per_row {
                return Err(IssueError::BadIndex);
            }
        }
        Ok(())
    }

    /// Earliest cycle (>= `now`) at which `cmd` could legally issue, or a
    /// structural error if no amount of waiting would make it legal in the
    /// current state.
    // rop-lint: hot
    pub fn earliest_issue(&self, cmd: &Command, now: Cycle) -> Result<Cycle, IssueError> {
        self.check_index(cmd)?;
        let t = &self.config.timing;
        let s = &self.state;
        let r = cmd.rank();
        match *cmd {
            Command::Activate { bank, row, .. } => {
                let i = s.bank_index(r, bank);
                if s.is_open(i) {
                    return Err(IssueError::BankNotIdle);
                }
                let earliest = s.earliest_activate(r, now, t.t_faw).max(s.next_act[i]);
                // A SARP-scoped refresh leaves the bank-wide ACT gate
                // down; only rows of the frozen subarray must wait for
                // the refresh window to end.
                match s.frozen_subarray(i, earliest) {
                    Some(sa) if self.config.geometry.subarray_of_row(row) == sa => {
                        Ok(s.bank_refresh_done_at(i))
                    }
                    _ => Ok(earliest),
                }
            }
            Command::Precharge { bank, .. } => {
                let i = s.bank_index(r, bank);
                if !s.is_open(i) {
                    return Err(IssueError::BankNotOpen);
                }
                Ok(now.max(s.next_pre[i]))
            }
            Command::Read { bank, column, .. } => {
                let i = s.bank_index(r, bank);
                if !s.is_open(i) {
                    return Err(IssueError::BankNotOpen);
                }
                let _ = column;
                let mut earliest = now
                    .max(s.next_read[i])
                    .max(self.next_read_ok)
                    .max(s.next_read_rank[r]);
                earliest = earliest.max(self.bus_constraint(r, t.cl));
                Ok(earliest)
            }
            Command::Write { bank, .. } => {
                let i = s.bank_index(r, bank);
                if !s.is_open(i) {
                    return Err(IssueError::BankNotOpen);
                }
                let mut earliest = now.max(s.next_write[i]).max(self.next_write_ok);
                earliest = earliest.max(self.bus_constraint(r, t.cwl));
                Ok(earliest)
            }
            Command::Refresh { .. } => {
                if s.is_refreshing(r, now) {
                    return Err(IssueError::AlreadyRefreshing);
                }
                if !s.all_banks_idle(r) {
                    return Err(IssueError::RefreshNeedsIdleBanks);
                }
                // All per-bank windows (tRP after PRE, tRC after ACT) must
                // have elapsed before REF: one batched max-pass over the
                // rank's contiguous next_act slice.
                Ok(now.max(s.rank_act_gate(r)))
            }
            Command::RefreshBank { bank, .. } => {
                if s.is_refreshing(r, now) {
                    return Err(IssueError::AlreadyRefreshing);
                }
                let i = s.bank_index(r, bank);
                if s.is_open(i) {
                    return Err(IssueError::RefreshNeedsIdleBanks);
                }
                // REFpb behaves like an activation for the power windows
                // (tRRD/tFAW) and must wait out the bank's own tRP/tRC.
                Ok(s.earliest_activate(r, now, t.t_faw).max(s.next_act[i]))
            }
        }
    }

    /// Earliest cycle the data bus permits a column command whose data
    /// phase starts `cas` cycles after issue, from `rank`.
    // rop-lint: hot
    fn bus_constraint(&self, rank: usize, cas: Cycle) -> Cycle {
        let mut bus_ready = self.data_bus_free;
        if let Some(last) = self.last_data_rank {
            if last != rank {
                bus_ready += self.config.timing.t_rtrs;
            }
        }
        bus_ready.saturating_sub(cas)
    }

    /// Validates the open row for a column command. Returns `RowMismatch`
    /// if the open row differs from the target row implied by the caller's
    /// bookkeeping; the device itself only knows the open row, so callers
    /// pass the intended row for the check.
    pub fn check_open_row(
        &self,
        rank: usize,
        bank: usize,
        expected_row: usize,
    ) -> Result<(), IssueError> {
        match self.state.open_row(self.state.bank_index(rank, bank)) {
            Some(open) if open == expected_row => Ok(()),
            Some(open) => Err(IssueError::RowMismatch { open }),
            None => Err(IssueError::BankNotOpen),
        }
    }

    /// Issues `cmd` at `now`, or explains why it cannot issue.
    // rop-lint: hot
    pub fn try_issue(&mut self, cmd: &Command, now: Cycle) -> Result<IssueOutcome, IssueError> {
        let earliest = self.earliest_issue(cmd, now)?;
        if earliest > now {
            return Err(IssueError::TooEarly { earliest });
        }
        let t = self.config.timing;
        let rank_idx = cmd.rank();
        // Attribute background time under the pre-command state.
        self.state.accrue_background(rank_idx, now);
        let s = &mut self.state;
        let outcome = match *cmd {
            Command::Activate { bank, row, .. } => {
                let i = s.bank_index(rank_idx, bank);
                s.apply_activate(i, now, row, t.t_rcd, t.t_ras, t.t_rc);
                s.record_activate(rank_idx, now, t.t_rrd, t.t_faw);
                self.counts.activates += 1;
                IssueOutcome {
                    issued_at: now,
                    data_at: None,
                    completes_at: now.saturating_add(t.t_rcd),
                }
            }
            Command::Precharge { bank, .. } => {
                let i = s.bank_index(rank_idx, bank);
                s.apply_precharge(i, now, t.t_rp);
                self.counts.precharges += 1;
                IssueOutcome {
                    issued_at: now,
                    data_at: None,
                    completes_at: now.saturating_add(t.t_rp),
                }
            }
            Command::Read { bank, .. } => {
                let i = s.bank_index(rank_idx, bank);
                let data_at = s.apply_read(i, now, t.cl, t.burst_cycles(), t.t_rtp, t.t_ccd);
                self.counts.reads += 1;
                self.next_read_ok = self.next_read_ok.max(now.saturating_add(t.t_ccd));
                // Read-to-write: write data may not collide with read data
                // on the bus; conservative gap.
                self.next_write_ok = self.next_write_ok.max(
                    (now.saturating_add(t.cl + t.burst_cycles() + t.t_rtrs)).saturating_sub(t.cwl),
                );
                self.data_bus_free = data_at;
                self.last_data_rank = Some(rank_idx);
                IssueOutcome {
                    issued_at: now,
                    data_at: Some(data_at),
                    completes_at: data_at,
                }
            }
            Command::Write { bank, .. } => {
                let i = s.bank_index(rank_idx, bank);
                let data_at = s.apply_write(i, now, t.cwl, t.burst_cycles(), t.t_wr, t.t_ccd);
                self.counts.writes += 1;
                self.next_write_ok = self.next_write_ok.max(now.saturating_add(t.t_ccd));
                // Write-to-read turnaround on this rank.
                s.next_read_rank[rank_idx] = s.next_read_rank[rank_idx].max(data_at + t.t_wtr);
                self.data_bus_free = data_at;
                self.last_data_rank = Some(rank_idx);
                IssueOutcome {
                    issued_at: now,
                    data_at: Some(data_at),
                    completes_at: data_at,
                }
            }
            Command::Refresh { .. } => {
                s.start_refresh(rank_idx, now, t.t_rfc());
                self.counts.refreshes += 1;
                IssueOutcome {
                    issued_at: now,
                    data_at: None,
                    completes_at: now.saturating_add(t.t_rfc()),
                }
            }
            Command::RefreshBank { bank, .. } => {
                let done = now.saturating_add(t.t_rfc_pb);
                let i = s.bank_index(rank_idx, bank);
                s.apply_bank_refresh(i, done);
                s.record_activate(rank_idx, now, t.t_rrd, t.t_faw);
                self.counts.refreshes_pb += 1;
                IssueOutcome {
                    issued_at: now,
                    data_at: None,
                    completes_at: done,
                }
            }
        };
        self.trace.emit(|| TraceEvent::CmdIssued {
            cycle: now,
            kind: trace_kind(cmd),
            rank: rank_idx,
            bank: cmd.bank(),
            row: match *cmd {
                Command::Activate { row, .. } => Some(row),
                _ => None,
            },
        });
        Ok(outcome)
    }

    /// Earliest cycle a SARP subarray-scoped refresh could issue on
    /// `(rank, bank, subarray)`, or a structural error.
    ///
    /// The refresh needs the rank not all-bank refreshing, the bank not
    /// already refreshing, no open row *in the target subarray* (rows
    /// open in sibling subarrays are fine — local sense amplifiers),
    /// and the rank's ACT-class windows (tRRD/tFAW): internally the
    /// refresh activates rows of the target subarray.
    pub fn earliest_subarray_refresh(
        &self,
        rank: usize,
        bank: usize,
        subarray: usize,
        now: Cycle,
    ) -> Result<Cycle, IssueError> {
        let g = &self.config.geometry;
        if rank >= g.ranks || bank >= g.banks_per_rank || subarray >= g.subarrays_per_bank {
            return Err(IssueError::BadIndex);
        }
        let s = &self.state;
        if s.is_refreshing(rank, now) {
            return Err(IssueError::AlreadyRefreshing);
        }
        let i = s.bank_index(rank, bank);
        if s.is_bank_refreshing(i, now) {
            return Err(IssueError::AlreadyRefreshing);
        }
        if let Some(open) = s.open_row(i) {
            if g.subarray_of_row(open) == subarray {
                return Err(IssueError::RefreshNeedsIdleBanks);
            }
        }
        // Like REFpb, a subarray refresh occupies an activate slot for
        // the power windows (tRRD/tFAW) and must wait out the bank's own
        // tRP/tRC — only the *freeze* is subarray-scoped.
        Ok(s.earliest_activate(rank, now, self.config.timing.t_faw)
            .max(s.next_act[i]))
    }

    /// Issues a SARP subarray-scoped refresh at `now`: locks only
    /// `subarray` of `(rank, bank)` for `tRFCsa`; accesses to the
    /// bank's other subarrays keep flowing.
    pub fn try_issue_subarray_refresh(
        &mut self,
        rank: usize,
        bank: usize,
        subarray: usize,
        now: Cycle,
    ) -> Result<IssueOutcome, IssueError> {
        let earliest = self.earliest_subarray_refresh(rank, bank, subarray, now)?;
        if earliest > now {
            return Err(IssueError::TooEarly { earliest });
        }
        let t = self.config.timing;
        self.state.accrue_background(rank, now);
        let done = now + t.t_rfc_sa;
        let i = self.state.bank_index(rank, bank);
        self.state.apply_subarray_refresh(i, done, subarray);
        self.state.record_activate(rank, now, t.t_rrd, t.t_faw);
        self.counts.refreshes_sa += 1;
        self.trace.emit(|| TraceEvent::CmdIssued {
            cycle: now,
            kind: CmdKind::RefreshSubarray,
            rank,
            bank: Some(bank),
            row: Some(subarray * self.config.geometry.rows_per_subarray()),
        });
        Ok(IssueOutcome {
            issued_at: now,
            data_at: None,
            completes_at: done,
        })
    }

    /// Issues a *partial* all-bank refresh at `now` locking `rank` for
    /// `duration` cycles instead of the full `tRFC` (RAIDR rounds that
    /// only recharge a retention bin's rows). Admission rules are
    /// identical to [`Command::Refresh`].
    ///
    /// # Panics
    /// Debug-asserts `1 <= duration <= tRFC`.
    pub fn try_issue_refresh_scaled(
        &mut self,
        rank: usize,
        now: Cycle,
        duration: Cycle,
    ) -> Result<IssueOutcome, IssueError> {
        debug_assert!(duration >= 1 && duration <= self.config.timing.t_rfc());
        let earliest = self.earliest_issue(&Command::Refresh { rank }, now)?;
        if earliest > now {
            return Err(IssueError::TooEarly { earliest });
        }
        self.state.accrue_background(rank, now);
        self.state.start_refresh(rank, now, duration);
        self.counts.refreshes_partial += 1;
        self.counts.refresh_partial_cycles += duration;
        self.trace.emit(|| TraceEvent::CmdIssued {
            cycle: now,
            kind: CmdKind::Refresh,
            rank,
            bank: None,
            row: None,
        });
        Ok(IssueOutcome {
            issued_at: now,
            data_at: None,
            completes_at: now + duration,
        })
    }

    /// Issues `cmd` at `now`, panicking on failure. For tests and callers
    /// that have already consulted [`Self::earliest_issue`].
    pub fn issue(&mut self, cmd: &Command, now: Cycle) -> IssueOutcome {
        self.try_issue(cmd, now)
            // Documented contract: callers consult `earliest_issue` first.
            // rop-lint: allow(no-panic)
            .unwrap_or_else(|e| panic!("illegal DRAM command {cmd:?} at cycle {now}: {e:?}"))
    }

    /// Count of commands of `kind` issued so far.
    pub fn count_of(&self, kind: CommandKind) -> u64 {
        match kind {
            CommandKind::Activate => self.counts.activates,
            CommandKind::Precharge => self.counts.precharges,
            CommandKind::Read => self.counts.reads,
            CommandKind::Write => self.counts.writes,
            CommandKind::Refresh => self.counts.refreshes,
            CommandKind::RefreshBank => self.counts.refreshes_pb,
        }
    }

    /// Finalises background accrual up to `now` and returns the energy
    /// breakdown for the whole channel.
    pub fn energy_breakdown(&mut self, now: Cycle) -> EnergyBreakdown {
        self.state.accrue_all(now);
        let events = EnergyEvents {
            activates: self.counts.activates,
            reads: self.counts.reads,
            writes: self.counts.writes,
            refreshes: self.counts.refreshes,
            refreshes_pb: self.counts.refreshes_pb,
            refreshes_sa: self.counts.refreshes_sa,
            refresh_partial_cycles: self.counts.refresh_partial_cycles,
            cycles_some_active: self.state.total_cycles_some_active(),
            cycles_all_precharged: self.state.total_cycles_all_precharged(),
        };
        events.breakdown(&self.config.energy, &self.config.timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;
    use crate::timing::TimingParams;

    fn device() -> DramDevice {
        DramDevice::new(DramConfig::baseline(2))
    }

    #[test]
    fn open_read_close_sequence() {
        let mut d = device();
        let t = d.config().timing;
        let act = Command::Activate {
            rank: 0,
            bank: 0,
            row: 7,
        };
        let out = d.issue(&act, 0);
        assert_eq!(out.completes_at, t.t_rcd);
        assert_eq!(d.open_row(0, 0), Some(7));

        let rd = Command::Read {
            rank: 0,
            bank: 0,
            column: 3,
        };
        // Too early before tRCD.
        assert!(matches!(
            d.try_issue(&rd, 1),
            Err(IssueError::TooEarly { .. })
        ));
        let out = d.issue(&rd, t.t_rcd);
        assert_eq!(out.data_at, Some(t.t_rcd + t.cl + t.burst_cycles()));

        let pre = Command::Precharge { rank: 0, bank: 0 };
        let earliest = d.earliest_issue(&pre, t.t_rcd).unwrap();
        assert!(earliest >= t.t_ras); // tRAS still governs
        d.issue(&pre, earliest);
        assert_eq!(d.open_row(0, 0), None);
    }

    #[test]
    fn read_requires_open_row() {
        let mut d = device();
        let rd = Command::Read {
            rank: 0,
            bank: 0,
            column: 0,
        };
        assert_eq!(d.try_issue(&rd, 0), Err(IssueError::BankNotOpen));
    }

    #[test]
    fn activate_requires_idle_bank() {
        let mut d = device();
        d.issue(
            &Command::Activate {
                rank: 0,
                bank: 0,
                row: 1,
            },
            0,
        );
        let again = Command::Activate {
            rank: 0,
            bank: 0,
            row: 2,
        };
        assert_eq!(d.try_issue(&again, 100), Err(IssueError::BankNotIdle));
    }

    #[test]
    fn refresh_locks_rank_for_trfc() {
        let mut d = device();
        let t = d.config().timing;
        let out = d.issue(&Command::Refresh { rank: 0 }, 10);
        assert_eq!(out.completes_at, 10 + t.t_rfc());
        assert!(d.is_rank_refreshing(0, 10));
        assert!(d.is_rank_refreshing(0, 10 + t.t_rfc() - 1));
        assert!(!d.is_rank_refreshing(0, 10 + t.t_rfc()));
        // ACT on the frozen rank must wait for the refresh to finish.
        let act = Command::Activate {
            rank: 0,
            bank: 0,
            row: 0,
        };
        let earliest = d.earliest_issue(&act, 20).unwrap();
        assert_eq!(earliest, 10 + t.t_rfc());
        // The *other* rank is unaffected.
        let act1 = Command::Activate {
            rank: 1,
            bank: 0,
            row: 0,
        };
        assert_eq!(d.earliest_issue(&act1, 20).unwrap(), 20);
    }

    #[test]
    fn per_bank_refresh_freezes_only_its_bank() {
        let mut d = device();
        let t = d.config().timing;
        let out = d.issue(&Command::RefreshBank { rank: 0, bank: 2 }, 10);
        assert_eq!(out.completes_at, 10 + t.t_rfc_pb);
        assert!(d.is_bank_refreshing(0, 2, 10));
        assert!(!d.is_bank_refreshing(0, 2, 10 + t.t_rfc_pb));
        // The refreshing bank cannot activate until REFpb completes...
        let act2 = Command::Activate {
            rank: 0,
            bank: 2,
            row: 0,
        };
        assert_eq!(d.earliest_issue(&act2, 20).unwrap(), 10 + t.t_rfc_pb);
        // ...but a sibling bank activates immediately.
        let act3 = Command::Activate {
            rank: 0,
            bank: 3,
            row: 0,
        };
        assert_eq!(d.earliest_issue(&act3, 20).unwrap(), 20);
        assert_eq!(d.counts().refreshes_pb, 1);
        assert_eq!(d.count_of(CommandKind::RefreshBank), 1);
    }

    #[test]
    fn subarray_refresh_admits_other_subarrays() {
        let mut d = device();
        let t = d.config().timing;
        let g = d.config().geometry;
        let out = d.try_issue_subarray_refresh(0, 2, 0, 10).unwrap();
        assert_eq!(out.completes_at, 10 + t.t_rfc_sa);
        assert!(d.is_bank_refreshing(0, 2, 10));
        assert_eq!(d.frozen_subarray(0, 2, 10), Some(0));
        // ACT to a row of the frozen subarray must wait out the window...
        let frozen_row = Command::Activate {
            rank: 0,
            bank: 2,
            row: 0,
        };
        assert_eq!(d.earliest_issue(&frozen_row, 20).unwrap(), 10 + t.t_rfc_sa);
        // ...but a row of a sibling subarray of the SAME bank activates
        // immediately (the point of SARP).
        let other_row = Command::Activate {
            rank: 0,
            bank: 2,
            row: g.rows_per_subarray(),
        };
        assert_eq!(d.earliest_issue(&other_row, 20).unwrap(), 20);
        assert_eq!(d.counts().refreshes_sa, 1);
    }

    #[test]
    fn subarray_refresh_needs_target_subarray_idle() {
        let mut d = device();
        let g = d.config().geometry;
        // Open a row in subarray 1 of bank 0.
        d.issue(
            &Command::Activate {
                rank: 0,
                bank: 0,
                row: g.rows_per_subarray(),
            },
            0,
        );
        // Refreshing subarray 1 is rejected while its row is open...
        assert_eq!(
            d.try_issue_subarray_refresh(0, 0, 1, 50),
            Err(IssueError::RefreshNeedsIdleBanks)
        );
        // ...but subarray 0 can refresh under the open row next door.
        assert!(d.try_issue_subarray_refresh(0, 0, 0, 50).is_ok());
        // Double subarray refresh on the same bank is rejected.
        assert_eq!(
            d.try_issue_subarray_refresh(0, 0, 3, 51),
            Err(IssueError::AlreadyRefreshing)
        );
    }

    #[test]
    fn scaled_refresh_locks_for_its_duration_only() {
        let mut d = device();
        let out = d.try_issue_refresh_scaled(0, 10, 40).unwrap();
        assert_eq!(out.completes_at, 50);
        assert!(d.is_rank_refreshing(0, 49));
        assert!(!d.is_rank_refreshing(0, 50));
        let c = d.counts();
        assert_eq!(c.refreshes, 0);
        assert_eq!(c.refreshes_partial, 1);
        assert_eq!(c.refresh_partial_cycles, 40);
        // Energy is charged pro rata, not per full REF quantum.
        let e = d.energy_breakdown(1000);
        let full = d.config().energy.refresh_energy_nj(&d.config().timing);
        assert!(e.refresh_nj > 0.0 && e.refresh_nj < full / 2.0);
    }

    #[test]
    fn per_bank_refresh_requires_idle_bank() {
        let mut d = device();
        d.issue(
            &Command::Activate {
                rank: 0,
                bank: 1,
                row: 4,
            },
            0,
        );
        assert_eq!(
            d.try_issue(&Command::RefreshBank { rank: 0, bank: 1 }, 50),
            Err(IssueError::RefreshNeedsIdleBanks)
        );
    }

    #[test]
    fn refresh_requires_idle_banks() {
        let mut d = device();
        d.issue(
            &Command::Activate {
                rank: 0,
                bank: 3,
                row: 9,
            },
            0,
        );
        assert_eq!(
            d.try_issue(&Command::Refresh { rank: 0 }, 50),
            Err(IssueError::RefreshNeedsIdleBanks)
        );
    }

    #[test]
    fn double_refresh_rejected() {
        let mut d = device();
        d.issue(&Command::Refresh { rank: 0 }, 0);
        assert_eq!(
            d.try_issue(&Command::Refresh { rank: 0 }, 5),
            Err(IssueError::AlreadyRefreshing)
        );
    }

    #[test]
    fn row_mismatch_detected() {
        let mut d = device();
        d.issue(
            &Command::Activate {
                rank: 0,
                bank: 0,
                row: 5,
            },
            0,
        );
        assert!(d.check_open_row(0, 0, 5).is_ok());
        assert_eq!(
            d.check_open_row(0, 0, 6),
            Err(IssueError::RowMismatch { open: 5 })
        );
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut d = device();
        let t = d.config().timing;
        d.issue(
            &Command::Activate {
                rank: 0,
                bank: 0,
                row: 1,
            },
            0,
        );
        let wr = Command::Write {
            rank: 0,
            bank: 0,
            column: 0,
        };
        let wr_out = d.issue(&wr, t.t_rcd);
        let rd = Command::Read {
            rank: 0,
            bank: 0,
            column: 1,
        };
        let earliest = d.earliest_issue(&rd, t.t_rcd + 1).unwrap();
        assert!(earliest >= wr_out.data_at.unwrap() + t.t_wtr);
    }

    #[test]
    fn rank_switch_penalty_on_bus() {
        let mut d = device();
        let t = d.config().timing;
        d.issue(
            &Command::Activate {
                rank: 0,
                bank: 0,
                row: 1,
            },
            0,
        );
        d.issue(
            &Command::Activate {
                rank: 1,
                bank: 0,
                row: 1,
            },
            t.t_rrd,
        );
        let rd0 = Command::Read {
            rank: 0,
            bank: 0,
            column: 0,
        };
        let out0 = d.issue(&rd0, t.t_rcd + t.t_rrd);
        // Read from the other rank: its data must wait tRTRS after rank 0's.
        let rd1 = Command::Read {
            rank: 1,
            bank: 0,
            column: 0,
        };
        let earliest = d.earliest_issue(&rd1, out0.issued_at).unwrap();
        assert!(earliest + t.cl >= out0.data_at.unwrap() + t.t_rtrs);
    }

    #[test]
    fn fgr_modes_shrink_the_freeze() {
        for (cfg, expect_rfc) in [
            (rop_config_with(TimingParams::ddr4_1600_8gb()), 280),
            (rop_config_with(TimingParams::ddr4_1600_8gb_fgr2x()), 208),
            (rop_config_with(TimingParams::ddr4_1600_8gb_fgr4x()), 128),
        ] {
            let mut d = DramDevice::new(cfg);
            let out = d.issue(&Command::Refresh { rank: 0 }, 0);
            assert_eq!(out.completes_at, expect_rfc);
        }
    }

    fn rop_config_with(timing: TimingParams) -> DramConfig {
        DramConfig {
            timing,
            ..DramConfig::baseline(1)
        }
    }

    #[test]
    fn all_bank_refresh_waits_for_per_bank_refresh() {
        let mut d = device();
        let t = d.config().timing;
        d.issue(&Command::RefreshBank { rank: 0, bank: 0 }, 0);
        // REF requires every bank window elapsed, including the REFpb'd one.
        let earliest = d
            .earliest_issue(&Command::Refresh { rank: 0 }, 1)
            .expect("banks idle");
        assert_eq!(earliest, t.t_rfc_pb);
    }

    #[test]
    fn refresh_pb_energy_counted() {
        let mut d = device();
        d.issue(&Command::RefreshBank { rank: 0, bank: 0 }, 0);
        let e = d.energy_breakdown(10_000);
        assert!(e.refresh_nj > 0.0);
        // A REFpb costs far less than an all-bank REF.
        let quantum = d.config().energy.refresh_pb_energy_nj(&d.config().timing);
        let full = d.config().energy.refresh_energy_nj(&d.config().timing);
        assert!(quantum < full / 4.0);
    }

    #[test]
    fn bad_indices_rejected() {
        let mut d = device();
        assert_eq!(
            d.try_issue(&Command::Refresh { rank: 9 }, 0),
            Err(IssueError::BadIndex)
        );
        assert_eq!(
            d.try_issue(
                &Command::Activate {
                    rank: 0,
                    bank: 99,
                    row: 0
                },
                0
            ),
            Err(IssueError::BadIndex)
        );
        assert_eq!(
            d.try_issue(
                &Command::Activate {
                    rank: 0,
                    bank: 0,
                    row: usize::MAX
                },
                0
            ),
            Err(IssueError::BadIndex)
        );
    }

    #[test]
    fn counts_and_energy() {
        let mut d = device();
        let t = d.config().timing;
        d.issue(
            &Command::Activate {
                rank: 0,
                bank: 0,
                row: 1,
            },
            0,
        );
        d.issue(
            &Command::Read {
                rank: 0,
                bank: 0,
                column: 0,
            },
            t.t_rcd,
        );
        let pre_at = d
            .earliest_issue(&Command::Precharge { rank: 0, bank: 0 }, t.t_rcd)
            .unwrap();
        d.issue(&Command::Precharge { rank: 0, bank: 0 }, pre_at);
        d.issue(&Command::Refresh { rank: 1 }, 0);
        let c = d.counts();
        assert_eq!(c.activates, 1);
        assert_eq!(c.reads, 1);
        assert_eq!(c.precharges, 1);
        assert_eq!(c.refreshes, 1);
        assert_eq!(d.count_of(CommandKind::Read), 1);
        let e = d.energy_breakdown(10_000);
        assert!(e.refresh_nj > 0.0);
        assert!(e.background_nj > 0.0);
        assert!(e.total_nj() > e.refresh_nj);
    }
}
