//! Cycle-level DDR4 DRAM device model — the DRAMSim2-class substrate the
//! ROP paper plugs its controller changes into.
//!
//! The model covers the structures and timing behaviour that matter for
//! refresh studies:
//!
//! * a hierarchical device: channel → rank → bank, with per-bank row
//!   state machines (open-page operation);
//! * the full set of DDR4 inter-command timing constraints (`tRCD`, `tRP`,
//!   `tRAS`, `tRC`, `tCCD`, `tRRD`, `tFAW`, `tWR`, `tWTR`, `tRTP`, CAS
//!   latencies, burst/bus occupancy, rank-to-rank switch);
//! * all-bank auto-refresh with `tREFI`/`tRFC`, including the DDR4
//!   fine-grained-refresh (FGR) 1x/2x/4x modes, and the rank-lock
//!   behaviour during `tRFC` that the paper calls *frozen cycles*;
//! * a current-based (IDD) energy model in the style of the Micron power
//!   calculator the paper used.
//!
//! Commands are validated: [`DramDevice::try_issue`] returns an error when
//! a command would violate a timing constraint or a state precondition, so
//! the memory controller above is forced to be a legal DDR4 master — the
//! property tests in this crate hammer exactly that.
//!
//! The model is *cycle-level* rather than event-replay: every command is
//! stamped with the memory-clock cycle at which it issues and the device
//! answers "what is the earliest cycle at which this command could issue"
//! ([`DramDevice::earliest_issue`]), which lets the controller fast-forward
//! over dead time without losing cycle accuracy.

#![forbid(unsafe_code)]

pub mod bank;
pub mod command;
pub mod config;
pub mod device;
pub mod energy;
pub mod rank;
pub mod soa;
pub mod timing;

pub use command::{Command, CommandKind};
pub use config::{DramConfig, Geometry};
pub use device::{DramDevice, IssueError, IssueOutcome};
pub use energy::{EnergyBreakdown, EnergyParams};
pub use soa::ChannelTiming;
pub use timing::{RefreshGranularity, TimingParams};

/// Memory-clock cycle count. DDR4-1600 runs the memory clock at 800 MHz,
/// i.e. one cycle is 1.25 ns; all latencies in this crate are expressed in
/// these cycles.
pub type Cycle = u64;
