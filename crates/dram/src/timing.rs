//! DDR4 timing parameters.
//!
//! All values are in memory-clock cycles (tCK = 1.25 ns at DDR4-1600).
//! The preset matches the paper's Table III configuration: DDR4-1600,
//! 8 Gb devices, `tREFI = 7.8 µs`, `tRFC = 350 ns` in 1x refresh mode.

use crate::Cycle;

/// DDR4 fine-grained refresh (FGR) mode.
///
/// JEDEC DDR4 allows trading refresh-command frequency against
/// per-command duration: 2x mode halves `tREFI` and shrinks `tRFC`,
/// 4x mode quarters `tREFI`. The paper evaluates 1x mode and lists FGR as
/// the motivation for `Adaptive Refresh`-style related work; we expose all
/// three so the ablation benches can sweep them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefreshGranularity {
    /// Normal mode: refresh every `tREFI`, each taking `tRFC1`.
    X1,
    /// Fine-grained 2x: refresh every `tREFI/2`, each taking `tRFC2`.
    X2,
    /// Fine-grained 4x: refresh every `tREFI/4`, each taking `tRFC4`.
    X4,
}

/// The complete set of timing constraints the device model enforces.
///
/// Field names follow JEDEC. Same-bank-group (`_L`) timings are used
/// uniformly — the model does not track bank groups separately, which is
/// the conservative choice (it never under-reports latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// ACT to internal read/write delay.
    pub t_rcd: Cycle,
    /// PRE to ACT delay (row precharge).
    pub t_rp: Cycle,
    /// ACT to PRE minimum (row active time).
    pub t_ras: Cycle,
    /// ACT to ACT same bank (`tRAS + tRP`).
    pub t_rc: Cycle,
    /// CAS latency: READ issue to first data beat.
    pub cl: Cycle,
    /// CAS write latency: WRITE issue to first data beat.
    pub cwl: Cycle,
    /// Burst length in beats (8 for DDR4); occupies `bl/2` clock cycles.
    pub bl: Cycle,
    /// Column-to-column delay (same bank group, conservative).
    pub t_ccd: Cycle,
    /// ACT to ACT different bank, same rank.
    pub t_rrd: Cycle,
    /// Four-activate window: at most 4 ACTs per rank in this window.
    pub t_faw: Cycle,
    /// Write recovery: last write data beat to PRE.
    pub t_wr: Cycle,
    /// Write-to-read turnaround: last write data beat to READ issue.
    pub t_wtr: Cycle,
    /// Read-to-precharge delay.
    pub t_rtp: Cycle,
    /// Rank-to-rank data-bus switch penalty.
    pub t_rtrs: Cycle,
    /// Average refresh interval in 1x mode.
    pub t_refi_base: Cycle,
    /// Refresh command duration in 1x mode.
    pub t_rfc1: Cycle,
    /// Refresh command duration in FGR 2x mode.
    pub t_rfc2: Cycle,
    /// Refresh command duration in FGR 4x mode.
    pub t_rfc4: Cycle,
    /// Per-bank refresh (REFpb) duration — the §VII future-work mode:
    /// one bank refreshes while the rest of the rank keeps serving.
    pub t_rfc_pb: Cycle,
    /// Subarray-scoped refresh duration (SARP): while a per-bank refresh
    /// is charging one subarray, accesses to the bank's other subarrays
    /// proceed; only this window locks the target subarray's rows.
    pub t_rfc_sa: Cycle,
    /// Active refresh granularity.
    pub refresh_mode: RefreshGranularity,
}

impl TimingParams {
    /// DDR4-1600 timing for 8 Gb devices — the paper's configuration
    /// (Table III): `tCK = 1.25 ns`, `tREFI = 7.8 µs = 6240 tCK`,
    /// `tRFC = 350 ns = 280 tCK`.
    pub fn ddr4_1600_8gb() -> Self {
        TimingParams {
            t_rcd: 11, // 13.75 ns
            t_rp: 11,  // 13.75 ns
            t_ras: 28, // 35 ns
            t_rc: 39,  // 48.75 ns
            cl: 11,    // 13.75 ns
            cwl: 9,    // 11.25 ns
            bl: 8,     // 8 beats = 4 clocks of data bus
            t_ccd: 5,  // tCCD_L
            t_rrd: 5,  // tRRD_L
            t_faw: 24, // 30 ns
            t_wr: 12,  // 15 ns
            t_wtr: 6,  // tWTR_L, 7.5 ns
            t_rtp: 6,  // 7.5 ns
            t_rtrs: 2,
            t_refi_base: 6240, // 7.8 µs
            t_rfc1: 280,       // 350 ns
            t_rfc2: 208,       // 260 ns
            t_rfc4: 128,       // 160 ns
            t_rfc_pb: 112,     // 140 ns (LPDDR4-class REFpb for 8 Gb)
            t_rfc_sa: 90,      // 112.5 ns (REFpb minus the shared-I/O overlap)
            refresh_mode: RefreshGranularity::X1,
        }
    }

    /// Same device with fine-grained refresh 2x enabled.
    pub fn ddr4_1600_8gb_fgr2x() -> Self {
        TimingParams {
            refresh_mode: RefreshGranularity::X2,
            ..Self::ddr4_1600_8gb()
        }
    }

    /// Same device with fine-grained refresh 4x enabled.
    pub fn ddr4_1600_8gb_fgr4x() -> Self {
        TimingParams {
            refresh_mode: RefreshGranularity::X4,
            ..Self::ddr4_1600_8gb()
        }
    }

    /// Number of data-bus clock cycles one burst occupies (`BL/2`).
    #[inline]
    pub fn burst_cycles(&self) -> Cycle {
        self.bl / 2
    }

    /// Effective refresh interval under the active FGR mode.
    #[inline]
    pub fn t_refi(&self) -> Cycle {
        match self.refresh_mode {
            RefreshGranularity::X1 => self.t_refi_base,
            RefreshGranularity::X2 => self.t_refi_base / 2,
            RefreshGranularity::X4 => self.t_refi_base / 4,
        }
    }

    /// Effective refresh-command duration under the active FGR mode.
    #[inline]
    pub fn t_rfc(&self) -> Cycle {
        match self.refresh_mode {
            RefreshGranularity::X1 => self.t_rfc1,
            RefreshGranularity::X2 => self.t_rfc2,
            RefreshGranularity::X4 => self.t_rfc4,
        }
    }

    /// Refresh duty cycle `tRFC / tREFI` — the fraction of time a rank is
    /// frozen, which the paper calls out as the quantity that grows with
    /// density.
    pub fn refresh_duty_cycle(&self) -> f64 {
        self.t_rfc() as f64 / self.t_refi() as f64
    }

    /// Read command issue to last data beat received.
    #[inline]
    pub fn read_latency(&self) -> Cycle {
        self.cl + self.burst_cycles()
    }

    /// Write command issue to last data beat driven.
    #[inline]
    pub fn write_latency(&self) -> Cycle {
        self.cwl + self.burst_cycles()
    }

    /// Validates internal consistency of the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(format!(
                "tRC ({}) must be >= tRAS + tRP ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            ));
        }
        if !self.bl.is_multiple_of(2) || self.bl == 0 {
            return Err(format!(
                "burst length must be even and non-zero, got {}",
                self.bl
            ));
        }
        if self.t_rfc1 < self.t_rfc2 || self.t_rfc2 < self.t_rfc4 {
            return Err("tRFC must shrink with finer refresh granularity".into());
        }
        if self.t_rfc_pb >= self.t_rfc1 {
            return Err("per-bank refresh must be shorter than all-bank".into());
        }
        if self.t_rfc_sa == 0 || self.t_rfc_sa > self.t_rfc_pb {
            return Err(format!(
                "subarray refresh window tRFCsa ({}) must be in 1..=tRFCpb ({})",
                self.t_rfc_sa, self.t_rfc_pb
            ));
        }
        if self.t_rfc() >= self.t_refi() {
            return Err("tRFC must be smaller than tREFI (duty cycle < 1)".into());
        }
        if self.t_faw < self.t_rrd {
            return Err("tFAW must be at least tRRD".into());
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr4_1600_8gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_valid() {
        TimingParams::ddr4_1600_8gb().validate().unwrap();
        TimingParams::ddr4_1600_8gb_fgr2x().validate().unwrap();
        TimingParams::ddr4_1600_8gb_fgr4x().validate().unwrap();
    }

    #[test]
    fn paper_refresh_numbers() {
        let t = TimingParams::ddr4_1600_8gb();
        // 7.8 µs at 1.25 ns/cycle.
        assert_eq!(t.t_refi(), 6240);
        // 350 ns at 1.25 ns/cycle.
        assert_eq!(t.t_rfc(), 280);
        // duty cycle about 4.5%
        assert!((t.refresh_duty_cycle() - 280.0 / 6240.0).abs() < 1e-12);
    }

    #[test]
    fn fgr_scales_intervals() {
        let x1 = TimingParams::ddr4_1600_8gb();
        let x2 = TimingParams::ddr4_1600_8gb_fgr2x();
        let x4 = TimingParams::ddr4_1600_8gb_fgr4x();
        assert_eq!(x2.t_refi(), x1.t_refi() / 2);
        assert_eq!(x4.t_refi(), x1.t_refi() / 4);
        assert!(x2.t_rfc() < x1.t_rfc());
        assert!(x4.t_rfc() < x2.t_rfc());
    }

    #[test]
    fn latencies() {
        let t = TimingParams::ddr4_1600_8gb();
        assert_eq!(t.burst_cycles(), 4);
        assert_eq!(t.read_latency(), 15);
        assert_eq!(t.write_latency(), 13);
    }

    #[test]
    fn validate_rejects_bad_trfcsa() {
        let t = TimingParams {
            t_rfc_sa: 200, // > tRFCpb
            ..TimingParams::ddr4_1600_8gb()
        };
        assert!(t.validate().is_err());
        let t = TimingParams {
            t_rfc_sa: 0,
            ..TimingParams::ddr4_1600_8gb()
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_trc() {
        let t = TimingParams {
            t_rc: 10,
            ..TimingParams::ddr4_1600_8gb()
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_duty_cycle_one() {
        let t = TimingParams {
            t_refi_base: 100,
            ..TimingParams::ddr4_1600_8gb()
        };
        assert!(t.validate().is_err());
    }
}
