//! Per-rank state: banks, the four-activate window, refresh locking, and
//! background-energy bookkeeping.

use crate::bank::Bank;
use crate::Cycle;

/// Background power state of a rank, for the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankPowerState {
    /// All banks precharged (IDD2N-class standby).
    AllPrecharged,
    /// At least one bank has an open row (IDD3N-class standby).
    SomeActive,
    /// An all-bank refresh is in progress (IDD5B-class current).
    Refreshing,
}

/// One rank: a lockstep set of banks sharing refresh circuitry.
#[derive(Debug, Clone)]
pub struct Rank {
    /// The banks of this rank.
    pub banks: Vec<Bank>,
    /// Issue cycles of recent ACTs, pruned to the tFAW window (at most 4
    /// relevant entries are kept).
    act_history: Vec<Cycle>,
    /// Earliest cycle the next ACT may issue due to tRRD.
    pub next_act_rrd: Cycle,
    /// Cycle at which an in-progress refresh completes (0 when idle).
    refresh_until: Cycle,
    /// Earliest cycle a READ may issue on this rank (tWTR after writes).
    pub next_read_rank: Cycle,
    /// Background-energy accrual: cycles spent with any row open.
    pub cycles_some_active: Cycle,
    /// Background-energy accrual: cycles spent all-precharged.
    pub cycles_all_precharged: Cycle,
    /// Background-energy accrual: cycles spent refreshing.
    pub cycles_refreshing: Cycle,
    /// Last cycle up to which background time has been accrued.
    accrued_until: Cycle,
}

impl Rank {
    /// Creates a rank with `banks` idle banks.
    pub fn new(banks: usize) -> Self {
        Rank {
            banks: (0..banks).map(|_| Bank::new()).collect(),
            act_history: Vec::with_capacity(8),
            next_act_rrd: 0,
            refresh_until: 0,
            next_read_rank: 0,
            cycles_some_active: 0,
            cycles_all_precharged: 0,
            cycles_refreshing: 0,
            accrued_until: 0,
        }
    }

    /// True while an all-bank refresh holds the rank locked at `now` —
    /// the paper's *frozen cycles*.
    #[inline]
    pub fn is_refreshing(&self, now: Cycle) -> bool {
        now < self.refresh_until
    }

    /// Cycle at which the current refresh (if any) completes.
    #[inline]
    pub fn refresh_done_at(&self) -> Cycle {
        self.refresh_until
    }

    /// Current background power state at `now`.
    pub fn power_state(&self, now: Cycle) -> RankPowerState {
        if self.is_refreshing(now) {
            RankPowerState::Refreshing
        } else if self.banks.iter().any(Bank::is_open) {
            RankPowerState::SomeActive
        } else {
            RankPowerState::AllPrecharged
        }
    }

    /// Accrues background time up to `now` under the *current* state.
    ///
    /// Must be called before any state change (ACT/PRE/REF issue or
    /// refresh completion) so each interval is attributed to the state
    /// that actually held during it. The device drives this.
    pub fn accrue_background(&mut self, now: Cycle) {
        if now <= self.accrued_until {
            return;
        }
        // If a refresh ended inside the interval, split it.
        let mut start = self.accrued_until;
        if start < self.refresh_until && now > self.refresh_until {
            self.cycles_refreshing += self.refresh_until - start;
            start = self.refresh_until;
        }
        let span = now - start;
        match self.power_state(start) {
            RankPowerState::Refreshing => self.cycles_refreshing += span,
            RankPowerState::SomeActive => self.cycles_some_active += span,
            RankPowerState::AllPrecharged => self.cycles_all_precharged += span,
        }
        self.accrued_until = now;
    }

    /// Records an ACT at `now` for tRRD/tFAW purposes.
    pub fn record_activate(&mut self, now: Cycle, t_rrd: Cycle, t_faw: Cycle) {
        self.next_act_rrd = now + t_rrd;
        self.act_history.push(now);
        // Keep only ACTs still inside a tFAW window ending after `now`.
        self.act_history.retain(|&t| t + t_faw > now);
        // At most the 4 most recent matter for the 4-activate window.
        if self.act_history.len() > 4 {
            let excess = self.act_history.len() - 4;
            self.act_history.drain(..excess);
        }
    }

    /// Earliest cycle the next ACT may issue on this rank, considering
    /// tRRD and the four-activate window (but not per-bank constraints).
    pub fn earliest_activate(&self, now: Cycle, t_faw: Cycle) -> Cycle {
        let mut earliest = self.next_act_rrd.max(now);
        // With 4 ACTs inside the window, the 5th must wait until the
        // oldest leaves the window.
        let in_window: Vec<Cycle> = self
            .act_history
            .iter()
            .copied()
            .filter(|&t| t + t_faw > earliest)
            .collect();
        if in_window.len() >= 4 {
            let oldest = in_window[in_window.len() - 4];
            earliest = earliest.max(oldest + t_faw);
        }
        earliest.max(self.refresh_until)
    }

    /// Starts an all-bank refresh at `now`, locking the rank until
    /// `now + t_rfc`.
    pub fn start_refresh(&mut self, now: Cycle, t_rfc: Cycle) {
        debug_assert!(!self.is_refreshing(now));
        debug_assert!(self.banks.iter().all(|b| !b.is_open()));
        self.refresh_until = now + t_rfc;
        for bank in &mut self.banks {
            bank.apply_refresh_lock(self.refresh_until);
        }
    }

    /// True when every bank is precharged (a refresh precondition).
    pub fn all_banks_idle(&self) -> bool {
        self.banks.iter().all(|b| !b.is_open())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_activate_window() {
        let mut r = Rank::new(8);
        let t_rrd = 5;
        let t_faw = 24;
        // Issue 4 ACTs as fast as tRRD allows: 0, 5, 10, 15.
        for i in 0..4u64 {
            let now = i * t_rrd;
            assert!(r.earliest_activate(now, t_faw) <= now);
            r.record_activate(now, t_rrd, t_faw);
        }
        // The 5th ACT must wait for the first to leave the tFAW window.
        let earliest = r.earliest_activate(20, t_faw);
        assert_eq!(earliest, 24);
    }

    #[test]
    fn refresh_locks_rank() {
        let mut r = Rank::new(8);
        r.start_refresh(100, 280);
        assert!(r.is_refreshing(100));
        assert!(r.is_refreshing(379));
        assert!(!r.is_refreshing(380));
        assert_eq!(r.refresh_done_at(), 380);
        assert!(r.earliest_activate(150, 24) >= 380);
    }

    #[test]
    fn background_accrual_splits_states() {
        let mut r = Rank::new(2);
        // 0..100 all precharged.
        r.accrue_background(100);
        assert_eq!(r.cycles_all_precharged, 100);
        // Open a bank at 100; 100..150 some-active.
        r.banks[0].apply_activate(100, 7, 11, 28, 39);
        r.accrue_background(150);
        assert_eq!(r.cycles_some_active, 50);
        // Close it; 150..200 precharged again.
        r.banks[0].apply_precharge(150, 11);
        r.accrue_background(200);
        assert_eq!(r.cycles_all_precharged, 150);
        // Refresh 200..480; accrue past the end splits into refresh + idle.
        r.start_refresh(200, 280);
        r.accrue_background(600);
        assert_eq!(r.cycles_refreshing, 280);
        assert_eq!(r.cycles_all_precharged, 150 + (600 - 480));
    }

    #[test]
    fn power_state_reporting() {
        let mut r = Rank::new(2);
        assert_eq!(r.power_state(0), RankPowerState::AllPrecharged);
        r.banks[1].apply_activate(0, 3, 11, 28, 39);
        assert_eq!(r.power_state(5), RankPowerState::SomeActive);
        r.banks[1].apply_precharge(28, 11);
        r.start_refresh(40, 280);
        assert_eq!(r.power_state(41), RankPowerState::Refreshing);
    }
}
