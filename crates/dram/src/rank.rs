//! Per-rank operations on the struct-of-arrays timing state: the
//! four-activate window, refresh locking, and background-energy
//! bookkeeping ([`crate::soa::ChannelTiming`] columns indexed by rank).

use crate::soa::ChannelTiming;
use crate::Cycle;

/// Background power state of a rank, for the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankPowerState {
    /// All banks precharged (IDD2N-class standby).
    AllPrecharged,
    /// At least one bank has an open row (IDD3N-class standby).
    SomeActive,
    /// An all-bank refresh is in progress (IDD5B-class current).
    Refreshing,
}

impl ChannelTiming {
    /// True while an all-bank refresh holds `rank` locked at `now` —
    /// the paper's *frozen cycles*.
    // rop-lint: hot
    #[inline]
    pub fn is_refreshing(&self, rank: usize, now: Cycle) -> bool {
        now < self.refresh_until[rank]
    }

    /// Cycle at which `rank`'s current refresh (if any) completes.
    #[inline]
    pub fn refresh_done_at(&self, rank: usize) -> Cycle {
        self.refresh_until[rank]
    }

    /// True when every bank of `rank` is precharged (a refresh
    /// precondition). O(1) via the maintained open-bank count.
    // rop-lint: hot
    #[inline]
    pub fn all_banks_idle(&self, rank: usize) -> bool {
        self.open_banks[rank] == 0
    }

    /// Current background power state of `rank` at `now`.
    pub fn power_state(&self, rank: usize, now: Cycle) -> RankPowerState {
        if self.is_refreshing(rank, now) {
            RankPowerState::Refreshing
        } else if self.open_banks[rank] > 0 {
            RankPowerState::SomeActive
        } else {
            RankPowerState::AllPrecharged
        }
    }

    /// Accrues background time on `rank` up to `now` under the
    /// *current* state.
    ///
    /// Must be called before any state change (ACT/PRE/REF issue or
    /// refresh completion) so each interval is attributed to the state
    /// that actually held during it. The device drives this.
    // rop-lint: hot
    pub fn accrue_background(&mut self, rank: usize, now: Cycle) {
        if now <= self.accrued_until[rank] {
            return;
        }
        // If a refresh ended inside the interval, split it.
        let mut start = self.accrued_until[rank];
        let refresh_until = self.refresh_until[rank];
        if start < refresh_until && now > refresh_until {
            self.cycles_refreshing[rank] += refresh_until - start;
            start = refresh_until;
        }
        let span = now - start;
        match self.power_state(rank, start) {
            RankPowerState::Refreshing => self.cycles_refreshing[rank] += span,
            RankPowerState::SomeActive => self.cycles_some_active[rank] += span,
            RankPowerState::AllPrecharged => self.cycles_all_precharged[rank] += span,
        }
        self.accrued_until[rank] = now;
    }

    /// Records an ACT-class command on `rank` at `now` for tRRD/tFAW
    /// purposes. Only the four most recent ACT times can ever bind the
    /// four-activate window, so they live in a fixed ring — no growth,
    /// no pruning pass.
    // rop-lint: hot
    pub fn record_activate(&mut self, rank: usize, now: Cycle, t_rrd: Cycle, _t_faw: Cycle) {
        self.next_act_rrd[rank] = now.saturating_add(t_rrd);
        let n = self.act_count[rank] as usize;
        let ring = &mut self.act_ring[rank];
        if n < 4 {
            ring[n] = now;
            self.act_count[rank] = (n + 1) as u8;
        } else {
            ring[0] = ring[1];
            ring[1] = ring[2];
            ring[2] = ring[3];
            ring[3] = now;
        }
    }

    /// Earliest cycle the next ACT may issue on `rank`, considering
    /// tRRD and the four-activate window (but not per-bank
    /// constraints).
    ///
    /// The window binds exactly when the oldest of the last four ACTs
    /// is still inside tFAW of the candidate cycle: ACT times are
    /// monotone, so "all four in window" reduces to one comparison
    /// against `act_ring[rank][0]`.
    // rop-lint: hot
    pub fn earliest_activate(&self, rank: usize, now: Cycle, t_faw: Cycle) -> Cycle {
        let mut earliest = self.next_act_rrd[rank].max(now);
        if self.act_count[rank] == 4 {
            let oldest = self.act_ring[rank][0];
            if oldest + t_faw > earliest {
                earliest = oldest + t_faw;
            }
        }
        earliest.max(self.refresh_until[rank])
    }

    /// Starts an all-bank refresh on `rank` at `now`, locking the rank
    /// until `now + t_rfc`. The per-bank ACT gates are raised in one
    /// batched pass over the rank's contiguous `next_act` slice.
    pub fn start_refresh(&mut self, rank: usize, now: Cycle, t_rfc: Cycle) {
        debug_assert!(!self.is_refreshing(rank, now));
        debug_assert!(self.all_banks_idle(rank));
        let until = now + t_rfc;
        self.refresh_until[rank] = until;
        let span = self.bank_span(rank);
        for gate in &mut self.next_act[span] {
            *gate = (*gate).max(until);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_activate_window() {
        let mut c = ChannelTiming::new(1, 8);
        let t_rrd = 5;
        let t_faw = 24;
        // Issue 4 ACTs as fast as tRRD allows: 0, 5, 10, 15.
        for i in 0..4u64 {
            let now = i * t_rrd;
            assert!(c.earliest_activate(0, now, t_faw) <= now);
            c.record_activate(0, now, t_rrd, t_faw);
        }
        // The 5th ACT must wait for the first to leave the tFAW window.
        let earliest = c.earliest_activate(0, 20, t_faw);
        assert_eq!(earliest, 24);
    }

    #[test]
    fn stale_acts_fall_out_of_the_window() {
        let mut c = ChannelTiming::new(1, 8);
        let (t_rrd, t_faw) = (5, 24);
        for now in [0, 5, 10, 15, 100] {
            c.record_activate(0, now, t_rrd, t_faw);
        }
        // Last four ACTs are 5, 10, 15, 100; the oldest left the window
        // long before cycle 105, so only tRRD binds.
        assert_eq!(c.earliest_activate(0, 105, t_faw), 105);
    }

    #[test]
    fn refresh_locks_rank() {
        let mut c = ChannelTiming::new(1, 8);
        c.start_refresh(0, 100, 280);
        assert!(c.is_refreshing(0, 100));
        assert!(c.is_refreshing(0, 379));
        assert!(!c.is_refreshing(0, 380));
        assert_eq!(c.refresh_done_at(0), 380);
        assert!(c.earliest_activate(0, 150, 24) >= 380);
        // Every bank's ACT gate was raised by the batched pass.
        for idx in c.bank_span(0) {
            assert_eq!(c.next_act[idx], 380);
        }
    }

    #[test]
    fn background_accrual_splits_states() {
        let mut c = ChannelTiming::new(1, 2);
        // 0..100 all precharged.
        c.accrue_background(0, 100);
        assert_eq!(c.cycles_all_precharged[0], 100);
        // Open a bank at 100; 100..150 some-active.
        c.apply_activate(0, 100, 7, 11, 28, 39);
        c.accrue_background(0, 150);
        assert_eq!(c.cycles_some_active[0], 50);
        // Close it; 150..200 precharged again.
        c.apply_precharge(0, 150, 11);
        c.accrue_background(0, 200);
        assert_eq!(c.cycles_all_precharged[0], 150);
        // Refresh 200..480; accrue past the end splits into refresh + idle.
        c.start_refresh(0, 200, 280);
        c.accrue_background(0, 600);
        assert_eq!(c.cycles_refreshing[0], 280);
        assert_eq!(c.cycles_all_precharged[0], 150 + (600 - 480));
    }

    #[test]
    fn power_state_reporting() {
        let mut c = ChannelTiming::new(1, 2);
        assert_eq!(c.power_state(0, 0), RankPowerState::AllPrecharged);
        c.apply_activate(1, 0, 3, 11, 28, 39);
        assert_eq!(c.power_state(0, 5), RankPowerState::SomeActive);
        c.apply_precharge(1, 28, 11);
        c.start_refresh(0, 40, 280);
        assert_eq!(c.power_state(0, 41), RankPowerState::Refreshing);
    }
}
