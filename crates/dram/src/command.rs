//! DRAM commands as issued by the memory controller.

use crate::Cycle;

/// A DRAM command addressed to this channel.
///
/// `rank`/`bank`/`row`/`column` are indices into the configured
/// [`crate::Geometry`]; `column` addresses one cache line within the open
/// row (the model transfers whole cache lines, i.e. one BL8 burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Open `row` in `bank` of `rank` (row activation: drives the row into
    /// the bank's row buffer / sense amplifiers).
    Activate {
        rank: usize,
        bank: usize,
        row: usize,
    },
    /// Close the open row in `bank` of `rank`.
    Precharge { rank: usize, bank: usize },
    /// Read one cache line from the open row.
    Read {
        rank: usize,
        bank: usize,
        column: usize,
    },
    /// Write one cache line into the open row.
    Write {
        rank: usize,
        bank: usize,
        column: usize,
    },
    /// All-bank auto-refresh of `rank`; locks the rank for `tRFC`.
    Refresh { rank: usize },
    /// Per-bank refresh (REFpb): refreshes one bank for `tRFCpb` while
    /// the rank's other banks keep operating (§VII future-work mode).
    RefreshBank { rank: usize, bank: usize },
}

/// Discriminant-only view of a [`Command`], for stats and matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    Activate,
    Precharge,
    Read,
    Write,
    Refresh,
    RefreshBank,
}

impl Command {
    /// The rank this command addresses.
    pub fn rank(&self) -> usize {
        match *self {
            Command::Activate { rank, .. }
            | Command::Precharge { rank, .. }
            | Command::Read { rank, .. }
            | Command::Write { rank, .. }
            | Command::Refresh { rank }
            | Command::RefreshBank { rank, .. } => rank,
        }
    }

    /// The bank this command addresses, if it is bank-scoped.
    pub fn bank(&self) -> Option<usize> {
        match *self {
            Command::Activate { bank, .. }
            | Command::Precharge { bank, .. }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. }
            | Command::RefreshBank { bank, .. } => Some(bank),
            Command::Refresh { .. } => None,
        }
    }

    /// Discriminant of this command.
    pub fn kind(&self) -> CommandKind {
        match self {
            Command::Activate { .. } => CommandKind::Activate,
            Command::Precharge { .. } => CommandKind::Precharge,
            Command::Read { .. } => CommandKind::Read,
            Command::Write { .. } => CommandKind::Write,
            Command::Refresh { .. } => CommandKind::Refresh,
            Command::RefreshBank { .. } => CommandKind::RefreshBank,
        }
    }

    /// True for commands that move data on the bus (READ/WRITE).
    pub fn is_column(&self) -> bool {
        matches!(self, Command::Read { .. } | Command::Write { .. })
    }
}

/// Result of issuing a command: when its effect completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandCompletion {
    /// Cycle at which the command was issued.
    pub issued_at: Cycle,
    /// For READ: cycle at which the last data beat arrives at the
    /// controller. For WRITE: last data beat driven. For ACT/PRE/REF: the
    /// cycle at which the affected resource becomes usable again.
    pub done_at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = Command::Read {
            rank: 2,
            bank: 5,
            column: 17,
        };
        assert_eq!(c.rank(), 2);
        assert_eq!(c.bank(), Some(5));
        assert_eq!(c.kind(), CommandKind::Read);
        assert!(c.is_column());

        let r = Command::Refresh { rank: 1 };
        assert_eq!(r.rank(), 1);
        assert_eq!(r.bank(), None);
        assert!(!r.is_column());
        assert_eq!(r.kind(), CommandKind::Refresh);
    }
}
