//! Device geometry and top-level DRAM configuration.

use crate::energy::EnergyParams;
use crate::timing::TimingParams;

/// Physical geometry of the memory behind one channel.
///
/// The paper's setup is one channel with 1 rank (single-core) or 4 ranks
/// (4-core), 8 banks per rank, 8 Gb chips. Rows are 8 KiB across the rank
/// (1 KiB per x8 device × 8 devices), i.e. 128 64-byte cache lines per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Ranks on the channel.
    pub ranks: usize,
    /// Banks per rank (8 for DDR4 x8 parts as modelled).
    pub banks_per_rank: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
    /// Subarrays per bank (contiguous row blocks sharing local sense
    /// amplifiers). Only SARP-style mechanisms distinguish them: a
    /// subarray-scoped refresh freezes one subarray while accesses to
    /// the bank's other subarrays proceed.
    pub subarrays_per_bank: usize,
    /// Cache lines (columns of one line width) per row.
    pub lines_per_row: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
}

impl Geometry {
    /// Paper configuration: single rank (single-core experiments).
    pub fn ddr4_1rank() -> Self {
        Geometry {
            ranks: 1,
            banks_per_rank: 8,
            rows_per_bank: 1 << 15,
            subarrays_per_bank: 8,
            lines_per_row: 128,
            line_bytes: 64,
        }
    }

    /// Paper configuration: four ranks (4-core experiments).
    pub fn ddr4_4rank() -> Self {
        Geometry {
            ranks: 4,
            ..Self::ddr4_1rank()
        }
    }

    /// Total cache lines addressable on the channel.
    pub fn total_lines(&self) -> usize {
        self.ranks * self.banks_per_rank * self.rows_per_bank * self.lines_per_row
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.total_lines() * self.line_bytes
    }

    /// Rows in each subarray (rows are split into contiguous blocks).
    #[inline]
    pub fn rows_per_subarray(&self) -> usize {
        self.rows_per_bank / self.subarrays_per_bank
    }

    /// Subarray containing `row` (high-order row bits select the
    /// subarray: subarrays are contiguous row blocks).
    // rop-lint: hot
    #[inline]
    pub fn subarray_of_row(&self, row: usize) -> usize {
        row / self.rows_per_subarray()
    }

    /// Validates the geometry (all dimensions non-zero, powers of two where
    /// the address mapping requires it).
    pub fn validate(&self) -> Result<(), String> {
        let pow2 = |n: usize, what: &str| -> Result<(), String> {
            if n == 0 || !n.is_power_of_two() {
                Err(format!("{what} must be a non-zero power of two, got {n}"))
            } else {
                Ok(())
            }
        };
        if self.ranks == 0 {
            return Err("need at least one rank".into());
        }
        pow2(self.banks_per_rank, "banks_per_rank")?;
        pow2(self.rows_per_bank, "rows_per_bank")?;
        pow2(self.subarrays_per_bank, "subarrays_per_bank")?;
        pow2(self.lines_per_row, "lines_per_row")?;
        pow2(self.line_bytes, "line_bytes")?;
        if self.subarrays_per_bank > self.rows_per_bank {
            return Err(format!(
                "subarrays_per_bank ({}) cannot exceed rows_per_bank ({})",
                self.subarrays_per_bank, self.rows_per_bank
            ));
        }
        Ok(())
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::ddr4_1rank()
    }
}

/// Complete configuration for a [`crate::DramDevice`].
#[derive(Debug, Clone, Default)]
pub struct DramConfig {
    /// Geometry of the channel.
    pub geometry: Geometry,
    /// Timing parameters.
    pub timing: TimingParams,
    /// Energy-model parameters.
    pub energy: EnergyParams,
    /// When false, the device performs no refreshes at all — the paper's
    /// idealised *no-refresh* memory used as the upper bound in Figure 1
    /// and Figures 7/8.
    pub refresh_enabled: bool,
}

impl DramConfig {
    /// Paper baseline: DDR4-1600, auto-refresh on.
    pub fn baseline(ranks: usize) -> Self {
        let mut geometry = Geometry::ddr4_1rank();
        geometry.ranks = ranks;
        DramConfig {
            geometry,
            timing: TimingParams::ddr4_1600_8gb(),
            energy: EnergyParams::ddr4_8gb(),
            refresh_enabled: true,
        }
    }

    /// Idealised no-refresh memory (upper bound).
    pub fn no_refresh(ranks: usize) -> Self {
        DramConfig {
            refresh_enabled: false,
            ..Self::baseline(ranks)
        }
    }

    /// Validates geometry and timing together.
    pub fn validate(&self) -> Result<(), String> {
        self.geometry.validate()?;
        self.timing.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_capacity() {
        let g = Geometry::ddr4_1rank();
        // 1 rank * 8 banks * 32768 rows * 128 lines * 64 B = 2 GiB
        assert_eq!(g.capacity_bytes(), 2 * 1024 * 1024 * 1024);
        let g4 = Geometry::ddr4_4rank();
        assert_eq!(g4.capacity_bytes(), 8 * 1024 * 1024 * 1024usize);
    }

    #[test]
    fn geometry_validation() {
        Geometry::ddr4_1rank().validate().unwrap();
        let bad = Geometry {
            lines_per_row: 100,
            ..Geometry::ddr4_1rank()
        };
        assert!(bad.validate().is_err());
        let no_ranks = Geometry {
            ranks: 0,
            ..Geometry::ddr4_1rank()
        };
        assert!(no_ranks.validate().is_err());
        let odd_subarrays = Geometry {
            subarrays_per_bank: 3,
            ..Geometry::ddr4_1rank()
        };
        assert!(odd_subarrays.validate().is_err());
        let too_many = Geometry {
            subarrays_per_bank: 1 << 16,
            ..Geometry::ddr4_1rank()
        };
        assert!(too_many.validate().is_err());
    }

    #[test]
    fn subarray_mapping_uses_high_row_bits() {
        let g = Geometry::ddr4_1rank();
        assert_eq!(g.rows_per_subarray(), (1 << 15) / 8);
        assert_eq!(g.subarray_of_row(0), 0);
        assert_eq!(g.subarray_of_row(g.rows_per_subarray() - 1), 0);
        assert_eq!(g.subarray_of_row(g.rows_per_subarray()), 1);
        assert_eq!(g.subarray_of_row(g.rows_per_bank - 1), 7);
    }

    #[test]
    fn configs() {
        DramConfig::baseline(1).validate().unwrap();
        DramConfig::baseline(4).validate().unwrap();
        assert!(!DramConfig::no_refresh(1).refresh_enabled);
    }
}
