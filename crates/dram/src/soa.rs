//! Channel-wide struct-of-arrays timing state.
//!
//! Every per-bank and per-rank timing register lives in one flat array
//! per register class, rank-major (`index = rank * banks_per_rank +
//! bank`). The earliest-issue checks and refresh gates the controller
//! hammers every tick become contiguous array reads and branch-light
//! batched passes (max/min over a rank's slice) instead of pointer
//! chases through per-bank structs.
//!
//! The *operations* on these columns are defined next to the concepts
//! they model: bank-level register transitions in [`crate::bank`],
//! rank-level windows (tRRD/tFAW/refresh lock) and background-energy
//! accrual in [`crate::rank`]. This module owns only the layout and the
//! batched whole-rank passes.

use crate::Cycle;
use std::ops::Range;

/// All timing state of one channel, flattened into parallel arrays.
///
/// Per-bank columns are indexed by [`Self::bank_index`]; per-rank
/// columns by the rank index. Invariants maintained by the ops in
/// `bank.rs`/`rank.rs`:
///
/// * `open_row_p1[i]` is `row + 1` when a row is open, 0 when idle;
/// * `open_banks[r]` always equals the number of banks of rank `r`
///   with `open_row_p1 != 0` (so idle checks and power-state queries
///   are O(1), not bank scans);
/// * `act_ring[r]` holds the issue cycles of the `act_count[r]` most
///   recent ACT-class commands on rank `r`, oldest first (the only
///   ones that can bind the four-activate window).
#[derive(Debug, Clone)]
pub struct ChannelTiming {
    ranks: usize,
    banks_per_rank: usize,
    // --- per-bank columns (rank-major) ---
    /// Open row + 1; 0 means the bank is precharged.
    pub(crate) open_row_p1: Vec<usize>,
    /// Earliest cycle an ACT may issue (tRC after ACT, tRP after PRE,
    /// refresh completion).
    pub(crate) next_act: Vec<Cycle>,
    /// Earliest cycle a PRE may issue (tRAS, tRTP, write recovery).
    pub(crate) next_pre: Vec<Cycle>,
    /// Earliest cycle a READ may issue (tRCD, tCCD).
    pub(crate) next_read: Vec<Cycle>,
    /// Earliest cycle a WRITE may issue (tRCD, tCCD).
    pub(crate) next_write: Vec<Cycle>,
    /// Cycle of the most recent ACT (for stats).
    pub(crate) last_act_at: Vec<Cycle>,
    /// End of the in-flight per-bank refresh (REFpb), 0 if none ever.
    pub(crate) bank_refresh_until: Vec<Cycle>,
    /// Subarray locked by the in-flight per-bank refresh, plus one; 0
    /// means the refresh (if any) is bank-wide. Only meaningful while
    /// `now < bank_refresh_until[i]` (SARP-scoped refreshes).
    pub(crate) bank_refresh_subarray_p1: Vec<usize>,
    // --- per-rank columns ---
    /// Number of banks with an open row.
    pub(crate) open_banks: Vec<u32>,
    /// Issue cycles of the most recent ACTs, oldest first.
    pub(crate) act_ring: Vec<[Cycle; 4]>,
    /// How many entries of `act_ring` are populated (saturates at 4).
    pub(crate) act_count: Vec<u8>,
    /// Earliest cycle the next ACT may issue due to tRRD.
    pub(crate) next_act_rrd: Vec<Cycle>,
    /// Cycle at which an in-progress all-bank refresh completes.
    pub(crate) refresh_until: Vec<Cycle>,
    /// Earliest cycle a READ may issue on the rank (tWTR after writes).
    pub(crate) next_read_rank: Vec<Cycle>,
    /// Background-energy accrual: cycles with any row open.
    pub(crate) cycles_some_active: Vec<Cycle>,
    /// Background-energy accrual: cycles all-precharged.
    pub(crate) cycles_all_precharged: Vec<Cycle>,
    /// Background-energy accrual: cycles refreshing.
    pub(crate) cycles_refreshing: Vec<Cycle>,
    /// Last cycle up to which background time has been accrued.
    pub(crate) accrued_until: Vec<Cycle>,
}

impl ChannelTiming {
    /// Fresh state for `ranks` ranks of `banks_per_rank` banks each,
    /// all idle with every constraint satisfied at cycle 0.
    pub fn new(ranks: usize, banks_per_rank: usize) -> Self {
        let nb = ranks * banks_per_rank;
        ChannelTiming {
            ranks,
            banks_per_rank,
            open_row_p1: vec![0; nb],
            next_act: vec![0; nb],
            next_pre: vec![0; nb],
            next_read: vec![0; nb],
            next_write: vec![0; nb],
            last_act_at: vec![0; nb],
            bank_refresh_until: vec![0; nb],
            bank_refresh_subarray_p1: vec![0; nb],
            open_banks: vec![0; ranks],
            act_ring: vec![[0; 4]; ranks],
            act_count: vec![0; ranks],
            next_act_rrd: vec![0; ranks],
            refresh_until: vec![0; ranks],
            next_read_rank: vec![0; ranks],
            cycles_some_active: vec![0; ranks],
            cycles_all_precharged: vec![0; ranks],
            cycles_refreshing: vec![0; ranks],
            accrued_until: vec![0; ranks],
        }
    }

    /// Number of ranks on the channel.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Banks per rank.
    #[inline]
    pub fn banks_per_rank(&self) -> usize {
        self.banks_per_rank
    }

    /// Flat index of `(rank, bank)` into the per-bank columns.
    // rop-lint: hot
    #[inline]
    pub fn bank_index(&self, rank: usize, bank: usize) -> usize {
        rank * self.banks_per_rank + bank
    }

    /// Index range of `rank`'s banks in the per-bank columns.
    #[inline]
    pub(crate) fn bank_span(&self, rank: usize) -> Range<usize> {
        let base = rank * self.banks_per_rank;
        base..base + self.banks_per_rank
    }

    /// Batched pass: the latest `next_act` over `rank`'s banks — the
    /// gate an all-bank REF must wait out (every tRP/tRC/tRFC window
    /// elapsed). One contiguous max-scan, no per-bank branching.
    // rop-lint: hot
    #[inline]
    pub fn rank_act_gate(&self, rank: usize) -> Cycle {
        let mut gate = 0;
        for &a in &self.next_act[self.bank_span(rank)] {
            gate = gate.max(a);
        }
        gate
    }

    /// Accrues background time on every rank up to `now`.
    pub fn accrue_all(&mut self, now: Cycle) {
        for rank in 0..self.ranks {
            self.accrue_background(rank, now);
        }
    }

    /// Sum of some-active background cycles across ranks.
    pub fn total_cycles_some_active(&self) -> Cycle {
        self.cycles_some_active.iter().sum()
    }

    /// Sum of all-precharged background cycles across ranks.
    pub fn total_cycles_all_precharged(&self) -> Cycle {
        self.cycles_all_precharged.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_rank_major() {
        let c = ChannelTiming::new(2, 8);
        assert_eq!(c.bank_index(0, 0), 0);
        assert_eq!(c.bank_index(0, 7), 7);
        assert_eq!(c.bank_index(1, 0), 8);
        assert_eq!(c.bank_span(1), 8..16);
        assert_eq!(c.next_act.len(), 16);
        assert_eq!(c.refresh_until.len(), 2);
    }

    #[test]
    fn act_gate_is_max_over_the_rank_slice() {
        let mut c = ChannelTiming::new(2, 4);
        let (a, b) = (c.bank_index(0, 2), c.bank_index(1, 0));
        c.next_act[a] = 50;
        c.next_act[b] = 900;
        assert_eq!(c.rank_act_gate(0), 50);
        assert_eq!(c.rank_act_gate(1), 900);
    }
}
