//! Per-bank row state machine and timing registers.

use crate::Cycle;

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All rows closed; the bank can accept an ACT.
    Idle,
    /// `row` is open in the row buffer; READ/WRITE to that row are
    /// row-buffer hits, other rows require PRE + ACT.
    Active { row: usize },
}

/// One DRAM bank: state plus the earliest-issue timing registers that
/// encode same-bank constraints.
///
/// Each register holds the first cycle at which the corresponding command
/// class may issue *as far as this bank is concerned*; rank- and
/// channel-level constraints are layered on top by
/// [`crate::rank::Rank`] and [`crate::DramDevice`].
#[derive(Debug, Clone)]
pub struct Bank {
    /// Row-buffer state.
    pub state: BankState,
    /// Earliest cycle an ACT may issue (tRC after previous ACT, tRP after
    /// PRE, tRFC after refresh).
    pub next_act: Cycle,
    /// Earliest cycle a PRE may issue (tRAS after ACT, tRTP after READ,
    /// write recovery after WRITE).
    pub next_pre: Cycle,
    /// Earliest cycle a READ may issue (tRCD after ACT).
    pub next_read: Cycle,
    /// Earliest cycle a WRITE may issue (tRCD after ACT).
    pub next_write: Cycle,
    /// Cycle of the most recent ACT (for stats).
    pub last_act_at: Cycle,
    /// End of the in-flight per-bank refresh (REFpb), if any.
    refreshing_until: Cycle,
}

impl Bank {
    /// A fresh, idle bank with all constraints satisfied at cycle 0.
    pub fn new() -> Self {
        Bank {
            state: BankState::Idle,
            next_act: 0,
            next_pre: 0,
            next_read: 0,
            next_write: 0,
            last_act_at: 0,
            refreshing_until: 0,
        }
    }

    /// True when a row is open.
    #[inline]
    pub fn is_open(&self) -> bool {
        matches!(self.state, BankState::Active { .. })
    }

    /// The open row, if any.
    #[inline]
    pub fn open_row(&self) -> Option<usize> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Idle => None,
        }
    }

    /// Applies an ACT issued at `now` with the given timings.
    pub fn apply_activate(
        &mut self,
        now: Cycle,
        row: usize,
        t_rcd: Cycle,
        t_ras: Cycle,
        t_rc: Cycle,
    ) {
        debug_assert!(matches!(self.state, BankState::Idle));
        debug_assert!(now >= self.next_act);
        self.state = BankState::Active { row };
        self.last_act_at = now;
        self.next_read = now + t_rcd;
        self.next_write = now + t_rcd;
        self.next_pre = now + t_ras;
        self.next_act = now + t_rc;
    }

    /// Applies a PRE issued at `now`.
    pub fn apply_precharge(&mut self, now: Cycle, t_rp: Cycle) {
        debug_assert!(self.is_open());
        debug_assert!(now >= self.next_pre);
        self.state = BankState::Idle;
        self.next_act = self.next_act.max(now + t_rp);
    }

    /// Applies a READ issued at `now`; returns the cycle the last data
    /// beat lands.
    pub fn apply_read(
        &mut self,
        now: Cycle,
        cl: Cycle,
        burst: Cycle,
        t_rtp: Cycle,
        t_ccd: Cycle,
    ) -> Cycle {
        debug_assert!(self.is_open());
        debug_assert!(now >= self.next_read);
        // Read-to-precharge.
        self.next_pre = self.next_pre.max(now + t_rtp);
        // Back-to-back column commands on the same bank.
        self.next_read = self.next_read.max(now + t_ccd);
        self.next_write = self.next_write.max(now + t_ccd);
        now + cl + burst
    }

    /// Applies a WRITE issued at `now`; returns the cycle the last data
    /// beat is driven.
    pub fn apply_write(
        &mut self,
        now: Cycle,
        cwl: Cycle,
        burst: Cycle,
        t_wr: Cycle,
        t_ccd: Cycle,
    ) -> Cycle {
        debug_assert!(self.is_open());
        debug_assert!(now >= self.next_write);
        let data_done = now + cwl + burst;
        // Write recovery: PRE only after tWR past the last data beat.
        self.next_pre = self.next_pre.max(data_done + t_wr);
        self.next_read = self.next_read.max(now + t_ccd);
        self.next_write = self.next_write.max(now + t_ccd);
        data_done
    }

    /// Applies an all-bank refresh that ends at `done`: the bank may not
    /// activate before the refresh completes.
    pub fn apply_refresh_lock(&mut self, done: Cycle) {
        debug_assert!(matches!(self.state, BankState::Idle));
        self.next_act = self.next_act.max(done);
    }

    /// Applies a per-bank refresh (REFpb) ending at `done`: only this
    /// bank is unavailable; siblings keep operating.
    pub fn apply_bank_refresh(&mut self, done: Cycle) {
        debug_assert!(matches!(self.state, BankState::Idle));
        self.next_act = self.next_act.max(done);
        self.refreshing_until = self.refreshing_until.max(done);
    }

    /// True while a per-bank refresh holds this bank at `now`.
    #[inline]
    pub fn is_bank_refreshing(&self, now: Cycle) -> bool {
        now < self.refreshing_until
    }

    /// Completion cycle of this bank's in-flight REFpb (0 if none ever).
    #[inline]
    pub fn bank_refresh_done_at(&self) -> Cycle {
        self.refreshing_until
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn t() -> TimingParams {
        TimingParams::ddr4_1600_8gb()
    }

    #[test]
    fn activate_opens_row_and_sets_windows() {
        let t = t();
        let mut b = Bank::new();
        b.apply_activate(100, 42, t.t_rcd, t.t_ras, t.t_rc);
        assert_eq!(b.open_row(), Some(42));
        assert_eq!(b.next_read, 100 + t.t_rcd);
        assert_eq!(b.next_pre, 100 + t.t_ras);
        assert_eq!(b.next_act, 100 + t.t_rc);
    }

    #[test]
    fn precharge_closes_and_enforces_trp() {
        let t = t();
        let mut b = Bank::new();
        b.apply_activate(0, 1, t.t_rcd, t.t_ras, t.t_rc);
        b.apply_precharge(t.t_ras, t.t_rp);
        assert!(!b.is_open());
        // tRC from the ACT still dominates tRAS + tRP here (tRC = tRAS+tRP).
        assert_eq!(b.next_act, t.t_ras + t.t_rp);
    }

    #[test]
    fn read_returns_data_completion() {
        let t = t();
        let mut b = Bank::new();
        b.apply_activate(0, 1, t.t_rcd, t.t_ras, t.t_rc);
        let done = b.apply_read(t.t_rcd, t.cl, t.burst_cycles(), t.t_rtp, t.t_ccd);
        assert_eq!(done, t.t_rcd + t.cl + t.burst_cycles());
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let t = t();
        let mut b = Bank::new();
        b.apply_activate(0, 1, t.t_rcd, t.t_ras, t.t_rc);
        let now = t.t_rcd;
        let data_done = b.apply_write(now, t.cwl, t.burst_cycles(), t.t_wr, t.t_ccd);
        assert_eq!(data_done, now + t.cwl + t.burst_cycles());
        assert_eq!(b.next_pre, data_done + t.t_wr);
    }

    #[test]
    fn refresh_lock_blocks_activation() {
        let mut b = Bank::new();
        b.apply_refresh_lock(500);
        assert_eq!(b.next_act, 500);
    }
}
