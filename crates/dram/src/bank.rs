//! Per-bank row state machine and timing-register transitions, operating
//! on columns of the channel-wide struct-of-arrays
//! ([`crate::soa::ChannelTiming`]).
//!
//! Each register column holds the first cycle at which the corresponding
//! command class may issue *as far as that bank is concerned*; rank- and
//! channel-level constraints are layered on top by [`crate::rank`] and
//! [`crate::DramDevice`]. `idx` arguments are flat bank indices from
//! [`ChannelTiming::bank_index`].

use crate::soa::ChannelTiming;
use crate::Cycle;

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All rows closed; the bank can accept an ACT.
    Idle,
    /// `row` is open in the row buffer; READ/WRITE to that row are
    /// row-buffer hits, other rows require PRE + ACT.
    Active {
        /// The open row.
        row: usize,
    },
}

impl ChannelTiming {
    /// Row-buffer state of bank `idx`.
    // rop-lint: hot
    #[inline]
    pub fn bank_state(&self, idx: usize) -> BankState {
        match self.open_row_p1[idx] {
            0 => BankState::Idle,
            r => BankState::Active { row: r - 1 },
        }
    }

    /// True when bank `idx` has a row open.
    // rop-lint: hot
    #[inline]
    pub fn is_open(&self, idx: usize) -> bool {
        self.open_row_p1[idx] != 0
    }

    /// The row open in bank `idx`, if any.
    // rop-lint: hot
    #[inline]
    pub fn open_row(&self, idx: usize) -> Option<usize> {
        self.open_row_p1[idx].checked_sub(1)
    }

    /// Applies an ACT to bank `idx` issued at `now`.
    // rop-lint: hot
    pub fn apply_activate(
        &mut self,
        idx: usize,
        now: Cycle,
        row: usize,
        t_rcd: Cycle,
        t_ras: Cycle,
        t_rc: Cycle,
    ) {
        debug_assert!(!self.is_open(idx));
        debug_assert!(now >= self.next_act[idx]);
        let rank = idx / self.banks_per_rank();
        self.open_row_p1[idx] = row + 1;
        self.open_banks[rank] += 1;
        self.last_act_at[idx] = now;
        self.next_read[idx] = now.saturating_add(t_rcd);
        self.next_write[idx] = now.saturating_add(t_rcd);
        self.next_pre[idx] = now.saturating_add(t_ras);
        self.next_act[idx] = now.saturating_add(t_rc);
    }

    /// Applies a PRE to bank `idx` issued at `now`.
    // rop-lint: hot
    pub fn apply_precharge(&mut self, idx: usize, now: Cycle, t_rp: Cycle) {
        debug_assert!(self.is_open(idx));
        debug_assert!(now >= self.next_pre[idx]);
        let rank = idx / self.banks_per_rank();
        self.open_row_p1[idx] = 0;
        self.open_banks[rank] -= 1;
        self.next_act[idx] = self.next_act[idx].max(now.saturating_add(t_rp));
    }

    /// Applies a READ to bank `idx` issued at `now`; returns the cycle
    /// the last data beat lands.
    // rop-lint: hot
    pub fn apply_read(
        &mut self,
        idx: usize,
        now: Cycle,
        cl: Cycle,
        burst: Cycle,
        t_rtp: Cycle,
        t_ccd: Cycle,
    ) -> Cycle {
        debug_assert!(self.is_open(idx));
        debug_assert!(now >= self.next_read[idx]);
        // Read-to-precharge.
        self.next_pre[idx] = self.next_pre[idx].max(now.saturating_add(t_rtp));
        // Back-to-back column commands on the same bank.
        self.next_read[idx] = self.next_read[idx].max(now.saturating_add(t_ccd));
        self.next_write[idx] = self.next_write[idx].max(now.saturating_add(t_ccd));
        now.saturating_add(cl).saturating_add(burst)
    }

    /// Applies a WRITE to bank `idx` issued at `now`; returns the cycle
    /// the last data beat is driven.
    // rop-lint: hot
    pub fn apply_write(
        &mut self,
        idx: usize,
        now: Cycle,
        cwl: Cycle,
        burst: Cycle,
        t_wr: Cycle,
        t_ccd: Cycle,
    ) -> Cycle {
        debug_assert!(self.is_open(idx));
        debug_assert!(now >= self.next_write[idx]);
        let data_done = now.saturating_add(cwl).saturating_add(burst);
        // Write recovery: PRE only after tWR past the last data beat.
        self.next_pre[idx] = self.next_pre[idx].max(data_done.saturating_add(t_wr));
        self.next_read[idx] = self.next_read[idx].max(now.saturating_add(t_ccd));
        self.next_write[idx] = self.next_write[idx].max(now.saturating_add(t_ccd));
        data_done
    }

    /// Applies a per-bank refresh (REFpb) to bank `idx` ending at
    /// `done`: only this bank is unavailable; siblings keep operating.
    pub fn apply_bank_refresh(&mut self, idx: usize, done: Cycle) {
        debug_assert!(!self.is_open(idx));
        self.next_act[idx] = self.next_act[idx].max(done);
        self.bank_refresh_until[idx] = self.bank_refresh_until[idx].max(done);
        self.bank_refresh_subarray_p1[idx] = 0;
    }

    /// Applies a subarray-scoped refresh (SARP) to bank `idx` ending at
    /// `done`: only `subarray` is locked; ACTs targeting the bank's
    /// other subarrays remain admissible, so the bank-wide `next_act`
    /// gate is *not* raised — the device's admission check consults
    /// [`Self::frozen_subarray`] per target row instead.
    pub fn apply_subarray_refresh(&mut self, idx: usize, done: Cycle, subarray: usize) {
        self.bank_refresh_until[idx] = self.bank_refresh_until[idx].max(done);
        self.bank_refresh_subarray_p1[idx] = subarray + 1;
    }

    /// True while a per-bank refresh holds bank `idx` at `now`.
    #[inline]
    pub fn is_bank_refreshing(&self, idx: usize, now: Cycle) -> bool {
        now < self.bank_refresh_until[idx]
    }

    /// Completion cycle of bank `idx`'s in-flight REFpb (0 if none
    /// ever).
    #[inline]
    pub fn bank_refresh_done_at(&self, idx: usize) -> Cycle {
        self.bank_refresh_until[idx]
    }

    /// The subarray locked by bank `idx`'s in-flight refresh at `now`:
    /// `Some(sa)` for a SARP-scoped refresh, `None` when the refresh is
    /// bank-wide or no refresh is in flight.
    // rop-lint: hot
    #[inline]
    pub fn frozen_subarray(&self, idx: usize, now: Cycle) -> Option<usize> {
        if now < self.bank_refresh_until[idx] {
            self.bank_refresh_subarray_p1[idx].checked_sub(1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn t() -> TimingParams {
        TimingParams::ddr4_1600_8gb()
    }

    #[test]
    fn activate_opens_row_and_sets_windows() {
        let t = t();
        let mut c = ChannelTiming::new(1, 1);
        c.apply_activate(0, 100, 42, t.t_rcd, t.t_ras, t.t_rc);
        assert_eq!(c.open_row(0), Some(42));
        assert_eq!(c.bank_state(0), BankState::Active { row: 42 });
        assert_eq!(c.next_read[0], 100 + t.t_rcd);
        assert_eq!(c.next_pre[0], 100 + t.t_ras);
        assert_eq!(c.next_act[0], 100 + t.t_rc);
    }

    #[test]
    fn precharge_closes_and_enforces_trp() {
        let t = t();
        let mut c = ChannelTiming::new(1, 1);
        c.apply_activate(0, 0, 1, t.t_rcd, t.t_ras, t.t_rc);
        c.apply_precharge(0, t.t_ras, t.t_rp);
        assert!(!c.is_open(0));
        // tRC from the ACT still dominates tRAS + tRP here (tRC = tRAS+tRP).
        assert_eq!(c.next_act[0], t.t_ras + t.t_rp);
    }

    #[test]
    fn read_returns_data_completion() {
        let t = t();
        let mut c = ChannelTiming::new(1, 1);
        c.apply_activate(0, 0, 1, t.t_rcd, t.t_ras, t.t_rc);
        let done = c.apply_read(0, t.t_rcd, t.cl, t.burst_cycles(), t.t_rtp, t.t_ccd);
        assert_eq!(done, t.t_rcd + t.cl + t.burst_cycles());
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let t = t();
        let mut c = ChannelTiming::new(1, 1);
        c.apply_activate(0, 0, 1, t.t_rcd, t.t_ras, t.t_rc);
        let now = t.t_rcd;
        let data_done = c.apply_write(0, now, t.cwl, t.burst_cycles(), t.t_wr, t.t_ccd);
        assert_eq!(data_done, now + t.cwl + t.burst_cycles());
        assert_eq!(c.next_pre[0], data_done + t.t_wr);
    }

    #[test]
    fn bank_refresh_blocks_activation() {
        let mut c = ChannelTiming::new(1, 2);
        c.apply_bank_refresh(0, 500);
        assert_eq!(c.next_act[0], 500);
        assert!(c.is_bank_refreshing(0, 499));
        assert!(!c.is_bank_refreshing(0, 500));
        // The sibling bank's column is untouched.
        assert_eq!(c.next_act[1], 0);
    }

    #[test]
    fn subarray_refresh_scopes_the_freeze() {
        let mut c = ChannelTiming::new(1, 2);
        c.apply_subarray_refresh(0, 500, 3);
        // The bank counts as refreshing, but ACT admission is left to
        // the per-row subarray check: next_act is untouched.
        assert!(c.is_bank_refreshing(0, 499));
        assert_eq!(c.frozen_subarray(0, 499), Some(3));
        assert_eq!(c.next_act[0], 0);
        // Scope clears when the window ends.
        assert_eq!(c.frozen_subarray(0, 500), None);
        // A bank-wide REFpb resets the scope marker.
        c.apply_bank_refresh(0, 900);
        assert_eq!(c.frozen_subarray(0, 600), None);
        assert_eq!(c.next_act[0], 900);
    }

    #[test]
    fn open_bank_count_tracks_row_state() {
        let t = t();
        let mut c = ChannelTiming::new(1, 4);
        c.apply_activate(0, 0, 1, t.t_rcd, t.t_ras, t.t_rc);
        c.apply_activate(2, t.t_rrd, 9, t.t_rcd, t.t_ras, t.t_rc);
        assert!(!c.all_banks_idle(0));
        c.apply_precharge(0, t.t_ras, t.t_rp);
        assert!(!c.all_banks_idle(0));
        c.apply_precharge(2, t.t_rrd + t.t_ras, t.t_rp);
        assert!(c.all_banks_idle(0));
    }
}
