//! Property tests: the DDR4 device must uphold its timing contracts for
//! *any* command sequence a controller might attempt.

use proptest::prelude::*;

use rop_dram::{Command, DramConfig, DramDevice};

#[derive(Debug, Clone, Copy)]
enum Op {
    Activate {
        rank: usize,
        bank: usize,
        row: usize,
    },
    Precharge {
        rank: usize,
        bank: usize,
    },
    Read {
        rank: usize,
        bank: usize,
        column: usize,
    },
    Write {
        rank: usize,
        bank: usize,
        column: usize,
    },
    Refresh {
        rank: usize,
    },
    Wait {
        cycles: u16,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..2, 0usize..8, 0usize..64).prop_map(|(rank, bank, row)| Op::Activate {
            rank,
            bank,
            row
        }),
        (0usize..2, 0usize..8).prop_map(|(rank, bank)| Op::Precharge { rank, bank }),
        (0usize..2, 0usize..8, 0usize..128).prop_map(|(rank, bank, column)| Op::Read {
            rank,
            bank,
            column
        }),
        (0usize..2, 0usize..8, 0usize..128).prop_map(|(rank, bank, column)| Op::Write {
            rank,
            bank,
            column
        }),
        (0usize..2).prop_map(|rank| Op::Refresh { rank }),
        (1u16..400).prop_map(|cycles| Op::Wait { cycles }),
    ]
}

fn to_command(op: Op) -> Option<Command> {
    Some(match op {
        Op::Activate { rank, bank, row } => Command::Activate { rank, bank, row },
        Op::Precharge { rank, bank } => Command::Precharge { rank, bank },
        Op::Read { rank, bank, column } => Command::Read { rank, bank, column },
        Op::Write { rank, bank, column } => Command::Write { rank, bank, column },
        Op::Refresh { rank } => Command::Refresh { rank },
        Op::Wait { .. } => return None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Issue-at-earliest is always accepted: whatever `earliest_issue`
    /// promises, `try_issue` honours, and the promised cycle never lies
    /// in the past.
    #[test]
    fn earliest_issue_is_honoured(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut dev = DramDevice::new(DramConfig::baseline(2));
        let mut now = 0u64;
        let mut acts: Vec<(u64, usize)> = Vec::new(); // (cycle, rank)
        let t_faw = dev.config().timing.t_faw;
        for op in ops {
            if let Op::Wait { cycles } = op {
                now += cycles as u64;
                continue;
            }
            let cmd = to_command(op).expect("non-wait op");
            match dev.earliest_issue(&cmd, now) {
                Ok(at) => {
                    prop_assert!(at >= now);
                    let out = dev.try_issue(&cmd, at);
                    prop_assert!(out.is_ok(), "promised {at} rejected: {:?}", out.err());
                    now = at;
                    if matches!(cmd, Command::Activate { .. }) {
                        acts.push((at, cmd.rank()));
                    }
                    if let Some(data_at) = out.expect("checked ok").data_at {
                        prop_assert!(data_at > at, "data must follow issue");
                    }
                }
                Err(_) => {
                    // Structurally illegal now (e.g. READ on closed bank):
                    // issuing must also fail.
                    prop_assert!(dev.try_issue(&cmd, now).is_err());
                }
            }
        }
        // Four-activate window: no rank ever had 5 ACTs within tFAW.
        for rank in 0..2 {
            let times: Vec<u64> = acts.iter().filter(|&&(_, r)| r == rank).map(|&(t, _)| t).collect();
            for w in times.windows(5) {
                prop_assert!(
                    w[4] - w[0] >= t_faw,
                    "5 ACTs within tFAW on rank {rank}: {w:?}"
                );
            }
        }
    }

    /// A rank under refresh accepts no ACT before the refresh completes,
    /// and the lock lasts exactly tRFC.
    #[test]
    fn refresh_lock_is_exact(start in 0u64..100_000) {
        let mut dev = DramDevice::new(DramConfig::baseline(1));
        let out = dev.issue(&Command::Refresh { rank: 0 }, start);
        let t_rfc = dev.config().timing.t_rfc();
        prop_assert_eq!(out.completes_at, start + t_rfc);
        let act = Command::Activate { rank: 0, bank: 0, row: 1 };
        let earliest = dev.earliest_issue(&act, start + 1).expect("act legal later");
        prop_assert_eq!(earliest, start + t_rfc);
        prop_assert!(dev.is_rank_refreshing(0, start + t_rfc - 1));
        prop_assert!(!dev.is_rank_refreshing(0, start + t_rfc));
    }

    /// Command counts never decrease and match what was issued.
    #[test]
    fn counts_track_issues(rows in proptest::collection::vec(0usize..32, 1..30)) {
        let mut dev = DramDevice::new(DramConfig::baseline(1));
        let mut now = 0u64;
        let mut acts = 0u64;
        for (bank_seed, row) in rows.iter().enumerate() {
            let bank = bank_seed % 8;
            let act = Command::Activate { rank: 0, bank, row: *row };
            if let Ok(at) = dev.earliest_issue(&act, now) {
                if dev.try_issue(&act, at).is_ok() {
                    acts += 1;
                    now = at;
                    let pre = Command::Precharge { rank: 0, bank };
                    let at = dev.earliest_issue(&pre, now).expect("open bank");
                    dev.issue(&pre, at);
                    now = at;
                }
            }
        }
        prop_assert_eq!(dev.counts().activates, acts);
        prop_assert_eq!(dev.counts().precharges, acts);
    }
}
