//! Always-on refresh/traffic instrumentation reproducing the paper's §III
//! analysis: Figure 2 (non-blocking refresh fraction), Figure 3 (blocked
//! requests per blocking refresh), Figure 4 (dominant-event coverage) and
//! Table I (λ/β), each at observational-window lengths of 1×, 2× and 4×
//! the refresh cycle `tRFC`.
//!
//! The instrumentation is measurement-only: it never influences
//! scheduling and is attached to baseline and ROP systems alike.

use rop_core::engine::AccessWindow;
use rop_core::profiler::PatternProfiler;
use rop_stats::Histogram;

use crate::Cycle;

/// The three window multipliers the paper examines.
pub const WINDOW_MULTIPLIERS: [u64; 3] = [1, 2, 4];

/// Per-rank refresh analysis state.
#[derive(Debug, Clone)]
pub struct RefreshAnalysis {
    t_rfc: Cycle,
    /// Pre-refresh windows at 1×/2×/4× tRFC (count reads *and* writes —
    /// the `B` side of the paper's definition).
    before: [AccessWindow; 3],
    /// Post-refresh-start read counters per multiplier for the refresh in
    /// flight (the `A` side; only reads can be blocked).
    after: [u64; 3],
    /// `B` snapshots taken when the current refresh started.
    b_snapshot: [u64; 3],
    /// Start cycle of the refresh being tracked (`None` when no refresh
    /// has started yet).
    current_start: Option<Cycle>,
    /// One profiler per window multiplier.
    profilers: [PatternProfiler; 3],
    /// Blocked-read histograms per multiplier (bucket = #blocked reads).
    blocked: [Histogram; 3],
}

impl RefreshAnalysis {
    /// Creates analysis state for a rank with the given refresh duration.
    pub fn new(t_rfc: Cycle) -> Self {
        RefreshAnalysis {
            t_rfc,
            before: [
                AccessWindow::new(t_rfc),
                AccessWindow::new(2 * t_rfc),
                AccessWindow::new(4 * t_rfc),
            ],
            after: [0; 3],
            b_snapshot: [0; 3],
            current_start: None,
            profilers: [
                PatternProfiler::new(),
                PatternProfiler::new(),
                PatternProfiler::new(),
            ],
            blocked: [Histogram::new(64), Histogram::new(64), Histogram::new(64)],
        }
    }

    /// Records a demand-request arrival to this rank.
    pub fn note_arrival(&mut self, now: Cycle, is_read: bool) {
        for w in &mut self.before {
            w.record(now);
        }
        if is_read {
            if let Some(start) = self.current_start {
                for (i, &m) in WINDOW_MULTIPLIERS.iter().enumerate() {
                    if now >= start && now < start + m * self.t_rfc {
                        self.after[i] += 1;
                    }
                }
            }
        }
    }

    /// Records reads that were already queued (and not yet issued) when
    /// the refresh started: they are blocked for the whole `tRFC` window
    /// and count toward the `A` side at every window length. Call after
    /// [`Self::refresh_started`].
    pub fn note_blocked_at_refresh_start(&mut self, count: u64) {
        if self.current_start.is_some() {
            for a in &mut self.after {
                *a += count;
            }
        }
    }

    /// Records a refresh start: finalises the previous refresh's windows
    /// and snapshots the `B` counts for the new one.
    pub fn refresh_started(&mut self, now: Cycle) {
        self.finalize_current();
        for i in 0..3 {
            self.b_snapshot[i] = self.before[i].count(now);
            self.after[i] = 0;
        }
        self.current_start = Some(now);
    }

    /// Folds the in-flight refresh (if any) into the statistics. Call at
    /// the end of a run so the last refresh is counted.
    pub fn finalize_current(&mut self) {
        if self.current_start.take().is_some() {
            for i in 0..3 {
                self.profilers[i].record(self.b_snapshot[i], self.after[i]);
                self.blocked[i].record(self.after[i]);
            }
        }
    }

    /// Produces the report for one window multiplier (`0 → 1×`,
    /// `1 → 2×`, `2 → 4×`).
    pub fn report(&self, idx: usize) -> RefreshAnalysisReport {
        let outcome = self.profilers[idx].outcome();
        let h = &self.blocked[idx];
        let refreshes = h.count();
        let non_blocking = h.bucket(0);
        let blocking = refreshes - non_blocking;
        let blocked_reads = h.sum();
        RefreshAnalysisReport {
            window_multiplier: WINDOW_MULTIPLIERS[idx],
            refreshes,
            non_blocking_fraction: if refreshes == 0 {
                0.0
            } else {
                non_blocking as f64 / refreshes as f64
            },
            avg_blocked_per_blocking: if blocking == 0 {
                0.0
            } else {
                blocked_reads as f64 / blocking as f64
            },
            max_blocked: h.max(),
            lambda: outcome.lambda,
            beta: outcome.beta,
            dominant_fraction: outcome.dominant_fraction(),
        }
    }

    /// Reports for all three multipliers.
    pub fn reports(&self) -> [RefreshAnalysisReport; 3] {
        [self.report(0), self.report(1), self.report(2)]
    }
}

/// Summary of one rank's refresh behaviour at one window length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshAnalysisReport {
    /// Window length as a multiple of tRFC.
    pub window_multiplier: u64,
    /// Refreshes analysed.
    pub refreshes: u64,
    /// Fraction of refreshes that blocked no read (Figure 2).
    pub non_blocking_fraction: f64,
    /// Mean blocked reads per *blocking* refresh (Figure 3).
    pub avg_blocked_per_blocking: f64,
    /// Maximum reads blocked by any single refresh.
    pub max_blocked: u64,
    /// `P{A>0 | B>0}` (Table I).
    pub lambda: f64,
    /// `P{A=0 | B=0}` (Table I).
    pub beta: f64,
    /// Fraction of refreshes in categories E1/E2 (Figure 4).
    pub dominant_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    const T_RFC: Cycle = 280;

    #[test]
    fn quiet_rank_is_all_non_blocking() {
        let mut a = RefreshAnalysis::new(T_RFC);
        for k in 0..5u64 {
            a.refresh_started(10_000 + k * 6240);
        }
        a.finalize_current();
        let r = a.report(0);
        assert_eq!(r.refreshes, 5);
        assert_eq!(r.non_blocking_fraction, 1.0);
        assert_eq!(r.avg_blocked_per_blocking, 0.0);
        // B = 0 and A = 0 throughout: β = 1, coverage = 1.
        assert_eq!(r.beta, 1.0);
        assert_eq!(r.dominant_fraction, 1.0);
    }

    #[test]
    fn blocked_reads_counted_within_window() {
        let mut a = RefreshAnalysis::new(T_RFC);
        a.refresh_started(1000);
        a.note_arrival(1100, true); // inside 1x window
        a.note_arrival(1100 + T_RFC, true); // inside 2x, outside 1x
        a.note_arrival(1100 + 3 * T_RFC, true); // inside 4x only
        a.note_arrival(1000 + 10 * T_RFC, true); // outside all
        a.finalize_current();
        assert_eq!(a.report(0).max_blocked, 1);
        assert_eq!(a.report(1).max_blocked, 2);
        assert_eq!(a.report(2).max_blocked, 3);
    }

    #[test]
    fn writes_count_for_b_not_for_a() {
        let mut a = RefreshAnalysis::new(T_RFC);
        // Write just before the refresh: contributes to B.
        a.note_arrival(990, false);
        a.refresh_started(1000);
        // Write during the refresh: does NOT contribute to A.
        a.note_arrival(1100, false);
        a.finalize_current();
        let r = a.report(0);
        // B > 0, A = 0 → the BeforeOnly category → λ = 0.
        assert_eq!(r.lambda, 0.0);
        assert_eq!(r.non_blocking_fraction, 1.0);
    }

    #[test]
    fn lambda_beta_reflect_correlation() {
        let mut a = RefreshAnalysis::new(T_RFC);
        let mut now = 10_000u64;
        // 10 refreshes: activity both sides.
        for _ in 0..10 {
            a.note_arrival(now - 50, true);
            a.refresh_started(now);
            a.note_arrival(now + 50, true);
            now += 6240;
        }
        // 10 refreshes: quiet both sides.
        for _ in 0..10 {
            a.refresh_started(now);
            now += 6240;
        }
        a.finalize_current();
        let r = a.report(0);
        assert_eq!(r.refreshes, 20);
        assert_eq!(r.lambda, 1.0);
        assert_eq!(r.beta, 1.0);
        assert_eq!(r.dominant_fraction, 1.0);
        assert!((r.non_blocking_fraction - 0.5).abs() < 1e-12);
        assert!((r.avg_blocked_per_blocking - 1.0).abs() < 1e-12);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut a = RefreshAnalysis::new(T_RFC);
        a.refresh_started(100);
        a.finalize_current();
        a.finalize_current();
        assert_eq!(a.report(0).refreshes, 1);
    }
}
