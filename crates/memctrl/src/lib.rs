//! DDR4 memory controller with optional Refresh-Oriented Prefetching.
//!
//! This crate assembles the paper's Figure 5: a conventional controller
//! (transaction queues, FR-FCFS command scheduling, batched writes, an
//! auto-refresh Refresh Manager) plus the four ROP additions — Pattern
//! Profiler, Prefetcher, SRAM Buffer and Rank-aware Mapping — wired into
//! the refresh path:
//!
//! * when a rank's refresh falls due, requests queued for that rank are
//!   **drained** first (as in Mukundan et al.), and ROP's engine is asked
//!   for a prefetch decision;
//! * prefetch requests go to a dedicated queue and are issued before the
//!   refresh starts, opportunistically alongside drained demand requests
//!   (row hits first);
//! * while the rank is frozen (`tRFC`), read arrivals consult the SRAM
//!   buffer: hits complete in 3 cycles, misses wait for the refresh;
//! * when the refresh completes the buffer is flushed (ranks take turns
//!   using it) and the per-refresh hit statistics drive the engine's
//!   Training/Observing transitions.
//!
//! The controller also hosts the *measurement instrumentation* used by the
//! paper's §III analysis (Figures 2–4, Table I): an always-on
//! [`analysis::RefreshAnalysis`] per rank that classifies every refresh
//! by its before/after window activity at 1×/2×/4× window lengths.

#![forbid(unsafe_code)]

pub mod address;
pub mod analysis;
pub mod config;
pub mod controller;
pub mod mechanism;
pub mod refresh;
pub mod request;

pub use address::{AddressMapping, DecodedAddr, MappingScheme};
pub use analysis::{RefreshAnalysis, RefreshAnalysisReport};
pub use config::{MechanismKind, MemCtrlConfig};
pub use controller::{Completion, MemController, MemCtrlStats};
pub use mechanism::{Mechanism, RefreshMechanism, RefreshScope, RetentionBins, RoundShape};
pub use refresh::{RefreshManager, RefreshPolicy, RefreshState};
pub use request::MemRequest;

/// Memory-clock cycle (same unit as `rop-dram`).
pub type Cycle = u64;
