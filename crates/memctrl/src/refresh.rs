//! The Refresh Manager: per-rank auto-refresh scheduling with
//! drain-before-refresh and a bounded postpone budget.
//!
//! Every `tREFI` a rank owes one all-bank refresh. When one falls due the
//! manager enters **Draining** for that rank: the controller prioritises
//! the requests already queued for the rank (the *drain set*) plus any
//! ROP prefetch requests, and the refresh issues as soon as the drain set
//! has been issued and all banks are precharged. A hard deadline bounds
//! postponement (JEDEC DDR4 permits up to eight outstanding postponed
//! refreshes; the controller's default deadline is far inside that).
//! Scheduling is by *due time*, not issue time, so the long-run refresh
//! rate is exactly one per `tREFI` regardless of postponement.

use crate::Cycle;

/// When a due refresh actually gets issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshPolicy {
    /// Drain the rank's queued requests, then refresh (the paper's
    /// baseline behaviour, after Mukundan et al.).
    Standard,
    /// Elastic Refresh (Stuecheli et al., MICRO'10): postpone a due
    /// refresh while the rank has pending demand, accumulating a debt of
    /// at most `max_debt` outstanding refreshes (JEDEC allows 8); issue
    /// owed refreshes as soon as the rank goes idle, or immediately when
    /// the debt cap is hit.
    Elastic {
        /// Maximum outstanding postponed refreshes.
        max_debt: u32,
    },
}

/// Per-rank refresh lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshState {
    /// No refresh due.
    Idle,
    /// A refresh is due; queued requests for the rank are being drained.
    Draining {
        /// The cycle at which the refresh fell due.
        due: Cycle,
    },
    /// REF issued; rank frozen until `until`.
    Refreshing {
        /// Completion cycle.
        until: Cycle,
    },
}

/// Auto-refresh bookkeeping for one channel.
#[derive(Debug, Clone)]
pub struct RefreshManager {
    t_refi: Cycle,
    max_postpone: Cycle,
    /// Next due time per rank.
    next_due: Vec<Cycle>,
    /// Current state per rank.
    state: Vec<RefreshState>,
    /// Refreshes issued per rank.
    issued: Vec<u64>,
    /// True when refresh is disabled (ideal no-refresh memory).
    enabled: bool,
    /// Issue policy.
    policy: RefreshPolicy,
    /// Outstanding postponed refreshes per rank (Elastic policy).
    debt: Vec<u32>,
}

impl RefreshManager {
    /// Creates a manager for `ranks` ranks. Rank due times are staggered
    /// by `tREFI / ranks` as real controllers do, so refreshes of
    /// different ranks do not collide on the command bus.
    pub fn new(ranks: usize, t_refi: Cycle, max_postpone: Cycle, enabled: bool) -> Self {
        Self::with_policy(
            ranks,
            t_refi,
            max_postpone,
            enabled,
            RefreshPolicy::Standard,
        )
    }

    /// As [`Self::new`] with an explicit issue policy.
    pub fn with_policy(
        ranks: usize,
        t_refi: Cycle,
        max_postpone: Cycle,
        enabled: bool,
        policy: RefreshPolicy,
    ) -> Self {
        assert!(ranks > 0 && t_refi > 0);
        if let RefreshPolicy::Elastic { max_debt } = policy {
            assert!(max_debt >= 1, "elastic refresh needs a debt budget");
        }
        let stagger = t_refi / ranks as u64;
        RefreshManager {
            t_refi,
            max_postpone,
            next_due: (0..ranks).map(|r| t_refi + r as u64 * stagger).collect(),
            state: vec![RefreshState::Idle; ranks],
            issued: vec![0; ranks],
            enabled,
            policy,
            debt: vec![0; ranks],
        }
    }

    /// Outstanding postponed refreshes on `rank` (0 under Standard).
    pub fn debt(&self, rank: usize) -> u32 {
        self.debt[rank]
    }

    /// Number of ranks managed.
    pub fn ranks(&self) -> usize {
        self.state.len()
    }

    /// Current state of `rank`.
    pub fn state(&self, rank: usize) -> RefreshState {
        self.state[rank]
    }

    /// The next scheduled due time for `rank` (`Cycle::MAX` if disabled).
    pub fn next_due(&self, rank: usize) -> Cycle {
        if self.enabled {
            self.next_due[rank]
        } else {
            Cycle::MAX
        }
    }

    /// Total refreshes issued on `rank`.
    pub fn issued(&self, rank: usize) -> u64 {
        self.issued[rank]
    }

    /// Checks for ranks whose refresh falls due at `now`; transitions
    /// Idle → Draining and reports newly-due ranks (so the controller can
    /// snapshot drain sets and ask ROP for a decision).
    ///
    /// `busy(rank)` reports whether the rank currently has pending demand
    /// requests; the Elastic policy uses it to decide whether to postpone.
    pub fn poll_due(&mut self, now: Cycle, busy: impl Fn(usize) -> bool) -> Vec<usize> {
        let mut newly_due = Vec::new();
        self.poll_due_into(now, busy, &mut newly_due);
        newly_due
    }

    /// Allocation-free variant of [`Self::poll_due`]: appends newly-due
    /// ranks to `out` (which the caller clears and reuses across ticks).
    // rop-lint: hot
    pub fn poll_due_into(
        &mut self,
        now: Cycle,
        busy: impl Fn(usize) -> bool,
        out: &mut Vec<usize>,
    ) {
        if !self.enabled {
            return;
        }
        for rank in 0..self.state.len() {
            match self.policy {
                RefreshPolicy::Standard => {
                    if self.state[rank] == RefreshState::Idle && now >= self.next_due[rank] {
                        self.state[rank] = RefreshState::Draining {
                            due: self.next_due[rank],
                        };
                        out.push(rank);
                    }
                }
                RefreshPolicy::Elastic { max_debt } => {
                    // Accrue debt as due times pass (possibly several
                    // after a long fast-forward).
                    while now >= self.next_due[rank] {
                        self.next_due[rank] += self.t_refi;
                        self.debt[rank] += 1;
                    }
                    if self.state[rank] == RefreshState::Idle
                        && self.debt[rank] > 0
                        && (self.debt[rank] >= max_debt || !busy(rank))
                    {
                        self.state[rank] = RefreshState::Draining { due: now };
                        out.push(rank);
                    }
                }
            }
        }
    }

    /// Pulls `slot`'s next refresh forward: transitions Idle → Draining
    /// *now*, keeping the nominal due time, so [`Self::refresh_issued`]
    /// still advances the schedule in exact `tREFI` steps and the
    /// long-run refresh rate is unchanged. Used by the DARP mechanism to
    /// start refreshes early on idle banks (and during write drains).
    /// Returns `false` without transitioning unless the slot is Idle,
    /// refresh is enabled, and the policy is Standard (Elastic has its
    /// own postpone/catch-up machinery).
    pub fn pull_in(&mut self, slot: usize) -> bool {
        if !self.enabled || !matches!(self.policy, RefreshPolicy::Standard) {
            return false;
        }
        if self.state[slot] != RefreshState::Idle {
            return false;
        }
        self.state[slot] = RefreshState::Draining {
            due: self.next_due[slot],
        };
        true
    }

    /// True when the drain deadline for `rank` has passed and the refresh
    /// must be forced regardless of remaining drain-set requests.
    pub fn drain_deadline_passed(&self, rank: usize, now: Cycle) -> bool {
        self.draining_longer_than(rank, now, self.max_postpone)
    }

    /// True when `rank` has been in Draining for at least `budget`
    /// cycles (used for the ROP prefetch grace window).
    pub fn draining_longer_than(&self, rank: usize, now: Cycle, budget: Cycle) -> bool {
        match self.state[rank] {
            RefreshState::Draining { due } => now >= due + budget,
            _ => false,
        }
    }

    /// Records that REF was issued on `rank` at `now`, completing at
    /// `until`. Advances the schedule by exactly one `tREFI` from the due
    /// time (not from `now`), preserving the average refresh rate.
    pub fn refresh_issued(&mut self, rank: usize, _now: Cycle, until: Cycle) {
        let due = match self.state[rank] {
            RefreshState::Draining { due } => due,
            // Controller bug, not a config error: the scheduler only
            // issues REF from Draining.
            other => panic!("refresh issued on rank {rank} in state {other:?}"), // rop-lint: allow(no-panic)
        };
        self.state[rank] = RefreshState::Refreshing { until };
        match self.policy {
            RefreshPolicy::Standard => {
                self.next_due[rank] = due + self.t_refi;
            }
            RefreshPolicy::Elastic { .. } => {
                // Dues were accrued into debt when they passed.
                debug_assert!(self.debt[rank] > 0);
                self.debt[rank] = self.debt[rank].saturating_sub(1);
            }
        }
        self.issued[rank] += 1;
    }

    /// Checks for refresh completions at `now`; transitions Refreshing →
    /// Idle and returns the ranks that just thawed.
    pub fn poll_complete(&mut self, now: Cycle) -> Vec<usize> {
        let mut done = Vec::new();
        self.poll_complete_into(now, &mut done);
        done
    }

    /// Allocation-free variant of [`Self::poll_complete`]: appends the
    /// thawed ranks to `out`.
    // rop-lint: hot
    pub fn poll_complete_into(&mut self, now: Cycle, out: &mut Vec<usize>) {
        for rank in 0..self.state.len() {
            if let RefreshState::Refreshing { until } = self.state[rank] {
                if now >= until {
                    self.state[rank] = RefreshState::Idle;
                    out.push(rank);
                }
            }
        }
    }

    /// The earliest future cycle at which this manager needs attention
    /// (a due time or a completion), for fast-forwarding.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.enabled {
            return None;
        }
        let mut next: Option<Cycle> = None;
        let mut consider = |c: Cycle| {
            if c > now {
                next = Some(next.map_or(c, |n| n.min(c)));
            }
        };
        for rank in 0..self.state.len() {
            match self.state[rank] {
                RefreshState::Idle => {
                    if matches!(self.policy, RefreshPolicy::Elastic { .. }) && self.debt[rank] > 0 {
                        // Owed refreshes fire at the next idle poll.
                        consider(now + 1);
                    }
                    consider(self.next_due[rank]);
                }
                RefreshState::Draining { due } => consider(due + self.max_postpone),
                // `until.max(now + 1)`: a zero-length round (RAIDR skip)
                // completes at the next tick, which still needs a hint.
                RefreshState::Refreshing { until } => consider(until.max(now + 1)),
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T_REFI: Cycle = 6240;
    const T_RFC: Cycle = 280;

    #[test]
    fn staggered_due_times() {
        let m = RefreshManager::new(4, T_REFI, 2 * T_REFI, true);
        let dues: Vec<Cycle> = (0..4).map(|r| m.next_due(r)).collect();
        assert_eq!(dues[0], T_REFI);
        assert_eq!(dues[1], T_REFI + T_REFI / 4);
        assert!(dues.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn lifecycle_idle_draining_refreshing() {
        let mut m = RefreshManager::new(1, T_REFI, 2 * T_REFI, true);
        assert!(m.poll_due(100, |_| false).is_empty());
        let due = m.poll_due(T_REFI, |_| false);
        assert_eq!(due, vec![0]);
        assert!(matches!(m.state(0), RefreshState::Draining { .. }));
        m.refresh_issued(0, T_REFI + 50, T_REFI + 50 + T_RFC);
        assert!(matches!(m.state(0), RefreshState::Refreshing { .. }));
        assert!(m.poll_complete(T_REFI + 100).is_empty());
        let done = m.poll_complete(T_REFI + 50 + T_RFC);
        assert_eq!(done, vec![0]);
        assert_eq!(m.state(0), RefreshState::Idle);
        assert_eq!(m.issued(0), 1);
        // Next due advanced by exactly one tREFI from the *due* time.
        assert_eq!(m.next_due(0), 2 * T_REFI);
    }

    #[test]
    fn average_rate_preserved_under_postponement() {
        let mut m = RefreshManager::new(1, T_REFI, 2 * T_REFI, true);
        let mut issued_times = Vec::new();
        for _ in 0..10 {
            let now = m.next_due(0);
            m.poll_due(now, |_| false);
            // Postpone every refresh by 500 cycles.
            let issue_at = now + 500;
            m.refresh_issued(0, issue_at, issue_at + T_RFC);
            m.poll_complete(issue_at + T_RFC);
            issued_times.push(issue_at);
        }
        // Due times march in exact tREFI steps despite postponement.
        assert_eq!(m.next_due(0), 11 * T_REFI);
        assert_eq!(m.issued(0), 10);
    }

    #[test]
    fn deadline_forces_refresh() {
        let mut m = RefreshManager::new(1, T_REFI, 1000, true);
        m.poll_due(T_REFI, |_| false);
        assert!(!m.drain_deadline_passed(0, T_REFI + 999));
        assert!(m.drain_deadline_passed(0, T_REFI + 1000));
    }

    #[test]
    fn disabled_manager_never_fires() {
        let mut m = RefreshManager::new(2, T_REFI, 1000, false);
        assert!(m.poll_due(100 * T_REFI, |_| false).is_empty());
        assert_eq!(m.next_due(0), Cycle::MAX);
        assert!(m.next_event(0).is_none());
    }

    #[test]
    fn next_event_tracks_state() {
        let mut m = RefreshManager::new(1, T_REFI, 1000, true);
        assert_eq!(m.next_event(0), Some(T_REFI));
        m.poll_due(T_REFI, |_| false);
        assert_eq!(m.next_event(T_REFI), Some(T_REFI + 1000));
        m.refresh_issued(0, T_REFI + 10, T_REFI + 10 + T_RFC);
        assert_eq!(m.next_event(T_REFI + 10), Some(T_REFI + 10 + T_RFC));
    }

    #[test]
    fn elastic_postpones_while_busy() {
        let mut m = RefreshManager::with_policy(
            1,
            T_REFI,
            2 * T_REFI,
            true,
            RefreshPolicy::Elastic { max_debt: 8 },
        );
        // Busy rank: due passes, debt accrues, no drain starts.
        assert!(m.poll_due(T_REFI, |_| true).is_empty());
        assert_eq!(m.debt(0), 1);
        assert!(m.poll_due(2 * T_REFI + 1, |_| true).is_empty());
        assert_eq!(m.debt(0), 2);
        // Rank goes idle: a drain starts immediately and issuing a
        // refresh pays one unit of debt.
        let due = m.poll_due(2 * T_REFI + 10, |_| false);
        assert_eq!(due, vec![0]);
        m.refresh_issued(0, 2 * T_REFI + 10, 2 * T_REFI + 10 + T_RFC);
        assert_eq!(m.debt(0), 1);
        m.poll_complete(2 * T_REFI + 10 + T_RFC);
        // Still owing one: next idle poll fires again (catch-up).
        let due = m.poll_due(2 * T_REFI + 10 + T_RFC, |_| false);
        assert_eq!(due, vec![0]);
    }

    #[test]
    fn elastic_forces_at_debt_cap() {
        let mut m = RefreshManager::with_policy(
            1,
            T_REFI,
            2 * T_REFI,
            true,
            RefreshPolicy::Elastic { max_debt: 3 },
        );
        // Permanently busy: the third owed refresh forces a drain.
        assert!(m.poll_due(T_REFI, |_| true).is_empty());
        assert!(m.poll_due(2 * T_REFI, |_| true).is_empty());
        let due = m.poll_due(3 * T_REFI, |_| true);
        assert_eq!(due, vec![0]);
        assert_eq!(m.debt(0), 3);
    }

    #[test]
    fn elastic_long_run_rate_is_preserved() {
        let mut m = RefreshManager::with_policy(
            1,
            T_REFI,
            2 * T_REFI,
            true,
            RefreshPolicy::Elastic { max_debt: 8 },
        );
        // Alternate busy/idle stretches for 40 tREFI; every owed refresh
        // must eventually be issued.
        let mut now;
        for epoch in 0..40u64 {
            now = (epoch + 1) * T_REFI + 17;
            let busy = epoch % 3 != 0;
            for rank in m.poll_due(now, |_| busy) {
                m.refresh_issued(rank, now, now + T_RFC);
                now += T_RFC;
                m.poll_complete(now);
                // Catch up any remaining debt while idle.
                while !busy && m.debt(0) > 0 {
                    if m.poll_due(now, |_| false).is_empty() {
                        break;
                    }
                    m.refresh_issued(0, now, now + T_RFC);
                    now += T_RFC;
                    m.poll_complete(now);
                }
            }
        }
        assert!(
            m.issued(0) + m.debt(0) as u64 >= 39,
            "issued {} debt {}",
            m.issued(0),
            m.debt(0)
        );
        assert!(m.debt(0) <= 8);
    }

    #[test]
    fn pull_in_keeps_the_nominal_schedule() {
        let mut m = RefreshManager::new(1, T_REFI, 2 * T_REFI, true);
        // Pull the first refresh 1000 cycles early.
        assert!(m.pull_in(0));
        assert!(matches!(m.state(0), RefreshState::Draining { .. }));
        // Idempotent while draining.
        assert!(!m.pull_in(0));
        let issue_at = T_REFI - 1000;
        m.refresh_issued(0, issue_at, issue_at + T_RFC);
        m.poll_complete(issue_at + T_RFC);
        // The schedule advanced from the *due* time, not the early issue.
        assert_eq!(m.next_due(0), 2 * T_REFI);
        assert_eq!(m.issued(0), 1);
    }

    #[test]
    fn pull_in_refuses_elastic_and_disabled() {
        let mut m = RefreshManager::with_policy(
            1,
            T_REFI,
            2 * T_REFI,
            true,
            RefreshPolicy::Elastic { max_debt: 2 },
        );
        assert!(!m.pull_in(0));
        let mut m = RefreshManager::new(1, T_REFI, 2 * T_REFI, false);
        assert!(!m.pull_in(0));
    }

    #[test]
    #[should_panic]
    fn issue_without_draining_panics() {
        let mut m = RefreshManager::new(1, T_REFI, 1000, true);
        m.refresh_issued(0, 10, 290);
    }
}
