//! The refresh-mechanism seam: pluggable policies that drive the
//! [`RefreshManager`]'s slot lifecycle and decide what each due slot's
//! refresh *round* looks like on the command bus.
//!
//! The controller owns one [`RefreshManager`] (the slot state machine:
//! due times, Draining/Refreshing transitions, postpone deadlines) and
//! one [`Mechanism`] layered on top of it. The mechanism intercepts
//! exactly four points of the refresh path:
//!
//! 1. **`poll_due`** — which slots enter Draining this tick. `AllBank`
//!    delegates verbatim (bit-exact with the pre-seam controller); DARP
//!    additionally *pulls in* upcoming per-bank refreshes whose banks
//!    are idle.
//! 2. **`round_shape`** — what the controller must issue for a due
//!    slot: a standard REF/REFpb, a SARP subarray-scoped refresh, a
//!    RAIDR pro-rata-shortened REF, or nothing at all (a skipped round).
//! 3. **`on_refresh_issued` / `on_refresh_skipped`** — round
//!    accounting (RAIDR bin rotation, DARP pull-in counts) on top of the
//!    manager's schedule advance.
//! 4. **`on_bank_activity`** — demand arrivals, so DARP can require a
//!    quiet window before refreshing a bank out of order.
//!
//! Dispatch is enum-based ([`Mechanism`]), not boxed: the hooks sit on
//! the controller's per-tick path and must stay allocation-free and
//! branch-predictable.

use crate::config::{MechanismKind, MemCtrlConfig};
use crate::refresh::{RefreshManager, RefreshState};
use crate::Cycle;

/// Granularity at which a mechanism schedules refresh slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshScope {
    /// One slot per rank (all-bank REF).
    PerRank,
    /// One slot per (rank, bank) pair (REFpb).
    PerBank,
}

/// What the controller must put on the command bus for a due slot's
/// current refresh round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundShape {
    /// A standard REF (all-bank) or REFpb (per-bank) — whatever
    /// [`MemCtrlConfig::per_bank_refresh`] selects. The pre-seam path.
    Standard,
    /// A SARP refresh locking only `subarray` of the slot's bank for
    /// `tRFCsa`; the bank's other subarrays stay accessible.
    Subarray {
        /// The subarray this round recharges.
        subarray: usize,
    },
    /// A RAIDR round: an all-bank REF shortened pro rata to the rows
    /// whose retention bin falls due this round.
    Scaled {
        /// Lock duration in cycles (1..=tRFC).
        duration: Cycle,
        /// Monotonic round index for the retention audit.
        round: u64,
        /// The 128 ms-class bin is recharged this round.
        covers_128: bool,
        /// The 256 ms-class bin (all remaining rows) is recharged.
        covers_256: bool,
    },
    /// A RAIDR round in which no retention bin falls due: the refresh
    /// is skipped outright (the slot still cycles to keep the schedule).
    Skip {
        /// Monotonic round index for the retention audit.
        round: u64,
    },
}

/// The hooks a refresh mechanism implements over the shared
/// [`RefreshManager`]. All methods take the manager explicitly so the
/// controller can keep mechanism and manager as separate fields (the
/// borrow-splitting its tick loop needs).
pub trait RefreshMechanism {
    /// Slot granularity this mechanism runs at.
    fn scope(&self) -> RefreshScope;

    /// Advances due-time bookkeeping at `now` and appends newly-Draining
    /// slots to `out`. `busy(slot)` reports queued demand for the slot's
    /// scope; `write_drain` is the controller's write-drain mode flag
    /// (DARP widens its pull-in window during drains).
    fn poll_due(
        &mut self,
        base: &mut RefreshManager,
        now: Cycle,
        busy: &dyn Fn(usize) -> bool,
        write_drain: bool,
        out: &mut Vec<usize>,
    );

    /// The shape of `slot`'s current round. Pure: stable across ticks
    /// until [`Self::on_refresh_issued`]/[`Self::on_refresh_skipped`]
    /// advances the round.
    fn round_shape(&self, base: &RefreshManager, slot: usize) -> RoundShape;

    /// A refresh command for `slot` issued at `now`, completing at
    /// `until`. Must advance the manager's schedule exactly as the
    /// pre-seam controller did.
    fn on_refresh_issued(
        &mut self,
        base: &mut RefreshManager,
        slot: usize,
        now: Cycle,
        until: Cycle,
    );

    /// `slot`'s round was skipped at `now` (RAIDR only): the schedule
    /// advances as if a zero-length refresh issued.
    fn on_refresh_skipped(&mut self, base: &mut RefreshManager, slot: usize, now: Cycle) {
        // Only RAIDR produces Skip shapes; reaching here otherwise is a
        // controller bug.
        let _ = (base, slot, now);
        unreachable!("mechanism produced no Skip shape"); // rop-lint: allow(no-panic)
    }

    /// A demand request arrived for `slot` at `now`.
    fn on_bank_activity(&mut self, slot: usize, now: Cycle) {
        let _ = (slot, now);
    }

    /// Earliest future cycle the refresh path needs attention, for the
    /// controller's fast-forward hint.
    fn next_event(&self, base: &RefreshManager, now: Cycle) -> Option<Cycle> {
        base.next_event(now)
    }

    /// Rounds skipped because no retention bin fell due (RAIDR).
    fn refreshes_skipped(&self) -> u64 {
        0
    }

    /// Refreshes pulled in ahead of schedule (DARP).
    fn refreshes_pulled_in(&self) -> u64 {
        0
    }

    /// One word of *behaviour-relevant* mechanism state for `slot` at
    /// `now` — the `MechState` snapshot hook the model checker hashes
    /// into its visited-state fingerprints. The contract: two
    /// mechanism instances whose every slot word (and manager state)
    /// agree must behave identically from here on, and the word must
    /// range over a *finite* set when time deltas are bounded —
    /// monotonic counters go in only after reduction (modulo a period,
    /// or saturated at the horizon beyond which they stop mattering).
    fn mech_state(&self, base: &RefreshManager, now: Cycle, slot: usize) -> u64 {
        let _ = (base, now, slot);
        0
    }
}

/// The pre-seam behaviour: slots drain when due and issue standard
/// REF/REFpb commands, in slot order. Every hook is a verbatim
/// delegation to the [`RefreshManager`], which is what makes the
/// differential oracle's bit-exactness claim meaningful.
#[derive(Debug, Clone)]
pub struct AllBank {
    scope: RefreshScope,
}

impl AllBank {
    /// All-bank (or plain REFpb) auto-refresh at the given scope.
    pub fn new(scope: RefreshScope) -> Self {
        AllBank { scope }
    }
}

impl RefreshMechanism for AllBank {
    fn scope(&self) -> RefreshScope {
        self.scope
    }

    // rop-lint: hot
    fn poll_due(
        &mut self,
        base: &mut RefreshManager,
        now: Cycle,
        busy: &dyn Fn(usize) -> bool,
        _write_drain: bool,
        out: &mut Vec<usize>,
    ) {
        base.poll_due_into(now, busy, out);
    }

    fn round_shape(&self, _base: &RefreshManager, _slot: usize) -> RoundShape {
        RoundShape::Standard
    }

    fn on_refresh_issued(
        &mut self,
        base: &mut RefreshManager,
        slot: usize,
        now: Cycle,
        until: Cycle,
    ) {
        base.refresh_issued(slot, now, until);
    }
}

/// DARP: out-of-order per-bank refresh (Chang et al., HPCA'14). An
/// upcoming REFpb is pulled into the present when its bank has been
/// demand-quiet for a window and no sibling slot of the rank is mid
/// refresh; the pull-in lookahead widens during write drains, so
/// refreshes hide behind write bursts instead of colliding with reads.
#[derive(Debug, Clone)]
pub struct Darp {
    banks_per_rank: usize,
    /// Pull-in lookahead: a slot due within this many cycles is a
    /// candidate.
    lookahead: Cycle,
    /// Widened lookahead while the controller is draining writes.
    drain_lookahead: Cycle,
    /// A bank must have seen no demand arrival for this long.
    idle_window: Cycle,
    /// Last demand arrival per slot.
    last_activity: Vec<Cycle>,
    pulled_in: u64,
}

impl Darp {
    /// DARP over `slots` per-bank slots (`banks_per_rank` per rank).
    pub fn new(slots: usize, banks_per_rank: usize, t_refi: Cycle) -> Self {
        Darp {
            banks_per_rank,
            // One bank's share of the tREFI: roughly one pull-in
            // candidate at a time per rank.
            lookahead: t_refi / banks_per_rank.max(1) as u64,
            drain_lookahead: t_refi / 2,
            idle_window: 64,
            last_activity: vec![0; slots],
            pulled_in: 0,
        }
    }
}

impl RefreshMechanism for Darp {
    fn scope(&self) -> RefreshScope {
        RefreshScope::PerBank
    }

    // rop-lint: hot
    fn poll_due(
        &mut self,
        base: &mut RefreshManager,
        now: Cycle,
        busy: &dyn Fn(usize) -> bool,
        write_drain: bool,
        out: &mut Vec<usize>,
    ) {
        let look = if write_drain {
            self.drain_lookahead
        } else {
            self.lookahead
        };
        for slot in 0..base.ranks() {
            if base.state(slot) != RefreshState::Idle {
                continue;
            }
            let due = base.next_due(slot);
            if due == Cycle::MAX || due <= now || due - now > look {
                continue;
            }
            if busy(slot) || now < self.last_activity[slot] + self.idle_window {
                continue;
            }
            // One refresh in flight per rank: out-of-order, not en masse.
            let first = (slot / self.banks_per_rank) * self.banks_per_rank;
            if (first..first + self.banks_per_rank).any(|s| base.state(s) != RefreshState::Idle) {
                continue;
            }
            if base.pull_in(slot) {
                self.pulled_in += 1;
                out.push(slot);
            }
        }
        base.poll_due_into(now, busy, out);
    }

    fn round_shape(&self, _base: &RefreshManager, _slot: usize) -> RoundShape {
        RoundShape::Standard
    }

    fn on_refresh_issued(
        &mut self,
        base: &mut RefreshManager,
        slot: usize,
        now: Cycle,
        until: Cycle,
    ) {
        base.refresh_issued(slot, now, until);
    }

    // rop-lint: hot
    fn on_bank_activity(&mut self, slot: usize, now: Cycle) {
        self.last_activity[slot] = now;
    }

    fn next_event(&self, base: &RefreshManager, now: Cycle) -> Option<Cycle> {
        let mut next = base.next_event(now);
        let mut consider = |c: Cycle| {
            if c > now {
                next = Some(next.map_or(c, |n| n.min(c)));
            }
        };
        for slot in 0..base.ranks() {
            if base.state(slot) == RefreshState::Idle {
                let due = base.next_due(slot);
                if due == Cycle::MAX {
                    continue;
                }
                // A pull-in becomes possible once the due enters the
                // lookahead window *and* the bank has sat idle long
                // enough. Hints must never be late (the event engine
                // would fast-forward past a cycle where the reference
                // loop acts), so consider both lookaheads — waking at
                // the wider write-drain one is at worst a no-op tick.
                let idle_ok = self.last_activity[slot] + self.idle_window;
                for look in [self.lookahead, self.drain_lookahead] {
                    let t = due.saturating_sub(look).max(idle_ok);
                    if t < due {
                        consider(t);
                    }
                }
            }
        }
        next
    }

    fn refreshes_pulled_in(&self) -> u64 {
        self.pulled_in
    }

    fn mech_state(&self, _base: &RefreshManager, now: Cycle, slot: usize) -> u64 {
        // Only the *age* of the last demand arrival matters, and only
        // up to the idle window: any older and the pull-in gate is
        // equally open. Saturating keeps the word finite as time runs.
        now.saturating_sub(self.last_activity[slot])
            .min(self.idle_window)
    }
}

/// SARP: subarray-level refresh parallelism (Chang et al., HPCA'14).
/// Each per-bank refresh round locks a single subarray (for `tRFCsa`),
/// rotating round-robin across the bank's subarrays; reads and writes
/// to the bank's *other* subarrays keep flowing through the refresh.
#[derive(Debug, Clone)]
pub struct Sarp {
    subarrays: usize,
}

impl Sarp {
    /// SARP rotating over `subarrays` subarrays per bank.
    pub fn new(subarrays: usize) -> Self {
        assert!(subarrays >= 2, "SARP needs subarray parallelism");
        Sarp { subarrays }
    }
}

impl RefreshMechanism for Sarp {
    fn scope(&self) -> RefreshScope {
        RefreshScope::PerBank
    }

    // rop-lint: hot
    fn poll_due(
        &mut self,
        base: &mut RefreshManager,
        now: Cycle,
        busy: &dyn Fn(usize) -> bool,
        _write_drain: bool,
        out: &mut Vec<usize>,
    ) {
        base.poll_due_into(now, busy, out);
    }

    fn round_shape(&self, base: &RefreshManager, slot: usize) -> RoundShape {
        RoundShape::Subarray {
            subarray: (base.issued(slot) % self.subarrays as u64) as usize,
        }
    }

    fn on_refresh_issued(
        &mut self,
        base: &mut RefreshManager,
        slot: usize,
        now: Cycle,
        until: Cycle,
    ) {
        base.refresh_issued(slot, now, until);
    }

    fn mech_state(&self, base: &RefreshManager, _now: Cycle, slot: usize) -> u64 {
        // The rotation position is all that distinguishes two SARP
        // states with equal manager state.
        base.issued(slot) % self.subarrays as u64
    }
}

/// RAIDR: retention-aware refresh binning (Liu et al., ISCA'12). Rows
/// are binned into 64/128/256 ms retention classes by seeded Bloom
/// filters; each tREFI round refreshes only the rows whose bin falls
/// due — a full REF when the slowest bin is due, a pro-rata-shortened
/// REF for the small fast bins, and nothing at all on rounds where no
/// bin is due. Bloom false positives show up as extra refreshed rows,
/// exactly as in the paper's hardware.
#[derive(Debug, Clone)]
pub struct Raidr {
    bins: Vec<RetentionBins>,
    round: Vec<u64>,
    /// Rounds between recharges of the fastest bin.
    stride: u64,
    t_rfc: Cycle,
    skipped: u64,
}

impl Raidr {
    /// RAIDR over `ranks` rank slots: per-rank weak-row draws seeded
    /// from `seed`, the fastest bin recharged every `bin_period` cycles
    /// (a multiple of `t_refi`), rounds scaled against `t_rfc` over
    /// `rows` row addresses per rank.
    pub fn new(
        ranks: usize,
        seed: u64,
        bin_period: Cycle,
        t_refi: Cycle,
        t_rfc: Cycle,
        rows: usize,
    ) -> Self {
        assert!(t_refi > 0 && bin_period > 0 && bin_period.is_multiple_of(t_refi));
        Raidr {
            bins: (0..ranks)
                .map(|r| RetentionBins::seeded(seed.wrapping_add(r as u64), rows))
                .collect(),
            round: vec![0; ranks],
            stride: bin_period / t_refi,
            t_rfc,
            skipped: 0,
        }
    }

    /// The per-rank retention bins (for the audit and tests).
    pub fn bins(&self, rank: usize) -> &RetentionBins {
        &self.bins[rank]
    }
}

impl RefreshMechanism for Raidr {
    fn scope(&self) -> RefreshScope {
        RefreshScope::PerRank
    }

    // rop-lint: hot
    fn poll_due(
        &mut self,
        base: &mut RefreshManager,
        now: Cycle,
        busy: &dyn Fn(usize) -> bool,
        _write_drain: bool,
        out: &mut Vec<usize>,
    ) {
        base.poll_due_into(now, busy, out);
    }

    fn round_shape(&self, _base: &RefreshManager, slot: usize) -> RoundShape {
        let r = self.round[slot];
        let covers_256 = r.is_multiple_of(4 * self.stride);
        let covers_128 = r.is_multiple_of(2 * self.stride);
        let covers_64 = r.is_multiple_of(self.stride);
        let frac = if covers_256 {
            1.0
        } else if covers_128 {
            self.bins[slot].frac_le_128()
        } else if covers_64 {
            self.bins[slot].frac_64()
        } else {
            return RoundShape::Skip { round: r };
        };
        let duration = ((self.t_rfc as f64 * frac).ceil() as Cycle).clamp(1, self.t_rfc);
        RoundShape::Scaled {
            duration,
            round: r,
            covers_128,
            covers_256,
        }
    }

    fn on_refresh_issued(
        &mut self,
        base: &mut RefreshManager,
        slot: usize,
        now: Cycle,
        until: Cycle,
    ) {
        base.refresh_issued(slot, now, until);
        self.round[slot] += 1;
    }

    fn on_refresh_skipped(&mut self, base: &mut RefreshManager, slot: usize, now: Cycle) {
        // A zero-length "refresh": the slot cycles (Draining →
        // Refreshing{until: now} → Idle next tick) and the schedule
        // advances by exactly one tREFI, but nothing touches the bus.
        base.refresh_issued(slot, now, now);
        self.round[slot] += 1;
        self.skipped += 1;
    }

    fn refreshes_skipped(&self) -> u64 {
        self.skipped
    }

    fn mech_state(&self, _base: &RefreshManager, _now: Cycle, slot: usize) -> u64 {
        // Round shape is periodic in 4×stride (the 256 ms-bin cadence);
        // reducing the monotonic round counter modulo that period keeps
        // the reachable fingerprint set finite.
        self.round[slot] % (4 * self.stride)
    }
}

/// One rank's retention-time bins: two seeded Bloom filters (64 ms and
/// 128 ms classes; everything else retains ≥ 256 ms). The filters are
/// populated with a seeded weak-row draw and then *measured* — the
/// stored fractions include Bloom false positives, so the refresh work
/// RAIDR does is the work the filters mandate, not the ground truth.
#[derive(Debug, Clone)]
pub struct RetentionBins {
    bits_64: Box<[u64; BLOOM_WORDS]>,
    bits_128: Box<[u64; BLOOM_WORDS]>,
    seed: u64,
    frac_64: f64,
    frac_le_128: f64,
    weak_64: usize,
    weak_128: usize,
}

const BLOOM_WORDS: usize = 64; // 4096 bits per filter
const BLOOM_HASHES: u64 = 3;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetentionBins {
    /// Draws weak rows for one rank from `seed` and bins them: a
    /// handful of 64 ms rows (possibly none — retention outliers are
    /// rare and DIMM-dependent) and a larger 128 ms population, over a
    /// universe of `rows` row addresses.
    pub fn seeded(seed: u64, rows: usize) -> Self {
        assert!(rows > 0);
        let mut bits_64 = Box::new([0u64; BLOOM_WORDS]);
        let mut bits_128 = Box::new([0u64; BLOOM_WORDS]);
        let mut state = splitmix64(seed ^ 0x5245_5441_494e); // "RETAIN"
        let mut next = || {
            state = splitmix64(state);
            state
        };
        // Weak-row populations, scaled to the universe: the 64 ms bin
        // is a rare-outlier draw (0..=24 rows), the 128 ms bin a
        // steadier ~0.5% of rows.
        let n_64 = (next() % 25) as usize;
        let n_128 = rows / 256 + (next() % 64) as usize;
        for _ in 0..n_64 {
            let row = (next() % rows as u64) as usize;
            bloom_insert(&mut bits_64, seed, row);
        }
        for _ in 0..n_128 {
            let row = (next() % rows as u64) as usize;
            bloom_insert(&mut bits_128, seed, row);
        }
        // Measure what the filters mandate (false positives included).
        let mut c_64 = 0usize;
        let mut c_128 = 0usize;
        for row in 0..rows {
            if bloom_query(&bits_64, seed, row) {
                c_64 += 1;
            } else if bloom_query(&bits_128, seed, row) {
                c_128 += 1;
            }
        }
        RetentionBins {
            bits_64,
            bits_128,
            seed,
            frac_64: c_64 as f64 / rows as f64,
            frac_le_128: (c_64 + c_128) as f64 / rows as f64,
            weak_64: n_64,
            weak_128: n_128,
        }
    }

    /// Fraction of rows the filters place in the 64 ms bin.
    pub fn frac_64(&self) -> f64 {
        self.frac_64
    }

    /// Fraction of rows in the 64 ms *or* 128 ms bin.
    pub fn frac_le_128(&self) -> f64 {
        self.frac_le_128
    }

    /// Rows actually drawn into the 64 ms bin (pre-false-positive).
    pub fn weak_64(&self) -> usize {
        self.weak_64
    }

    /// Rows actually drawn into the 128 ms bin (pre-false-positive).
    pub fn weak_128(&self) -> usize {
        self.weak_128
    }

    /// True when the filters place `row` in the 64 ms bin.
    pub fn in_bin_64(&self, row: usize) -> bool {
        bloom_query(&self.bits_64, self.seed, row)
    }

    /// True when the filters place `row` in the 128 ms bin (and not in
    /// the 64 ms bin, which takes precedence).
    pub fn in_bin_128(&self, row: usize) -> bool {
        !self.in_bin_64(row) && bloom_query(&self.bits_128, self.seed, row)
    }
}

fn bloom_slots(seed: u64, row: usize) -> impl Iterator<Item = (usize, u64)> {
    (0..BLOOM_HASHES).map(move |k| {
        let h = splitmix64(seed ^ (row as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (k << 56));
        let bit = (h % (BLOOM_WORDS as u64 * 64)) as usize;
        (bit / 64, 1u64 << (bit % 64))
    })
}

fn bloom_insert(bits: &mut [u64; BLOOM_WORDS], seed: u64, row: usize) {
    for (word, mask) in bloom_slots(seed, row) {
        bits[word] |= mask;
    }
}

fn bloom_query(bits: &[u64; BLOOM_WORDS], seed: u64, row: usize) -> bool {
    bloom_slots(seed, row).all(|(word, mask)| bits[word] & mask != 0)
}

/// Enum-dispatched mechanism: one variant per rival, no boxing on the
/// controller's per-tick path.
#[derive(Debug, Clone)]
pub enum Mechanism {
    /// Pre-seam auto-refresh (the paper's baseline and ROP systems).
    AllBank(AllBank),
    /// Out-of-order per-bank refresh.
    Darp(Darp),
    /// Subarray-scoped refresh.
    Sarp(Sarp),
    /// Retention-aware binned refresh.
    Raidr(Raidr),
}

impl Mechanism {
    /// Builds the mechanism selected by `cfg.mechanism`.
    ///
    /// # Panics
    /// Panics on a configuration `cfg.validate()` would reject.
    pub fn from_config(cfg: &MemCtrlConfig) -> Self {
        let g = &cfg.dram.geometry;
        match cfg.mechanism {
            MechanismKind::AllBank => Mechanism::AllBank(AllBank::new(if cfg.per_bank_refresh {
                RefreshScope::PerBank
            } else {
                RefreshScope::PerRank
            })),
            MechanismKind::Darp => Mechanism::Darp(Darp::new(
                g.ranks * g.banks_per_rank,
                g.banks_per_rank,
                cfg.dram.timing.t_refi(),
            )),
            MechanismKind::Sarp => Mechanism::Sarp(Sarp::new(g.subarrays_per_bank)),
            MechanismKind::Raidr { seed, bin_period } => Mechanism::Raidr(Raidr::new(
                g.ranks,
                seed,
                bin_period,
                cfg.dram.timing.t_refi(),
                cfg.dram.timing.t_rfc(),
                g.rows_per_bank,
            )),
        }
    }

    /// Short label for metrics and sweep exports.
    pub fn label(&self) -> &'static str {
        match self {
            Mechanism::AllBank(_) => "allbank",
            Mechanism::Darp(_) => "darp",
            Mechanism::Sarp(_) => "sarp",
            Mechanism::Raidr(_) => "raidr",
        }
    }

    /// The RAIDR state, when this mechanism is RAIDR.
    pub fn as_raidr(&self) -> Option<&Raidr> {
        match self {
            Mechanism::Raidr(r) => Some(r),
            _ => None,
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $m:pat => $body:expr) => {
        match $self {
            Mechanism::AllBank($m) => $body,
            Mechanism::Darp($m) => $body,
            Mechanism::Sarp($m) => $body,
            Mechanism::Raidr($m) => $body,
        }
    };
}

impl RefreshMechanism for Mechanism {
    fn scope(&self) -> RefreshScope {
        dispatch!(self, m => m.scope())
    }

    // rop-lint: hot
    fn poll_due(
        &mut self,
        base: &mut RefreshManager,
        now: Cycle,
        busy: &dyn Fn(usize) -> bool,
        write_drain: bool,
        out: &mut Vec<usize>,
    ) {
        dispatch!(self, m => m.poll_due(base, now, busy, write_drain, out))
    }

    // rop-lint: hot
    fn round_shape(&self, base: &RefreshManager, slot: usize) -> RoundShape {
        dispatch!(self, m => m.round_shape(base, slot))
    }

    fn on_refresh_issued(
        &mut self,
        base: &mut RefreshManager,
        slot: usize,
        now: Cycle,
        until: Cycle,
    ) {
        dispatch!(self, m => m.on_refresh_issued(base, slot, now, until))
    }

    fn on_refresh_skipped(&mut self, base: &mut RefreshManager, slot: usize, now: Cycle) {
        dispatch!(self, m => m.on_refresh_skipped(base, slot, now))
    }

    // rop-lint: hot
    fn on_bank_activity(&mut self, slot: usize, now: Cycle) {
        dispatch!(self, m => m.on_bank_activity(slot, now))
    }

    fn next_event(&self, base: &RefreshManager, now: Cycle) -> Option<Cycle> {
        dispatch!(self, m => m.next_event(base, now))
    }

    fn refreshes_skipped(&self) -> u64 {
        dispatch!(self, m => m.refreshes_skipped())
    }

    fn refreshes_pulled_in(&self) -> u64 {
        dispatch!(self, m => m.refreshes_pulled_in())
    }

    fn mech_state(&self, base: &RefreshManager, now: Cycle, slot: usize) -> u64 {
        dispatch!(self, m => m.mech_state(base, now, slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refresh::RefreshPolicy;

    const T_REFI: Cycle = 6240;
    const T_RFC: Cycle = 280;

    fn manager(slots: usize) -> RefreshManager {
        RefreshManager::with_policy(slots, T_REFI, 2 * T_REFI, true, RefreshPolicy::Standard)
    }

    #[test]
    fn allbank_delegates_verbatim() {
        let mut a = manager(2);
        let mut b = manager(2);
        let mut mech = AllBank::new(RefreshScope::PerRank);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for now in (0..40_000).step_by(37) {
            out_a.clear();
            out_b.clear();
            a.poll_due_into(now, |_| false, &mut out_a);
            mech.poll_due(&mut b, now, &|_| false, false, &mut out_b);
            assert_eq!(out_a, out_b);
            for &s in &out_a {
                a.refresh_issued(s, now, now + T_RFC);
                mech.on_refresh_issued(&mut b, s, now, now + T_RFC);
            }
            let mut d = Vec::new();
            a.poll_complete_into(now, &mut d);
            d.clear();
            b.poll_complete_into(now, &mut d);
            assert_eq!(a.next_event(now), mech.next_event(&b, now));
        }
        assert_eq!(a.issued(0), b.issued(0));
        assert_eq!(a.issued(1), b.issued(1));
    }

    #[test]
    fn darp_pulls_idle_banks_in_early() {
        let banks = 4;
        let mut base = manager(banks);
        let mut darp = Darp::new(banks, banks, T_REFI);
        // Slot 0 is due at tREFI; within the lookahead window, idle, and
        // nothing else in flight, it gets pulled in early.
        let look = T_REFI / banks as u64;
        let now = T_REFI - look + 1;
        let mut out = Vec::new();
        darp.poll_due(&mut base, now, &|_| false, false, &mut out);
        assert_eq!(out, vec![0]);
        assert!(matches!(base.state(0), RefreshState::Draining { .. }));
        assert_eq!(darp.refreshes_pulled_in(), 1);
        // Schedule still advances in exact tREFI steps from the due.
        darp.on_refresh_issued(&mut base, 0, now, now + 100);
        assert_eq!(base.next_due(0), 2 * T_REFI);
    }

    #[test]
    fn darp_respects_busy_and_recent_activity() {
        let banks = 4;
        let mut base = manager(banks);
        let mut darp = Darp::new(banks, banks, T_REFI);
        let now = T_REFI - 10;
        let mut out = Vec::new();
        // Busy bank: no pull-in.
        darp.poll_due(&mut base, now, &|s| s == 0, false, &mut out);
        assert!(out.is_empty());
        // Recent demand on the bank: no pull-in either.
        darp.on_bank_activity(0, now - 5);
        darp.poll_due(&mut base, now, &|_| false, false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn darp_allows_one_in_flight_refresh_per_rank() {
        let banks = 4;
        let mut base = manager(banks);
        let mut darp = Darp::new(banks, banks, T_REFI);
        // Widened window during a write drain can cover several slots,
        // but only one may pull in while another is non-Idle.
        let now = T_REFI;
        let mut out = Vec::new();
        darp.poll_due(&mut base, now, &|_| false, true, &mut out);
        // Slot 0 is naturally due at tREFI; others pulled in at most up
        // to the one-in-flight rule.
        assert!(!out.is_empty());
        let drained = out
            .iter()
            .filter(|&&s| matches!(base.state(s), RefreshState::Draining { .. }))
            .count();
        assert_eq!(drained, out.len());
    }

    #[test]
    fn sarp_rotates_subarrays() {
        let mut base = manager(1);
        let sarp = Sarp::new(8);
        assert_eq!(
            sarp.round_shape(&base, 0),
            RoundShape::Subarray { subarray: 0 }
        );
        base.poll_due(T_REFI, |_| false);
        base.refresh_issued(0, T_REFI, T_REFI + 90);
        assert_eq!(
            sarp.round_shape(&base, 0),
            RoundShape::Subarray { subarray: 1 }
        );
    }

    #[test]
    fn raidr_round_cadence_and_skips() {
        let mut base = manager(1);
        // stride 2: rounds 0..8 = full, skip, 64, skip, 128, skip, 64, skip.
        let mut raidr = Raidr::new(1, 42, 2 * T_REFI, T_REFI, T_RFC, 1 << 15);
        let mut durations = Vec::new();
        let mut skips = 0;
        for i in 0..8u64 {
            let now = (i + 1) * T_REFI;
            base.poll_due(now, |_| false);
            match raidr.round_shape(&base, 0) {
                RoundShape::Scaled {
                    duration,
                    round,
                    covers_128,
                    covers_256,
                } => {
                    assert_eq!(round, i);
                    assert_eq!(covers_256, i % 8 == 0);
                    assert_eq!(covers_128, i % 4 == 0);
                    durations.push(duration);
                    raidr.on_refresh_issued(&mut base, 0, now, now + duration);
                }
                RoundShape::Skip { round } => {
                    assert_eq!(round, i);
                    skips += 1;
                    raidr.on_refresh_skipped(&mut base, 0, now);
                }
                other => panic!("unexpected shape {other:?}"),
            }
            base.poll_complete(now + T_RFC);
        }
        // Odd rounds all skip under stride 2.
        assert_eq!(skips, 4);
        assert_eq!(raidr.refreshes_skipped(), 4);
        // Round 0 is the full sweep; the binned rounds are far shorter.
        assert_eq!(durations[0], T_RFC);
        assert!(durations[1..].iter().all(|&d| (1..T_RFC / 4).contains(&d)));
        // The 128-class round does at least as much work as 64-class.
        assert!(durations[2] >= durations[1]);
    }

    #[test]
    fn retention_bins_are_seeded_and_deterministic() {
        let a = RetentionBins::seeded(7, 1 << 15);
        let b = RetentionBins::seeded(7, 1 << 15);
        assert_eq!(a.frac_64(), b.frac_64());
        assert_eq!(a.frac_le_128(), b.frac_le_128());
        let c = RetentionBins::seeded(8, 1 << 15);
        // Different seeds draw different weak rows (fractions almost
        // surely differ; the draw counts certainly can).
        assert!(
            a.frac_le_128() != c.frac_le_128()
                || a.weak_64() != c.weak_64()
                || a.weak_128() != c.weak_128()
        );
        // Bin membership is consistent with the measured fractions.
        let rows = 1usize << 15;
        let n64 = (0..rows).filter(|&r| a.in_bin_64(r)).count();
        assert_eq!(n64 as f64 / rows as f64, a.frac_64());
        // The filters cover everything drawn (no false negatives), and
        // the fast bins stay small.
        assert!(a.frac_le_128() < 0.05);
    }

    #[test]
    fn mech_state_words_are_finite_and_behavioural() {
        // DARP: only the activity *age* matters, saturated at the idle
        // window — far-past activity fingerprints identically.
        let base = manager(2);
        let mut darp = Darp::new(2, 2, T_REFI);
        darp.on_bank_activity(0, 100);
        assert_eq!(darp.mech_state(&base, 100, 0), 0);
        assert_eq!(darp.mech_state(&base, 130, 0), 30);
        assert_eq!(
            darp.mech_state(&base, 10_000, 0),
            darp.mech_state(&base, 1_000_000, 0)
        );
        // SARP: the word is the rotation position.
        let mut base = manager(1);
        let sarp = Sarp::new(4);
        assert_eq!(sarp.mech_state(&base, 0, 0), 0);
        base.poll_due(T_REFI, |_| false);
        base.refresh_issued(0, T_REFI, T_REFI + 90);
        assert_eq!(sarp.mech_state(&base, T_REFI, 0), 1);
        // RAIDR: rounds reduce modulo the 256 ms cadence (4×stride).
        let mut base = manager(1);
        let mut raidr = Raidr::new(1, 42, 2 * T_REFI, T_REFI, T_RFC, 1 << 12);
        assert_eq!(raidr.mech_state(&base, 0, 0), 0);
        for i in 0..8u64 {
            let now = (i + 1) * T_REFI;
            base.poll_due(now, |_| false);
            match raidr.round_shape(&base, 0) {
                RoundShape::Skip { .. } => raidr.on_refresh_skipped(&mut base, 0, now),
                _ => raidr.on_refresh_issued(&mut base, 0, now, now + 1),
            }
            base.poll_complete(now + T_RFC);
        }
        // stride 2 → period 8: after 8 rounds the word wraps to 0.
        assert_eq!(raidr.mech_state(&base, 9 * T_REFI, 0), 0);
    }

    #[test]
    fn mechanism_enum_builds_from_config() {
        use rop_dram::DramConfig;
        let m = Mechanism::from_config(&MemCtrlConfig::baseline(DramConfig::baseline(1)));
        assert_eq!(m.scope(), RefreshScope::PerRank);
        let m = Mechanism::from_config(&MemCtrlConfig::per_bank(DramConfig::baseline(1)));
        assert_eq!(m.scope(), RefreshScope::PerBank);
        let m = Mechanism::from_config(&MemCtrlConfig::darp(DramConfig::baseline(1)));
        assert_eq!(m.scope(), RefreshScope::PerBank);
        let m = Mechanism::from_config(&MemCtrlConfig::sarp(DramConfig::baseline(1)));
        assert_eq!(m.scope(), RefreshScope::PerBank);
        let m = Mechanism::from_config(&MemCtrlConfig::raidr(DramConfig::baseline(2), 3));
        assert_eq!(m.scope(), RefreshScope::PerRank);
        assert!(m.as_raidr().is_some());
    }
}
