//! Memory transactions as tracked inside the controller.

use crate::address::DecodedAddr;
use crate::Cycle;

/// A pending memory transaction in the read, write, or prefetch queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Controller-assigned id; completions echo it back to the core.
    pub id: u64,
    /// Global cache-line address.
    pub line_addr: u64,
    /// Decoded location.
    pub addr: DecodedAddr,
    /// True for stores/writebacks.
    pub is_write: bool,
    /// Cycle the request entered the controller.
    pub arrival: Cycle,
    /// Originating core (for multi-program statistics).
    pub core: usize,
    /// True for ROP prefetch requests (their data fills the SRAM buffer
    /// instead of answering a core).
    pub is_prefetch: bool,
}

impl MemRequest {
    /// Age of the request at `now`.
    pub fn age(&self, now: Cycle) -> Cycle {
        now.saturating_sub(self.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_saturates() {
        let r = MemRequest {
            id: 1,
            line_addr: 0,
            addr: DecodedAddr {
                rank: 0,
                bank: 0,
                row: 0,
                col: 0,
            },
            is_write: false,
            arrival: 100,
            core: 0,
            is_prefetch: false,
        };
        assert_eq!(r.age(150), 50);
        assert_eq!(r.age(50), 0);
    }
}
