//! Controller configuration.

use crate::address::MappingScheme;
use crate::refresh::RefreshPolicy;
use crate::Cycle;
use rop_core::RopConfig;
use rop_dram::DramConfig;

/// Memory-controller configuration (paper Table III: 64/64-entry
/// read/write queues, FR-FCFS, writes scheduled in batches).
#[derive(Debug, Clone)]
pub struct MemCtrlConfig {
    /// DRAM device configuration.
    pub dram: DramConfig,
    /// Address-mapping scheme.
    pub mapping: MappingScheme,
    /// Read-queue capacity.
    pub read_queue_capacity: usize,
    /// Write-queue capacity.
    pub write_queue_capacity: usize,
    /// Enter write-drain mode when the write queue reaches this depth.
    pub write_drain_high: usize,
    /// Leave write-drain mode when it falls to this depth.
    pub write_drain_low: usize,
    /// FR-FCFS age cap: a request older than this is served before any
    /// younger row hit (starvation guard).
    pub age_cap: Cycle,
    /// Refresh-drain deadline: a due refresh is forced once it has been
    /// postponed this many cycles (JEDEC allows up to 8·tREFI; draining
    /// normally finishes within a fraction of one tREFI).
    pub max_refresh_postpone: Cycle,
    /// ROP prefetch grace: once a refresh is due, prefetch requests get
    /// at most this many cycles of *opportunistic* (lowest-priority) bus
    /// slots before the refresh issues anyway and leftover prefetches are
    /// dropped. Bounds the refresh delay prefetching can cause (§IV-D:
    /// JEDEC tolerates delayed refreshes; we keep the delay small).
    pub prefetch_grace: Cycle,
    /// Refresh issue policy (Standard drain-then-refresh, or Elastic
    /// Refresh for the related-work comparison).
    pub refresh_policy: RefreshPolicy,
    /// When true, refresh runs at *per-bank* granularity (REFpb): each
    /// bank refreshes independently every tREFI for `tRFCpb`, freezing
    /// only itself — the paper's §VII future-work memory model.
    pub per_bank_refresh: bool,
    /// ROP configuration; `None` disables ROP entirely (baseline system).
    pub rop: Option<RopConfig>,
}

impl MemCtrlConfig {
    /// Paper baseline controller over the given DRAM config.
    pub fn baseline(dram: DramConfig) -> Self {
        MemCtrlConfig {
            dram,
            mapping: MappingScheme::RowRankBankCol,
            read_queue_capacity: 64,
            write_queue_capacity: 64,
            write_drain_high: 48,
            write_drain_low: 16,
            age_cap: 2_000,
            max_refresh_postpone: 2 * 6_240,
            prefetch_grace: 560,
            refresh_policy: RefreshPolicy::Standard,
            per_bank_refresh: false,
            rop: None,
        }
    }

    /// Baseline controller with per-bank refresh (§VII future work).
    pub fn per_bank(dram: DramConfig) -> Self {
        MemCtrlConfig {
            per_bank_refresh: true,
            ..Self::baseline(dram)
        }
    }

    /// ROP on top of per-bank refresh: the windows track `tRFCpb`, and
    /// each REFpb prefetches only for its own bank.
    pub fn rop_per_bank(dram: DramConfig, buffer_capacity: usize, seed: u64) -> Self {
        let mut cfg = Self::rop(dram, buffer_capacity, seed);
        cfg.per_bank_refresh = true;
        let t_rfc_pb = cfg.dram.timing.t_rfc_pb;
        let rop = cfg.rop.as_mut().expect("rop config present");
        rop.observational_window = t_rfc_pb;
        rop.refresh_period = t_rfc_pb;
        cfg
    }

    /// Baseline controller with Elastic Refresh (Stuecheli et al.), the
    /// related-work refresh-hiding scheduler the paper discusses.
    pub fn elastic(dram: DramConfig) -> Self {
        MemCtrlConfig {
            refresh_policy: RefreshPolicy::Elastic { max_debt: 8 },
            ..Self::baseline(dram)
        }
    }

    /// Baseline with rank partitioning (the paper's Baseline-RP).
    pub fn baseline_rp(dram: DramConfig) -> Self {
        MemCtrlConfig {
            mapping: MappingScheme::RankPartitioned,
            ..Self::baseline(dram)
        }
    }

    /// Full ROP system: rank partitioning + the ROP engine.
    ///
    /// The ROP engine's window/geometry parameters are derived from the
    /// DRAM config so they stay consistent.
    pub fn rop(dram: DramConfig, buffer_capacity: usize, seed: u64) -> Self {
        let mut rop = RopConfig::with_capacity(buffer_capacity);
        rop.observational_window = dram.timing.t_rfc();
        rop.refresh_period = dram.timing.t_rfc();
        rop.banks_per_rank = dram.geometry.banks_per_rank;
        rop.lines_per_bank = (dram.geometry.rows_per_bank * dram.geometry.lines_per_row) as u64;
        rop.seed = seed;
        let mut cfg = MemCtrlConfig {
            mapping: MappingScheme::RankPartitioned,
            rop: Some(rop),
            ..Self::baseline(dram)
        };
        // The fill of `capacity` lines is tCCD-bound; give the grace
        // window room for it (plus slack for demand interleaving), or
        // large buffers never fill and their tail candidates are dropped.
        cfg.prefetch_grace = cfg
            .prefetch_grace
            .max(buffer_capacity as u64 * cfg.dram.timing.t_ccd + 120);
        cfg
    }

    /// Validates queue and watermark consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.dram.validate()?;
        if self.read_queue_capacity == 0 || self.write_queue_capacity == 0 {
            return Err("queues must be non-empty".into());
        }
        if self.write_drain_high > self.write_queue_capacity {
            return Err("write_drain_high exceeds write queue capacity".into());
        }
        if self.write_drain_low >= self.write_drain_high {
            return Err("write_drain_low must be below write_drain_high".into());
        }
        if let Some(rop) = &self.rop {
            rop.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_valid() {
        MemCtrlConfig::baseline(DramConfig::baseline(1))
            .validate()
            .unwrap();
        MemCtrlConfig::baseline_rp(DramConfig::baseline(4))
            .validate()
            .unwrap();
        MemCtrlConfig::rop(DramConfig::baseline(4), 64, 1)
            .validate()
            .unwrap();
    }

    #[test]
    fn rop_config_derived_from_dram() {
        let c = MemCtrlConfig::rop(DramConfig::baseline(1), 32, 7);
        let rop = c.rop.as_ref().unwrap();
        assert_eq!(rop.observational_window, 280);
        assert_eq!(rop.banks_per_rank, 8);
        assert_eq!(rop.buffer_capacity, 32);
        assert_eq!(rop.lines_per_bank, (1u64 << 15) * 128);
    }

    #[test]
    fn watermark_validation() {
        let mut c = MemCtrlConfig::baseline(DramConfig::baseline(1));
        c.write_drain_low = c.write_drain_high;
        assert!(c.validate().is_err());
        let mut c = MemCtrlConfig::baseline(DramConfig::baseline(1));
        c.write_drain_high = c.write_queue_capacity + 1;
        assert!(c.validate().is_err());
    }
}
