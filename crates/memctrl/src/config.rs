//! Controller configuration.

use crate::address::MappingScheme;
use crate::refresh::RefreshPolicy;
use crate::Cycle;
use rop_core::RopConfig;
use rop_dram::DramConfig;

/// Which refresh *mechanism* drives the controller's Refresh Manager —
/// the seam along which the paper's baseline and the related-work
/// rivals (DARP, SARP, RAIDR) are compared head to head.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MechanismKind {
    /// Auto-refresh exactly as before this seam existed: one REF per
    /// rank per tREFI (or one REFpb per bank when
    /// [`MemCtrlConfig::per_bank_refresh`] is set), drain-then-refresh,
    /// in slot order. Bit-exact with the pre-seam controller.
    AllBank,
    /// DARP (Chang et al., HPCA'14): per-bank refresh issued *out of
    /// order* — an upcoming REFpb is pulled into the present when its
    /// bank has no queued demand, and pull-in is widened during write
    /// drains so refreshes hide behind write bursts.
    Darp,
    /// SARP (Chang et al., HPCA'14): subarray-level parallelism — each
    /// per-bank refresh locks only one subarray (for `tRFCsa`), rotating
    /// round-robin; accesses to the bank's other subarrays keep flowing.
    Sarp,
    /// RAIDR (Liu et al., ISCA'12): retention-aware refresh binning.
    /// Rows are binned 64/128/256 ms by seeded Bloom filters; each
    /// tREFI round refreshes only the rows whose bin falls due, as a
    /// pro-rata-shortened REF, and rounds with no due bin are skipped.
    Raidr {
        /// Seed for the per-rank weak-row draw and Bloom hashing.
        seed: u64,
        /// Period of the fastest (64 ms-class) bin, in memory cycles.
        /// Must be a positive multiple of tREFI; the 128/256 ms-class
        /// bins refresh at 2× and 4× this period.
        bin_period: Cycle,
    },
}

impl MechanismKind {
    /// Short stable label for figures, exports and the sweep grid.
    pub fn label(&self) -> &'static str {
        match self {
            MechanismKind::AllBank => "allbank",
            MechanismKind::Darp => "darp",
            MechanismKind::Sarp => "sarp",
            MechanismKind::Raidr { .. } => "raidr",
        }
    }
}

/// Memory-controller configuration (paper Table III: 64/64-entry
/// read/write queues, FR-FCFS, writes scheduled in batches).
#[derive(Debug, Clone)]
pub struct MemCtrlConfig {
    /// DRAM device configuration.
    pub dram: DramConfig,
    /// Address-mapping scheme.
    pub mapping: MappingScheme,
    /// Read-queue capacity.
    pub read_queue_capacity: usize,
    /// Write-queue capacity.
    pub write_queue_capacity: usize,
    /// Enter write-drain mode when the write queue reaches this depth.
    pub write_drain_high: usize,
    /// Leave write-drain mode when it falls to this depth.
    pub write_drain_low: usize,
    /// FR-FCFS age cap: a request older than this is served before any
    /// younger row hit (starvation guard).
    pub age_cap: Cycle,
    /// Refresh-drain deadline: a due refresh is forced once it has been
    /// postponed this many cycles (JEDEC allows up to 8·tREFI; draining
    /// normally finishes within a fraction of one tREFI).
    pub max_refresh_postpone: Cycle,
    /// ROP prefetch grace: once a refresh is due, prefetch requests get
    /// at most this many cycles of *opportunistic* (lowest-priority) bus
    /// slots before the refresh issues anyway and leftover prefetches are
    /// dropped. Bounds the refresh delay prefetching can cause (§IV-D:
    /// JEDEC tolerates delayed refreshes; we keep the delay small).
    pub prefetch_grace: Cycle,
    /// Refresh issue policy (Standard drain-then-refresh, or Elastic
    /// Refresh for the related-work comparison).
    pub refresh_policy: RefreshPolicy,
    /// When true, refresh runs at *per-bank* granularity (REFpb): each
    /// bank refreshes independently every tREFI for `tRFCpb`, freezing
    /// only itself — the paper's §VII future-work memory model.
    pub per_bank_refresh: bool,
    /// The refresh mechanism driving the Refresh Manager (see
    /// [`MechanismKind`]). `AllBank` reproduces the pre-seam controller
    /// bit-exactly.
    pub mechanism: MechanismKind,
    /// ROP configuration; `None` disables ROP entirely (baseline system).
    pub rop: Option<RopConfig>,
}

impl MemCtrlConfig {
    /// Paper baseline controller over the given DRAM config.
    pub fn baseline(dram: DramConfig) -> Self {
        MemCtrlConfig {
            dram,
            mapping: MappingScheme::RowRankBankCol,
            read_queue_capacity: 64,
            write_queue_capacity: 64,
            write_drain_high: 48,
            write_drain_low: 16,
            age_cap: 2_000,
            max_refresh_postpone: 2 * 6_240,
            prefetch_grace: 560,
            refresh_policy: RefreshPolicy::Standard,
            per_bank_refresh: false,
            mechanism: MechanismKind::AllBank,
            rop: None,
        }
    }

    /// Baseline controller with per-bank refresh (§VII future work).
    pub fn per_bank(dram: DramConfig) -> Self {
        MemCtrlConfig {
            per_bank_refresh: true,
            ..Self::baseline(dram)
        }
    }

    /// ROP on top of per-bank refresh: the windows track `tRFCpb`, and
    /// each REFpb prefetches only for its own bank.
    pub fn rop_per_bank(dram: DramConfig, buffer_capacity: usize, seed: u64) -> Self {
        let mut cfg = Self::rop(dram, buffer_capacity, seed);
        cfg.per_bank_refresh = true;
        let t_rfc_pb = cfg.dram.timing.t_rfc_pb;
        let rop = cfg.rop.as_mut().expect("rop config present");
        rop.observational_window = t_rfc_pb;
        rop.refresh_period = t_rfc_pb;
        cfg
    }

    /// DARP (out-of-order per-bank refresh) on top of REFpb.
    pub fn darp(dram: DramConfig) -> Self {
        MemCtrlConfig {
            mechanism: MechanismKind::Darp,
            ..Self::per_bank(dram)
        }
    }

    /// SARP (subarray-scoped refresh) on top of REFpb.
    pub fn sarp(dram: DramConfig) -> Self {
        MemCtrlConfig {
            mechanism: MechanismKind::Sarp,
            ..Self::per_bank(dram)
        }
    }

    /// RAIDR (retention-aware binned refresh) over all-bank REF. The
    /// default bin period compresses the paper's 64 ms bin to two tREFI
    /// so bin rotation is observable at simulation timescales.
    pub fn raidr(dram: DramConfig, seed: u64) -> Self {
        let bin_period = 2 * dram.timing.t_refi();
        MemCtrlConfig {
            mechanism: MechanismKind::Raidr { seed, bin_period },
            ..Self::baseline(dram)
        }
    }

    /// Baseline controller with Elastic Refresh (Stuecheli et al.), the
    /// related-work refresh-hiding scheduler the paper discusses.
    pub fn elastic(dram: DramConfig) -> Self {
        MemCtrlConfig {
            refresh_policy: RefreshPolicy::Elastic { max_debt: 8 },
            ..Self::baseline(dram)
        }
    }

    /// Baseline with rank partitioning (the paper's Baseline-RP).
    pub fn baseline_rp(dram: DramConfig) -> Self {
        MemCtrlConfig {
            mapping: MappingScheme::RankPartitioned,
            ..Self::baseline(dram)
        }
    }

    /// Full ROP system: rank partitioning + the ROP engine.
    ///
    /// The ROP engine's window/geometry parameters are derived from the
    /// DRAM config so they stay consistent.
    pub fn rop(dram: DramConfig, buffer_capacity: usize, seed: u64) -> Self {
        let mut rop = RopConfig::with_capacity(buffer_capacity);
        rop.observational_window = dram.timing.t_rfc();
        rop.refresh_period = dram.timing.t_rfc();
        rop.banks_per_rank = dram.geometry.banks_per_rank;
        rop.lines_per_bank = (dram.geometry.rows_per_bank * dram.geometry.lines_per_row) as u64;
        rop.seed = seed;
        let mut cfg = MemCtrlConfig {
            mapping: MappingScheme::RankPartitioned,
            rop: Some(rop),
            ..Self::baseline(dram)
        };
        // The fill of `capacity` lines is tCCD-bound; give the grace
        // window room for it (plus slack for demand interleaving), or
        // large buffers never fill and their tail candidates are dropped.
        cfg.prefetch_grace = cfg
            .prefetch_grace
            .max(buffer_capacity as u64 * cfg.dram.timing.t_ccd + 120);
        cfg
    }

    /// Validates queue and watermark consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.dram.validate()?;
        if self.read_queue_capacity == 0 || self.write_queue_capacity == 0 {
            return Err("queues must be non-empty".into());
        }
        if self.write_drain_high > self.write_queue_capacity {
            return Err("write_drain_high exceeds write queue capacity".into());
        }
        if self.write_drain_low >= self.write_drain_high {
            return Err("write_drain_low must be below write_drain_high".into());
        }
        match self.mechanism {
            MechanismKind::AllBank => {}
            MechanismKind::Darp => {
                if !self.per_bank_refresh {
                    return Err("DARP requires per-bank refresh (REFpb)".into());
                }
            }
            MechanismKind::Sarp => {
                if !self.per_bank_refresh {
                    return Err("SARP requires per-bank refresh (REFpb)".into());
                }
                if self.dram.geometry.subarrays_per_bank < 2 {
                    return Err("SARP needs at least 2 subarrays per bank".into());
                }
                if self.dram.timing.t_rfc_sa == 0 {
                    return Err("SARP needs tRFCsa > 0".into());
                }
            }
            MechanismKind::Raidr { bin_period, .. } => {
                if self.per_bank_refresh {
                    return Err("RAIDR runs over all-bank REF, not REFpb".into());
                }
                let t_refi = self.dram.timing.t_refi();
                if bin_period == 0 || bin_period % t_refi != 0 {
                    return Err(format!(
                        "RAIDR bin period {bin_period} must be a positive multiple of tREFI ({t_refi})"
                    ));
                }
            }
        }
        if let Some(rop) = &self.rop {
            rop.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_valid() {
        MemCtrlConfig::baseline(DramConfig::baseline(1))
            .validate()
            .unwrap();
        MemCtrlConfig::baseline_rp(DramConfig::baseline(4))
            .validate()
            .unwrap();
        MemCtrlConfig::rop(DramConfig::baseline(4), 64, 1)
            .validate()
            .unwrap();
    }

    #[test]
    fn rop_config_derived_from_dram() {
        let c = MemCtrlConfig::rop(DramConfig::baseline(1), 32, 7);
        let rop = c.rop.as_ref().unwrap();
        assert_eq!(rop.observational_window, 280);
        assert_eq!(rop.banks_per_rank, 8);
        assert_eq!(rop.buffer_capacity, 32);
        assert_eq!(rop.lines_per_bank, (1u64 << 15) * 128);
    }

    #[test]
    fn mechanism_presets_valid() {
        MemCtrlConfig::darp(DramConfig::baseline(1))
            .validate()
            .unwrap();
        MemCtrlConfig::sarp(DramConfig::baseline(2))
            .validate()
            .unwrap();
        MemCtrlConfig::raidr(DramConfig::baseline(1), 7)
            .validate()
            .unwrap();
    }

    #[test]
    fn mechanism_granularity_is_enforced() {
        // DARP/SARP demand REFpb.
        let mut c = MemCtrlConfig::darp(DramConfig::baseline(1));
        c.per_bank_refresh = false;
        assert!(c.validate().is_err());
        let mut c = MemCtrlConfig::sarp(DramConfig::baseline(1));
        c.per_bank_refresh = false;
        assert!(c.validate().is_err());
        // RAIDR demands all-bank REF.
        let mut c = MemCtrlConfig::raidr(DramConfig::baseline(1), 1);
        c.per_bank_refresh = true;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sarp_needs_subarrays_and_trfcsa() {
        let mut c = MemCtrlConfig::sarp(DramConfig::baseline(1));
        c.dram.geometry.subarrays_per_bank = 1;
        assert!(c.validate().is_err());
        let mut c = MemCtrlConfig::sarp(DramConfig::baseline(1));
        c.dram.timing.t_rfc_sa = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn raidr_bin_period_must_divide_trefi() {
        let mut c = MemCtrlConfig::raidr(DramConfig::baseline(1), 1);
        if let MechanismKind::Raidr { bin_period, .. } = &mut c.mechanism {
            *bin_period += 1;
        }
        assert!(c.validate().is_err());
        let mut c = MemCtrlConfig::raidr(DramConfig::baseline(1), 1);
        if let MechanismKind::Raidr { bin_period, .. } = &mut c.mechanism {
            *bin_period = 0;
        }
        assert!(c.validate().is_err());
    }

    #[test]
    fn watermark_validation() {
        let mut c = MemCtrlConfig::baseline(DramConfig::baseline(1));
        c.write_drain_low = c.write_drain_high;
        assert!(c.validate().is_err());
        let mut c = MemCtrlConfig::baseline(DramConfig::baseline(1));
        c.write_drain_high = c.write_queue_capacity + 1;
        assert!(c.validate().is_err());
    }
}
