//! Address mapping: global cache-line addresses → (rank, bank, row, col).

use rop_dram::Geometry;

/// How line addresses spread over the channel's ranks.
///
/// Both schemes interleave **banks at cache-line granularity**
/// (`bank` in the lowest bits, then `column`): a sequential stream
/// rotates over all banks of a rank, touching one column per bank per
/// round. This keeps all row buffers of the rank hot simultaneously
/// (bank-level parallelism) and is the organisation ROP's per-bank
/// prediction table assumes — every bank entry of the table keeps
/// tracking the stream, so Equation 3 spreads the SRAM capacity over the
/// banks the stream is actually about to revisit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingScheme {
    /// Baseline mapping `row : col : rank : bank` — consecutive lines
    /// rotate across banks, then across ranks, then walk the open rows:
    /// every stream continuously touches *every rank*, so each rank's
    /// refresh freezes all cores — the interference the paper's
    /// Baseline suffers and Rank-aware Mapping removes.
    RowRankBankCol,
    /// Rank-aware mapping (the paper's *Rank-aware Mapping*, in the
    /// spirit of bank partitioning): the **top** address bits select the
    /// rank, so each core's footprint — given disjoint base addresses —
    /// lives in exactly one rank and cross-core interference inside a
    /// rank disappears. Used by Baseline-RP and ROP in the 4-core
    /// experiments.
    RankPartitioned,
}

/// A fully decoded line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// Rank on the channel.
    pub rank: usize,
    /// Bank within the rank.
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Cache-line column within the row.
    pub col: usize,
}

impl DecodedAddr {
    /// Cache-line offset within the bank (the coordinate the ROP
    /// prediction table uses).
    pub fn line_in_bank(&self, lines_per_row: usize) -> u64 {
        self.row as u64 * lines_per_row as u64 + self.col as u64
    }
}

/// Precomputed shift/mask field layout for all-power-of-two geometries,
/// letting the hot `decode`/`encode` paths avoid div/mod entirely.
#[derive(Debug, Clone, Copy)]
struct Pow2Layout {
    bank_log: u32,
    rank_log: u32,
    col_log: u32,
    row_log: u32,
    total_mask: u64,
}

/// Stateless mapper for a fixed geometry and scheme.
#[derive(Debug, Clone, Copy)]
pub struct AddressMapping {
    geometry: Geometry,
    scheme: MappingScheme,
    /// `Some` when every dimension is a power of two (the normal case;
    /// only an exotic rank count falls back to div/mod).
    pow2: Option<Pow2Layout>,
}

impl AddressMapping {
    /// Creates a mapping.
    pub fn new(geometry: Geometry, scheme: MappingScheme) -> Self {
        geometry.validate().expect("invalid geometry");
        let dims = [
            geometry.banks_per_rank,
            geometry.ranks,
            geometry.lines_per_row,
            geometry.rows_per_bank,
        ];
        let pow2 = dims
            .iter()
            .all(|d| d.is_power_of_two())
            .then(|| Pow2Layout {
                bank_log: geometry.banks_per_rank.trailing_zeros(),
                rank_log: geometry.ranks.trailing_zeros(),
                col_log: geometry.lines_per_row.trailing_zeros(),
                row_log: geometry.rows_per_bank.trailing_zeros(),
                total_mask: geometry.total_lines() as u64 - 1,
            });
        AddressMapping {
            geometry,
            scheme,
            pow2,
        }
    }

    /// The mapping's scheme.
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// The geometry being mapped.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Decodes a global cache-line address. Addresses beyond the channel
    /// capacity wrap (the synthetic workloads use modest footprints, but
    /// per-core base offsets can push beyond the top).
    pub fn decode(&self, line_addr: u64) -> DecodedAddr {
        if let Some(l) = self.pow2 {
            let addr = line_addr & l.total_mask;
            return match self.scheme {
                MappingScheme::RowRankBankCol => {
                    let bank = addr & ((1 << l.bank_log) - 1);
                    let rest = addr >> l.bank_log;
                    let rank = rest & ((1 << l.rank_log) - 1);
                    let rest = rest >> l.rank_log;
                    let col = rest & ((1 << l.col_log) - 1);
                    let row = rest >> l.col_log;
                    DecodedAddr {
                        rank: rank as usize,
                        bank: bank as usize,
                        row: row as usize,
                        col: col as usize,
                    }
                }
                MappingScheme::RankPartitioned => {
                    let bank = addr & ((1 << l.bank_log) - 1);
                    let rest = addr >> l.bank_log;
                    let col = rest & ((1 << l.col_log) - 1);
                    let rest = rest >> l.col_log;
                    let row = rest & ((1 << l.row_log) - 1);
                    let rank = rest >> l.row_log;
                    DecodedAddr {
                        rank: rank as usize,
                        bank: bank as usize,
                        row: row as usize,
                        col: col as usize,
                    }
                }
            };
        }
        let g = &self.geometry;
        let lines_per_row = g.lines_per_row as u64;
        let banks = g.banks_per_rank as u64;
        let ranks = g.ranks as u64;
        let rows = g.rows_per_bank as u64;
        let addr = line_addr % g.total_lines() as u64;
        match self.scheme {
            MappingScheme::RowRankBankCol => {
                let bank = addr % banks;
                let rest = addr / banks;
                let rank = rest % ranks;
                let rest = rest / ranks;
                let col = rest % lines_per_row;
                let row = rest / lines_per_row;
                DecodedAddr {
                    rank: rank as usize,
                    bank: bank as usize,
                    row: row as usize,
                    col: col as usize,
                }
            }
            MappingScheme::RankPartitioned => {
                let bank = addr % banks;
                let rest = addr / banks;
                let col = rest % lines_per_row;
                let rest = rest / lines_per_row;
                let row = rest % rows;
                let rank = rest / rows;
                DecodedAddr {
                    rank: rank as usize,
                    bank: bank as usize,
                    row: row as usize,
                    col: col as usize,
                }
            }
        }
    }

    /// Re-encodes a decoded address into the global line address — the
    /// exact inverse of [`Self::decode`] for in-range coordinates. Used to
    /// turn ROP prefetch candidates (bank + line-in-bank coordinates) back
    /// into bufferable line addresses.
    pub fn encode(&self, d: &DecodedAddr) -> u64 {
        if let Some(l) = self.pow2 {
            return match self.scheme {
                MappingScheme::RowRankBankCol => {
                    ((((((d.row as u64) << l.col_log) | d.col as u64) << l.rank_log)
                        | d.rank as u64)
                        << l.bank_log)
                        | d.bank as u64
                }
                MappingScheme::RankPartitioned => {
                    ((((((d.rank as u64) << l.row_log) | d.row as u64) << l.col_log)
                        | d.col as u64)
                        << l.bank_log)
                        | d.bank as u64
                }
            };
        }
        let g = &self.geometry;
        let lines_per_row = g.lines_per_row as u64;
        let banks = g.banks_per_rank as u64;
        let ranks = g.ranks as u64;
        let rows = g.rows_per_bank as u64;
        match self.scheme {
            MappingScheme::RowRankBankCol => {
                ((d.row as u64 * lines_per_row + d.col as u64) * ranks + d.rank as u64) * banks
                    + d.bank as u64
            }
            MappingScheme::RankPartitioned => {
                ((d.rank as u64 * rows + d.row as u64) * lines_per_row + d.col as u64) * banks
                    + d.bank as u64
            }
        }
    }

    /// Builds the global line address for a `(rank, bank, line-in-bank)`
    /// coordinate — the shape ROP's prediction table works in.
    pub fn encode_bank_line(&self, rank: usize, bank: usize, line_in_bank: u64) -> u64 {
        let (row, col) = if let Some(l) = self.pow2 {
            (
                (line_in_bank >> l.col_log) as usize,
                (line_in_bank & ((1 << l.col_log) - 1)) as usize,
            )
        } else {
            let lines_per_row = self.geometry.lines_per_row as u64;
            (
                (line_in_bank / lines_per_row) as usize,
                (line_in_bank % lines_per_row) as usize,
            )
        };
        self.encode(&DecodedAddr {
            rank,
            bank,
            row,
            col,
        })
    }

    /// Lines in one rank's partition (for computing per-core base
    /// addresses under [`MappingScheme::RankPartitioned`]).
    pub fn lines_per_rank(&self) -> u64 {
        let g = &self.geometry;
        (g.banks_per_rank * g.rows_per_bank * g.lines_per_row) as u64
    }

    /// The base line address of `rank`'s partition under
    /// [`MappingScheme::RankPartitioned`].
    pub fn rank_partition_base(&self, rank: usize) -> u64 {
        assert!(rank < self.geometry.ranks);
        rank as u64 * self.lines_per_rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping(scheme: MappingScheme) -> AddressMapping {
        AddressMapping::new(Geometry::ddr4_4rank(), scheme)
    }

    #[test]
    fn baseline_rotates_banks_then_ranks_then_columns() {
        let m = mapping(MappingScheme::RowRankBankCol);
        let a = m.decode(0);
        assert_eq!((a.rank, a.bank, a.row, a.col), (0, 0, 0, 0));
        // Consecutive lines rotate across banks.
        let b = m.decode(1);
        assert_eq!((b.rank, b.bank, b.row, b.col), (0, 1, 0, 0));
        let c = m.decode(7);
        assert_eq!((c.bank, c.col), (7, 0));
        // After one full bank round, the next rank.
        let d = m.decode(8);
        assert_eq!((d.rank, d.bank, d.row, d.col), (1, 0, 0, 0));
        // After all 4 ranks, the next column.
        let e = m.decode(8 * 4);
        assert_eq!((e.rank, e.bank, e.row, e.col), (0, 0, 0, 1));
        // After the whole column set, the next row.
        let f = m.decode(8 * 4 * 128);
        assert_eq!((f.rank, f.bank, f.row, f.col), (0, 0, 1, 0));
    }

    #[test]
    fn partitioned_keeps_rank_fixed_per_region() {
        let m = mapping(MappingScheme::RankPartitioned);
        let per_rank = m.lines_per_rank();
        for k in 0..4usize {
            let base = m.rank_partition_base(k);
            assert_eq!(m.decode(base).rank, k);
            assert_eq!(m.decode(base + per_rank - 1).rank, k);
            // Everything inside the partition stays in rank k.
            for probe in [0, 12345, per_rank / 2, per_rank - 1] {
                assert_eq!(m.decode(base + probe).rank, k, "probe {probe}");
            }
        }
    }

    #[test]
    fn sequential_stream_touches_every_bank_every_round() {
        // The property the ROP prediction table relies on: within any
        // window of `banks` consecutive lines, every bank is touched once.
        for scheme in [
            MappingScheme::RowRankBankCol,
            MappingScheme::RankPartitioned,
        ] {
            let m = mapping(scheme);
            let banks = m.geometry().banks_per_rank as u64;
            for start in [0u64, 97, 10_000] {
                let mut seen: Vec<usize> =
                    (start..start + banks).map(|g| m.decode(g).bank).collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..banks as usize).collect::<Vec<_>>(), "{scheme:?}");
            }
        }
    }

    #[test]
    fn per_bank_stream_is_unit_stride() {
        // Consecutive touches of the same bank by a sequential stream
        // advance its line-in-bank coordinate by exactly 1.
        for scheme in [
            MappingScheme::RowRankBankCol,
            MappingScheme::RankPartitioned,
        ] {
            let m = mapping(scheme);
            let banks = m.geometry().banks_per_rank as u64;
            let ranks = m.geometry().ranks as u64;
            let lpr = m.geometry().lines_per_row;
            // Distance after which a sequential stream revisits the same
            // (rank, bank) pair.
            let revisit = match scheme {
                MappingScheme::RowRankBankCol => banks * ranks,
                MappingScheme::RankPartitioned => banks,
            };
            for g in [0u64, 5, 1000] {
                let a = m.decode(g);
                let b = m.decode(g + revisit);
                assert_eq!((a.rank, a.bank), (b.rank, b.bank), "{scheme:?} at {g}");
                assert_eq!(
                    b.line_in_bank(lpr),
                    a.line_in_bank(lpr) + 1,
                    "{scheme:?} at {g}"
                );
            }
        }
    }

    #[test]
    fn encode_inverts_decode() {
        for scheme in [
            MappingScheme::RowRankBankCol,
            MappingScheme::RankPartitioned,
        ] {
            let m = mapping(scheme);
            let total = m.geometry().total_lines() as u64;
            for addr in [0u64, 1, 127, 128, 9999, 1 << 20, (1 << 22) + 17, total - 1] {
                let d = m.decode(addr);
                assert_eq!(m.encode(&d), addr, "{scheme:?} addr {addr}");
            }
        }
    }

    #[test]
    fn encode_bank_line_matches_decode() {
        for scheme in [
            MappingScheme::RowRankBankCol,
            MappingScheme::RankPartitioned,
        ] {
            let m = mapping(scheme);
            for addr in [5u64, 1 << 15, (1 << 21) + 123] {
                let d = m.decode(addr);
                let lib = d.line_in_bank(m.geometry().lines_per_row);
                assert_eq!(m.encode_bank_line(d.rank, d.bank, lib), addr);
            }
        }
    }

    #[test]
    fn line_in_bank_combines_row_and_col() {
        let d = DecodedAddr {
            rank: 0,
            bank: 0,
            row: 3,
            col: 5,
        };
        assert_eq!(d.line_in_bank(128), 3 * 128 + 5);
    }

    #[test]
    fn addresses_wrap_at_capacity() {
        let m = mapping(MappingScheme::RowRankBankCol);
        let total = m.geometry().total_lines() as u64;
        assert_eq!(m.decode(total + 5), m.decode(5));
    }

    /// Plain div/mod re-implementation of `decode`, used to pin down the
    /// shift/mask fast path.
    fn decode_reference(g: &Geometry, scheme: MappingScheme, line_addr: u64) -> DecodedAddr {
        let (lines_per_row, banks, ranks, rows) = (
            g.lines_per_row as u64,
            g.banks_per_rank as u64,
            g.ranks as u64,
            g.rows_per_bank as u64,
        );
        let addr = line_addr % g.total_lines() as u64;
        let (rank, bank, row, col) = match scheme {
            MappingScheme::RowRankBankCol => {
                let rest = addr / banks;
                let rest2 = rest / ranks;
                (
                    rest % ranks,
                    addr % banks,
                    rest2 / lines_per_row,
                    rest2 % lines_per_row,
                )
            }
            MappingScheme::RankPartitioned => {
                let rest = addr / banks;
                let rest2 = rest / lines_per_row;
                (
                    rest2 / rows,
                    addr % banks,
                    rest2 % rows,
                    rest % lines_per_row,
                )
            }
        };
        DecodedAddr {
            rank: rank as usize,
            bank: bank as usize,
            row: row as usize,
            col: col as usize,
        }
    }

    #[test]
    fn shift_mask_matches_div_mod_reference() {
        for scheme in [
            MappingScheme::RowRankBankCol,
            MappingScheme::RankPartitioned,
        ] {
            let m = mapping(scheme);
            let total = m.geometry().total_lines() as u64;
            let addrs = (0..2000u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % (2 * total))
                .chain([0, 1, total - 1, total, total + 7]);
            for addr in addrs {
                let fast = m.decode(addr);
                let slow = decode_reference(m.geometry(), scheme, addr);
                assert_eq!(fast, slow, "{scheme:?} addr {addr}");
                assert_eq!(m.encode(&fast), addr % total, "{scheme:?} addr {addr}");
            }
        }
    }

    #[test]
    fn non_pow2_rank_count_falls_back() {
        // 3 ranks is valid (only non-zero is required) but not a power of
        // two, so the div/mod fallback must handle it.
        let g = Geometry {
            ranks: 3,
            ..Geometry::ddr4_1rank()
        };
        for scheme in [
            MappingScheme::RowRankBankCol,
            MappingScheme::RankPartitioned,
        ] {
            let m = AddressMapping::new(g, scheme);
            let total = m.geometry().total_lines() as u64;
            for addr in [0u64, 1, 12345, total - 1] {
                let d = m.decode(addr);
                assert!(d.rank < 3);
                assert_eq!(m.encode(&d), addr, "{scheme:?} addr {addr}");
                assert_eq!(d, decode_reference(m.geometry(), scheme, addr));
            }
        }
    }
}
