//! The memory controller: transaction queues, FR-FCFS scheduling, write
//! batching, refresh handling, and the ROP integration points.
//!
//! # Scheduling model
//!
//! The controller issues at most one DRAM command per memory cycle
//! (single command bus). [`MemController::tick`] performs, in order:
//!
//! 1. SRAM fills whose prefetch data has arrived;
//! 2. refresh-manager bookkeeping (completions thaw ranks and drive ROP
//!    phase transitions; newly due refreshes snapshot drain sets and ask
//!    ROP for a prefetch decision);
//! 3. refresh preparation for ranks whose drain is complete: precharge
//!    remaining open banks, then issue REF;
//! 4. FR-FCFS command scheduling over the request queues, with the
//!    draining rank's requests (demand + prefetch) in a priority tier and
//!    an age cap as a starvation guard.
//!
//! `tick` returns a *hint*: the next cycle at which calling `tick` again
//! can possibly make progress, enabling the driver to fast-forward idle
//! stretches without losing cycle accuracy.

use rop_core::{PhaseTransition, RopConfig, RopEngine, RopPhase, SramBuffer};
use rop_dram::{Command, DramDevice, EnergyBreakdown};
use rop_events::{EventSink, TraceBuffer, TraceEvent};
use rop_stats::RatioCounter;

use crate::address::AddressMapping;
use crate::analysis::RefreshAnalysis;
use crate::config::MemCtrlConfig;
use crate::mechanism::{Mechanism, RefreshMechanism, RoundShape};
use crate::refresh::{RefreshManager, RefreshState};
use crate::request::MemRequest;
use crate::Cycle;

/// A finished read delivered back to a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Id returned by [`MemController::enqueue_read`].
    pub id: u64,
    /// Originating core.
    pub core: usize,
    /// Cycle at which the data is available to the core.
    pub done_at: Cycle,
    /// True when the read was served by the ROP SRAM buffer.
    pub from_sram: bool,
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Default)]
pub struct MemCtrlStats {
    /// Reads completed (including SRAM-served).
    pub reads_completed: u64,
    /// Reads served by the SRAM buffer.
    pub reads_from_sram: u64,
    /// Writes accepted into the write queue.
    pub writes_accepted: u64,
    /// Sum over completed reads of (completion − arrival), in cycles.
    pub sum_read_latency: u64,
    /// Row-buffer hit ratio over demand column commands.
    pub row_buffer: RatioCounter,
    /// Read arrivals rejected because the read queue was full.
    pub read_queue_full: u64,
    /// Write arrivals rejected because the write queue was full.
    pub write_queue_full: u64,
    /// ROP prefetch requests issued to DRAM.
    pub prefetches_issued: u64,
    /// ROP prefetch requests dropped because the refresh could not wait.
    pub prefetches_dropped: u64,
    /// Prefetched lines actually inserted into the buffer.
    pub prefetch_fills: u64,
    /// Reads that arrived during a refresh and missed the SRAM buffer.
    pub reads_blocked_by_refresh: u64,
    /// Cycles read requests spent blocked behind an in-flight refresh,
    /// summed over reads still queued when their scope's refresh
    /// completed (per read: completion − max(refresh start, arrival)).
    /// The head-to-head mechanism figures' central metric.
    pub refresh_blocked_cycles: u64,
    /// Total SRAM lookups performed for reads arriving during refreshes.
    pub sram_lookups: u64,
    /// SRAM lookup hits.
    pub sram_hits: u64,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    req: MemRequest,
    /// True once an ACT has been issued on behalf of this request (used
    /// for the row-buffer-hit statistic).
    acted: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueKind {
    Read,
    Write,
    Prefetch,
}

/// ROP state attached to the controller (engines are per rank, the SRAM
/// buffer is shared across the channel — ranks take turns).
#[derive(Debug)]
struct RopState {
    engines: Vec<RopEngine>,
    buffer: SramBuffer,
    /// Rank currently owning the buffer (decided at its drain start),
    /// cleared when its refresh completes.
    active_rank: Option<usize>,
    /// Per-rank flag: a positive prefetch decision whose candidates have
    /// not been generated yet (generation happens once the demand drain
    /// finishes, right before the refresh would issue).
    prefetch_pending: Vec<bool>,
    /// Per-rank (hits, lookups) for the refresh currently in flight.
    refresh_hits: Vec<u64>,
    refresh_lookups: Vec<u64>,
    /// Per-access SRAM energy in nJ (from the paper's Table III).
    access_energy_nj: f64,
    /// SRAM access latency in cycles.
    latency: Cycle,
}

/// Reusable per-tick scratch buffers. The scheduling loop runs every
/// simulated command-bus cycle; taking these out of the controller,
/// filling them, and putting them back keeps the steady-state hot path
/// allocation-free (capacities are retained across ticks).
/// One scheduling candidate, fully materialised at candidate-build time
/// so the scheduler's sort/scan passes run over plain contiguous memory
/// instead of chasing back into the request queues on every comparison.
#[derive(Debug, Clone, Copy)]
struct Cand {
    /// 0 = draining-rank demand, 1 = regular, 2 = ROP prefetch.
    tier: u8,
    /// Arrival cycle (FCFS age within a tier).
    arrival: Cycle,
    /// Queue holding the request.
    kind: QueueKind,
    /// Index within that queue.
    idx: usize,
    /// Global bank key: `rank * banks_per_rank + bank`.
    bank: u32,
    /// The request's row is open in its bank right now.
    hit: bool,
}

#[derive(Debug, Default)]
struct TickScratch {
    /// FR-FCFS candidates, in queue order.
    cands: Vec<Cand>,
    /// Per-slot "is draining" snapshot.
    draining: Vec<bool>,
    /// Per-slot admission gates: (blocked for regular requests,
    /// blocked even for drain-set/prefetch requests).
    gates: Vec<(bool, bool)>,
    /// Row-hit candidates (pass 1).
    hits: Vec<Cand>,
    /// Age-ordered candidates for the per-bank pass.
    ordered: Vec<Cand>,
    /// Per-bank "already owns a candidate" flags, indexed by the
    /// flattened bank key; cleared at the start of every per-bank pass.
    seen_banks: Vec<bool>,
    /// Refresh slots reported by the manager this tick.
    slots: Vec<usize>,
    /// Per-slot SARP scope: the subarray a slot's refresh round locks
    /// (None outside SARP, or when the slot is neither draining nor
    /// frozen). Requests to other subarrays are exempt from the slot's
    /// gates.
    sa_scope: Vec<Option<usize>>,
    /// Elastic debt snapshot (trace-only path).
    debts: Vec<u32>,
    /// Prefetch lines whose fill landed this tick.
    filled: Vec<u64>,
    /// Read ids blocked by a just-issued refresh.
    blocked: Vec<u64>,
}

impl TickScratch {
    /// Scratch pre-sized to the controller's hard occupancy bounds, so
    /// the per-cycle paths never grow these vectors: candidate lists
    /// are capped by total queue capacity, per-slot lists by the
    /// refresh-slot count, and the per-bank dedup list by the bank
    /// count. (ROP prefetch queues have no configured cap; the
    /// allowance below covers the paper's deepest configuration, and
    /// anything beyond it merely grows once.)
    fn with_bounds(queue_cap: usize, slots: usize, banks: usize) -> Self {
        TickScratch {
            cands: Vec::with_capacity(queue_cap),
            draining: Vec::with_capacity(slots),
            gates: Vec::with_capacity(slots),
            hits: Vec::with_capacity(queue_cap),
            ordered: Vec::with_capacity(queue_cap),
            seen_banks: vec![false; banks],
            slots: Vec::with_capacity(slots),
            sa_scope: Vec::with_capacity(slots),
            debts: Vec::with_capacity(slots),
            filled: Vec::with_capacity(queue_cap),
            blocked: Vec::with_capacity(queue_cap),
        }
    }
}

/// The memory controller for one channel.
#[derive(Debug)]
pub struct MemController {
    cfg: MemCtrlConfig,
    device: DramDevice,
    mapping: AddressMapping,
    refresh: RefreshManager,
    /// The refresh mechanism layered over the manager (AllBank, DARP,
    /// SARP or RAIDR). Kept as a separate field so the tick loop can
    /// borrow mechanism and manager disjointly.
    mech: Mechanism,
    /// Per-slot issue cycle of the in-flight refresh (`Cycle::MAX` when
    /// none, or when the round was skipped) — blocked-cycle accounting.
    refresh_started_at: Vec<Cycle>,
    /// Per-slot subarray scope of the in-flight refresh (SARP only).
    refresh_scope_sa: Vec<Option<usize>>,
    read_q: Vec<Queued>,
    write_q: Vec<Queued>,
    prefetch_q: Vec<Queued>,
    /// (buffer key, fill-ready cycle) for prefetch data in flight.
    pending_fills: Vec<(u64, Cycle)>,
    completions: Vec<Completion>,
    /// Per-rank drain sets: ids that must issue before the rank's REF.
    drain_sets: Vec<Vec<u64>>,
    rop: Option<RopState>,
    analysis: Vec<RefreshAnalysis>,
    write_drain: bool,
    next_id: u64,
    stats: MemCtrlStats,
    /// Controller-level trace sink (refresh/drain lifecycle events).
    trace: TraceBuffer,
    scratch: TickScratch,
    // Cold fields stay behind `stats`/`scratch`: inserting them
    // mid-struct shifts the hot tick fields across cache lines and
    // costs ~25% end-to-end throughput (perf_gate catches this).
    /// Opt-in (open-loop tail accounting): record the id of every read
    /// that overlaps a refresh freeze. Off by default so closed-loop
    /// runs never grow `blocked_ids`.
    track_blocked: bool,
    /// Ids of reads observed blocked by refresh since the last drain
    /// (may contain duplicates; consumers dedup).
    blocked_ids: Vec<u64>,
}

impl MemController {
    /// Builds a controller (and its DRAM device) from `cfg`.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: MemCtrlConfig) -> Self {
        cfg.validate().expect("invalid controller configuration");
        let device = DramDevice::new(cfg.dram.clone());
        let mapping = AddressMapping::new(cfg.dram.geometry, cfg.mapping);
        let ranks = cfg.dram.geometry.ranks;
        let banks = cfg.dram.geometry.banks_per_rank;
        // Refresh is managed per *slot*: one slot per rank in all-bank
        // mode, one per (rank, bank) in per-bank (REFpb) mode. Every slot
        // owes one refresh per tREFI; the manager staggers them.
        let slots = if cfg.per_bank_refresh {
            ranks * banks
        } else {
            ranks
        };
        let t_refi = cfg.dram.timing.t_refi();
        let t_rfc = if cfg.per_bank_refresh {
            cfg.dram.timing.t_rfc_pb
        } else {
            cfg.dram.timing.t_rfc()
        };
        let refresh = RefreshManager::with_policy(
            slots,
            t_refi,
            cfg.max_refresh_postpone,
            cfg.dram.refresh_enabled,
            cfg.refresh_policy,
        );
        let rop = cfg.rop.as_ref().map(|rc| {
            let mut engines: Vec<RopEngine> = (0..ranks)
                .map(|r| {
                    let mut c: RopConfig = rc.clone();
                    // Give each rank's throttle an independent stream.
                    c.seed = rc
                        .seed
                        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(r as u64 + 1));
                    RopEngine::new(c)
                })
                .collect();
            for (r, e) in engines.iter_mut().enumerate() {
                // Per rank: the earliest due among the rank's slots.
                let due = if cfg.per_bank_refresh {
                    (0..banks).map(|b| refresh.next_due(r * banks + b)).min()
                } else {
                    Some(refresh.next_due(r))
                };
                e.set_next_refresh_due(due.expect("at least one slot"));
            }
            RopState {
                buffer: SramBuffer::new(rc.buffer_capacity),
                engines,
                active_rank: None,
                prefetch_pending: vec![false; slots],
                refresh_hits: vec![0; slots],
                refresh_lookups: vec![0; slots],
                access_energy_nj: rc.sram_access_energy_nj(),
                latency: rc.sram_latency,
            }
        });
        let mech = Mechanism::from_config(&cfg);
        MemController {
            analysis: (0..slots).map(|_| RefreshAnalysis::new(t_rfc)).collect(),
            // Pre-sized to the hard bound (a drain set holds at most
            // every queued request) so the snapshot loop in
            // `handle_refresh_dues` never grows it mid-run.
            drain_sets: (0..slots)
                .map(|_| Vec::with_capacity(cfg.read_queue_capacity + cfg.write_queue_capacity))
                .collect(),
            device,
            mapping,
            refresh,
            mech,
            refresh_started_at: vec![Cycle::MAX; slots],
            refresh_scope_sa: vec![None; slots],
            read_q: Vec::with_capacity(cfg.read_queue_capacity),
            write_q: Vec::with_capacity(cfg.write_queue_capacity),
            prefetch_q: Vec::new(),
            pending_fills: Vec::new(),
            completions: Vec::new(),
            rop,
            write_drain: false,
            next_id: 0,
            track_blocked: false,
            blocked_ids: Vec::new(),
            stats: MemCtrlStats::default(),
            trace: TraceBuffer::new(),
            scratch: TickScratch::with_bounds(
                cfg.read_queue_capacity + cfg.write_queue_capacity + 128,
                slots,
                ranks * banks,
            ),
            cfg,
        }
    }

    /// Turns the event trace on or off across every layer the controller
    /// owns: its own lifecycle events, the DRAM device's command stream,
    /// the per-rank ROP engines, and the SRAM buffer.
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
        self.device.trace_mut().set_enabled(enabled);
        if let Some(rop) = &mut self.rop {
            for (r, e) in rop.engines.iter_mut().enumerate() {
                e.set_trace_rank(r);
                e.trace_mut().set_enabled(enabled);
            }
            rop.buffer.trace_mut().set_enabled(enabled);
        }
    }

    /// True when the event trace is being collected.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Drains every layer's buffered trace events into `sink` in the
    /// documented merge order: controller first, then the device, then
    /// the per-rank engines, then the SRAM buffer. Within one tick this
    /// puts refresh/drain transitions before the commands they caused and
    /// before the profiler-window events they opened.
    pub fn drain_trace(&mut self, sink: &mut impl EventSink) {
        self.trace.drain_into(sink);
        self.device.trace_mut().drain_into(sink);
        if let Some(rop) = &mut self.rop {
            for e in rop.engines.iter_mut() {
                e.trace_mut().drain_into(sink);
            }
            rop.buffer.trace_mut().drain_into(sink);
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &MemCtrlConfig {
        &self.cfg
    }

    /// The address mapping in force.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Controller statistics so far.
    pub fn stats(&self) -> &MemCtrlStats {
        &self.stats
    }

    /// Turns refresh-blocked read-id tracking on or off. Purely
    /// observational: scheduling is identical either way. The open-loop
    /// injector uses the drained ids to attribute tail latency to
    /// refresh; closed-loop runs leave this off so the id buffer never
    /// grows.
    pub fn set_track_refresh_blocked(&mut self, enabled: bool) {
        self.track_blocked = enabled;
        if !enabled {
            self.blocked_ids.clear();
        }
    }

    /// Appends the ids of reads observed blocked by refresh since the
    /// last drain and clears the internal buffer. Ids may repeat (a
    /// read can arrive during one freeze and still be queued at the
    /// next thaw); consumers dedup.
    pub fn drain_refresh_blocked_into(&mut self, out: &mut Vec<u64>) {
        out.append(&mut self.blocked_ids);
    }

    /// Number of refresh slots: ranks (all-bank mode) or rank×bank pairs
    /// (per-bank mode).
    pub fn refresh_slots(&self) -> usize {
        self.drain_sets.len()
    }

    #[inline]
    fn slot_rank(&self, slot: usize) -> usize {
        if self.cfg.per_bank_refresh {
            slot / self.cfg.dram.geometry.banks_per_rank
        } else {
            slot
        }
    }

    #[inline]
    fn slot_bank(&self, slot: usize) -> Option<usize> {
        if self.cfg.per_bank_refresh {
            Some(slot % self.cfg.dram.geometry.banks_per_rank)
        } else {
            None
        }
    }

    /// The refresh slot a request belongs to.
    // rop-lint: hot
    #[inline]
    fn addr_slot(&self, addr: &crate::address::DecodedAddr) -> usize {
        if self.cfg.per_bank_refresh {
            addr.rank * self.cfg.dram.geometry.banks_per_rank + addr.bank
        } else {
            addr.rank
        }
    }

    /// True while `slot`'s refresh blocks this *particular* request at
    /// `now`. Identical to [`Self::slot_frozen`] except under SARP,
    /// where a subarray-scoped refresh only blocks requests whose row
    /// lives in the frozen subarray.
    // rop-lint: hot
    #[inline]
    fn request_frozen(&self, slot: usize, addr: &crate::address::DecodedAddr, now: Cycle) -> bool {
        if !self.slot_frozen(slot, now) {
            return false;
        }
        match self.device.frozen_subarray(addr.rank, addr.bank, now) {
            // Subarray-scoped freeze: only the matching subarray blocks.
            Some(sa) => self.cfg.dram.geometry.subarray_of_row(addr.row) == sa,
            // Bank- or rank-wide freeze blocks everything in scope.
            None => true,
        }
    }

    /// True while `slot`'s refresh holds its scope frozen at `now`.
    #[inline]
    fn slot_frozen(&self, slot: usize, now: Cycle) -> bool {
        if self.cfg.per_bank_refresh {
            self.device.is_bank_refreshing(
                self.slot_rank(slot),
                slot % self.cfg.dram.geometry.banks_per_rank,
                now,
            )
        } else {
            self.device.is_rank_refreshing(slot, now)
        }
    }

    /// Refreshes the engine's notion of its rank's next due time (the
    /// earliest among the rank's slots).
    fn update_engine_due(&mut self, rank: usize) {
        let banks = self.cfg.dram.geometry.banks_per_rank;
        let due = if self.cfg.per_bank_refresh {
            (0..banks)
                .map(|b| self.refresh.next_due(rank * banks + b))
                .min()
                .expect("banks > 0")
        } else {
            self.refresh.next_due(rank)
        };
        if let Some(rop) = &mut self.rop {
            rop.engines[rank].set_next_refresh_due(due);
        }
    }

    /// Refreshes issued on `rank` (all its slots in per-bank mode).
    pub fn refreshes_issued(&self, rank: usize) -> u64 {
        if self.cfg.per_bank_refresh {
            let banks = self.cfg.dram.geometry.banks_per_rank;
            (0..banks)
                .map(|b| self.refresh.issued(rank * banks + b))
                .sum()
        } else {
            self.refresh.issued(rank)
        }
    }

    /// The refresh mechanism in force (AllBank, DARP, SARP or RAIDR).
    pub fn mechanism(&self) -> &Mechanism {
        &self.mech
    }

    /// Refresh rounds skipped outright (RAIDR: no retention bin due).
    pub fn refreshes_skipped(&self) -> u64 {
        self.mech.refreshes_skipped()
    }

    /// Refreshes pulled in ahead of their due time (DARP).
    pub fn refreshes_pulled_in(&self) -> u64 {
        self.mech.refreshes_pulled_in()
    }

    /// ROP phase of `rank`'s engine, if ROP is enabled.
    pub fn rop_phase(&self, rank: usize) -> Option<RopPhase> {
        self.rop.as_ref().map(|r| r.engines[rank].phase())
    }

    /// ROP engine statistics for `rank`, if ROP is enabled.
    pub fn rop_engine_stats(&self, rank: usize) -> Option<rop_core::EngineStats> {
        self.rop.as_ref().map(|r| r.engines[rank].stats())
    }

    /// SRAM buffer (writes, reads-served) counts, if ROP is enabled.
    pub fn rop_buffer_counts(&self) -> Option<(u64, u64)> {
        self.rop
            .as_ref()
            .map(|r| (r.buffer.write_count(), r.buffer.read_count()))
    }

    /// (λ, β) of `rank`'s engine, if ROP is enabled and trained.
    pub fn rop_probabilities(&self, rank: usize) -> Option<(f64, f64)> {
        self.rop
            .as_ref()
            .map(|r| (r.engines[rank].lambda(), r.engines[rank].beta()))
    }

    /// The refresh-analysis instrumentation for `rank` (finalise before
    /// reading: [`Self::finalize_analysis`]).
    pub fn analysis(&self, rank: usize) -> &RefreshAnalysis {
        &self.analysis[rank]
    }

    /// Folds in-flight refreshes into the analysis (call at end of run).
    pub fn finalize_analysis(&mut self) {
        for a in &mut self.analysis {
            a.finalize_current();
        }
    }

    /// Number of read-queue entries currently pending.
    pub fn read_queue_len(&self) -> usize {
        self.read_q.len()
    }

    /// Number of write-queue entries currently pending.
    pub fn write_queue_len(&self) -> usize {
        self.write_q.len()
    }

    /// Full energy breakdown: DRAM (device model) + ROP SRAM accesses.
    pub fn energy_breakdown(&mut self, now: Cycle) -> EnergyBreakdown {
        let mut b = self.device.energy_breakdown(now);
        if let Some(rop) = &self.rop {
            let accesses = rop.buffer.read_count() + rop.buffer.write_count();
            b.sram_nj = accesses as f64 * rop.access_energy_nj;
        }
        b
    }

    /// Drains the accumulated read completions.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Allocation-free variant of [`Self::take_completions`]: appends
    /// the accumulated completions to `out` and clears the internal
    /// buffer *in place*, so both sides keep their capacity across the
    /// simulation's steady state.
    // rop-lint: hot
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.extend_from_slice(&self.completions);
        self.completions.clear();
    }

    /// Enqueues a read for `line_addr`. Returns the request id, or `None`
    /// when the controller cannot accept it this cycle (queue full — the
    /// core must retry). Reads arriving while their rank is frozen consult
    /// the SRAM buffer and may complete without touching DRAM.
    pub fn enqueue_read(&mut self, line_addr: u64, core: usize, now: Cycle) -> Option<u64> {
        let addr = self.mapping.decode(line_addr);
        let slot = self.addr_slot(&addr);
        let refreshing = self.request_frozen(slot, &addr, now);
        if let Some(rop) = &mut self.rop {
            rop.buffer.set_trace_cycle(now);
        }

        // The SRAM buffer answers whenever it holds the line — during the
        // refresh that is the whole point; before it, serving from SRAM
        // makes each prefetch *substitute* the demand DRAM read it
        // anticipated, so prefetching stays bandwidth-neutral. The
        // hit-rate statistics that drive the Training fallback only count
        // lookups during frozen cycles (the paper's Figure 9 metric).
        if let Some(rop) = &mut self.rop {
            if rop.buffer.is_powered() {
                if refreshing {
                    rop.refresh_lookups[slot] += 1;
                    self.stats.sram_lookups += 1;
                }
                let hit = if refreshing {
                    rop.buffer.lookup(line_addr)
                } else {
                    rop.buffer.serve_quiet(line_addr)
                };
                if hit {
                    if refreshing {
                        rop.refresh_hits[slot] += 1;
                        self.stats.sram_hits += 1;
                    }
                    let latency = rop.latency;
                    // Served from SRAM: no DRAM involvement at all.
                    let id = self.alloc_id();
                    let done_at = now + latency;
                    self.completions.push(Completion {
                        id,
                        core,
                        done_at,
                        from_sram: true,
                    });
                    self.stats.reads_completed += 1;
                    self.stats.reads_from_sram += 1;
                    self.stats.sum_read_latency += latency;
                    self.note_arrival(addr.rank, addr.bank, addr, true, now);
                    return Some(id);
                }
            }
        }

        if self.read_q.len() >= self.cfg.read_queue_capacity {
            self.stats.read_queue_full += 1;
            return None;
        }
        let id = self.alloc_id();
        if refreshing {
            self.stats.reads_blocked_by_refresh += 1;
            if self.track_blocked {
                self.blocked_ids.push(id);
            }
        }
        self.note_arrival(addr.rank, addr.bank, addr, true, now);
        self.read_q.push(Queued {
            req: MemRequest {
                id,
                line_addr,
                addr,
                is_write: false,
                arrival: now,
                core,
                is_prefetch: false,
            },
            acted: false,
        });
        Some(id)
    }

    /// Enqueues a write (store or LLC writeback). Returns false when the
    /// write queue is full (the core must retry).
    pub fn enqueue_write(&mut self, line_addr: u64, core: usize, now: Cycle) -> bool {
        if self.write_q.len() >= self.cfg.write_queue_capacity {
            self.stats.write_queue_full += 1;
            return false;
        }
        let addr = self.mapping.decode(line_addr);
        let id = self.alloc_id();
        self.note_arrival(addr.rank, addr.bank, addr, false, now);
        self.write_q.push(Queued {
            req: MemRequest {
                id,
                line_addr,
                addr,
                is_write: true,
                arrival: now,
                core,
                is_prefetch: false,
            },
            acted: false,
        });
        self.stats.writes_accepted += 1;
        true
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Records an accepted demand arrival with the analysis and ROP hooks.
    fn note_arrival(
        &mut self,
        rank: usize,
        bank: usize,
        addr: crate::address::DecodedAddr,
        is_read: bool,
        now: Cycle,
    ) {
        let slot = self.addr_slot(&addr);
        self.analysis[slot].note_arrival(now, is_read);
        self.mech.on_bank_activity(slot, now);
        if let Some(rop) = &mut self.rop {
            let line_in_bank = addr.line_in_bank(self.cfg.dram.geometry.lines_per_row);
            rop.engines[rank].note_access(bank, line_in_bank, is_read, now);
        }
    }

    /// Advances the controller at `now`. Returns the next cycle at which
    /// another call can possibly make progress.
    // rop-lint: hot
    pub fn tick(&mut self, now: Cycle) -> Cycle {
        if let Some(rop) = &mut self.rop {
            rop.buffer.set_trace_cycle(now);
        }
        // 1. Prefetch data arriving from DRAM fills the SRAM buffer.
        self.apply_fills(now);

        // 2. Refresh bookkeeping.
        self.handle_refresh_completions(now);
        self.handle_refresh_dues(now);

        // 3. Write-drain hysteresis.
        if self.write_q.len() >= self.cfg.write_drain_high {
            self.write_drain = true;
        } else if self.write_q.len() <= self.cfg.write_drain_low {
            self.write_drain = false;
        }

        // 4. One command this cycle: refresh preparation first, then the
        //    request scheduler.
        let mut earliest_hint = Cycle::MAX;
        if let Some(hint) = self.try_refresh_prep(now) {
            match hint {
                Ok(()) => return now.saturating_add(1), // command issued
                Err(e) => earliest_hint = earliest_hint.min(e),
            }
        }
        match self.schedule(now) {
            Ok(()) => return now.saturating_add(1),
            Err(e) => earliest_hint = earliest_hint.min(e),
        }

        // Nothing issued: compute the fast-forward hint.
        if let Some(e) = self.mech.next_event(&self.refresh, now) {
            earliest_hint = earliest_hint.min(e);
        }
        if let Some(&(_, at)) = self.pending_fills.iter().min_by_key(|&&(_, at)| at) {
            earliest_hint = earliest_hint.min(at.max(now.saturating_add(1)));
        }
        earliest_hint.max(now.saturating_add(1))
    }

    // rop-lint: hot
    fn apply_fills(&mut self, now: Cycle) {
        if self.rop.is_none() || self.pending_fills.is_empty() {
            return;
        }
        let rop = self.rop.as_mut().expect("checked above");
        let mut filled = std::mem::take(&mut self.scratch.filled);
        filled.clear();
        self.pending_fills.retain(|&(key, at)| {
            if at <= now {
                rop.buffer.insert(key);
                filled.push(key);
                false
            } else {
                true
            }
        });
        self.stats.prefetch_fills += filled.len() as u64;
        if filled.is_empty() {
            self.scratch.filled = filled;
            return;
        }
        // Late fills: prefetch data issued just before REF can land after
        // the rank froze. Reads already swept (and skipped as in-flight)
        // get matched against the arriving lines, exactly as an MSHR
        // would match a fill against its waiting queue.
        let latency = rop.latency;
        let mut i = 0;
        while i < self.read_q.len() {
            let req = self.read_q[i].req;
            let slot = self.addr_slot(&req.addr);
            if self.request_frozen(slot, &req.addr, now) && filled.contains(&req.line_addr) {
                let rop = self.rop.as_mut().expect("rop enabled");
                rop.refresh_lookups[slot] += 1;
                rop.refresh_hits[slot] += 1;
                let served = rop.buffer.lookup(req.line_addr);
                debug_assert!(served, "line was just inserted");
                self.stats.sram_lookups += 1;
                self.stats.sram_hits += 1;
                self.read_q.remove(i);
                self.completions.push(Completion {
                    id: req.id,
                    core: req.core,
                    done_at: now.saturating_add(latency),
                    from_sram: true,
                });
                self.stats.reads_completed += 1;
                self.stats.reads_from_sram += 1;
                self.stats.sum_read_latency += now.saturating_add(latency) - req.arrival;
            } else {
                i += 1;
            }
        }
        self.scratch.filled = filled;
    }

    // rop-lint: hot
    fn handle_refresh_completions(&mut self, now: Cycle) {
        let mut slots = std::mem::take(&mut self.scratch.slots);
        slots.clear();
        self.refresh.poll_complete_into(now, &mut slots);
        for &slot in &slots {
            let rank = self.slot_rank(slot);
            let scope_bank = self.slot_bank(slot);
            // A skipped RAIDR round never started (sentinel stays at
            // `Cycle::MAX`): no RefreshEnd, nothing was blocked.
            let started = self.refresh_started_at[slot];
            let scope_sa = self.refresh_scope_sa[slot];
            self.refresh_started_at[slot] = Cycle::MAX;
            self.refresh_scope_sa[slot] = None;
            if started != Cycle::MAX {
                self.trace.emit(|| TraceEvent::RefreshEnd {
                    cycle: now,
                    rank,
                    bank: scope_bank,
                });
            }
            // Blocked-cycle accounting: reads still queued for the
            // thawed scope were stalled from max(refresh start,
            // arrival) until now. Purely observational — identical
            // scheduling either way.
            if started != Cycle::MAX {
                let mut blocked = 0u64;
                let mut ids = std::mem::take(&mut self.blocked_ids);
                for q in &self.read_q {
                    if self.addr_slot(&q.req.addr) != slot {
                        continue;
                    }
                    if let Some(sa) = scope_sa {
                        if self.cfg.dram.geometry.subarray_of_row(q.req.addr.row) != sa {
                            continue;
                        }
                    }
                    blocked += now - started.max(q.req.arrival);
                    if self.track_blocked {
                        ids.push(q.req.id);
                    }
                }
                self.blocked_ids = ids;
                // A u64 counter of blocked cycles cannot overflow in any
                // reachable run length. // rop-lint: allow(cycle-cast)
                self.stats.refresh_blocked_cycles += blocked;
            }
            if let Some(rop) = &mut self.rop {
                let hits = rop.refresh_hits[slot];
                let lookups = rop.refresh_lookups[slot];
                let transition = rop.engines[rank].refresh_completed(now, hits, lookups);
                match transition {
                    PhaseTransition::StartObserving | PhaseTransition::StartTraining => {
                        // Buffer power follows the union of engine phases:
                        // on if any rank is out of Training.
                        let any_active =
                            rop.engines.iter().any(|e| e.phase() != RopPhase::Training);
                        if any_active {
                            rop.buffer.power_on();
                        } else {
                            rop.buffer.power_off();
                        }
                    }
                    PhaseTransition::None => {}
                }
                // Lazy buffer handoff: the lines stay resident (serving
                // demand hits, which is what keeps prefetching
                // bandwidth-neutral) until another rank claims the buffer
                // for its own refresh, or the buffer powers off.
                if !rop.buffer.is_powered() {
                    rop.active_rank = None;
                    self.pending_fills.clear();
                }
                self.update_engine_due(rank);
            }
        }
        self.scratch.slots = slots;
    }

    // rop-lint: hot
    fn handle_refresh_dues(&mut self, now: Cycle) {
        // `busy` for the Elastic policy: does the slot's scope have
        // pending demand?
        let per_bank = self.cfg.per_bank_refresh;
        let banks = self.cfg.dram.geometry.banks_per_rank;
        let read_q = &self.read_q;
        let write_q = &self.write_q;
        let busy = |slot: usize| {
            read_q.iter().chain(write_q.iter()).any(|q| {
                if per_bank {
                    q.req.addr.rank * banks + q.req.addr.bank == slot
                } else {
                    q.req.addr.rank == slot
                }
            })
        };
        // Elastic-policy debt accrues inside `poll_due`; snapshot it so a
        // postponement can be traced (only when the trace is live).
        let mut debts_before = std::mem::take(&mut self.scratch.debts);
        debts_before.clear();
        if self.trace.is_enabled() {
            debts_before.extend((0..self.refresh_slots()).map(|s| self.refresh.debt(s)));
        }
        let mut due = std::mem::take(&mut self.scratch.slots);
        due.clear();
        self.mech
            .poll_due(&mut self.refresh, now, &busy, self.write_drain, &mut due);
        for &slot in &due {
            let rank = self.slot_rank(slot);
            let shape = self.mech.round_shape(&self.refresh, slot);
            // RAIDR rounds with no retention bin due never touch the
            // bus: the slot cycles immediately (no drain, no freeze).
            if let RoundShape::Skip { round } = shape {
                self.mech.on_refresh_skipped(&mut self.refresh, slot, now);
                self.trace.emit(|| TraceEvent::RetentionRound {
                    cycle: now,
                    rank,
                    round,
                    covers_128: false,
                    covers_256: false,
                });
                continue;
            }
            self.trace
                .emit(|| TraceEvent::DrainStart { cycle: now, rank });
            // Snapshot the drain set: everything queued for this slot's
            // scope (rank, or single bank in per-bank mode; under SARP
            // only the refreshing subarray needs to drain — the rest of
            // the bank keeps flowing through the refresh). The slot's
            // Vec is refilled in place, keeping its capacity.
            let sa_filter = match shape {
                RoundShape::Subarray { subarray } => Some(subarray),
                _ => None,
            };
            let geom = self.cfg.dram.geometry;
            let set = &mut self.drain_sets[slot];
            set.clear();
            for q in self.read_q.iter().chain(self.write_q.iter()) {
                let qslot = if per_bank {
                    q.req.addr.rank * banks + q.req.addr.bank
                } else {
                    q.req.addr.rank
                };
                if qslot == slot
                    && sa_filter.is_none_or(|sa| geom.subarray_of_row(q.req.addr.row) == sa)
                {
                    set.push(q.req.id);
                }
            }

            if let Some(rop) = &mut self.rop {
                // The buffer is claimable when free, already owned by this
                // slot, or owned by a slot whose refresh cycle is over
                // (its lines are only serving residual demand hits).
                let claimable = match rop.active_rank {
                    None => true,
                    Some(owner) if owner == slot => true,
                    Some(owner) => self.refresh.state(owner) == RefreshState::Idle,
                };
                if claimable
                    && rop.buffer.is_powered()
                    && rop.engines[rank].decide_prefetch_gate(now)
                {
                    if rop.active_rank != Some(slot) && rop.active_rank.is_some() {
                        // Taking over from another slot: its lines are
                        // dead weight for this refresh.
                        rop.buffer.invalidate_all();
                        self.pending_fills.clear();
                    }
                    // Candidates are generated later, once the drain has
                    // emptied the slot's demand queue (see
                    // `try_refresh_prep`): the drained requests move the
                    // stream, and extrapolating now would go stale.
                    rop.active_rank = Some(slot);
                    rop.prefetch_pending[slot] = true;
                }
            }
        }
        if !debts_before.is_empty() {
            for (slot, &before) in debts_before.iter().enumerate() {
                let debt = u64::from(self.refresh.debt(slot));
                if debt > u64::from(before) {
                    let rank = self.slot_rank(slot);
                    self.trace.emit(|| TraceEvent::RefreshPostponed {
                        cycle: now,
                        rank,
                        debt,
                    });
                }
            }
        }
        self.scratch.slots = due;
        self.scratch.debts = debts_before;
    }

    /// Generates the pending prefetch candidates for `rank` and queues
    /// them as prefetch requests. Called exactly once per positive
    /// decision, at the moment the demand drain completes.
    fn fill_prefetch_queue(&mut self, slot: usize, now: Cycle) {
        let rank = self.slot_rank(slot);
        let bank = self.slot_bank(slot);
        let grace = self.cfg.prefetch_grace;
        let capacity = self
            .cfg
            .rop
            .as_ref()
            .map(|r| r.buffer_capacity)
            .unwrap_or(0);
        let Some(rop) = &mut self.rop else { return };
        rop.prefetch_pending[slot] = false;
        // Lead by the full grace window: the fill of a busy channel takes
        // most of the grace, so candidates extrapolate to where the
        // stream will be when the rank actually freezes. Lines between
        // LastAddr and the lead are served by DRAM before the freeze, so
        // under-coverage there costs nothing.
        let cands = match bank {
            // Per-bank refresh: only `bank` freezes (for tRFCpb, a
            // fraction of tRFC), so a fraction of the buffer suffices.
            Some(b) => rop.engines[rank].generate_candidates_for_bank(
                b,
                (capacity / 4).max(8).min(capacity.max(1)),
                now,
                grace,
            ),
            None => rop.engines[rank].generate_candidates(now, grace),
        };
        if std::env::var_os("ROP_DEBUG").is_some() {
            let banks = self.cfg.dram.geometry.banks_per_rank;
            let mut per_bank = vec![0usize; banks];
            let mut ranges: Vec<(u64, u64)> = vec![(u64::MAX, 0); banks];
            for c in &cands {
                per_bank[c.bank] += 1;
                ranges[c.bank].0 = ranges[c.bank].0.min(c.line_offset);
                ranges[c.bank].1 = ranges[c.bank].1.max(c.line_offset);
            }
            eprintln!(
                "[rop] t={now} rank={rank} generate {} candidates, per-bank {per_bank:?} ranges {ranges:?}",
                cands.len()
            );
        }
        for cand in cands {
            let line_addr = self
                .mapping
                .encode_bank_line(rank, cand.bank, cand.line_offset);
            let addr = self.mapping.decode(line_addr);
            let id = self.next_id;
            self.next_id += 1;
            self.prefetch_q.push(Queued {
                req: MemRequest {
                    id,
                    line_addr,
                    addr,
                    is_write: false,
                    arrival: now,
                    core: usize::MAX,
                    is_prefetch: true,
                },
                acted: false,
            });
            self.stats.prefetches_issued += 1;
        }
    }

    /// True when `slot`'s snapshot of demand requests has been issued (or
    /// the postpone deadline forces the refresh).
    fn demand_drained(&self, slot: usize, now: Cycle) -> bool {
        self.refresh.drain_deadline_passed(slot, now) || self.drain_sets[slot].is_empty()
    }

    /// True when `slot`'s drain obligations are met: the demand drain set
    /// has issued, and its prefetch requests have either issued or used
    /// up their opportunistic grace window.
    fn drain_complete(&self, slot: usize, now: Cycle) -> bool {
        if self.refresh.drain_deadline_passed(slot, now) {
            return true;
        }
        if !self.demand_drained(slot, now) {
            return false;
        }
        let prefetch_done = (!self
            .prefetch_q
            .iter()
            .any(|q| self.addr_slot(&q.req.addr) == slot)
            && !self.rop.as_ref().is_some_and(|r| r.prefetch_pending[slot]))
            || self
                .refresh
                .draining_longer_than(slot, now, self.cfg.prefetch_grace);
        prefetch_done
    }

    /// Refresh preparation: for a Draining rank whose drain is complete,
    /// precharge open banks and then issue REF. `Ok(())` = command issued;
    /// `Err(earliest)` = nothing issuable now, retry at `earliest`.
    fn try_refresh_prep(&mut self, now: Cycle) -> Option<Result<(), Cycle>> {
        let mut earliest = Cycle::MAX;
        let mut any = false;
        for slot in 0..self.refresh_slots() {
            if !matches!(self.refresh.state(slot), RefreshState::Draining { .. }) {
                continue;
            }
            let rank = self.slot_rank(slot);
            // The demand drain just finished: now is the moment to
            // extrapolate the stream into prefetch candidates.
            if self.demand_drained(slot, now)
                && self.rop.as_ref().is_some_and(|r| r.prefetch_pending[slot])
                && !self.refresh.drain_deadline_passed(slot, now)
            {
                self.fill_prefetch_queue(slot, now);
            }
            if !self.drain_complete(slot, now) {
                continue;
            }
            any = true;
            // What this round puts on the bus is the mechanism's call.
            let shape = self.mech.round_shape(&self.refresh, slot);
            let sa_target = match shape {
                RoundShape::Subarray { subarray } => Some(subarray),
                _ => None,
            };
            // Close any open bank in the refresh scope (a single bank in
            // per-bank mode, the whole rank otherwise). Under SARP only
            // a row open in the *target* subarray needs closing; rows in
            // sibling subarrays stay open through the refresh.
            let banks = self.cfg.dram.geometry.banks_per_rank;
            let (scope_lo, scope_hi) = match self.slot_bank(slot) {
                Some(b) => (b, b + 1),
                None => (0, banks),
            };
            let mut all_idle = true;
            for bank in scope_lo..scope_hi {
                if let Some(row) = self.device.open_row(rank, bank) {
                    if sa_target.is_some_and(|sa| self.device.subarray_of_row(row) != sa) {
                        continue;
                    }
                    all_idle = false;
                    let cmd = Command::Precharge { rank, bank };
                    match self.device.earliest_issue(&cmd, now) {
                        Ok(e) if e <= now => {
                            self.device.issue(&cmd, now);
                            return Some(Ok(()));
                        }
                        Ok(e) => earliest = earliest.min(e),
                        Err(_) => {}
                    }
                }
            }
            if all_idle {
                let issued = match shape {
                    RoundShape::Standard => {
                        let cmd = match self.slot_bank(slot) {
                            Some(bank) => Command::RefreshBank { rank, bank },
                            None => Command::Refresh { rank },
                        };
                        match self.device.earliest_issue(&cmd, now) {
                            Ok(e) if e <= now => Some(self.device.issue(&cmd, now)),
                            Ok(e) => {
                                earliest = earliest.min(e);
                                None
                            }
                            Err(_) => None,
                        }
                    }
                    RoundShape::Subarray { subarray } => {
                        let bank = self.slot_bank(slot).expect("SARP refresh is per-bank");
                        match self
                            .device
                            .earliest_subarray_refresh(rank, bank, subarray, now)
                        {
                            Ok(e) if e <= now => Some(
                                self.device
                                    .try_issue_subarray_refresh(rank, bank, subarray, now)
                                    .expect("legal at its earliest-issue cycle"),
                            ),
                            Ok(e) => {
                                earliest = earliest.min(e);
                                None
                            }
                            Err(_) => None,
                        }
                    }
                    RoundShape::Scaled {
                        duration,
                        round,
                        covers_128,
                        covers_256,
                    } => match self.device.earliest_issue(&Command::Refresh { rank }, now) {
                        Ok(e) if e <= now => {
                            let o = self
                                .device
                                .try_issue_refresh_scaled(rank, now, duration)
                                .expect("legal at its earliest-issue cycle");
                            self.trace.emit(|| TraceEvent::RetentionRound {
                                cycle: now,
                                rank,
                                round,
                                covers_128,
                                covers_256,
                            });
                            Some(o)
                        }
                        Ok(e) => {
                            earliest = earliest.min(e);
                            None
                        }
                        Err(_) => None,
                    },
                    // Skips resolve at due time, never reach Draining.
                    RoundShape::Skip { .. } => {
                        unreachable!("skipped round entered drain") // rop-lint: allow(no-panic)
                    }
                };
                if let Some(outcome) = issued {
                    self.mech
                        .on_refresh_issued(&mut self.refresh, slot, now, outcome.completes_at);
                    self.refresh_started_at[slot] = now;
                    self.refresh_scope_sa[slot] = sa_target;
                    self.analysis[slot].refresh_started(now);
                    let scope_bank = self.slot_bank(slot);
                    self.trace
                        .emit(|| TraceEvent::DrainEnd { cycle: now, rank });
                    self.trace.emit(|| TraceEvent::RefreshStart {
                        cycle: now,
                        rank,
                        bank: scope_bank,
                        subarray: sa_target,
                    });
                    if let Some(rop) = &mut self.rop {
                        rop.refresh_hits[slot] = 0;
                        rop.refresh_lookups[slot] = 0;
                        rop.prefetch_pending[slot] = false;
                        rop.engines[rank].refresh_started_scoped(now, scope_bank);
                        // Prefetches for this slot that have not issued
                        // can no longer help; drop them.
                        let before = self.prefetch_q.len();
                        let per_bank = self.cfg.per_bank_refresh;
                        let banks = self.cfg.dram.geometry.banks_per_rank;
                        self.prefetch_q.retain(|q| {
                            let qslot = if per_bank {
                                q.req.addr.rank * banks + q.req.addr.bank
                            } else {
                                q.req.addr.rank
                            };
                            qslot != slot
                        });
                        self.stats.prefetches_dropped += (before - self.prefetch_q.len()) as u64;
                        if std::env::var_os("ROP_DEBUG").is_some() {
                            eprintln!(
                                    "[rop] t={now} slot={slot} REF: buffer={} pending_fills={} dropped={}",
                                    rop.buffer.len(),
                                    self.pending_fills.len(),
                                    before - self.prefetch_q.len()
                                );
                        }
                    }
                    self.sweep_blocked_reads(slot, now);
                    return Some(Ok(()));
                }
            }
        }
        if any {
            Some(Err(earliest))
        } else {
            None
        }
    }

    /// At refresh issue, reads still queued for the frozen rank are
    /// blocked for the whole `tRFC`. They count toward the blocked-read
    /// analysis (`A` side), and with ROP enabled they get an SRAM-buffer
    /// lookup: hits complete from SRAM immediately, misses wait out the
    /// refresh in the queue.
    fn sweep_blocked_reads(&mut self, slot: usize, now: Cycle) {
        let rank = self.slot_rank(slot);
        // Under SARP only reads aimed at the refreshing subarray are
        // blocked; siblings keep flowing and are not swept.
        let scope_sa = self.refresh_scope_sa[slot];
        let geom = self.cfg.dram.geometry;
        let mut blocked = std::mem::take(&mut self.scratch.blocked);
        blocked.clear();
        blocked.extend(
            self.read_q
                .iter()
                .filter(|q| {
                    self.addr_slot(&q.req.addr) == slot
                        && scope_sa.is_none_or(|sa| geom.subarray_of_row(q.req.addr.row) == sa)
                })
                .map(|q| q.req.id),
        );
        if blocked.is_empty() {
            self.scratch.blocked = blocked;
            return;
        }
        if std::env::var_os("ROP_DEBUG").is_some() {
            let lpr = self.cfg.dram.geometry.lines_per_row;
            let preview: Vec<_> = self
                .read_q
                .iter()
                .filter(|q| self.addr_slot(&q.req.addr) == slot)
                .take(6)
                .map(|q| {
                    let in_buf = self
                        .rop
                        .as_ref()
                        .map(|r| r.buffer.contains(q.req.line_addr))
                        .unwrap_or(false);
                    (q.req.addr.bank, q.req.addr.line_in_bank(lpr), in_buf)
                })
                .collect();
            eprintln!(
                "[rop] t={now} slot={slot} sweep {} blocked (bank, off, in_buf): {preview:?}",
                blocked.len()
            );
        }
        self.analysis[slot].note_blocked_at_refresh_start(blocked.len() as u64);
        let Some(rop) = &mut self.rop else {
            self.stats.reads_blocked_by_refresh += blocked.len() as u64;
            if self.track_blocked {
                self.blocked_ids.extend_from_slice(&blocked);
            }
            self.scratch.blocked = blocked;
            return;
        };
        rop.engines[rank].note_blocked_queued(blocked.len() as u64);
        if !rop.buffer.is_powered() {
            // Training phase: the buffer is off, nothing can be served.
            self.stats.reads_blocked_by_refresh += blocked.len() as u64;
            if self.track_blocked {
                self.blocked_ids.extend_from_slice(&blocked);
            }
            self.scratch.blocked = blocked;
            return;
        }
        let latency = rop.latency;
        for &id in &blocked {
            let idx = self
                .read_q
                .iter()
                .position(|q| q.req.id == id)
                .expect("id collected above");
            let req = self.read_q[idx].req;
            // The line may still be in flight from a just-issued prefetch;
            // defer judgement — `apply_fills` re-matches it on arrival.
            if self
                .pending_fills
                .iter()
                .any(|&(key, _)| key == req.line_addr)
            {
                continue;
            }
            rop.refresh_lookups[slot] += 1;
            self.stats.sram_lookups += 1;
            if rop.buffer.lookup(req.line_addr) {
                rop.refresh_hits[slot] += 1;
                self.stats.sram_hits += 1;
                self.read_q.remove(idx);
                self.completions.push(Completion {
                    id: req.id,
                    core: req.core,
                    done_at: now.saturating_add(latency),
                    from_sram: true,
                });
                self.stats.reads_completed += 1;
                self.stats.reads_from_sram += 1;
                self.stats.sum_read_latency += now.saturating_add(latency) - req.arrival;
            } else {
                self.stats.reads_blocked_by_refresh += 1;
                if self.track_blocked {
                    self.blocked_ids.push(id);
                }
            }
        }
        self.scratch.blocked = blocked;
    }

    /// True when requests in `slot`'s scope must not be issued (scope
    /// frozen, or quiescing for an imminent refresh).
    // rop-lint: hot
    fn slot_blocked(&self, slot: usize, now: Cycle, in_drain_set: bool) -> bool {
        if self.slot_frozen(slot, now) {
            return true;
        }
        match self.refresh.state(slot) {
            RefreshState::Draining { .. } => {
                // Demand keeps flowing through the drain and the prefetch
                // burst (prefetches yield to it on the command bus); only
                // the final precharge-and-REF stage quiesces the scope.
                self.drain_complete(slot, now) && !in_drain_set
            }
            _ => false,
        }
    }

    /// Subarray scope of `slot`'s current freeze/quiesce, when the
    /// mechanism refreshes at subarray granularity. Requests to rows
    /// *outside* the returned subarray are exempt from the slot's
    /// admission gates (SARP's whole point: siblings stay accessible).
    // rop-lint: hot
    fn slot_sa_scope(&self, slot: usize, now: Cycle) -> Option<usize> {
        if !matches!(self.mech, Mechanism::Sarp(_)) {
            return None;
        }
        let rank = self.slot_rank(slot);
        let bank = self.slot_bank(slot)?;
        if self.slot_frozen(slot, now) {
            return self.device.frozen_subarray(rank, bank, now);
        }
        if matches!(self.refresh.state(slot), RefreshState::Draining { .. }) {
            if let RoundShape::Subarray { subarray } = self.mech.round_shape(&self.refresh, slot) {
                return Some(subarray);
            }
        }
        None
    }

    /// FR-FCFS scheduling. `Ok(())` = one command issued; `Err(earliest)`
    /// = nothing ready, next possible issue at `earliest`.
    ///
    /// This runs every command-bus cycle, so its working sets live in
    /// [`TickScratch`] — taken out here, refilled, and put back, which
    /// keeps the steady-state loop allocation-free.
    // rop-lint: hot
    fn schedule(&mut self, now: Cycle) -> Result<(), Cycle> {
        let mut s = std::mem::take(&mut self.scratch);
        let result = self.schedule_with(now, &mut s);
        self.scratch = s;
        result
    }

    // rop-lint: hot
    fn schedule_with(&mut self, now: Cycle, s: &mut TickScratch) -> Result<(), Cycle> {
        // Tier 0: draining-rank demand (must issue before its REF);
        // tier 1: regular traffic; tier 2: ROP prefetches — strictly
        // opportunistic, they only get bus slots no demand request can
        // use this cycle (§IV-D's "minimise interference with demand
        // requests").
        //
        // Candidates are materialised once — tier, arrival, bank key
        // and row-hit flag — so the three passes below sort and scan
        // plain arrays without re-deriving keys through the queues on
        // every comparison. Nothing mutates controller state until a
        // command actually issues (at which point we return), so the
        // snapshot stays valid for the whole call.
        s.cands.clear();
        s.draining.clear();
        s.gates.clear();
        s.sa_scope.clear();
        for slot in 0..self.refresh_slots() {
            s.draining.push(matches!(
                self.refresh.state(slot),
                RefreshState::Draining { .. }
            ));
            s.gates.push((
                self.slot_blocked(slot, now, false),
                self.slot_blocked(slot, now, true),
            ));
            s.sa_scope.push(self.slot_sa_scope(slot, now));
        }
        let geom = self.cfg.dram.geometry;
        let banks = geom.banks_per_rank;
        // A gate is waived for requests outside the slot's frozen
        // subarray (SARP); `None` scope waives nothing.
        let sa_exempt = |scope: Option<usize>, row: usize| {
            scope.is_some_and(|sa| geom.subarray_of_row(row) != sa)
        };

        for (i, q) in self.prefetch_q.iter().enumerate() {
            let slot = self.addr_slot(&q.req.addr);
            if !s.gates[slot].1 || sa_exempt(s.sa_scope[slot], q.req.addr.row) {
                s.cands
                    .push(self.materialize(2, QueueKind::Prefetch, i, q, banks));
            }
        }
        let serve_writes = self.write_drain || self.read_q.is_empty();
        for (i, q) in self.read_q.iter().enumerate() {
            let slot = self.addr_slot(&q.req.addr);
            let in_set = self.drain_sets[slot].contains(&q.req.id);
            let gated = if in_set {
                s.gates[slot].1
            } else {
                s.gates[slot].0
            };
            if gated && !sa_exempt(s.sa_scope[slot], q.req.addr.row) {
                continue;
            }
            let tier = if s.draining[slot] && in_set { 0 } else { 1 };
            s.cands
                .push(self.materialize(tier, QueueKind::Read, i, q, banks));
        }
        for (i, q) in self.write_q.iter().enumerate() {
            let slot = self.addr_slot(&q.req.addr);
            let in_set = self.drain_sets[slot].contains(&q.req.id);
            let gated = if in_set {
                s.gates[slot].1
            } else {
                s.gates[slot].0
            };
            if gated && !sa_exempt(s.sa_scope[slot], q.req.addr.row) {
                continue;
            }
            let tier = if s.draining[slot] && in_set {
                0
            } else if serve_writes {
                1
            } else {
                continue;
            };
            s.cands
                .push(self.materialize(tier, QueueKind::Write, i, q, banks));
        }

        if s.cands.is_empty() {
            return Err(Cycle::MAX);
        }

        let mut earliest = Cycle::MAX;

        // Pass 0: starvation guard — serve the oldest over-age request.
        let oldest = s.cands.iter().min_by_key(|c| (c.tier, c.arrival)).copied();
        if let Some(c) = oldest {
            if self.queued(c.kind, c.idx).req.age(now) > self.cfg.age_cap {
                match self.issue_for(c.kind, c.idx, now) {
                    Ok(()) => return Ok(()),
                    Err(e) => earliest = earliest.min(e),
                }
            }
        }

        // Pass 1: ready row-hit column commands, tier then age order.
        s.hits.clear();
        for c in s.cands.iter().filter(|c| c.hit) {
            s.hits.push(*c);
        }
        s.hits.sort_unstable_by_key(|c| (c.tier, c.arrival));
        for i in 0..s.hits.len() {
            let c = s.hits[i];
            match self.issue_for(c.kind, c.idx, now) {
                Ok(()) => return Ok(()),
                Err(e) => earliest = earliest.min(e),
            }
        }

        // Pass 2: oldest request per bank drives PRE/ACT (or its column
        // command once the row opens). Bank keys were frozen into the
        // candidates up front, so the dedup flags are independent of
        // anything a failed issue attempt could touch and the issue
        // loop folds into the dedup scan.
        s.ordered.clear();
        s.ordered.extend_from_slice(&s.cands);
        s.ordered.sort_unstable_by_key(|c| (c.tier, c.arrival));
        s.seen_banks.fill(false);
        for i in 0..s.ordered.len() {
            let c = s.ordered[i];
            if std::mem::replace(&mut s.seen_banks[c.bank as usize], true) {
                continue;
            }
            match self.issue_for(c.kind, c.idx, now) {
                Ok(()) => return Ok(()),
                Err(e) => earliest = earliest.min(e),
            }
        }

        Err(earliest)
    }

    /// Builds the materialised scheduling snapshot for one queued
    /// request (see [`Cand`]).
    // rop-lint: hot
    #[inline]
    fn materialize(&self, tier: u8, kind: QueueKind, idx: usize, q: &Queued, banks: usize) -> Cand {
        let a = &q.req.addr;
        Cand {
            tier,
            arrival: q.req.arrival,
            kind,
            idx,
            bank: (a.rank * banks + a.bank) as u32,
            hit: self.device.open_row(a.rank, a.bank) == Some(a.row),
        }
    }

    // rop-lint: hot
    fn queued(&self, kind: QueueKind, i: usize) -> &Queued {
        match kind {
            QueueKind::Read => &self.read_q[i],
            QueueKind::Write => &self.write_q[i],
            QueueKind::Prefetch => &self.prefetch_q[i],
        }
    }

    /// Issues the next command required by request `(kind, i)`. `Ok(())`
    /// when a command was issued (column commands also retire the
    /// request); `Err(earliest)` when timing forbids issuing now.
    // rop-lint: hot
    fn issue_for(&mut self, kind: QueueKind, i: usize, now: Cycle) -> Result<(), Cycle> {
        let req = self.queued(kind, i).req;
        let (rank, bank, row, col) = (req.addr.rank, req.addr.bank, req.addr.row, req.addr.col);
        match self.device.open_row(rank, bank) {
            Some(open) if open == row => {
                // Column command.
                let cmd = if req.is_write {
                    Command::Write {
                        rank,
                        bank,
                        column: col,
                    }
                } else {
                    Command::Read {
                        rank,
                        bank,
                        column: col,
                    }
                };
                let e = self
                    .device
                    .earliest_issue(&cmd, now)
                    .expect("row open, column command must be structurally legal");
                if e > now {
                    return Err(e);
                }
                let outcome = self.device.issue(&cmd, now);
                let acted = self.queued(kind, i).acted;
                if !req.is_prefetch {
                    self.stats.row_buffer.record(!acted);
                    if !req.is_write {
                        // The prediction table trails the *served* read
                        // stream (see `RopEngine::note_served`).
                        if let Some(rop) = &mut self.rop {
                            let line_in_bank =
                                req.addr.line_in_bank(self.cfg.dram.geometry.lines_per_row);
                            rop.engines[rank].note_served(bank, line_in_bank, now);
                        }
                    }
                }
                self.retire(kind, i, outcome.data_at.expect("column command"), now);
                Ok(())
            }
            Some(_) => {
                // Row conflict: precharge.
                let cmd = Command::Precharge { rank, bank };
                let e = self
                    .device
                    .earliest_issue(&cmd, now)
                    .expect("open bank must be prechargeable");
                if e > now {
                    return Err(e);
                }
                self.device.issue(&cmd, now);
                Ok(())
            }
            None => {
                // Closed bank: activate.
                let cmd = Command::Activate { rank, bank, row };
                match self.device.earliest_issue(&cmd, now) {
                    Ok(e) if e <= now => {
                        self.device.issue(&cmd, now);
                        self.mark_acted(kind, i);
                        Ok(())
                    }
                    Ok(e) => Err(e),
                    Err(_) => Err(Cycle::MAX),
                }
            }
        }
    }

    // rop-lint: hot
    fn mark_acted(&mut self, kind: QueueKind, i: usize) {
        match kind {
            QueueKind::Read => self.read_q[i].acted = true,
            QueueKind::Write => self.write_q[i].acted = true,
            QueueKind::Prefetch => self.prefetch_q[i].acted = true,
        }
    }

    /// Removes a request whose column command issued, delivering its
    /// effect (completion, fill, or write retirement).
    // rop-lint: hot
    fn retire(&mut self, kind: QueueKind, i: usize, data_at: Cycle, now: Cycle) {
        let q = match kind {
            QueueKind::Read => self.read_q.remove(i),
            QueueKind::Write => self.write_q.remove(i),
            QueueKind::Prefetch => self.prefetch_q.remove(i),
        };
        let req = q.req;
        // Remove from the slot's drain set if present.
        let slot = self.addr_slot(&req.addr);
        let set = &mut self.drain_sets[slot];
        if let Some(pos) = set.iter().position(|&id| id == req.id) {
            set.swap_remove(pos);
        }
        match kind {
            QueueKind::Read => {
                self.completions.push(Completion {
                    id: req.id,
                    core: req.core,
                    done_at: data_at,
                    from_sram: false,
                });
                self.stats.reads_completed += 1;
                self.stats.sum_read_latency += data_at - req.arrival;
            }
            QueueKind::Write => {
                // Fire-and-forget; nothing to deliver.
            }
            QueueKind::Prefetch => {
                self.pending_fills.push((req.line_addr, data_at));
            }
        }
        let _ = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rop_dram::DramConfig;

    fn baseline_1rank() -> MemController {
        MemController::new(MemCtrlConfig::baseline(DramConfig::baseline(1)))
    }

    /// Runs the controller until `pred` or `deadline`, returning when.
    fn run_until(
        c: &mut MemController,
        mut now: Cycle,
        deadline: Cycle,
        mut pred: impl FnMut(&MemController) -> bool,
    ) -> Cycle {
        while now < deadline {
            let hint = c.tick(now);
            if pred(c) {
                return now;
            }
            now = hint.max(now + 1).min(deadline);
        }
        now
    }

    #[test]
    fn single_read_completes() {
        let mut c = baseline_1rank();
        let id = c.enqueue_read(12345, 0, 10).expect("queue empty");
        run_until(&mut c, 10, 10_000, |c| !c.completions.is_empty());
        let comps = c.take_completions();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].id, id);
        assert!(!comps[0].from_sram);
        // ACT + RD latency: tRCD + CL + burst = 11 + 11 + 4 = 26 from issue.
        assert!(comps[0].done_at >= 10 + 26);
        assert!(comps[0].done_at < 100);
        assert_eq!(c.stats().reads_completed, 1);
    }

    #[test]
    fn row_hits_are_faster_than_conflicts() {
        let mut c = baseline_1rank();
        // Two reads in the same bank and row (bank-interleaved mapping:
        // same bank repeats every 8 lines, next column).
        c.enqueue_read(100, 0, 0).unwrap();
        c.enqueue_read(108, 0, 0).unwrap();
        run_until(&mut c, 0, 10_000, |c| c.stats().reads_completed == 2);
        let s = c.stats();
        assert_eq!(s.row_buffer.hits(), 1); // second read hits the open row
        let comps = c.take_completions();
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn writes_are_batched_and_drain() {
        let mut c = baseline_1rank();
        for k in 0..20u64 {
            assert!(c.enqueue_write(k * 128, 0, 0));
        }
        // With no reads pending, writes drain opportunistically.
        run_until(&mut c, 0, 50_000, |c| c.write_queue_len() == 0);
        assert_eq!(c.write_queue_len(), 0);
        assert_eq!(c.stats().writes_accepted, 20);
    }

    #[test]
    fn read_queue_capacity_enforced() {
        let mut c = baseline_1rank();
        let mut accepted = 0;
        for k in 0..200u64 {
            if c.enqueue_read(k * 1_000_003, 0, 0).is_some() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 64);
        assert_eq!(c.stats().read_queue_full, 200 - 64);
    }

    #[test]
    fn refreshes_happen_at_trefi_rate() {
        let mut c = baseline_1rank();
        // Idle memory for 10 tREFI.
        let mut now = 0;
        let end = 10 * 6240 + 1000;
        while now < end {
            now = c.tick(now).min(end);
        }
        let issued = c.refreshes_issued(0);
        assert!((9..=11).contains(&issued), "issued {issued}");
    }

    #[test]
    fn no_refresh_config_never_refreshes() {
        let mut c = MemController::new(MemCtrlConfig::baseline(DramConfig::no_refresh(1)));
        let mut now = 0;
        while now < 20 * 6240 {
            now = c.tick(now).min(20 * 6240);
        }
        assert_eq!(c.refreshes_issued(0), 0);
    }

    #[test]
    fn reads_blocked_by_refresh_wait_for_thaw() {
        let mut c = baseline_1rank();
        // Let the first refresh start.
        let mut now = 0;
        while c.refreshes_issued(0) == 0 {
            now = c.tick(now);
        }
        // Rank is now refreshing; a read arriving must be blocked.
        assert!(c.device.is_rank_refreshing(0, now));
        c.enqueue_read(777, 0, now).unwrap();
        assert_eq!(c.stats().reads_blocked_by_refresh, 1);
        let done = run_until(&mut c, now, now + 10_000, |c| {
            c.stats().reads_completed == 1
        });
        // It can only have completed after the refresh ended.
        assert!(done >= c.device.refresh_done_at(0) || c.stats().reads_completed == 1);
        let comps = c.take_completions();
        assert!(comps[0].done_at > c.device.refresh_done_at(0));
    }

    /// Opt-in blocked-id tracking records the id of a read arriving
    /// during a freeze, is drained exactly once, and stays empty (and
    /// allocation-free) when the flag is off.
    #[test]
    fn refresh_blocked_ids_are_tracked_on_opt_in() {
        let mut c = baseline_1rank();
        c.set_track_refresh_blocked(true);
        let mut now = 0;
        while c.refreshes_issued(0) == 0 {
            now = c.tick(now);
        }
        assert!(c.device.is_rank_refreshing(0, now));
        let id = c.enqueue_read(777, 0, now).unwrap();
        let mut ids = Vec::new();
        c.drain_refresh_blocked_into(&mut ids);
        assert!(ids.contains(&id), "blocked id {id} missing from {ids:?}");
        ids.clear();
        c.drain_refresh_blocked_into(&mut ids);
        assert!(ids.is_empty(), "drain must clear the buffer");

        // Default-off: same scenario records nothing.
        let mut c = baseline_1rank();
        let mut now = 0;
        while c.refreshes_issued(0) == 0 {
            now = c.tick(now);
        }
        c.enqueue_read(777, 0, now).unwrap();
        assert_eq!(c.stats().reads_blocked_by_refresh, 1);
        let mut ids = Vec::new();
        c.drain_refresh_blocked_into(&mut ids);
        assert!(ids.is_empty());
    }

    #[test]
    fn drain_set_issues_before_refresh() {
        let mut c = baseline_1rank();
        // Enqueue reads just before the refresh due time.
        let due = 6240;
        for k in 0..4u64 {
            c.enqueue_read(1_000 + k, 0, due - 10).unwrap();
        }
        let mut now = due - 10;
        while c.refreshes_issued(0) == 0 {
            now = c.tick(now);
            assert!(now < due + 20_000, "refresh never issued");
        }
        // All drained reads completed before or at refresh issue.
        assert_eq!(c.stats().reads_completed, 4);
    }

    #[test]
    fn rop_controller_trains_then_observes() {
        let cfg = MemCtrlConfig::rop(DramConfig::baseline(1), 64, 42);
        let mut c = MemController::new(cfg);
        assert_eq!(c.rop_phase(0), Some(RopPhase::Training));
        // Drive enough traffic + refreshes to complete training (50).
        let mut now = 0u64;
        let mut k = 0u64;
        while c.refreshes_issued(0) < 55 {
            // Steady read stream.
            if now.is_multiple_of(40) {
                let _ = c.enqueue_read(k * 3, 0, now);
                k += 1;
            }
            let hint = c.tick(now);
            c.take_completions();
            now = hint.max(now + 1).min(now + 40 - now % 40);
        }
        // At least one training phase completed and λ/β published. (The
        // engine may legitimately be back in Training if this synthetic
        // stream defeats the prefetcher's hit-rate threshold.)
        assert!(c.rop_engine_stats(0).unwrap().trainings_completed >= 1);
        let (lambda, _beta) = c.rop_probabilities(0).unwrap();
        // Continuous traffic: λ must be high.
        assert!(lambda > 0.8, "lambda {lambda}");
    }

    #[test]
    fn per_bank_refresh_mode_runs_and_freezes_banks_only() {
        let mut c = MemController::new(MemCtrlConfig::per_bank(DramConfig::baseline(1)));
        assert_eq!(c.refresh_slots(), 8);
        // Idle memory for several tREFI: every bank slot refreshes once
        // per tREFI (8 REFpb per tREFI for the rank).
        let mut now = 0;
        let end = 5 * 6240 + 1000;
        while now < end {
            now = c.tick(now).min(end);
        }
        let issued = c.refreshes_issued(0);
        assert!(
            (4 * 8..=6 * 8).contains(&issued),
            "per-bank refreshes issued: {issued}"
        );
        // The device never saw an all-bank REF.
        assert_eq!(c.device.counts().refreshes, 0);
        assert!(c.device.counts().refreshes_pb > 0);
    }

    #[test]
    fn per_bank_refresh_serves_reads_on_other_banks() {
        let mut c = MemController::new(MemCtrlConfig::per_bank(DramConfig::baseline(1)));
        // Let the first REFpb start.
        let mut now = 0;
        while c.device.counts().refreshes_pb == 0 {
            now = c.tick(now);
        }
        // Find the refreshing bank and read from a different one.
        let frozen: Vec<usize> = (0..8)
            .filter(|&b| c.device.is_bank_refreshing(0, b, now))
            .collect();
        assert_eq!(frozen.len(), 1);
        let other_bank = (frozen[0] + 1) % 8;
        // Line addr hitting (rank 0, other_bank): bank bits lowest.
        let line = other_bank as u64;
        c.enqueue_read(line, 0, now).unwrap();
        let t_rfc_pb = c.cfg.dram.timing.t_rfc_pb;
        let mut done = now;
        while c.stats().reads_completed == 0 {
            done = c.tick(done);
            assert!(done < now + 10_000, "read starved");
        }
        let comps = c.take_completions();
        // Served well inside the REFpb window: the sibling bank was free.
        assert!(
            comps[0].done_at < now + t_rfc_pb,
            "done {} vs refresh end {}",
            comps[0].done_at,
            now + t_rfc_pb
        );
    }

    #[test]
    fn rop_per_bank_mode_trains_and_prefetches() {
        let mut c =
            MemController::new(MemCtrlConfig::rop_per_bank(DramConfig::baseline(1), 64, 11));
        // Stream reads; REFpb slots come 8× as often, so training (50
        // refresh events) completes quickly.
        let mut now = 0u64;
        let mut k = 0u64;
        while c.refreshes_issued(0) < 120 {
            if now.is_multiple_of(16) {
                let _ = c.enqueue_read(k, 0, now);
                k += 3;
            }
            let hint = c.tick(now);
            c.take_completions();
            now = hint.max(now + 1).min(now + 16 - now % 16);
        }
        assert!(c.rop_engine_stats(0).unwrap().trainings_completed >= 1);
        assert!(
            c.stats().prefetches_issued > 0,
            "per-bank ROP must prefetch"
        );
    }

    #[test]
    fn analysis_counts_refreshes() {
        let mut c = baseline_1rank();
        let mut now = 0;
        while c.refreshes_issued(0) < 5 {
            now = c.tick(now);
        }
        c.finalize_analysis();
        let r = c.analysis(0).report(0);
        assert!(r.refreshes >= 4);
        // No traffic at all: every refresh non-blocking.
        assert_eq!(r.non_blocking_fraction, 1.0);
    }

    #[test]
    fn energy_accumulates() {
        let mut c = baseline_1rank();
        c.enqueue_read(5, 0, 0).unwrap();
        let mut now = 0;
        while c.stats().reads_completed == 0 {
            now = c.tick(now);
        }
        let e = c.energy_breakdown(now + 100);
        assert!(e.read_nj > 0.0);
        assert!(e.act_pre_nj > 0.0);
        assert!(e.background_nj > 0.0);
    }
}
