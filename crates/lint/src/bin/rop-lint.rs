//! `rop-lint` — static analysis gate for the ROP reproduction.
//!
//! ```text
//! rop-lint check-config [experiment...]   vet experiment job configs (default: all)
//! rop-lint fsm                            model-check the throttle/profiler FSM
//! rop-lint src [--root DIR] [--baseline FILE] [--update-baseline]
//!                                         determinism/robustness source lint
//! rop-lint verify-mech [mech...] [--mutate NAME] [--depth N] [--trace-dir DIR]
//!                                         model-check the refresh-mechanism zoo
//! rop-lint rules                          list the config rule catalog
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/environment error.

use std::path::PathBuf;

use rop_core::RopConfig;
use rop_lint::config::{lint_jobs, RULES};
use rop_lint::fsm::{build_rop_fsm, check_fsm};
use rop_lint::mech::{check_mechanism, MechCheckConfig, MechKind, Mutation};
use rop_lint::srclint::{compare, parse_baseline, render_baseline, scan_workspace, to_baseline};
use rop_sim_system::experiments::driver::{plan_jobs, EXPERIMENTS};
use rop_sim_system::runner::RunSpec;

const USAGE: &str = "usage: rop-lint <command> [args]\n\
  check-config [experiment...]   vet experiment job configs (default: all)\n\
  fsm                            model-check the throttle/profiler FSM\n\
  src [--root DIR] [--baseline FILE] [--update-baseline]\n\
                                 determinism/robustness source lint\n\
  verify-mech [mech...] [--mutate NAME] [--depth N] [--trace-dir DIR]\n\
                                 exhaustively model-check the refresh zoo\n\
                                 (mechs: allbank darp sarp raidr; default all)\n\
  rules                          list the config rule catalog";

fn cmd_check_config(args: &[String]) -> Result<i32, String> {
    let experiments: Vec<&str> = if args.is_empty() {
        vec!["all"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    // The spec's work quota never affects config legality; any value
    // enumerates the same grid.
    let spec = RunSpec {
        instructions: 1000,
        max_cycles: 1000,
        seed: 1,
    };
    let mut bad = false;
    for exp in experiments {
        if !EXPERIMENTS.contains(&exp) {
            return Err(format!(
                "unknown experiment '{exp}' (expected one of: {})",
                EXPERIMENTS.join(" ")
            ));
        }
        let jobs = plan_jobs(exp, spec)?;
        let report = lint_jobs(&jobs);
        if report.clean() {
            println!(
                "check-config {exp}: ok — {} job config(s){}",
                report.points,
                if report.symbolic {
                    " proven on the interval hull"
                } else {
                    " (per-point)"
                }
            );
        } else {
            bad = true;
            println!("check-config {exp}: FAIL");
            print!("{}", report.render());
        }
    }
    Ok(if bad { 1 } else { 0 })
}

fn cmd_fsm() -> i32 {
    let cfg = RopConfig::paper_default();
    let report = check_fsm(&build_rop_fsm(&cfg));
    print!("{}", report.render());
    if report.ok() {
        println!("fsm: ok — every mandated state reachable, no dead states, no livelocks");
        0
    } else {
        println!("fsm: FAIL");
        1
    }
}

fn cmd_src(args: &[String]) -> Result<i32, String> {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                root = PathBuf::from(args.get(i).ok_or("--root needs a value")?);
            }
            "--baseline" => {
                i += 1;
                baseline_path = Some(PathBuf::from(
                    args.get(i).ok_or("--baseline needs a value")?,
                ));
            }
            "--update-baseline" => update = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("rop-lint.baseline"));

    let findings =
        scan_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;

    if update {
        let text = render_baseline(&to_baseline(&findings));
        std::fs::write(&baseline_path, text)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "src: baseline rewritten with {} finding(s) at {}",
            findings.len(),
            baseline_path.display()
        );
        return Ok(0);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_baseline(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };
    let report = compare(&findings, &baseline);
    for (rule, path, accepted, current) in &report.regressions {
        println!("src: NEW [{rule}] {path}: {current} finding(s), baseline allows {accepted}");
        for f in findings
            .iter()
            .filter(|f| f.rule == rule && &f.path == path)
        {
            println!("  {f}");
        }
    }
    for (rule, path, accepted, current) in &report.improvements {
        println!(
            "src: improved [{rule}] {path}: {current} < baseline {accepted} \
             (ratchet down with --update-baseline)"
        );
    }
    for (rule, path, accepted) in &report.stale {
        println!(
            "src: STALE [{rule}] {path}: baseline allows {accepted} but no finding remains \
             (remove the entry with --update-baseline)"
        );
    }
    if report.ok() {
        println!("src: ok — {} finding(s), none above baseline", report.total);
        Ok(0)
    } else {
        println!("src: FAIL — findings above baseline or stale baseline entries");
        Ok(1)
    }
}

fn cmd_verify_mech(args: &[String]) -> Result<i32, String> {
    let mut kinds: Vec<MechKind> = Vec::new();
    let mut mutation: Option<Mutation> = None;
    let mut depth: Option<usize> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--mutate" => {
                i += 1;
                let name = args.get(i).ok_or("--mutate needs a value")?;
                mutation = Some(Mutation::parse(name).ok_or_else(|| {
                    format!(
                        "unknown mutation '{name}' (expected one of: {})",
                        Mutation::ALL.map(Mutation::label).join(" ")
                    )
                })?);
            }
            "--depth" => {
                i += 1;
                let v = args.get(i).ok_or("--depth needs a value")?;
                depth = Some(v.parse().map_err(|e| format!("--depth {v}: {e}"))?);
            }
            "--trace-dir" => {
                i += 1;
                trace_dir = Some(PathBuf::from(
                    args.get(i).ok_or("--trace-dir needs a value")?,
                ));
            }
            name => {
                kinds.push(MechKind::parse(name).ok_or_else(|| {
                    format!(
                        "unknown mechanism '{name}' (expected one of: {})",
                        MechKind::ALL.map(MechKind::label).join(" ")
                    )
                })?);
            }
        }
        i += 1;
    }

    let mut configs: Vec<MechCheckConfig> = match mutation {
        Some(m) => {
            if !kinds.is_empty() && kinds != [m.target()] {
                return Err(format!(
                    "--mutate {} targets {}; don't pass other mechanisms with it",
                    m.label(),
                    m.target().label()
                ));
            }
            vec![MechCheckConfig::mutated(m)]
        }
        None if kinds.is_empty() => MechKind::ALL.map(MechCheckConfig::gate).to_vec(),
        None => kinds.into_iter().map(MechCheckConfig::gate).collect(),
    };
    if let Some(d) = depth {
        for cfg in &mut configs {
            cfg.max_steps = d;
        }
    }

    let mut bad = false;
    for cfg in &configs {
        let report = check_mechanism(cfg);
        print!("{}", report.render());
        if !report.ok() {
            bad = true;
            if let (Some(dir), Some(replay)) = (&trace_dir, &report.replay) {
                std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
                let name = match cfg.mutation {
                    Some(m) => format!("{}+{}", cfg.kind.label(), m.label()),
                    None => cfg.kind.label().to_string(),
                };
                let path = dir.join(format!("counterexample-{name}.txt"));
                let mut text = String::new();
                if let Some(v) = &report.violation {
                    text.push_str(&format!("{v}\nchoices: {:?}\n\ntrace:\n", v.path));
                }
                for e in &replay.events {
                    text.push_str(&format!("{e:?}\n"));
                }
                text.push_str("\nauditor replay:\n");
                text.push_str(&replay.report);
                std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
                println!("  counterexample written to {}", path.display());
            }
        }
    }
    Ok(if bad { 1 } else { 0 })
}

fn cmd_rules() {
    for r in RULES {
        println!("{:16} {}", r.id, r.summary);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("check-config") => cmd_check_config(&args[1..]),
        Some("fsm") => Ok(cmd_fsm()),
        Some("src") => cmd_src(&args[1..]),
        Some("verify-mech") => cmd_verify_mech(&args[1..]),
        Some("rules") => {
            cmd_rules();
            Ok(0)
        }
        Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            Ok(0)
        }
        _ => Err(USAGE.to_string()),
    };
    match code {
        Ok(c) => std::process::exit(c),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
