//! Static analysis for the ROP reproduction.
//!
//! Four passes, all runnable before a single simulated cycle:
//!
//! 1. [`config`] — a declarative constraint checker over resolved
//!    memory-controller configurations (DRAM timing + geometry + ROP
//!    knobs), with interval arithmetic so a whole sweep grid can be
//!    vetted symbolically. Wired as the fail-fast pre-run gate in
//!    `repro` and `rop-sweep run` (`--no-lint` bypasses).
//! 2. [`fsm`] — an exhaustive model checker over the discretized
//!    Training/Observing/Prefetching throttle + profiler state space:
//!    reachability of every paper-mandated state, no dead states, no
//!    livelocks, and the §IV-C hit-rate fallback edge present from
//!    every degraded Observing state.
//! 3. [`srclint`] — a self-contained token-level determinism and
//!    robustness lint over the workspace's library sources, with an
//!    inline `// rop-lint: allow(<rule>)` escape hatch and a
//!    checked-in, ratcheting baseline.
//! 4. [`mech`] — a bounded exhaustive model checker that drives the
//!    *real* refresh-mechanism zoo (AllBank/DARP/SARP/RAIDR) through
//!    an abstract memory system under an adversarial demand oracle,
//!    proving the JEDEC postpone budget, retention recurrence, tRFC
//!    scoping and refresh liveness over every interleaving — and
//!    replaying any counterexample through the dynamic `Auditor`.
//!
//! The `rop-lint` binary exposes these as `check-config`, `fsm`,
//! `src` and `verify-mech` subcommands.

#![forbid(unsafe_code)]

pub mod config;
pub mod explore;
pub mod fsm;
pub mod interval;
pub mod mech;
pub mod srclint;

pub use config::{lint_config, lint_grid, lint_jobs, GridReport, Violation};
pub use fsm::{build_rop_fsm, check_fsm, Fsm, FsmReport};
pub use mech::{check_mechanism, MechCheckConfig, MechKind, MechReport, MechUnderTest, Mutation};
pub use srclint::{compare, scan_workspace, Finding, SrcReport};
