//! Closed-interval arithmetic over `f64`, with three-valued comparison.
//!
//! The config constraint checker evaluates every rule over *intervals*
//! rather than points so an entire sweep grid can be vetted in one pass:
//! each config field is widened to the hull of its values across the
//! grid, and a rule that holds over the whole box provably holds at
//! every grid point. Only rules the box cannot decide fall back to
//! per-point evaluation.
//!
//! Comparisons are three-valued ([`Tri`]): `True` (holds for every
//! point of the box), `False` (fails for every point), `Unknown` (the
//! box straddles the boundary — some corner may violate).

/// Three-valued truth for interval predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// The predicate holds at every point of the interval box.
    True,
    /// The predicate fails at every point of the interval box.
    False,
    /// The box straddles the boundary; point-wise evaluation decides.
    Unknown,
}

impl Tri {
    /// Logical AND over three-valued truth (`False` dominates).
    pub fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }

    /// True exactly when the predicate definitely holds.
    pub fn is_true(self) -> bool {
        self == Tri::True
    }
}

/// A closed interval `[lo, hi]` on the real line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Iv {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Iv {
    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Iv {
        Iv { lo: x, hi: x }
    }

    /// The interval hull (smallest interval containing both).
    pub fn hull(self, other: Iv) -> Iv {
        Iv {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The single point of a degenerate interval, if it is one.
    pub fn as_point(self) -> Option<f64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Scales by a non-negative constant.
    pub fn scale(self, k: f64) -> Iv {
        self * Iv::point(k)
    }

    /// `self < other`, three-valued.
    pub fn lt(self, other: Iv) -> Tri {
        if self.hi < other.lo {
            Tri::True
        } else if self.lo >= other.hi {
            Tri::False
        } else {
            Tri::Unknown
        }
    }

    /// `self <= other`, three-valued.
    pub fn le(self, other: Iv) -> Tri {
        if self.hi <= other.lo {
            Tri::True
        } else if self.lo > other.hi {
            Tri::False
        } else {
            Tri::Unknown
        }
    }

    /// `self >= other`, three-valued.
    pub fn ge(self, other: Iv) -> Tri {
        other.le(self)
    }

    /// `self > other`, three-valued.
    pub fn gt(self, other: Iv) -> Tri {
        other.lt(self)
    }

    /// Containment in `[lo, hi]`, three-valued.
    pub fn within(self, lo: f64, hi: f64) -> Tri {
        if self.lo >= lo && self.hi <= hi {
            Tri::True
        } else if self.hi < lo || self.lo > hi {
            Tri::False
        } else {
            Tri::Unknown
        }
    }
}

impl std::ops::Add for Iv {
    type Output = Iv;

    /// Interval sum (exact under the hull semantics used here).
    fn add(self, other: Iv) -> Iv {
        Iv {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }
}

impl std::ops::Mul for Iv {
    type Output = Iv;

    /// Interval product, both operands assumed non-negative (true for
    /// every config quantity the checker handles).
    fn mul(self, other: Iv) -> Iv {
        debug_assert!(self.lo >= 0.0 && other.lo >= 0.0);
        Iv {
            lo: self.lo * other.lo,
            hi: self.hi * other.hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_comparisons_are_decisive() {
        let a = Iv::point(3.0);
        let b = Iv::point(5.0);
        assert_eq!(a.lt(b), Tri::True);
        assert_eq!(b.lt(a), Tri::False);
        assert_eq!(a.le(Iv::point(3.0)), Tri::True);
        assert_eq!(a.lt(Iv::point(3.0)), Tri::False);
    }

    #[test]
    fn straddling_boxes_are_unknown() {
        let a = Iv { lo: 1.0, hi: 10.0 };
        let b = Iv { lo: 5.0, hi: 6.0 };
        assert_eq!(a.lt(b), Tri::Unknown);
        assert_eq!(a.within(0.0, 5.0), Tri::Unknown);
        assert_eq!(a.within(0.0, 100.0), Tri::True);
        assert_eq!(a.within(20.0, 30.0), Tri::False);
    }

    #[test]
    fn hull_and_arithmetic() {
        let h = Iv::point(2.0).hull(Iv::point(8.0));
        assert_eq!(h, Iv { lo: 2.0, hi: 8.0 });
        assert_eq!(h.as_point(), None);
        assert_eq!(Iv::point(4.0).as_point(), Some(4.0));
        assert_eq!(h + Iv::point(1.0), Iv { lo: 3.0, hi: 9.0 });
        assert_eq!(h.scale(2.0), Iv { lo: 4.0, hi: 16.0 });
    }

    #[test]
    fn tri_and_table() {
        assert_eq!(Tri::True.and(Tri::True), Tri::True);
        assert_eq!(Tri::True.and(Tri::Unknown), Tri::Unknown);
        assert_eq!(Tri::Unknown.and(Tri::False), Tri::False);
    }
}
