//! Pass 1 — the config constraint checker.
//!
//! A declarative rule catalog over [`MemCtrlConfig`] (which embeds the
//! DRAM timing/geometry and the optional [`rop_core::RopConfig`])
//! encoding derived JEDEC-style invariants that the runtime `validate()`
//! methods do not: row-cycle composition, refresh-postpone budgets,
//! observational-window bounds, SRAM sizing, probability ranges, and
//! cross-layer consistency between the ROP engine and the DRAM geometry
//! it predicts over.
//!
//! Every rule is a total function over interval [`Facts`], so the same
//! catalog vets a single config (point intervals) or an entire sweep
//! grid symbolically (hull intervals): when every rule returns
//! [`Tri::True`] on the hull, every grid point is provably legal and no
//! per-point work happens. Rules the hull cannot decide fall back to
//! point-wise evaluation, which is always decisive.

use rop_memctrl::{MechanismKind, MemCtrlConfig};
use rop_sim_system::runner::SweepJob;

use crate::interval::{Iv, Tri};

/// Interval view of one config (or the hull of many).
#[derive(Debug, Clone)]
pub struct Facts {
    // DRAM timing (memory-clock cycles).
    pub t_rcd: Iv,
    pub t_rp: Iv,
    pub t_ras: Iv,
    pub t_rc: Iv,
    pub burst: Iv,
    pub t_rrd: Iv,
    pub t_faw: Iv,
    pub t_refi: Iv,
    pub t_rfc: Iv,
    pub t_rfc1: Iv,
    pub t_rfc2: Iv,
    pub t_rfc4: Iv,
    pub t_rfc_pb: Iv,
    pub t_rfc_sa: Iv,
    // Geometry.
    pub ranks: Iv,
    pub banks_per_rank: Iv,
    pub rows_per_bank: Iv,
    pub lines_per_row: Iv,
    pub line_bytes: Iv,
    pub subarrays: Iv,
    // Controller.
    pub read_queue: Iv,
    pub write_queue: Iv,
    pub drain_high: Iv,
    pub drain_low: Iv,
    pub postpone: Iv,
    pub grace: Iv,
    /// 0/1 indicator: 1 when the refresh mechanism and the controller's
    /// refresh granularity agree (DARP/SARP over REFpb, RAIDR over
    /// all-bank REF). Encoded at fact-construction time so a uniform
    /// legal grid still proves the rule on the hull alone.
    pub mech_gran: Iv,
    /// RAIDR's fastest bin period; `None` for every other mechanism
    /// (the bin rule is vacuous there, mirroring the ROP block).
    pub raidr_bin: Option<Iv>,
    // ROP engine (absent on baseline systems).
    pub rop: Option<RopFacts>,
    /// Open-loop injector spec (absent on closed-loop jobs — every
    /// `mc-openloop-*` rule is vacuous then). Only [`Facts::from_job`]
    /// populates this: the spec lives on the system config, not the
    /// controller config.
    pub open_loop: Option<OpenLoopFacts>,
}

/// Interval view of the open-loop traffic knobs.
#[derive(Debug, Clone)]
pub struct OpenLoopFacts {
    /// Offered load in requests per kilo-cycle, summed over tenants.
    pub offered_rpkc: Iv,
    /// Traffic sources (each pinned to a rank partition).
    pub tenants: Iv,
    /// Observation window in cycles.
    pub duration: Iv,
    /// Store fraction of the offered traffic.
    pub write_fraction: Iv,
}

/// Interval view of the ROP engine knobs.
#[derive(Debug, Clone)]
pub struct RopFacts {
    pub window: Iv,
    pub period: Iv,
    pub threshold: Iv,
    pub capacity: Iv,
    pub training: Iv,
    pub min_samples: Iv,
    pub banks_per_rank: Iv,
    pub lines_per_bank: Iv,
    pub sram_latency: Iv,
}

impl Facts {
    /// Point facts for one concrete configuration.
    pub fn from_config(cfg: &MemCtrlConfig) -> Facts {
        let t = &cfg.dram.timing;
        let g = &cfg.dram.geometry;
        let p = |x: u64| Iv::point(x as f64);
        let pu = |x: usize| Iv::point(x as f64);
        Facts {
            t_rcd: p(t.t_rcd),
            t_rp: p(t.t_rp),
            t_ras: p(t.t_ras),
            t_rc: p(t.t_rc),
            burst: p(t.burst_cycles()),
            t_rrd: p(t.t_rrd),
            t_faw: p(t.t_faw),
            t_refi: p(t.t_refi()),
            t_rfc: p(t.t_rfc()),
            t_rfc1: p(t.t_rfc1),
            t_rfc2: p(t.t_rfc2),
            t_rfc4: p(t.t_rfc4),
            t_rfc_pb: p(t.t_rfc_pb),
            t_rfc_sa: p(t.t_rfc_sa),
            ranks: pu(g.ranks),
            banks_per_rank: pu(g.banks_per_rank),
            rows_per_bank: pu(g.rows_per_bank),
            lines_per_row: pu(g.lines_per_row),
            line_bytes: pu(g.line_bytes),
            subarrays: pu(g.subarrays_per_bank),
            mech_gran: {
                let ok = match cfg.mechanism {
                    MechanismKind::AllBank => true,
                    MechanismKind::Darp | MechanismKind::Sarp => cfg.per_bank_refresh,
                    MechanismKind::Raidr { .. } => !cfg.per_bank_refresh,
                };
                Iv::point(if ok { 1.0 } else { 0.0 })
            },
            raidr_bin: match cfg.mechanism {
                MechanismKind::Raidr { bin_period, .. } => Some(p(bin_period)),
                _ => None,
            },
            read_queue: pu(cfg.read_queue_capacity),
            write_queue: pu(cfg.write_queue_capacity),
            drain_high: pu(cfg.write_drain_high),
            drain_low: pu(cfg.write_drain_low),
            postpone: p(cfg.max_refresh_postpone),
            grace: p(cfg.prefetch_grace),
            rop: cfg.rop.as_ref().map(|r| RopFacts {
                window: p(r.observational_window),
                period: p(r.refresh_period),
                threshold: Iv::point(r.hit_rate_threshold),
                capacity: pu(r.buffer_capacity),
                training: pu(r.training_refreshes),
                min_samples: p(r.hit_rate_min_samples),
                banks_per_rank: pu(r.banks_per_rank),
                lines_per_bank: p(r.lines_per_bank),
                sram_latency: p(r.sram_latency),
            }),
            open_loop: None,
        }
    }

    /// Point facts for one sweep job: the resolved controller config
    /// plus the job-level open-loop spec, when present.
    pub fn from_job(job: &SweepJob) -> Facts {
        let mut facts = Facts::from_config(&resolve_ctrl(job));
        facts.open_loop = job.config.open_loop.as_ref().map(|ol| OpenLoopFacts {
            offered_rpkc: Iv::point(ol.offered_rpkc),
            tenants: Iv::point(ol.tenants as f64),
            duration: Iv::point(ol.duration as f64),
            write_fraction: Iv::point(ol.write_fraction),
        });
        facts
    }

    /// Field-wise hull of two fact sets. A `None` ROP block is vacuous
    /// (every ROP rule passes on it), so the hull keeps the other side.
    pub fn hull(mut self, other: &Facts) -> Facts {
        macro_rules! h {
            ($($f:ident),*) => { $( self.$f = self.$f.hull(other.$f); )* };
        }
        h!(
            t_rcd,
            t_rp,
            t_ras,
            t_rc,
            burst,
            t_rrd,
            t_faw,
            t_refi,
            t_rfc,
            t_rfc1,
            t_rfc2,
            t_rfc4,
            t_rfc_pb,
            t_rfc_sa,
            ranks,
            banks_per_rank,
            rows_per_bank,
            lines_per_row,
            line_bytes,
            subarrays,
            read_queue,
            write_queue,
            drain_high,
            drain_low,
            postpone,
            grace,
            mech_gran
        );
        self.raidr_bin = match (self.raidr_bin, other.raidr_bin) {
            (Some(a), Some(b)) => Some(a.hull(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        };
        self.rop = match (self.rop, &other.rop) {
            (Some(mut a), Some(b)) => {
                macro_rules! hr {
                    ($($f:ident),*) => { $( a.$f = a.$f.hull(b.$f); )* };
                }
                hr!(
                    window,
                    period,
                    threshold,
                    capacity,
                    training,
                    min_samples,
                    banks_per_rank,
                    lines_per_bank,
                    sram_latency
                );
                Some(a)
            }
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b.clone()),
            (None, None) => None,
        };
        self.open_loop = match (self.open_loop, &other.open_loop) {
            (Some(mut a), Some(b)) => {
                a.offered_rpkc = a.offered_rpkc.hull(b.offered_rpkc);
                a.tenants = a.tenants.hull(b.tenants);
                a.duration = a.duration.hull(b.duration);
                a.write_fraction = a.write_fraction.hull(b.write_fraction);
                Some(a)
            }
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b.clone()),
            (None, None) => None,
        };
        self
    }
}

/// Three-valued power-of-two test (decidable only for point intervals).
fn pow2(iv: Iv) -> Tri {
    match iv.as_point() {
        Some(x) if x >= 1.0 && x == x.trunc() && (x as u64).is_power_of_two() => Tri::True,
        Some(_) => Tri::False,
        None => Tri::Unknown,
    }
}

/// Applies a predicate to the ROP block; absent ROP is vacuously true.
fn rop_rule(f: &Facts, pred: impl Fn(&RopFacts) -> Tri) -> Tri {
    match &f.rop {
        Some(r) => pred(r),
        None => Tri::True,
    }
}

/// Applies a predicate to the open-loop block; closed-loop jobs (no
/// block) are vacuously legal.
fn ol_rule(f: &Facts, pred: impl Fn(&OpenLoopFacts) -> Tri) -> Tri {
    match &f.open_loop {
        Some(o) => pred(o),
        None => Tri::True,
    }
}

/// One declarative constraint.
pub struct Rule {
    /// Stable identifier reported on violation (e.g. `tim-ras`).
    pub id: &'static str,
    /// One-line statement of the invariant.
    pub summary: &'static str,
    /// Three-valued check over (point or hull) facts.
    pub check: fn(&Facts) -> Tri,
}

/// The full rule catalog, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "tim-ras",
        summary: "tRAS must cover tRCD plus one burst (a row must stay open long enough to read)",
        check: |f| f.t_ras.ge(f.t_rcd + f.burst),
    },
    Rule {
        id: "tim-rc",
        summary: "tRC must be at least tRAS + tRP (row cycle composes activate and precharge)",
        check: |f| f.t_rc.ge(f.t_ras + f.t_rp),
    },
    Rule {
        id: "tim-rrd-faw",
        summary: "tFAW must be at least tRRD (four-activate window cannot undercut one gap)",
        check: |f| f.t_faw.ge(f.t_rrd),
    },
    Rule {
        id: "tim-fgr-mono",
        summary: "tRFC must shrink monotonically with finer refresh granularity (tRFC1 >= tRFC2 >= tRFC4 > 0)",
        check: |f| {
            f.t_rfc1
                .ge(f.t_rfc2)
                .and(f.t_rfc2.ge(f.t_rfc4))
                .and(f.t_rfc4.gt(Iv::point(0.0)))
        },
    },
    Rule {
        id: "tim-refpb",
        summary: "per-bank refresh (tRFCpb) must be shorter than all-bank tRFC1",
        check: |f| f.t_rfc_pb.lt(f.t_rfc1),
    },
    Rule {
        id: "tim-refsa",
        summary: "subarray refresh (tRFCsa) must be positive and shorter than per-bank tRFCpb (completing the tRFCsa < tRFCpb < tRFC chain)",
        check: |f| f.t_rfc_sa.gt(Iv::point(0.0)).and(f.t_rfc_sa.lt(f.t_rfc_pb)),
    },
    Rule {
        id: "tim-duty",
        summary: "tRFC must be smaller than tREFI (refresh duty cycle < 1, or the rank never serves)",
        check: |f| f.t_rfc.lt(f.t_refi),
    },
    Rule {
        id: "mc-postpone",
        summary: "refresh postpone budget must stay within JEDEC's 8 x tREFI",
        check: |f| f.postpone.le(f.t_refi.scale(8.0)),
    },
    Rule {
        id: "mc-queues",
        summary: "read and write queues must hold at least one request",
        check: |f| {
            f.read_queue
                .ge(Iv::point(1.0))
                .and(f.write_queue.ge(Iv::point(1.0)))
        },
    },
    Rule {
        id: "mc-drain",
        summary: "write-drain watermarks must satisfy low < high <= write-queue capacity",
        check: |f| f.drain_low.lt(f.drain_high).and(f.drain_high.le(f.write_queue)),
    },
    Rule {
        id: "mc-grace",
        summary: "prefetch grace must stay under one tREFI (bounded refresh delay per JEDEC slack)",
        check: |f| f.grace.lt(f.t_refi),
    },
    Rule {
        id: "geo-pow2",
        summary: "geometry dimensions must be powers of two (shift/mask address decode), ranks >= 1",
        check: |f| {
            pow2(f.banks_per_rank)
                .and(pow2(f.rows_per_bank))
                .and(pow2(f.lines_per_row))
                .and(pow2(f.line_bytes))
                .and(f.ranks.ge(Iv::point(1.0)))
        },
    },
    Rule {
        id: "geo-subarrays",
        summary: "subarrays per bank must be a power of two no larger than the rows per bank",
        check: |f| pow2(f.subarrays).and(f.subarrays.le(f.rows_per_bank)),
    },
    Rule {
        id: "mc-raidr-bins",
        summary: "RAIDR bin period must be a positive multiple of tREFI (retention rounds align to refresh slots)",
        check: |f| match f.raidr_bin {
            None => Tri::True,
            Some(bin) => match (bin.as_point(), f.t_refi.as_point()) {
                (Some(b), Some(refi)) if refi > 0.0 => {
                    // Both are integer cycle counts carried as f64, so the
                    // lattice test is exact. rop-lint: allow(float-eq)
                    if b > 0.0 && b % refi == 0.0 {
                        Tri::True
                    } else {
                        Tri::False
                    }
                }
                _ => Tri::Unknown,
            },
        },
    },
    Rule {
        id: "mc-mech-gran",
        summary: "refresh mechanism and granularity must agree (DARP/SARP require REFpb, RAIDR requires all-bank REF)",
        check: |f| f.mech_gran.ge(Iv::point(1.0)),
    },
    Rule {
        id: "rop-window",
        summary: "observational window must be positive and shorter than tREFI",
        check: |f| {
            let refi = f.t_refi;
            rop_rule(f, |r| {
                r.window.gt(Iv::point(0.0)).and(r.window.lt(refi))
            })
        },
    },
    Rule {
        id: "rop-period",
        summary: "profiled refresh period must be positive and shorter than tREFI",
        check: |f| {
            let refi = f.t_refi;
            rop_rule(f, |r| {
                r.period.gt(Iv::point(0.0)).and(r.period.lt(refi))
            })
        },
    },
    Rule {
        id: "rop-threshold",
        summary: "hit-rate fallback threshold must lie in [0, 1] (it gates a probability)",
        check: |f| rop_rule(f, |r| r.threshold.within(0.0, 1.0)),
    },
    Rule {
        id: "rop-capacity",
        summary: "SRAM buffer must hold at least one line per bank (Equation 3 apportions per bank)",
        check: |f| rop_rule(f, |r| r.capacity.ge(r.banks_per_rank)),
    },
    Rule {
        id: "rop-training",
        summary: "training must observe at least one refresh and demand at least one hit-rate sample",
        check: |f| {
            rop_rule(f, |r| {
                r.training
                    .ge(Iv::point(1.0))
                    .and(r.min_samples.ge(Iv::point(1.0)))
            })
        },
    },
    Rule {
        id: "mc-openloop-load",
        summary: "offered open-loop load must stay under the data-bus service ceiling (offered x burst <= 1000 cycles per kilo-cycle)",
        check: |f| {
            let burst = f.burst;
            ol_rule(f, |o| {
                (o.offered_rpkc * burst).le(Iv::point(1000.0))
            })
        },
    },
    Rule {
        id: "mc-openloop-tenants",
        summary: "open-loop tenants must number at least one and at most the rank count (one rank partition each)",
        check: |f| {
            let ranks = f.ranks;
            ol_rule(f, |o| {
                o.tenants.ge(Iv::point(1.0)).and(o.tenants.le(ranks))
            })
        },
    },
    Rule {
        id: "mc-openloop-duration",
        summary: "open-loop observation window must span at least two tREFI (tail quantiles need refresh activity in frame)",
        check: |f| {
            let refi = f.t_refi;
            ol_rule(f, |o| o.duration.ge(refi.scale(2.0)))
        },
    },
    Rule {
        id: "mc-openloop-write",
        summary: "open-loop write fraction must be a probability in [0, 1]",
        check: |f| ol_rule(f, |o| o.write_fraction.within(0.0, 1.0)),
    },
    Rule {
        id: "rop-banks-match",
        summary: "ROP prediction table must cover exactly the DRAM banks per rank",
        check: |f| {
            let banks = f.banks_per_rank;
            rop_rule(f, |r| {
                // Point-equality via two-sided comparison so hulls degrade
                // to Unknown instead of a spurious verdict.
                r.banks_per_rank.ge(banks).and(r.banks_per_rank.le(banks))
            })
        },
    },
];

/// Looks a rule up by id (used by tests and the CLI's rule listing).
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One violated rule on one concrete config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier.
    pub rule: &'static str,
    /// Rule statement.
    pub summary: &'static str,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.summary)
    }
}

/// Checks one concrete configuration against the full catalog.
///
/// Point facts make every rule decisive; an `Unknown` can only arise
/// from a non-finite field (e.g. a NaN threshold) and is treated as a
/// violation — a config the checker cannot prove legal is not legal.
pub fn lint_config(cfg: &MemCtrlConfig) -> Vec<Violation> {
    let facts = Facts::from_config(cfg);
    RULES
        .iter()
        .filter(|r| !(r.check)(&facts).is_true())
        .map(|r| Violation {
            rule: r.id,
            summary: r.summary,
        })
        .collect()
}

/// Outcome of vetting a set of configs (a sweep grid).
#[derive(Debug, Clone)]
pub struct GridReport {
    /// Number of configs vetted.
    pub points: usize,
    /// True when the interval hull alone proved every point legal (no
    /// per-point evaluation happened).
    pub symbolic: bool,
    /// Violations found by per-point fallback, labeled.
    pub violations: Vec<(String, Vec<Violation>)>,
}

impl GridReport {
    /// True when no config violated any rule.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable multi-line report of every violation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, vs) in &self.violations {
            for v in vs {
                out.push_str(&format!("{label}: {v}\n"));
            }
        }
        out
    }
}

/// Vets a labeled set of configurations: first symbolically over the
/// interval hull (one rule pass for the whole grid), falling back to
/// per-point checks only for the rules the hull cannot decide.
pub fn lint_grid<'a>(configs: impl IntoIterator<Item = (String, &'a MemCtrlConfig)>) -> GridReport {
    lint_facts(
        configs
            .into_iter()
            .map(|(l, c)| (l, Facts::from_config(c)))
            .collect(),
    )
}

/// The grid-first rule pass over pre-built facts (shared by the
/// config-level [`lint_grid`] and the job-level [`lint_jobs`]).
fn lint_facts(labeled: Vec<(String, Facts)>) -> GridReport {
    let points = labeled.len();
    let Some(hull) = labeled
        .iter()
        .map(|(_, f)| f.clone())
        .reduce(|a, b| a.hull(&b))
    else {
        return GridReport {
            points: 0,
            symbolic: true,
            violations: Vec::new(),
        };
    };

    let undecided: Vec<&Rule> = RULES
        .iter()
        .filter(|r| !(r.check)(&hull).is_true())
        .collect();
    if undecided.is_empty() {
        return GridReport {
            points,
            symbolic: true,
            violations: Vec::new(),
        };
    }

    // The hull could not prove some rules; decide them point by point.
    let mut violations = Vec::new();
    for (label, facts) in &labeled {
        let vs: Vec<Violation> = undecided
            .iter()
            .filter(|r| !(r.check)(facts).is_true())
            .map(|r| Violation {
                rule: r.id,
                summary: r.summary,
            })
            .collect();
        if !vs.is_empty() {
            violations.push((label.clone(), vs));
        }
    }
    GridReport {
        points,
        symbolic: false,
        violations,
    }
}

/// Resolves the memory-controller configuration a sweep job will run
/// under (the ablation override wins, matching `System::new`).
pub fn resolve_ctrl(job: &SweepJob) -> MemCtrlConfig {
    job.config.ctrl_override.clone().unwrap_or_else(|| {
        job.config
            .kind
            .memctrl_config(job.config.ranks, job.config.seed)
    })
}

/// Vets every job of a sweep before anything is dispatched: system-level
/// shape checks (`SystemConfig::validate`) plus the full rule catalog
/// over each job's resolved controller config, grid-first.
pub fn lint_jobs(jobs: &[SweepJob]) -> GridReport {
    let mut report = lint_facts(
        jobs.iter()
            .map(|j| (j.label.clone(), Facts::from_job(j)))
            .collect(),
    );
    // Shape errors (core/rank mismatches, empty benchmark lists) are not
    // interval rules; check them per job and report under a pseudo-rule.
    for job in jobs {
        if let Err(e) = job.config.validate() {
            let _ = e;
            report.violations.push((
                job.label.clone(),
                vec![Violation {
                    rule: "sys-shape",
                    summary: "system configuration fails shape validation",
                }],
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rop_dram::DramConfig;

    #[test]
    fn shipped_presets_are_clean() {
        for cfg in [
            MemCtrlConfig::baseline(DramConfig::baseline(1)),
            MemCtrlConfig::baseline(DramConfig::no_refresh(1)),
            MemCtrlConfig::baseline_rp(DramConfig::baseline(4)),
            MemCtrlConfig::elastic(DramConfig::baseline(1)),
            MemCtrlConfig::per_bank(DramConfig::baseline(1)),
            MemCtrlConfig::rop(DramConfig::baseline(1), 16, 1),
            MemCtrlConfig::rop(DramConfig::baseline(4), 128, 2),
            MemCtrlConfig::rop_per_bank(DramConfig::baseline(4), 64, 3),
        ] {
            let vs = lint_config(&cfg);
            assert!(vs.is_empty(), "{vs:?}");
        }
    }

    #[test]
    fn symbolic_grid_pass_covers_buffer_sweep() {
        let cfgs: Vec<(String, MemCtrlConfig)> = [16usize, 32, 64, 128]
            .iter()
            .map(|&cap| {
                (
                    format!("rop-{cap}"),
                    MemCtrlConfig::rop(DramConfig::baseline(1), cap, 1),
                )
            })
            .collect();
        let report = lint_grid(cfgs.iter().map(|(l, c)| (l.clone(), c)));
        assert!(report.clean());
        assert!(
            report.symbolic,
            "a uniform legal sweep must be proven on the hull alone"
        );
        assert_eq!(report.points, 4);
    }

    #[test]
    fn grid_with_one_bad_point_names_it() {
        let good = MemCtrlConfig::rop(DramConfig::baseline(1), 64, 1);
        let mut bad = MemCtrlConfig::rop(DramConfig::baseline(1), 64, 1);
        bad.rop.as_mut().unwrap().observational_window = bad.dram.timing.t_refi() + 1;
        let report = lint_grid([("good".to_string(), &good), ("bad".to_string(), &bad)]);
        assert!(!report.clean());
        assert!(!report.symbolic);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].0, "bad");
        assert_eq!(report.violations[0].1[0].rule, "rop-window");
    }

    #[test]
    fn nan_threshold_is_rejected() {
        let mut cfg = MemCtrlConfig::rop(DramConfig::baseline(1), 64, 1);
        cfg.rop.as_mut().unwrap().hit_rate_threshold = f64::NAN;
        let vs = lint_config(&cfg);
        assert!(vs.iter().any(|v| v.rule == "rop-threshold"), "{vs:?}");
    }
}
