//! Pass 2 — the FSM model checker.
//!
//! Builds a finite, discretized model of the ROP engine's
//! Training → Observing → Prefetching state machine (`rop_core::engine`)
//! crossed with the profiler's observational quadrants and the hit-rate
//! fallback buckets, then exhaustively checks it:
//!
//! * every paper-mandated state is reachable from the initial state
//!   (all four §IV-B refresh categories during training, quiet and
//!   active observing windows, all three hit-rate buckets, prefetching);
//! * no reachable state is *dead* (without outgoing edges the engine
//!   would wedge at the next refresh);
//! * no *livelock*: from every reachable state the engine can still
//!   reach Prefetching (the mechanism can engage) and Training (the
//!   §IV-C fallback can retrain);
//! * the hit-rate fallback edge to Training exists *directly* from
//!   every reachable Observing state whose bucket is degraded.
//!
//! The model abstracts workload and λ/β randomness nondeterministically:
//! an edge exists when *some* workload/probability outcome produces the
//! transition under the given [`RopConfig`]. Structural impossibilities
//! are config-driven — e.g. `ThrottleMode::Never` removes every
//! `GateGo` edge, and a fallback threshold of 0 makes the degraded
//! bucket unreachable; the checker reports both.

use rop_core::config::ThrottleMode;
use rop_core::RopConfig;

use crate::explore::{backward_closure, reachable_states};

/// The engine phase (mirrors `rop_core::RopPhase`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Pattern Profiler collecting (B, A) statistics.
    Training,
    /// λ/β known; throttle gating each refresh.
    Observing,
    /// A prefetch was issued for the imminent refresh (transient).
    Prefetching,
}

/// Discretized request count in an observational window (`B` or `A`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Occ {
    /// No requests in the window.
    Zero,
    /// At least one request in the window.
    Pos,
}

/// Discretized state of the Observing hit-rate counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bucket {
    /// Fewer than `hit_rate_min_samples` lookups — fallback disarmed.
    Insufficient,
    /// Enough samples and hit rate at or above the threshold.
    Healthy,
    /// Enough samples and hit rate below the threshold — fallback fires.
    Degraded,
}

/// One state of the discretized model.
///
/// The quadrant `(b, a)` is the classification of the most recent
/// refresh's observational windows (before/during); `bucket` is the
/// hit-rate counter standing after that refresh was accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct State {
    /// Engine phase.
    pub phase: Phase,
    /// Window-before occupancy (`B`).
    pub b: Occ,
    /// Window-during occupancy (`A`, reads only).
    pub a: Occ,
    /// Hit-rate bucket.
    pub bucket: Bucket,
}

impl std::fmt::Display for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match self.phase {
            Phase::Training => "Training",
            Phase::Observing => "Observing",
            Phase::Prefetching => "Prefetching",
        };
        let occ = |o: Occ| match o {
            Occ::Zero => "0",
            Occ::Pos => "+",
        };
        let bucket = match self.bucket {
            Bucket::Insufficient => "ins",
            Bucket::Healthy => "ok",
            Bucket::Degraded => "low",
        };
        write!(f, "{phase}/B{}/A{}/{bucket}", occ(self.b), occ(self.a))
    }
}

/// What drove a transition (the lever mutation tests remove).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// One more training refresh recorded, training not yet complete.
    TrainStep,
    /// Training quota reached: λ/β finalized, counters reset, buffer on.
    TrainDone,
    /// Throttle said prefetch: enter the transient Prefetching phase.
    GateGo,
    /// Throttle said skip: the refresh runs unprefetched.
    GateSkip,
    /// The prefetched refresh completed; back to Observing.
    Complete,
    /// §IV-C hit-rate fallback: degraded bucket forces retraining.
    Fallback,
}

/// One labeled transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source state.
    pub from: State,
    /// What drove the transition.
    pub kind: EdgeKind,
    /// Destination state.
    pub to: State,
}

/// The discretized model: full state space, edges, initial state.
#[derive(Debug, Clone)]
pub struct Fsm {
    /// Every state of the space (reachable or not).
    pub states: Vec<State>,
    /// Every transition.
    pub edges: Vec<Edge>,
    /// Power-on state (`RopEngine::new` starts in Training).
    pub init: State,
}

const QUADRANTS: [(Occ, Occ); 4] = [
    (Occ::Zero, Occ::Zero),
    (Occ::Zero, Occ::Pos),
    (Occ::Pos, Occ::Zero),
    (Occ::Pos, Occ::Pos),
];

/// Builds the discretized model for one ROP configuration.
///
/// The state space is the cross product pruned of structurally
/// impossible combinations: training always carries a freshly reset
/// counter (`Insufficient`), and a degraded verdict forces the fallback
/// *before* the next gate decision, so `Prefetching × Degraded` does
/// not exist.
pub fn build_rop_fsm(cfg: &RopConfig) -> Fsm {
    let mut states = Vec::new();
    for (b, a) in QUADRANTS {
        states.push(State {
            phase: Phase::Training,
            b,
            a,
            bucket: Bucket::Insufficient,
        });
    }
    for bucket in [Bucket::Insufficient, Bucket::Healthy, Bucket::Degraded] {
        for (b, a) in QUADRANTS {
            states.push(State {
                phase: Phase::Observing,
                b,
                a,
                bucket,
            });
        }
    }
    for bucket in [Bucket::Insufficient, Bucket::Healthy] {
        for (b, a) in QUADRANTS {
            states.push(State {
                phase: Phase::Prefetching,
                b,
                a,
                bucket,
            });
        }
    }

    // Which bucket verdicts one refresh's accounting can produce next.
    // The counter only accumulates between resets, so `Insufficient`
    // is never re-entered; a threshold of 0 can never be undercut
    // (ratio >= 0), and a threshold above 1 can never be met once
    // enough samples exist (ratio <= 1).
    let degraded_possible = cfg.hit_rate_threshold > 0.0;
    let healthy_possible = cfg.hit_rate_threshold <= 1.0;
    let bucket_next = |bucket: Bucket| -> Vec<Bucket> {
        let mut out = Vec::new();
        if bucket == Bucket::Insufficient && cfg.hit_rate_min_samples > 1 {
            out.push(Bucket::Insufficient);
        }
        if healthy_possible {
            out.push(Bucket::Healthy);
        }
        if degraded_possible {
            out.push(Bucket::Degraded);
        }
        out
    };

    // Which gate outcomes the throttle can produce. Under `Adaptive`
    // both are possible for some λ/β ∈ [0,1]; the fixed modes collapse
    // the gate to one side (throttle.decide with (1,0) or (0,1)).
    let (go_possible, skip_possible) = match cfg.throttle_mode {
        ThrottleMode::Adaptive => (true, true),
        ThrottleMode::Always => (true, false),
        ThrottleMode::Never => (false, true),
    };

    let mut edges = Vec::new();
    for &from in &states {
        match from.phase {
            Phase::Training => {
                for (b, a) in QUADRANTS {
                    // Quota not yet reached: record and keep training.
                    if cfg.training_refreshes > 1 {
                        edges.push(Edge {
                            from,
                            kind: EdgeKind::TrainStep,
                            to: State {
                                phase: Phase::Training,
                                b,
                                a,
                                bucket: Bucket::Insufficient,
                            },
                        });
                    }
                    // Quota reached: counters reset, buffer powers on.
                    edges.push(Edge {
                        from,
                        kind: EdgeKind::TrainDone,
                        to: State {
                            phase: Phase::Observing,
                            b,
                            a,
                            bucket: if cfg.hit_rate_min_samples > 0 {
                                Bucket::Insufficient
                            } else if healthy_possible {
                                Bucket::Healthy
                            } else {
                                Bucket::Degraded
                            },
                        },
                    });
                }
            }
            Phase::Observing if from.bucket == Bucket::Degraded => {
                // `refresh_completed` moves a degraded engine straight
                // to Training (profiler and counter reset) — the only
                // exit from this state.
                for (b, a) in QUADRANTS {
                    edges.push(Edge {
                        from,
                        kind: EdgeKind::Fallback,
                        to: State {
                            phase: Phase::Training,
                            b,
                            a,
                            bucket: Bucket::Insufficient,
                        },
                    });
                }
            }
            Phase::Observing => {
                for (b, a) in QUADRANTS {
                    if go_possible {
                        // Gate fires on the *next* window's B; the
                        // counter is only accounted at completion, so
                        // the bucket rides along unchanged.
                        edges.push(Edge {
                            from,
                            kind: EdgeKind::GateGo,
                            to: State {
                                phase: Phase::Prefetching,
                                b,
                                a,
                                bucket: from.bucket,
                            },
                        });
                    }
                    if skip_possible {
                        // Skip: the refresh still runs and still
                        // accounts SRAM lookups (reads during the
                        // refresh miss the unfilled buffer).
                        for bucket in bucket_next(from.bucket) {
                            edges.push(Edge {
                                from,
                                kind: EdgeKind::GateSkip,
                                to: State {
                                    phase: Phase::Observing,
                                    b,
                                    a,
                                    bucket,
                                },
                            });
                        }
                    }
                }
            }
            Phase::Prefetching => {
                // The refresh whose windows are (b, a) completes; the
                // counter absorbs this refresh's hits and misses.
                for bucket in bucket_next(from.bucket) {
                    edges.push(Edge {
                        from,
                        kind: EdgeKind::Complete,
                        to: State {
                            phase: Phase::Observing,
                            b: from.b,
                            a: from.a,
                            bucket,
                        },
                    });
                }
            }
        }
    }

    Fsm {
        states,
        edges,
        // Power-on: Training, nothing observed yet.
        init: State {
            phase: Phase::Training,
            b: Occ::Zero,
            a: Occ::Zero,
            bucket: Bucket::Insufficient,
        },
    }
}

impl Fsm {
    /// Removes every edge of one kind (seeded-mutation support: the
    /// tests drop `Fallback` or `GateGo` and assert the checker
    /// notices).
    pub fn remove_edges(&mut self, kind: EdgeKind) {
        self.edges.retain(|e| e.kind != kind);
    }

    /// The declared edges as bare `(from, to)` pairs for the shared
    /// exploration primitives.
    fn edge_pairs(&self) -> Vec<(State, State)> {
        self.edges.iter().map(|e| (e.from, e.to)).collect()
    }

    fn reachable(&self) -> Vec<State> {
        reachable_states(self.init, &self.edge_pairs())
    }

    /// States from which `pred` is reachable (including states already
    /// satisfying it) — a backward closure over the edge set.
    fn can_reach(&self, pred: impl Fn(&State) -> bool) -> Vec<State> {
        backward_closure(&self.states, &self.edge_pairs(), pred)
    }
}

/// One paper-mandated state-space obligation.
struct Mandate {
    name: &'static str,
    pred: fn(&State) -> bool,
}

/// The states the paper requires the engine to be able to visit.
const MANDATES: &[Mandate] = &[
    Mandate {
        name: "training E1 (B>0, A>0)",
        pred: |s| s.phase == Phase::Training && s.b == Occ::Pos && s.a == Occ::Pos,
    },
    Mandate {
        name: "training B>0, A=0",
        pred: |s| s.phase == Phase::Training && s.b == Occ::Pos && s.a == Occ::Zero,
    },
    Mandate {
        name: "training B=0, A>0",
        pred: |s| s.phase == Phase::Training && s.b == Occ::Zero && s.a == Occ::Pos,
    },
    Mandate {
        name: "training E2 (B=0, A=0)",
        pred: |s| s.phase == Phase::Training && s.b == Occ::Zero && s.a == Occ::Zero,
    },
    Mandate {
        name: "observing, active window (B>0)",
        pred: |s| s.phase == Phase::Observing && s.b == Occ::Pos,
    },
    Mandate {
        name: "observing, quiet window (B=0)",
        pred: |s| s.phase == Phase::Observing && s.b == Occ::Zero,
    },
    Mandate {
        name: "observing, fallback disarmed (insufficient samples)",
        pred: |s| s.phase == Phase::Observing && s.bucket == Bucket::Insufficient,
    },
    Mandate {
        name: "observing, healthy hit rate",
        pred: |s| s.phase == Phase::Observing && s.bucket == Bucket::Healthy,
    },
    Mandate {
        name: "observing, degraded hit rate (below fallback threshold)",
        pred: |s| s.phase == Phase::Observing && s.bucket == Bucket::Degraded,
    },
    Mandate {
        name: "prefetching",
        pred: |s| s.phase == Phase::Prefetching,
    },
];

/// Everything the model checker found.
#[derive(Debug, Clone)]
pub struct FsmReport {
    /// Size of the state space.
    pub state_count: usize,
    /// Number of transitions.
    pub edge_count: usize,
    /// States reachable from the initial state.
    pub reachable_count: usize,
    /// State-space states the engine can never visit.
    pub unreachable: Vec<String>,
    /// Paper-mandated obligations with no reachable witness.
    pub unmet_mandates: Vec<String>,
    /// Reachable states with no outgoing edge (the engine wedges).
    pub dead: Vec<String>,
    /// Reachable states from which Prefetching can never be reached.
    pub livelock_no_prefetch: Vec<String>,
    /// Reachable states from which Training can never be re-entered.
    pub livelock_no_retrain: Vec<String>,
    /// Reachable degraded Observing states with no direct Fallback edge
    /// to Training.
    pub missing_fallback: Vec<String>,
}

impl FsmReport {
    /// True when the machine is well-formed.
    pub fn ok(&self) -> bool {
        self.unreachable.is_empty()
            && self.unmet_mandates.is_empty()
            && self.dead.is_empty()
            && self.livelock_no_prefetch.is_empty()
            && self.livelock_no_retrain.is_empty()
            && self.missing_fallback.is_empty()
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "state space: {} states, {} edges, {} reachable\n",
            self.state_count, self.edge_count, self.reachable_count
        );
        let mut section = |title: &str, items: &[String]| {
            if !items.is_empty() {
                out.push_str(&format!("{title}:\n"));
                for i in items {
                    out.push_str(&format!("  {i}\n"));
                }
            }
        };
        section("unreachable states", &self.unreachable);
        section("unmet paper mandates", &self.unmet_mandates);
        section("dead states (no outgoing edge)", &self.dead);
        section(
            "livelock: prefetching unreachable from",
            &self.livelock_no_prefetch,
        );
        section(
            "livelock: retraining unreachable from",
            &self.livelock_no_retrain,
        );
        section(
            "degraded observing states without a fallback edge",
            &self.missing_fallback,
        );
        out
    }
}

/// Exhaustively checks a model. Worst case is 24 states and a few
/// hundred edges, so every check is a plain fixpoint/scan.
pub fn check_fsm(fsm: &Fsm) -> FsmReport {
    let reachable = fsm.reachable();
    let is_reachable = |s: &State| reachable.contains(s);

    let unreachable: Vec<String> = fsm
        .states
        .iter()
        .filter(|s| !is_reachable(s))
        .map(|s| s.to_string())
        .collect();

    let unmet_mandates: Vec<String> = MANDATES
        .iter()
        .filter(|m| !reachable.iter().any(|s| (m.pred)(s)))
        .map(|m| m.name.to_string())
        .collect();

    let dead: Vec<String> = reachable
        .iter()
        .filter(|s| !fsm.edges.iter().any(|e| e.from == **s))
        .map(|s| s.to_string())
        .collect();

    let to_prefetch = fsm.can_reach(|s| s.phase == Phase::Prefetching);
    let livelock_no_prefetch: Vec<String> = reachable
        .iter()
        .filter(|s| !to_prefetch.contains(s))
        .map(|s| s.to_string())
        .collect();

    let to_training = fsm.can_reach(|s| s.phase == Phase::Training);
    let livelock_no_retrain: Vec<String> = reachable
        .iter()
        .filter(|s| !to_training.contains(s))
        .map(|s| s.to_string())
        .collect();

    let missing_fallback: Vec<String> = reachable
        .iter()
        .filter(|s| s.phase == Phase::Observing && s.bucket == Bucket::Degraded)
        .filter(|s| {
            !fsm.edges.iter().any(|e| {
                e.from == **s && e.kind == EdgeKind::Fallback && e.to.phase == Phase::Training
            })
        })
        .map(|s| s.to_string())
        .collect();

    FsmReport {
        state_count: fsm.states.len(),
        edge_count: fsm.edges.len(),
        reachable_count: reachable.len(),
        unreachable,
        unmet_mandates,
        dead,
        livelock_no_prefetch,
        livelock_no_retrain,
        missing_fallback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_cfg() -> RopConfig {
        RopConfig::paper_default()
    }

    #[test]
    fn default_machine_is_well_formed() {
        let fsm = build_rop_fsm(&default_cfg());
        let report = check_fsm(&fsm);
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.state_count, 24);
        assert_eq!(report.reachable_count, 24);
    }

    #[test]
    fn removed_fallback_edge_is_caught() {
        let mut fsm = build_rop_fsm(&default_cfg());
        fsm.remove_edges(EdgeKind::Fallback);
        let report = check_fsm(&fsm);
        assert!(!report.ok());
        // Degraded observing states lose their only exit: dead, and
        // every one of them misses the mandated fallback edge.
        assert_eq!(report.missing_fallback.len(), 4);
        assert_eq!(report.dead.len(), 4);
        assert!(report
            .dead
            .iter()
            .all(|s| s.contains("Observing") && s.contains("low")));
    }

    #[test]
    fn removed_gate_go_kills_prefetching() {
        let mut fsm = build_rop_fsm(&default_cfg());
        fsm.remove_edges(EdgeKind::GateGo);
        let report = check_fsm(&fsm);
        assert!(!report.ok());
        assert!(report.unmet_mandates.iter().any(|m| m == "prefetching"));
        // With the gate gone no state can ever reach Prefetching.
        assert!(!report.livelock_no_prefetch.is_empty());
    }

    #[test]
    fn zero_threshold_disarms_fallback_and_is_reported() {
        let mut cfg = default_cfg();
        cfg.hit_rate_threshold = 0.0;
        let report = check_fsm(&build_rop_fsm(&cfg));
        assert!(!report.ok());
        assert!(report.unmet_mandates.iter().any(|m| m.contains("degraded")));
    }

    #[test]
    fn never_throttle_mode_cannot_prefetch() {
        let mut cfg = default_cfg();
        cfg.throttle_mode = ThrottleMode::Never;
        let report = check_fsm(&build_rop_fsm(&cfg));
        assert!(report.unmet_mandates.iter().any(|m| m == "prefetching"));
    }
}
