//! Pass 4 — `verify-mech`: bounded exhaustive model checking of the
//! refresh-mechanism zoo against an abstract retention/timing spec.
//!
//! The checker drives the **real** [`RefreshMechanism`] implementations
//! from `rop-memctrl` — not a re-model — through a small abstract
//! memory system: 1–2 ranks × 2–4 banks, time quantized to a tREFI
//! sub-lattice, and a nondeterministic demand oracle that chooses a
//! busy/idle bit per refresh slot (plus DARP's write-drain mode flag)
//! at every decision point. Exploring *all* oracle choices from the
//! initial state enumerates every adversarial interleaving of
//! `poll_due` / `on_refresh_issued` / `on_refresh_skipped` /
//! `on_bank_activity` the controller seam can produce, up to a depth
//! bound. Visited states are hashed ([`crate::explore::fingerprint`])
//! after canonicalization: all clocks are folded to *deltas* against
//! `now`, monotonic counters are reduced modulo their period, and
//! slots within a rank are sorted (bank-permutation symmetry), so the
//! reachable quotient is finite and the search hits a fixpoint.
//!
//! Invariants (stable IDs, catalogued in DESIGN.md §17):
//!
//! * `mech-postpone` — no refresh issues later than `max_postpone`
//!   (itself ≤ the 8×tREFI JEDEC budget) past its due time.
//! * `mech-retention` — every row keeps being recharged inside its
//!   retention window: schedules advance in exact tREFI steps, SARP's
//!   rotation revisits each subarray within `subarrays` rounds and
//!   never names a subarray that does not exist, and RAIDR's 64/128/
//!   256 ms bins are each covered within their round budget.
//! * `mech-trfc` — issued refresh commands carry the full tRFC /
//!   tRFCpb / tRFCsa lock duration for their scope (RAIDR scaled
//!   rounds: 1..=tRFC) and never overlap on a rank's refresh engine.
//! * `mech-liveness` — from every reachable state some refresh is
//!   eventually issuable (no demand-starvation livelock); sound under
//!   truncation because depth-capped frontier states are assumed live.
//! * `mech-replay` — a safety counterexample is not just a path: it is
//!   re-executed into a [`TraceEvent`] sequence and fed to the dynamic
//!   [`Auditor`], which must independently flag it. This closes the
//!   static↔dynamic loop — the two checkers vouch for each other.
//!
//! Seeded mutations ([`Mutation`]) wrap a real mechanism with one
//! plausible bug each (per zoo member) and must all produce
//! Auditor-confirmed counterexamples; they are the checker's own
//! regression suite.

use std::collections::VecDeque;
use std::fmt;

use rop_dram::TimingParams;
use rop_events::{Cycle, EventSink, TraceEvent};
use rop_memctrl::mechanism::{AllBank, Darp, Raidr, Sarp};
use rop_memctrl::{RefreshManager, RefreshMechanism, RefreshScope, RefreshState, RoundShape};
use rop_sim_system::{Auditor, AuditorConfig};

use crate::explore::{fingerprint, SearchGraph, VisitedSet};

/// A mechanism the checker can clone at every search node. Blanket-
/// implemented for every `Clone` [`RefreshMechanism`], so the zoo (and
/// any future member) is coverable without per-type glue.
pub trait MechUnderTest: RefreshMechanism {
    /// Clones the mechanism behind the trait object.
    fn clone_box(&self) -> Box<dyn MechUnderTest>;
}

impl<T: RefreshMechanism + Clone + 'static> MechUnderTest for T {
    fn clone_box(&self) -> Box<dyn MechUnderTest> {
        Box::new(self.clone())
    }
}

/// Which zoo member a check targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechKind {
    /// Baseline all-bank (per-rank REF) auto-refresh.
    AllBank,
    /// DARP out-of-order per-bank refresh with idle pull-in.
    Darp,
    /// SARP subarray-rotating per-bank refresh.
    Sarp,
    /// RAIDR retention-binned scaled/skipped rounds.
    Raidr,
}

impl MechKind {
    /// Every zoo member, in gate order.
    pub const ALL: [MechKind; 4] = [
        MechKind::AllBank,
        MechKind::Darp,
        MechKind::Sarp,
        MechKind::Raidr,
    ];

    /// CLI name.
    pub fn label(self) -> &'static str {
        match self {
            MechKind::AllBank => "allbank",
            MechKind::Darp => "darp",
            MechKind::Sarp => "sarp",
            MechKind::Raidr => "raidr",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<MechKind> {
        MechKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// The checker target for a controller-config mechanism choice.
    pub fn of(kind: &rop_memctrl::MechanismKind) -> MechKind {
        match kind {
            rop_memctrl::MechanismKind::AllBank => MechKind::AllBank,
            rop_memctrl::MechanismKind::Darp => MechKind::Darp,
            rop_memctrl::MechanismKind::Sarp => MechKind::Sarp,
            rop_memctrl::MechanismKind::Raidr { .. } => MechKind::Raidr,
        }
    }
}

/// The distinct zoo members a job set will build, in gate order — the
/// coverage the pre-sweep verify-mech gate needs.
pub fn mechanisms_in_jobs(jobs: &[rop_sim_system::runner::SweepJob]) -> Vec<MechKind> {
    let present: Vec<MechKind> = jobs
        .iter()
        .map(|j| MechKind::of(&crate::config::resolve_ctrl(j).mechanism))
        .collect();
    MechKind::ALL
        .into_iter()
        .filter(|k| present.contains(k))
        .collect()
}

/// Pre-sweep gate: bounded exhaustive check of every distinct zoo
/// member `jobs` will build. `Ok` carries the per-mechanism reports
/// for logging; `Err` the rendered failures.
pub fn gate_jobs(jobs: &[rop_sim_system::runner::SweepJob]) -> Result<Vec<MechReport>, String> {
    let mut reports = Vec::new();
    let mut failures = String::new();
    for kind in mechanisms_in_jobs(jobs) {
        let report = check_mechanism(&MechCheckConfig::gate(kind));
        if !report.ok() {
            failures.push_str(&report.render());
        }
        reports.push(report);
    }
    if failures.is_empty() {
        Ok(reports)
    } else {
        Err(failures)
    }
}

/// One seeded bug per zoo member: each wraps the *real* mechanism and
/// perturbs exactly one behaviour through the public trait surface.
/// All four must yield Auditor-confirmed counterexamples — they are
/// the mutation self-test the CI gate runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// AllBank issues REF commands with a 1-cycle lock: the rank is
    /// declared refreshed after a token pulse (`mech-trfc`).
    ShortRef,
    /// DARP drops its pull-in bookkeeping: a pulled-in round is
    /// treated as already-covered and issues a truncated token REFpb
    /// instead of the full tRFCpb lock (`mech-trfc`).
    TruncatedPullIn,
    /// SARP rotates over `subarrays + 1` positions: one round per lap
    /// names a subarray that does not exist, refreshing no real rows
    /// (`mech-retention`).
    RotateOverflow,
    /// RAIDR widens its skip predicate to 4× the configured stride:
    /// only every fourth cover round actually refreshes, so the 64 ms
    /// bin overshoots its deadline (`mech-retention`).
    WidenedSkip,
}

impl Mutation {
    /// Every seeded mutation, in gate order.
    pub const ALL: [Mutation; 4] = [
        Mutation::ShortRef,
        Mutation::TruncatedPullIn,
        Mutation::RotateOverflow,
        Mutation::WidenedSkip,
    ];

    /// The zoo member this mutation perturbs.
    pub fn target(self) -> MechKind {
        match self {
            Mutation::ShortRef => MechKind::AllBank,
            Mutation::TruncatedPullIn => MechKind::Darp,
            Mutation::RotateOverflow => MechKind::Sarp,
            Mutation::WidenedSkip => MechKind::Raidr,
        }
    }

    /// CLI name.
    pub fn label(self) -> &'static str {
        match self {
            Mutation::ShortRef => "short-ref",
            Mutation::TruncatedPullIn => "truncated-pull-in",
            Mutation::RotateOverflow => "rotate-overflow",
            Mutation::WidenedSkip => "widened-skip",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Mutation> {
        Mutation::ALL.into_iter().find(|m| m.label() == s)
    }
}

/// Everything one `verify-mech` run needs: the mechanism (and optional
/// seeded mutation), the abstract system shape, timing, and search
/// bounds.
#[derive(Debug, Clone)]
pub struct MechCheckConfig {
    /// Zoo member under test.
    pub kind: MechKind,
    /// Seeded bug to inject, for the mutation self-test.
    pub mutation: Option<Mutation>,
    /// Ranks in the abstract system.
    pub ranks: usize,
    /// Banks per rank (slots per rank under per-bank scope).
    pub banks_per_rank: usize,
    /// Subarrays per bank (SARP rotation length).
    pub subarrays: usize,
    /// DRAM timing the abstract environment and the replay Auditor
    /// share; `t_refi`/`t_rfc*` are read from here.
    pub timing: TimingParams,
    /// Drain-before-refresh postpone budget (cycles); must stay within
    /// the 8×tREFI JEDEC budget and on the decision lattice.
    pub max_postpone: Cycle,
    /// RAIDR retention-profile seed.
    pub raidr_seed: u64,
    /// RAIDR shortest-bin period (multiple of tREFI).
    pub raidr_bin_period: Cycle,
    /// RAIDR rows per rank in the abstract retention profile.
    pub raidr_rows: usize,
    /// Depth bound: decision steps explored from the initial state.
    pub max_steps: usize,
    /// Safety valve on distinct canonical states.
    pub max_states: usize,
}

impl MechCheckConfig {
    /// The CI gate configuration for one zoo member: DDR4-1600 timing,
    /// two ranks for the per-rank mechanisms (stagger interleaving),
    /// one rank × four banks for the per-bank ones (sibling
    /// interactions), depth generous enough that the canonical state
    /// space closes well before the bound.
    pub fn gate(kind: MechKind) -> Self {
        let timing = TimingParams::ddr4_1600_8gb();
        let t_refi = timing.t_refi();
        let (ranks, banks) = match kind {
            MechKind::AllBank | MechKind::Raidr => (2, 4),
            MechKind::Darp | MechKind::Sarp => (1, 4),
        };
        MechCheckConfig {
            kind,
            mutation: None,
            ranks,
            banks_per_rank: banks,
            subarrays: 4,
            timing,
            max_postpone: 2 * t_refi,
            raidr_seed: 0x5241_4944, // "RAID"
            raidr_bin_period: 2 * t_refi,
            raidr_rows: 256,
            max_steps: 400,
            max_states: 500_000,
        }
    }

    /// The gate configuration for a seeded mutation (shape of the
    /// mutation's target mechanism).
    pub fn mutated(m: Mutation) -> Self {
        let mut cfg = Self::gate(m.target());
        cfg.mutation = Some(m);
        cfg
    }
}

/// One invariant violation found by the search.
#[derive(Debug, Clone)]
pub struct MechViolation {
    /// Stable invariant ID (`mech-postpone`, `mech-retention`,
    /// `mech-trfc`, `mech-liveness`).
    pub invariant: &'static str,
    /// Model cycle at which the invariant broke.
    pub cycle: Cycle,
    /// Human-readable description with observed and required values.
    pub message: String,
    /// Oracle-choice sequence reproducing the violation from the
    /// initial state (one choice per decision step).
    pub path: Vec<usize>,
}

impl fmt::Display for MechViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] at cycle {}: {} (path: {} steps)",
            self.invariant,
            self.cycle,
            self.message,
            self.path.len()
        )
    }
}

/// The counterexample re-executed as a concrete trace and re-validated
/// by the dynamic [`Auditor`] (`mech-replay`).
#[derive(Debug, Clone)]
pub struct MechReplay {
    /// The replayable event sequence.
    pub events: Vec<TraceEvent>,
    /// Invariants the Auditor flagged on replay.
    pub auditor_invariants: Vec<&'static str>,
    /// True when the Auditor independently confirmed the violation.
    pub confirmed: bool,
    /// The Auditor's full report (for artifacts).
    pub report: String,
}

/// Outcome of one `verify-mech` run.
#[derive(Debug)]
pub struct MechReport {
    /// Zoo member checked.
    pub kind: MechKind,
    /// Seeded mutation, when this was a self-test run.
    pub mutation: Option<Mutation>,
    /// Distinct canonical states visited.
    pub states: usize,
    /// Transitions explored.
    pub transitions: usize,
    /// Deepest decision step expanded.
    pub depth: usize,
    /// True when the search closed (fixpoint) within the bounds; false
    /// means some frontier states were cut off at `max_steps` /
    /// `max_states` and the verdict is bounded, not exhaustive.
    pub complete: bool,
    /// Reachable states from which no refresh is ever issuable.
    pub livelocks: usize,
    /// First invariant violation, if any.
    pub violation: Option<MechViolation>,
    /// Counterexample replay through the Auditor, when a safety
    /// violation was found.
    pub replay: Option<MechReplay>,
}

impl MechReport {
    /// True when every invariant held over the explored space.
    pub fn ok(&self) -> bool {
        self.violation.is_none() && self.livelocks == 0
    }

    /// One-screen summary for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name = match self.mutation {
            Some(m) => format!("{}+{}", self.kind.label(), m.label()),
            None => self.kind.label().to_string(),
        };
        let closure = if self.complete {
            "fixpoint"
        } else {
            "depth-bounded"
        };
        out.push_str(&format!(
            "verify-mech {name}: {} states, {} transitions, {} at depth {}\n",
            self.states, self.transitions, closure, self.depth
        ));
        match &self.violation {
            None => out
                .push_str("  OK: mech-postpone mech-retention mech-trfc mech-liveness all hold\n"),
            Some(v) => {
                out.push_str(&format!("  FAIL {v}\n"));
                match &self.replay {
                    Some(r) => {
                        let verdict = if r.confirmed {
                            "confirmed"
                        } else {
                            "NOT confirmed"
                        };
                        out.push_str(&format!(
                            "  mech-replay: {} events, Auditor {} ({})\n",
                            r.events.len(),
                            verdict,
                            r.auditor_invariants.join(", ")
                        ));
                    }
                    None => out.push_str("  (liveness counterexamples have no replay)\n"),
                }
            }
        }
        out
    }
}

/// Derived environment constants, fixed for one run.
struct Env {
    ranks: usize,
    slots: usize,
    slots_per_rank: usize,
    banks_per_rank: usize,
    per_bank: bool,
    subarrays: usize,
    t_refi: Cycle,
    t_rfc: Cycle,
    t_rfc_pb: Cycle,
    t_rfc_sa: Cycle,
    max_postpone: Cycle,
    quantum: Cycle,
    /// RAIDR rounds per shortest-bin period, when binning is on.
    raidr_stride: Option<u64>,
    /// Oracle choices per decision step.
    choices: usize,
}

impl Env {
    fn new(cfg: &MechCheckConfig, scope: RefreshScope) -> Env {
        let per_bank = scope == RefreshScope::PerBank;
        let slots = if per_bank {
            cfg.ranks * cfg.banks_per_rank
        } else {
            cfg.ranks
        };
        let t_refi = cfg.timing.t_refi();
        // The decision lattice: fine enough that every slot's stagger
        // offset and the postpone deadline land exactly on it (so a
        // clean forced issue is never observed late), coarse enough
        // that any refresh completes before the next decision point.
        let quantum = t_refi / slots.max(4) as u64;
        assert!(quantum > 0 && t_refi.is_multiple_of(quantum));
        // Stagger offsets and the postpone deadline must land on the
        // lattice, or a clean forced issue would be observed late.
        assert!((t_refi / slots as u64).is_multiple_of(quantum));
        assert!(cfg.max_postpone.is_multiple_of(quantum));
        assert!(cfg.timing.t_rfc() <= quantum, "tRFC must fit one quantum");
        assert!(cfg.subarrays <= 8, "fingerprint packs 8-bit lanes");
        let raidr_stride = (cfg.kind == MechKind::Raidr).then(|| {
            assert!(cfg.raidr_bin_period.is_multiple_of(t_refi));
            cfg.raidr_bin_period / t_refi
        });
        // The write-drain flag only changes DARP's pull-in window;
        // branching on it elsewhere doubles the edge count for nothing.
        let wd = if cfg.kind == MechKind::Darp { 2 } else { 1 };
        Env {
            ranks: cfg.ranks,
            slots,
            slots_per_rank: slots / cfg.ranks,
            banks_per_rank: cfg.banks_per_rank,
            per_bank,
            subarrays: cfg.subarrays,
            t_refi,
            t_rfc: cfg.timing.t_rfc(),
            t_rfc_pb: cfg.timing.t_rfc_pb,
            t_rfc_sa: cfg.timing.t_rfc_sa,
            max_postpone: cfg.max_postpone,
            quantum,
            raidr_stride,
            choices: (1 << slots) * wd,
        }
    }

    fn rank_of(&self, slot: usize) -> usize {
        if self.per_bank {
            slot / self.banks_per_rank
        } else {
            slot
        }
    }

    fn bank_of(&self, slot: usize) -> Option<usize> {
        self.per_bank.then_some(slot % self.banks_per_rank)
    }

    /// Round budget (in tREFI rounds) for RAIDR retention bin `i`.
    fn bin_budget(&self, bin: usize) -> u64 {
        self.raidr_stride.unwrap_or(1) << bin
    }
}

fn build_mech(cfg: &MechCheckConfig) -> Box<dyn MechUnderTest> {
    let t_refi = cfg.timing.t_refi();
    let slots = cfg.ranks * cfg.banks_per_rank;
    match cfg.mutation {
        None => match cfg.kind {
            MechKind::AllBank => Box::new(AllBank::new(RefreshScope::PerRank)),
            MechKind::Darp => Box::new(Darp::new(slots, cfg.banks_per_rank, t_refi)),
            MechKind::Sarp => Box::new(Sarp::new(cfg.subarrays)),
            MechKind::Raidr => Box::new(Raidr::new(
                cfg.ranks,
                cfg.raidr_seed,
                cfg.raidr_bin_period,
                t_refi,
                cfg.timing.t_rfc(),
                cfg.raidr_rows,
            )),
        },
        Some(Mutation::ShortRef) => Box::new(MutShortRef {
            inner: AllBank::new(RefreshScope::PerRank),
        }),
        Some(Mutation::TruncatedPullIn) => Box::new(MutTruncatedPullIn {
            inner: Darp::new(slots, cfg.banks_per_rank, t_refi),
            pulled: vec![false; slots],
        }),
        Some(Mutation::RotateOverflow) => Box::new(MutRotateOverflow {
            inner: Sarp::new(cfg.subarrays),
            subarrays: cfg.subarrays,
        }),
        Some(Mutation::WidenedSkip) => Box::new(MutWidenedSkip {
            inner: Raidr::new(
                cfg.ranks,
                cfg.raidr_seed,
                cfg.raidr_bin_period,
                t_refi,
                cfg.timing.t_rfc(),
                cfg.raidr_rows,
            ),
            widen: 4 * (cfg.raidr_bin_period / t_refi),
            rounds: vec![0; cfg.ranks],
        }),
    }
}

/// [`Mutation::ShortRef`]: AllBank whose REF locks the rank for one
/// cycle instead of tRFC.
#[derive(Clone)]
struct MutShortRef {
    inner: AllBank,
}

impl RefreshMechanism for MutShortRef {
    fn scope(&self) -> RefreshScope {
        self.inner.scope()
    }

    fn poll_due(
        &mut self,
        base: &mut RefreshManager,
        now: Cycle,
        busy: &dyn Fn(usize) -> bool,
        write_drain: bool,
        out: &mut Vec<usize>,
    ) {
        self.inner.poll_due(base, now, busy, write_drain, out);
    }

    fn round_shape(&self, base: &RefreshManager, slot: usize) -> RoundShape {
        RoundShape::Scaled {
            duration: 1,
            round: base.issued(slot),
            covers_128: true,
            covers_256: true,
        }
    }

    fn on_refresh_issued(
        &mut self,
        base: &mut RefreshManager,
        slot: usize,
        now: Cycle,
        until: Cycle,
    ) {
        self.inner.on_refresh_issued(base, slot, now, until);
    }
}

/// [`Mutation::TruncatedPullIn`]: DARP that loses its pull-in
/// bookkeeping — a pulled-in round is treated as already-covered and
/// issues a token-length REFpb.
#[derive(Clone)]
struct MutTruncatedPullIn {
    inner: Darp,
    pulled: Vec<bool>,
}

impl RefreshMechanism for MutTruncatedPullIn {
    fn scope(&self) -> RefreshScope {
        self.inner.scope()
    }

    fn poll_due(
        &mut self,
        base: &mut RefreshManager,
        now: Cycle,
        busy: &dyn Fn(usize) -> bool,
        write_drain: bool,
        out: &mut Vec<usize>,
    ) {
        let before = out.len();
        self.inner.poll_due(base, now, busy, write_drain, out);
        // A slot draining *ahead of* its due time is a pull-in.
        for &s in &out[before..] {
            if let RefreshState::Draining { due } = base.state(s) {
                if due > now {
                    self.pulled[s] = true;
                }
            }
        }
    }

    fn round_shape(&self, base: &RefreshManager, slot: usize) -> RoundShape {
        if self.pulled[slot] {
            RoundShape::Scaled {
                duration: 8,
                round: base.issued(slot),
                covers_128: false,
                covers_256: false,
            }
        } else {
            self.inner.round_shape(base, slot)
        }
    }

    fn on_refresh_issued(
        &mut self,
        base: &mut RefreshManager,
        slot: usize,
        now: Cycle,
        until: Cycle,
    ) {
        self.pulled[slot] = false;
        self.inner.on_refresh_issued(base, slot, now, until);
    }

    fn on_bank_activity(&mut self, slot: usize, now: Cycle) {
        self.inner.on_bank_activity(slot, now);
    }

    fn mech_state(&self, base: &RefreshManager, now: Cycle, slot: usize) -> u64 {
        self.inner.mech_state(base, now, slot) | (u64::from(self.pulled[slot]) << 56)
    }
}

/// [`Mutation::RotateOverflow`]: SARP rotating over `subarrays + 1`
/// positions — one round per lap targets a subarray that does not
/// exist.
#[derive(Clone)]
struct MutRotateOverflow {
    inner: Sarp,
    subarrays: usize,
}

impl RefreshMechanism for MutRotateOverflow {
    fn scope(&self) -> RefreshScope {
        self.inner.scope()
    }

    fn poll_due(
        &mut self,
        base: &mut RefreshManager,
        now: Cycle,
        busy: &dyn Fn(usize) -> bool,
        write_drain: bool,
        out: &mut Vec<usize>,
    ) {
        self.inner.poll_due(base, now, busy, write_drain, out);
    }

    fn round_shape(&self, base: &RefreshManager, slot: usize) -> RoundShape {
        RoundShape::Subarray {
            subarray: (base.issued(slot) % (self.subarrays as u64 + 1)) as usize,
        }
    }

    fn on_refresh_issued(
        &mut self,
        base: &mut RefreshManager,
        slot: usize,
        now: Cycle,
        until: Cycle,
    ) {
        self.inner.on_refresh_issued(base, slot, now, until);
    }

    fn mech_state(&self, base: &RefreshManager, _now: Cycle, slot: usize) -> u64 {
        base.issued(slot) % (self.subarrays as u64 + 1)
    }
}

/// [`Mutation::WidenedSkip`]: RAIDR whose skip predicate fires on
/// everything but every fourth cover round — the 64 ms bin overshoots
/// its deadline.
#[derive(Clone)]
struct MutWidenedSkip {
    inner: Raidr,
    /// Rounds between surviving covers (4 × the clean stride).
    widen: u64,
    /// Own per-slot round counters, advanced in lockstep with the
    /// inner mechanism's.
    rounds: Vec<u64>,
}

impl RefreshMechanism for MutWidenedSkip {
    fn scope(&self) -> RefreshScope {
        self.inner.scope()
    }

    fn poll_due(
        &mut self,
        base: &mut RefreshManager,
        now: Cycle,
        busy: &dyn Fn(usize) -> bool,
        write_drain: bool,
        out: &mut Vec<usize>,
    ) {
        self.inner.poll_due(base, now, busy, write_drain, out);
    }

    fn round_shape(&self, base: &RefreshManager, slot: usize) -> RoundShape {
        let r = self.rounds[slot];
        if r.is_multiple_of(self.widen) {
            self.inner.round_shape(base, slot)
        } else {
            RoundShape::Skip { round: r }
        }
    }

    fn on_refresh_issued(
        &mut self,
        base: &mut RefreshManager,
        slot: usize,
        now: Cycle,
        until: Cycle,
    ) {
        self.rounds[slot] += 1;
        self.inner.on_refresh_issued(base, slot, now, until);
    }

    fn on_refresh_skipped(&mut self, base: &mut RefreshManager, slot: usize, now: Cycle) {
        self.rounds[slot] += 1;
        self.inner.on_refresh_skipped(base, slot, now);
    }

    fn mech_state(&self, base: &RefreshManager, now: Cycle, slot: usize) -> u64 {
        self.inner.mech_state(base, now, slot) | ((self.rounds[slot] % self.widen) << 32)
    }
}

/// The mutable model state: the real manager + mechanism, plus the
/// spec's own retention bookkeeping (round-unit recurrence counters —
/// wall-clock recurrence follows from these plus `mech-postpone` and
/// the exact-tREFI schedule-advance check, and round units keep the
/// canonical state space finite).
struct World {
    now: Cycle,
    mgr: RefreshManager,
    mech: Box<dyn MechUnderTest>,
    /// Per-rank refresh-engine busy-until (command overlap check).
    engine_free: Vec<Cycle>,
    /// SARP: rounds since subarray `slot * subarrays + sa` was
    /// refreshed, saturated just past the budget.
    sarp_since: Vec<u32>,
    /// RAIDR: rounds since bin `rank * 3 + bin` was covered, saturated
    /// just past the budget.
    bin_since: Vec<u32>,
}

impl Clone for World {
    fn clone(&self) -> World {
        World {
            now: self.now,
            mgr: self.mgr.clone(),
            mech: self.mech.clone_box(),
            engine_free: self.engine_free.clone(),
            sarp_since: self.sarp_since.clone(),
            bin_since: self.bin_since.clone(),
        }
    }
}

impl World {
    fn new(cfg: &MechCheckConfig, env: &Env) -> World {
        World {
            now: 0,
            mgr: RefreshManager::new(env.slots, env.t_refi, env.max_postpone, true),
            mech: build_mech(cfg),
            engine_free: vec![0; env.ranks],
            sarp_since: vec![0; env.slots * env.subarrays],
            bin_since: vec![0; env.ranks * 3],
        }
    }
}

/// Collects the replay trace during counterexample re-execution.
/// `RefreshEnd` events are buffered until the clock passes their
/// completion cycle so the emitted sequence stays time-ordered.
#[derive(Default)]
struct Recorder {
    events: Vec<TraceEvent>,
    pending_ends: Vec<(Cycle, usize, Option<usize>)>,
}

impl Recorder {
    fn flush_upto(&mut self, now: Cycle) {
        self.pending_ends.sort_unstable();
        let mut rest = Vec::new();
        for &(cycle, rank, bank) in &self.pending_ends {
            if cycle <= now {
                self.events
                    .push(TraceEvent::RefreshEnd { cycle, rank, bank });
            } else {
                rest.push((cycle, rank, bank));
            }
        }
        self.pending_ends = rest;
    }

    fn finish(mut self) -> Vec<TraceEvent> {
        self.flush_upto(Cycle::MAX);
        self.events
    }
}

fn viol(invariant: &'static str, cycle: Cycle, message: String) -> MechViolation {
    MechViolation {
        invariant,
        cycle,
        message,
        path: Vec::new(),
    }
}

/// Advances the world by one decision step under oracle `choice`.
/// Returns `(progress, violation)`: `progress` marks a refresh command
/// actually issued (the liveness goal).
fn step(
    env: &Env,
    w: &mut World,
    choice: usize,
    mut rec: Option<&mut Recorder>,
) -> (bool, Option<MechViolation>) {
    let now = w.now;
    let busy_mask = choice & ((1 << env.slots) - 1);
    let write_drain = (choice >> env.slots) & 1 == 1;
    let busy = move |s: usize| busy_mask >> s & 1 == 1;

    if let Some(r) = rec.as_deref_mut() {
        r.flush_upto(now);
    }

    // Completions from earlier steps (every duration fits one quantum,
    // so anything in flight has finished by now).
    let mut done = Vec::new();
    w.mgr.poll_complete_into(now, &mut done);

    // The oracle's demand arrivals for this step.
    for s in 0..env.slots {
        if busy(s) {
            w.mech.on_bank_activity(s, now);
        }
    }

    // Due-time bookkeeping: new drains and (DARP) pull-ins.
    let mut newly = Vec::new();
    w.mech
        .poll_due(&mut w.mgr, now, &busy, write_drain, &mut newly);
    for &s in &newly {
        // RAIDR rounds with no retention bin due resolve at poll time,
        // exactly like the real controller: no drain, no bus command,
        // just a RetentionRound marker in the trace.
        if let RoundShape::Skip { round } = w.mech.round_shape(&w.mgr, s) {
            if env.raidr_stride.is_none() {
                return (
                    false,
                    Some(viol(
                        "mech-trfc",
                        now,
                        format!("slot {s} skipped a refresh round, but the mechanism has no retention bins to justify it"),
                    )),
                );
            }
            let due = match w.mgr.state(s) {
                RefreshState::Draining { due } => due,
                _ => now,
            };
            w.mech.on_refresh_skipped(&mut w.mgr, s, now);
            if let Some(r) = rec.as_deref_mut() {
                r.events.push(TraceEvent::RetentionRound {
                    cycle: now,
                    rank: env.rank_of(s),
                    round,
                    covers_128: false,
                    covers_256: false,
                });
            }
            let v = check_due_advance(env, &w.mgr, s, due, now)
                .or_else(|| advance_bins(env, w, env.rank_of(s), now, false, false, false));
            if v.is_some() {
                return (false, v);
            }
        } else if let Some(r) = rec.as_deref_mut() {
            r.events.push(TraceEvent::DrainStart {
                cycle: now,
                rank: env.rank_of(s),
            });
        }
    }

    // Issue phase: one refresh engine per rank, so at most one command
    // per rank per step — a forced (deadline-passed) slot beats an
    // idle-eligible one. Deadlines within a rank are stagger-distinct,
    // so two slots are never forced at the same decision point.
    let mut progress = false;
    for rank in 0..env.ranks {
        let lo = rank * env.slots_per_rank;
        let mut pick = None;
        for slot in lo..lo + env.slots_per_rank {
            if let RefreshState::Draining { due } = w.mgr.state(slot) {
                if w.mgr.drain_deadline_passed(slot, now) {
                    pick = Some((slot, due));
                    break;
                }
                if pick.is_none() && !busy(slot) {
                    pick = Some((slot, due));
                }
            }
        }
        if let Some((slot, due)) = pick {
            let v = issue_round(env, w, slot, due, now, rec.as_deref_mut(), &mut progress);
            if v.is_some() {
                return (progress, v);
            }
        }
    }

    w.now = now + env.quantum;
    (progress, None)
}

/// Puts `slot`'s current round on the bus (or skips it) and checks the
/// safety invariants. Events are recorded *before* the checks so a
/// violating command reaches the replay Auditor.
fn issue_round(
    env: &Env,
    w: &mut World,
    slot: usize,
    due: Cycle,
    now: Cycle,
    rec: Option<&mut Recorder>,
    progress: &mut bool,
) -> Option<MechViolation> {
    let rank = env.rank_of(slot);
    let late = now.saturating_sub(due);
    let shape = w.mech.round_shape(&w.mgr, slot);

    if let RoundShape::Skip { .. } = shape {
        // Shapes are stable until advanced and skip rounds resolve at
        // poll time, so a draining slot presenting a Skip means the
        // mechanism mutated its round out of band.
        return Some(viol(
            "mech-trfc",
            now,
            format!("slot {slot} presented a skip for an already-draining round"),
        ));
    }

    // What goes on the bus: lock duration, scope, and coverage.
    let bank = env.bank_of(slot);
    let (duration, subarray, retention) = match shape {
        RoundShape::Standard => {
            let d = if env.per_bank {
                env.t_rfc_pb
            } else {
                env.t_rfc
            };
            (d, None, None)
        }
        RoundShape::Subarray { subarray } => (env.t_rfc_sa, Some(subarray), None),
        RoundShape::Scaled {
            duration,
            round,
            covers_128,
            covers_256,
        } => (duration.max(1), None, Some((round, covers_128, covers_256))),
        RoundShape::Skip { .. } => unreachable!("handled above"), // rop-lint: allow(no-panic)
    };
    let until = now + duration;

    if let Some(r) = rec {
        if let (Some((round, c128, c256)), None) = (retention, bank) {
            if env.raidr_stride.is_some() {
                r.events.push(TraceEvent::RetentionRound {
                    cycle: now,
                    rank,
                    round,
                    covers_128: c128,
                    covers_256: c256,
                });
            }
        }
        r.events.push(TraceEvent::RefreshStart {
            cycle: now,
            rank,
            bank,
            subarray,
        });
        r.pending_ends.push((until, rank, bank));
    }

    // mech-postpone: the JEDEC budget, through the configured bound.
    if late > env.max_postpone {
        return Some(viol(
            "mech-postpone",
            now,
            format!(
                "slot {slot} refresh issued {late} cycles past its due time (postpone budget {}, JEDEC 8×tREFI {})",
                env.max_postpone,
                8 * env.t_refi
            ),
        ));
    }

    // mech-trfc: full lock duration for the command's scope.
    let required = match (shape, env.raidr_stride) {
        (RoundShape::Scaled { .. }, Some(_)) => 1,
        _ if env.per_bank && subarray.is_some() => env.t_rfc_sa,
        _ if env.per_bank => env.t_rfc_pb,
        _ => env.t_rfc,
    };
    if duration < required || duration > env.t_rfc {
        return Some(viol(
            "mech-trfc",
            now,
            format!(
                "slot {slot} refresh locks its scope for {duration} cycles, required {required}..={}",
                env.t_rfc
            ),
        ));
    }
    // One refresh engine per rank.
    if now < w.engine_free[rank] {
        return Some(viol(
            "mech-trfc",
            now,
            format!(
                "rank {rank} refresh issued {} cycles before its engine is free",
                w.engine_free[rank] - now
            ),
        ));
    }

    // mech-retention: the rotation must stay inside the bank.
    if let Some(sa) = subarray {
        if sa >= env.subarrays {
            return Some(viol(
                "mech-retention",
                now,
                format!(
                    "slot {slot} round targets subarray {sa}, but banks have only {} — those rows are never refreshed",
                    env.subarrays
                ),
            ));
        }
    }

    w.mech.on_refresh_issued(&mut w.mgr, slot, now, until);
    w.engine_free[rank] = until;
    *progress = true;

    if let Some(v) = check_due_advance(env, &w.mgr, slot, due, now) {
        return Some(v);
    }

    // Retention recurrence, in round units (wall-clock bounds follow
    // from mech-postpone + the exact-tREFI advance check).
    if let Some(sa) = subarray {
        let base = slot * env.subarrays;
        for i in 0..env.subarrays {
            let c = &mut w.sarp_since[base + i];
            *c = (*c + 1).min(env.subarrays as u32 + 1);
        }
        w.sarp_since[base + sa] = 0;
        for (i, &c) in w.sarp_since[base..base + env.subarrays].iter().enumerate() {
            if c > env.subarrays as u32 {
                return Some(viol(
                    "mech-retention",
                    now,
                    format!(
                        "slot {slot} subarray {i} has gone more than {} rounds without refresh — its rotation slot was lost",
                        env.subarrays
                    ),
                ));
            }
        }
    }
    if let Some((_, c128, c256)) = retention {
        return advance_bins(env, w, rank, now, true, c128, c256);
    }
    None
}

/// `mech-retention`: every issue/skip must move the slot's schedule by
/// exactly one tREFI — a mechanism that jumps further silently drops
/// refresh rounds.
fn check_due_advance(
    env: &Env,
    mgr: &RefreshManager,
    slot: usize,
    old_due: Cycle,
    now: Cycle,
) -> Option<MechViolation> {
    let next = mgr.next_due(slot);
    (next != old_due + env.t_refi).then(|| {
        viol(
            "mech-retention",
            now,
            format!(
                "slot {slot} schedule advanced from {old_due} to {next}, expected {} (exactly one tREFI)",
                old_due + env.t_refi
            ),
        )
    })
}

/// Advances RAIDR's per-rank bin-recurrence counters by one round and
/// checks the 64/128/256 ms budgets.
fn advance_bins(
    env: &Env,
    w: &mut World,
    rank: usize,
    now: Cycle,
    covers_64: bool,
    covers_128: bool,
    covers_256: bool,
) -> Option<MechViolation> {
    env.raidr_stride?;
    let covered = [covers_64, covers_128, covers_256];
    for (bin, &hit) in covered.iter().enumerate() {
        let budget = env.bin_budget(bin) as u32;
        let c = &mut w.bin_since[rank * 3 + bin];
        *c = (*c + 1).min(budget + 1);
        if hit {
            *c = 0;
        } else if *c > budget {
            return Some(viol(
                "mech-retention",
                now,
                format!(
                    "rank {rank} {} ms-bin rows have gone more than {budget} rounds without cover",
                    64u32 << bin
                ),
            ));
        }
    }
    None
}

/// Canonical state words: every clock folded to a delta against `now`,
/// slots within a rank sorted (bank-permutation symmetry — mechanisms
/// treat sibling slots uniformly and the oracle enumerates all busy
/// masks, so permuted states are bisimilar).
fn canon_words(env: &Env, w: &World) -> Vec<u64> {
    // Offset keeps signed deltas (a pulled-in drain's due lies in the
    // future) positive without wrapping ambiguity.
    const OFFSET: u64 = 1 << 40;
    let mut words = Vec::with_capacity(env.slots * 4 + env.ranks * 2);
    for rank in 0..env.ranks {
        let lo = rank * env.slots_per_rank;
        let mut tuples: Vec<[u64; 4]> = (lo..lo + env.slots_per_rank)
            .map(|s| {
                // Signed due/until delta against `now`, offset-encoded
                // (a pulled-in drain's due lies in the future, a
                // postponed one's in the past; both are bounded, so the
                // encoding never collides across the offset).
                let enc = |c: Cycle| OFFSET.wrapping_add(c).wrapping_sub(w.now);
                let (tag, delta) = match w.mgr.state(s) {
                    RefreshState::Idle => (0, enc(w.mgr.next_due(s))),
                    RefreshState::Draining { due } => (1, enc(due)),
                    RefreshState::Refreshing { until } => (2, until.saturating_sub(w.now)),
                };
                let sa_pack =
                    if env.subarrays > 0 && matches!(w.mech.scope(), RefreshScope::PerBank) {
                        w.sarp_since[s * env.subarrays..(s + 1) * env.subarrays]
                            .iter()
                            .enumerate()
                            .fold(0u64, |acc, (i, &c)| acc | (u64::from(c) << (8 * i)))
                    } else {
                        0
                    };
                [tag, delta, w.mech.mech_state(&w.mgr, w.now, s), sa_pack]
            })
            .collect();
        tuples.sort_unstable();
        for t in tuples {
            words.extend_from_slice(&t);
        }
        words.push(w.engine_free[rank].saturating_sub(w.now));
        if env.raidr_stride.is_some() {
            words.push(
                w.bin_since[rank * 3..rank * 3 + 3]
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &c)| acc | (u64::from(c) << (16 * i))),
            );
        }
    }
    words
}

/// Runs the bounded exhaustive search for one configuration.
pub fn check_mechanism(cfg: &MechCheckConfig) -> MechReport {
    if let Some(m) = cfg.mutation {
        assert_eq!(
            m.target(),
            cfg.kind,
            "mutation {} targets {}, not {}",
            m.label(),
            m.target().label(),
            cfg.kind.label()
        );
    }
    let scope = build_mech(cfg).scope();
    let env = Env::new(cfg, scope);
    let root = World::new(cfg, &env);

    let mut visited = VisitedSet::new();
    let mut graph = SearchGraph::new();
    let (fresh, id0) = visited.intern(fingerprint(&canon_words(&env, &root)));
    debug_assert!(fresh && id0 == 0);

    let mut queue: VecDeque<(usize, usize, World)> = VecDeque::new();
    queue.push_back((0, 0, root));
    let mut cut_frontier = Vec::new();
    let mut transitions = 0usize;
    let mut depth_seen = 0usize;
    let mut violation = None;

    'search: while let Some((node, depth, w)) = queue.pop_front() {
        if depth >= cfg.max_steps || visited.len() >= cfg.max_states {
            cut_frontier.push(node);
            continue;
        }
        depth_seen = depth_seen.max(depth + 1);
        for choice in 0..env.choices {
            let mut succ = w.clone();
            let (progress, v) = step(&env, &mut succ, choice, None);
            transitions += 1;
            if let Some(mut v) = v {
                let mut path = graph.path_to(node);
                path.push(choice);
                v.path = path;
                violation = Some(v);
                break 'search;
            }
            let fp = fingerprint(&canon_words(&env, &succ));
            let (new, id) = visited.intern(fp);
            if new {
                let got = graph.add_node(node, choice);
                debug_assert_eq!(got, id);
                queue.push_back((id, depth + 1, succ));
            }
            graph.add_edge(node, id, progress);
        }
    }

    let livelocks = if violation.is_none() {
        let live = graph.live_nodes(&cut_frontier);
        let dead: Vec<usize> = (0..graph.node_count()).filter(|&n| !live[n]).collect();
        if let Some(&first) = dead.first() {
            violation = Some(MechViolation {
                invariant: "mech-liveness",
                cycle: 0,
                message: format!(
                    "{} reachable state(s) from which no refresh is ever issuable",
                    dead.len()
                ),
                path: graph.path_to(first),
            });
        }
        dead.len()
    } else {
        0
    };

    let replay = violation
        .as_ref()
        .filter(|v| v.invariant != "mech-liveness")
        .map(|v| replay_counterexample(cfg, &env, &v.path));

    MechReport {
        kind: cfg.kind,
        mutation: cfg.mutation,
        states: visited.len(),
        transitions,
        depth: depth_seen,
        complete: cut_frontier.is_empty(),
        livelocks,
        violation,
        replay,
    }
}

/// Re-executes a counterexample path into a concrete [`TraceEvent`]
/// sequence and feeds it to the dynamic [`Auditor`]. The replay runs a
/// quiet (all-idle) tail past the violating step so gap-style
/// violations (a retention bin covered too late) become visible to the
/// Auditor, which flags them at the *next* cover.
fn replay_counterexample(cfg: &MechCheckConfig, env: &Env, path: &[usize]) -> MechReplay {
    let mut w = World::new(cfg, env);
    let mut rec = Recorder::default();
    // A violating step aborts before advancing the clock; push time
    // forward anyway so the tail keeps making progress instead of
    // re-recording the same cycle over and over.
    let run = |w: &mut World, choice: usize, rec: &mut Recorder| {
        let before = w.now;
        let _ = step(env, w, choice, Some(rec));
        if w.now == before {
            w.now = before + env.quantum;
        }
    };
    for &choice in path {
        run(&mut w, choice, &mut rec);
    }
    let tail = 16 * env.t_refi / env.quantum;
    for _ in 0..tail {
        run(&mut w, 0, &mut rec);
    }
    let events = rec.finish();

    let audit_cfg = AuditorConfig {
        timing: cfg.timing,
        ranks: env.ranks,
        banks_per_rank: env.banks_per_rank,
        per_bank: env.per_bank,
        max_refresh_postpone: env.max_postpone,
        elastic_max_debt: None,
        observational_window: None,
        rows_per_subarray: 1024,
        subarrays_per_bank: env.subarrays,
        raidr_bin_period: env.raidr_stride.map(|s| s * env.t_refi),
    };
    let mut auditor = Auditor::new(audit_cfg);
    for e in &events {
        auditor.record(*e);
    }
    let mut invariants: Vec<&'static str> =
        auditor.violations().iter().map(|v| v.invariant).collect();
    invariants.sort_unstable();
    invariants.dedup();
    MechReplay {
        confirmed: !invariants.is_empty(),
        auditor_invariants: invariants,
        report: auditor.report(),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A compact environment so debug-mode tests close quickly.
    fn compact(kind: MechKind) -> MechCheckConfig {
        let mut cfg = MechCheckConfig::gate(kind);
        match kind {
            MechKind::AllBank | MechKind::Raidr => {
                cfg.ranks = 1;
                cfg.banks_per_rank = 2;
            }
            MechKind::Darp | MechKind::Sarp => {
                cfg.ranks = 1;
                cfg.banks_per_rank = 2;
                cfg.subarrays = 2;
            }
        }
        cfg
    }

    fn compact_mutated(m: Mutation) -> MechCheckConfig {
        let mut cfg = compact(m.target());
        cfg.mutation = Some(m);
        cfg
    }

    #[test]
    fn the_sweep_gate_covers_every_mechanism_in_the_grid() {
        use rop_sim_system::experiments::driver::plan_jobs;
        use rop_sim_system::runner::RunSpec;
        let spec = RunSpec {
            instructions: 1000,
            max_cycles: 1000,
            seed: 1,
        };
        // The mechanism head-to-head builds the whole zoo; the gate
        // must cover all of it, in roster order.
        let jobs = plan_jobs("mechanisms", spec).expect("plan");
        assert_eq!(mechanisms_in_jobs(&jobs), MechKind::ALL.to_vec());
        // A single-core sweep only ever builds all-bank refresh, and
        // its (much smaller) gate passes.
        let jobs = plan_jobs("single", spec).expect("plan");
        assert_eq!(mechanisms_in_jobs(&jobs), vec![MechKind::AllBank]);
        let reports = gate_jobs(&jobs).expect("all-bank gate is clean");
        assert_eq!(reports.len(), 1);
        assert!(reports[0].complete);
    }

    #[test]
    fn clean_mechanisms_verify_clean() {
        for kind in MechKind::ALL {
            let report = check_mechanism(&compact(kind));
            assert!(report.ok(), "{} failed:\n{}", kind.label(), report.render());
            assert!(report.complete, "{} did not reach fixpoint", kind.label());
            assert!(report.states > 10, "{} explored too little", kind.label());
        }
    }

    #[test]
    fn every_mutation_yields_an_auditor_confirmed_counterexample() {
        let expect = [
            (Mutation::ShortRef, "mech-trfc", "timing.tRFC"),
            (Mutation::TruncatedPullIn, "mech-trfc", "timing.tRFC"),
            (
                Mutation::RotateOverflow,
                "mech-retention",
                "refresh.subarray-scope",
            ),
            (
                Mutation::WidenedSkip,
                "mech-retention",
                "raidr.bin-deadline",
            ),
        ];
        for (m, static_inv, dynamic_inv) in expect {
            let report = check_mechanism(&compact_mutated(m));
            let v = report
                .violation
                .as_ref()
                .unwrap_or_else(|| panic!("{} produced no counterexample", m.label()));
            assert_eq!(v.invariant, static_inv, "{}: {v}", m.label());
            assert!(!v.path.is_empty(), "{}: empty path", m.label());
            let replay = report
                .replay
                .as_ref()
                .unwrap_or_else(|| panic!("{} has no replay", m.label()));
            assert!(!replay.events.is_empty(), "{}: empty trace", m.label());
            assert!(
                replay.confirmed,
                "{}: Auditor did not confirm:\n{}",
                m.label(),
                replay.report
            );
            assert!(
                replay.auditor_invariants.contains(&dynamic_inv),
                "{}: Auditor flagged {:?}, expected {dynamic_inv}",
                m.label(),
                replay.auditor_invariants
            );
        }
    }

    #[test]
    fn counterexample_paths_replay_deterministically() {
        let report = check_mechanism(&compact_mutated(Mutation::ShortRef));
        let a = report.replay.as_ref().unwrap().events.clone();
        let b = check_mechanism(&compact_mutated(Mutation::ShortRef))
            .replay
            .unwrap()
            .events;
        assert_eq!(a, b);
    }

    #[test]
    fn mutation_targets_cover_the_zoo() {
        let mut kinds: Vec<&str> = Mutation::ALL.iter().map(|m| m.target().label()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), MechKind::ALL.len());
        for m in Mutation::ALL {
            assert_eq!(Mutation::parse(m.label()), Some(m));
        }
        for k in MechKind::ALL {
            assert_eq!(MechKind::parse(k.label()), Some(k));
        }
    }

    #[test]
    fn symmetry_reduction_collapses_sibling_banks() {
        // Two sibling banks with mirrored (state, due) assignments must
        // canonicalize identically.
        let cfg = compact(MechKind::Darp);
        let env = Env::new(&cfg, RefreshScope::PerBank);
        let mut a = World::new(&cfg, &env);
        let mut b = World::new(&cfg, &env);
        // Drive both worlds one step with mirrored busy masks; the
        // resulting states differ only by the bank permutation.
        let _ = step(&env, &mut a, 0b01, None);
        let _ = step(&env, &mut b, 0b10, None);
        assert_eq!(
            fingerprint(&canon_words(&env, &a)),
            fingerprint(&canon_words(&env, &b))
        );
    }
}
