//! Shared state-space exploration primitives for the model checkers.
//!
//! Two checkers share this module: the FSM pass ([`crate::fsm`]), which
//! explores a small *declared* edge list, and the refresh-mechanism
//! checker ([`crate::mech`]), which discovers its graph on the fly by
//! driving the real `RefreshMechanism` implementations and hashing
//! visited states. Both need the same two closures:
//!
//! * forward reachability from an initial state ([`reachable_states`]),
//! * a backward closure over the edge set ([`backward_closure`]) — the
//!   liveness primitive ("from which states can `pred` still be
//!   reached?").
//!
//! The on-the-fly side additionally gets a hashed visited set
//! ([`VisitedSet`]) keyed by [`fingerprint`]s of canonicalized state
//! words, and a [`SearchGraph`] that records the discovered transition
//! system compactly (node ids, labelled edges, parent pointers) so
//! counterexample paths can be replayed after the search finishes.

use std::collections::HashMap;

/// States reachable from `init` over `edges`, sorted. The edge list is
/// `(from, to)` pairs; unreachable states simply never appear.
pub fn reachable_states<S: Copy + PartialEq + Ord>(init: S, edges: &[(S, S)]) -> Vec<S> {
    let mut seen = vec![init];
    let mut frontier = vec![init];
    while let Some(s) = frontier.pop() {
        for &(from, to) in edges {
            if from == s && !seen.contains(&to) {
                seen.push(to);
                frontier.push(to);
            }
        }
    }
    seen.sort();
    seen
}

/// States from which some state satisfying `pred` is reachable
/// (including the satisfying states themselves) — a backward closure
/// over the edge set, the building block of every liveness check.
pub fn backward_closure<S: Copy + PartialEq>(
    all: &[S],
    edges: &[(S, S)],
    pred: impl Fn(&S) -> bool,
) -> Vec<S> {
    let mut set: Vec<S> = all.iter().copied().filter(|s| pred(s)).collect();
    loop {
        let mut grew = false;
        for &(from, to) in edges {
            if set.contains(&to) && !set.contains(&from) {
                set.push(from);
                grew = true;
            }
        }
        if !grew {
            break set;
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Order-sensitive hash of a state's canonical words. Collisions are
/// possible in principle (64-bit) but the spaces explored here are
/// tiny (≤ millions of states) against a 2⁶⁴ key space.
pub fn fingerprint(words: &[u64]) -> u64 {
    let mut h = 0x524f_505f_4d45_4348u64; // "ROP_MECH"
    for &w in words {
        h = splitmix64(h ^ w);
    }
    h
}

/// Hashed visited-state set keyed by [`fingerprint`]. Each distinct
/// fingerprint is interned to a dense id (assigned in first-visit
/// order), which is what lets the on-the-fly search record edges *to
/// already-visited states* — without those back/cross edges the
/// liveness closure would see a tree and convict every leaf.
#[derive(Debug, Default)]
pub struct VisitedSet {
    ids: HashMap<u64, usize>,
}

impl VisitedSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a fingerprint: `(true, id)` when it was new, `(false,
    /// id)` with the previously assigned id otherwise. Ids are dense
    /// and start at 0.
    pub fn intern(&mut self, fp: u64) -> (bool, usize) {
        let next = self.ids.len();
        match self.ids.entry(fp) {
            std::collections::hash_map::Entry::Occupied(e) => (false, *e.get()),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(next);
                (true, next)
            }
        }
    }

    /// Inserts a fingerprint; `true` when it was new.
    pub fn insert(&mut self, fp: u64) -> bool {
        self.intern(fp).0
    }

    /// Distinct fingerprints seen.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been visited.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// The transition system an on-the-fly search discovers: nodes are
/// canonical-state ids in visit order, edges carry the choice index
/// that produced them plus a `progress` mark (for the mechanism
/// checker: "this transition issued a refresh"). Parent pointers
/// reconstruct the first-visit path to any node, which is what turns
/// an invariant hit deep in the search back into a replayable trace.
#[derive(Debug, Default)]
pub struct SearchGraph {
    /// `(parent, choice)` per node; the root is `(0, usize::MAX)`.
    parents: Vec<(usize, usize)>,
    /// `(from, to, progress)` per discovered transition.
    edges: Vec<(usize, usize, bool)>,
}

impl SearchGraph {
    /// A graph containing only the root node (id 0).
    pub fn new() -> Self {
        SearchGraph {
            parents: vec![(0, usize::MAX)],
            edges: Vec::new(),
        }
    }

    /// Registers a newly discovered node reached from `parent` by
    /// `choice`; returns its id.
    pub fn add_node(&mut self, parent: usize, choice: usize) -> usize {
        self.parents.push((parent, choice));
        self.parents.len() - 1
    }

    /// Records a transition (to an old or new node).
    pub fn add_edge(&mut self, from: usize, to: usize, progress: bool) {
        self.edges.push((from, to, progress));
    }

    /// Number of nodes discovered (including the root).
    pub fn node_count(&self) -> usize {
        self.parents.len()
    }

    /// Number of transitions recorded.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The choice sequence of the first-visit path from the root to
    /// `node` (empty for the root itself).
    pub fn path_to(&self, node: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut n = node;
        while n != 0 {
            let (parent, choice) = self.parents[n];
            path.push(choice);
            n = parent;
        }
        path.reverse();
        path
    }

    /// Nodes from which a `progress` transition is still reachable —
    /// the complement is the livelock set. Nodes listed in
    /// `assume_live` (e.g. an unexpanded depth-capped frontier) are
    /// granted progress unconditionally, keeping the check sound under
    /// truncation: a cut-off node might have progressed had the search
    /// continued, so only fully expanded nodes may be convicted.
    pub fn live_nodes(&self, assume_live: &[usize]) -> Vec<bool> {
        let mut live = vec![false; self.parents.len()];
        for &n in assume_live {
            live[n] = true;
        }
        for &(from, _, progress) in &self.edges {
            if progress {
                live[from] = true;
            }
        }
        loop {
            let mut grew = false;
            for &(from, to, _) in &self.edges {
                if live[to] && !live[from] {
                    live[from] = true;
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_and_backward_closure() {
        // 0 → 1 → 2, 3 isolated.
        let edges = [(0u32, 1u32), (1, 2)];
        assert_eq!(reachable_states(0, &edges), vec![0, 1, 2]);
        assert_eq!(reachable_states(3, &edges), vec![3]);
        let all = [0u32, 1, 2, 3];
        let can = backward_closure(&all, &edges, |&s| s == 2);
        assert!(can.contains(&0) && can.contains(&1) && can.contains(&2));
        assert!(!can.contains(&3));
    }

    #[test]
    fn fingerprints_are_order_sensitive_and_stable() {
        assert_eq!(fingerprint(&[1, 2, 3]), fingerprint(&[1, 2, 3]));
        assert_ne!(fingerprint(&[1, 2, 3]), fingerprint(&[3, 2, 1]));
        assert_ne!(fingerprint(&[]), fingerprint(&[0]));
        let mut v = VisitedSet::new();
        assert!(v.insert(fingerprint(&[1])));
        assert!(!v.insert(fingerprint(&[1])));
        assert_eq!(v.len(), 1);
        assert_eq!(v.intern(fingerprint(&[1])), (false, 0));
        assert_eq!(v.intern(fingerprint(&[2])), (true, 1));
    }

    #[test]
    fn search_graph_paths_and_liveness() {
        let mut g = SearchGraph::new();
        let a = g.add_node(0, 7); // root --7--> a
        g.add_edge(0, a, false);
        let b = g.add_node(a, 3); // a --3--> b
        g.add_edge(a, b, true); // the only progress edge
        let c = g.add_node(b, 1); // b --1--> c (a sink)
        g.add_edge(b, c, false);
        assert_eq!(g.path_to(c), vec![7, 3, 1]);
        assert_eq!(g.path_to(0), Vec::<usize>::new());
        let live = g.live_nodes(&[]);
        // Root and `a` can still take the progress edge; `b` and the
        // sink `c` can never progress again.
        assert!(live[0] && live[a]);
        assert!(!live[b] && !live[c]);
        // Granting the sink frontier status flips it — and `b`, which
        // can reach it.
        let live = g.live_nodes(&[c]);
        assert!(live[b] && live[c]);
    }
}
