//! Pass 3 — the determinism & robustness source lint.
//!
//! A self-contained (no external deps, per the vendored-stub policy)
//! token-level scanner over the workspace's library `.rs` files. It
//! lexes each file — skipping comments, strings, char literals and
//! lifetimes — and flags:
//!
//! * `no-unwrap` — `.unwrap()` in library code (panic paths belong in
//!   bins and tests, not in code the sweep harness calls);
//! * `no-panic` — `panic!` in library code;
//! * `wallclock` — `Instant::now` / `SystemTime` inside *deterministic*
//!   crates, where any wall-clock read breaks bit-exact resume;
//! * `float-eq` — `==` / `!=` against a float literal (metrics must be
//!   compared with tolerances);
//! * `hash-order` — iterating a `HashMap`/`HashSet` binding declared in
//!   the same file (iteration order is randomized per process, which
//!   breaks byte-stable exports);
//! * `io-ignored` — `let _ = <expr>.write(...)` (or `write_all`,
//!   `flush`, `sync_*`, …) in library code: a swallowed I/O error turns
//!   a crash-consistent store into a silently corrupt one. Best-effort
//!   cleanup like `let _ = std::fs::remove_file(..)` is deliberately
//!   *not* flagged — only method-call results are;
//! * `forbid-unsafe` — every crate root must carry
//!   `#![forbid(unsafe_code)]`;
//! * `hot-alloc` — heap allocation (`Box::new`, `Vec::new`, `vec![..]`,
//!   `.collect(..)`) inside a function marked with a standalone
//!   `// rop-lint: hot` comment. Hot-marked functions are the
//!   engine/controller per-cycle paths that must stay allocation-free
//!   in steady state (scratch buffers are taken, refilled and put
//!   back instead);
//! * `cycle-cast` — in deterministic crates, a narrowing `as` cast on a
//!   cycle-flavored value (`now as u32` silently truncates once a run
//!   passes 2³² cycles), or an unchecked `+`/`*` on one inside a
//!   hot-marked function (overflow wraps silently in release builds;
//!   timing paths must use `saturating_*`/`checked_*` or carry an
//!   explicit allow);
//! * `lease-clock` — a wall-clock read (`Instant::now`, `SystemTime`,
//!   `.elapsed(`) inside any function whose *name* mentions leases,
//!   expiry or staleness, in **every** crate. Lease liveness must be
//!   decided by counting unchanged observations of `(epoch, worker,
//!   hb)` triples, never by clock arithmetic: two machines (or one
//!   machine under `faketime`, NTP steps, or suspend/resume) disagree
//!   about elapsed time, and a clock-based verdict turns that skew
//!   into split-brain double execution. Stamping forensic `ts`
//!   metadata via `unix_now` stays legal — timestamps may be *recorded*
//!   in lease paths, just never *compared*.
//!
//! Escapes and ratcheting:
//!
//! * an inline `// rop-lint: allow(<rule>)` comment suppresses the rule
//!   on its own line, or on the next line when the comment stands alone;
//! * a checked-in baseline file records accepted debt as
//!   `(rule, path, count)` triples; the gate fails on findings *above*
//!   the baseline count, so debt can shrink but never grow — and on
//!   *stale* entries matching no current finding at all, so paid-off
//!   debt cannot linger as a silent re-admission ticket.
//!
//! Scope: `src/` trees of workspace crates, excluding `bin/`, `tests/`,
//! `benches/`, `examples/`, `vendor/`, `target/`, and everything at or
//! after a `#[cfg(test)]` attribute (test modules sit at the end of
//! files in this codebase).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose simulation results must be bit-exact: wall-clock reads
/// are forbidden anywhere inside them.
const DETERMINISTIC_CRATES: &[&str] = &[
    "cache", "core", "cpu", "dram", "events", "memctrl", "sim", "stats", "trace",
];

/// All source-lint rule identifiers (for `allow(...)` validation).
pub const SRC_RULES: &[&str] = &[
    "no-unwrap",
    "no-panic",
    "wallclock",
    "float-eq",
    "hash-order",
    "io-ignored",
    "forbid-unsafe",
    "hot-alloc",
    "cycle-cast",
    "lease-clock",
];

/// One source-lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier.
    pub rule: &'static str,
    /// Path relative to the workspace root (always `/`-separated).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Short description of what was seen.
    pub what: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.what
        )
    }
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    Ident,
    Int,
    Float,
    Punct,
}

#[derive(Debug, Clone)]
struct Tok {
    kind: TokKind,
    text: String,
    line: usize,
}

impl Tok {
    fn is(&self, kind: TokKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }
}

/// Lexes Rust source into identifier/number/punct tokens, discarding
/// comments, string and char literals, and lifetimes. Good enough for
/// pattern matching; not a full Rust lexer.
fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = b.len();
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
            // Nested block comments.
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            i += 1;
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                } else if b[i] == '"' {
                    i += 1;
                    break;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        } else if c == 'r' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') {
            // Raw string r"..." / r#"..."# / r##"..."## ...
            let mut j = i + 1;
            let mut hashes = 0;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                j += 1;
                'raw: while j < n {
                    if b[j] == '\n' {
                        line += 1;
                    }
                    if b[j] == '"' {
                        let mut k = 0;
                        while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                i = j;
            } else {
                // `r` was just an identifier start (e.g. `r#keyword`
                // without a quote never reaches here with j at quote).
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
        } else if c == '\'' {
            // Lifetime or char literal.
            if i + 2 < n && b[i + 1] != '\\' && b[i + 2] != '\'' {
                // Lifetime: consume the quote and let the identifier
                // lexing pick up the name (it is discarded as a normal
                // ident; harmless).
                i += 1;
            } else {
                i += 1;
                while i < n {
                    if b[i] == '\\' {
                        i += 2;
                    } else if b[i] == '\'' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
            }
        } else if c.is_ascii_digit() {
            let start = i;
            let mut float = false;
            if c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'o' | 'b') {
                i += 2;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                    i += 1;
                }
                // A `.` starts a fraction only when followed by a digit
                // (so `1..x` and `1.max(2)` stay integers).
                if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    float = true;
                    i += 1;
                    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                        i += 1;
                    }
                }
                if i < n && (b[i] == 'e' || b[i] == 'E') {
                    let mut j = i + 1;
                    if j < n && (b[j] == '+' || b[j] == '-') {
                        j += 1;
                    }
                    if j < n && b[j].is_ascii_digit() {
                        float = true;
                        i = j;
                        while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Type suffix (f64 makes it a float even without a dot).
                let sfx = i;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let suffix: String = b[sfx..i].iter().collect();
                if suffix.starts_with('f') {
                    float = true;
                }
            }
            toks.push(Tok {
                kind: if float { TokKind::Float } else { TokKind::Int },
                text: b[start..i].iter().collect(),
                line,
            });
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
        } else {
            // Two-char operators worth keeping whole.
            let two: String = b[i..(i + 2).min(n)].iter().collect();
            if two == "==" || two == "!=" || two == "::" {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: two,
                    line,
                });
                i += 2;
            } else {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

// ---------------------------------------------------------------------
// Per-file scan
// ---------------------------------------------------------------------

/// Parses `// rop-lint: allow(rule-a, rule-b)` markers. A marker on a
/// code line covers that line; a marker on a standalone comment line
/// covers the following line.
fn allow_map(src: &str) -> BTreeMap<usize, Vec<String>> {
    let mut map: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let Some(pos) = raw.find("rop-lint: allow(") else {
            continue;
        };
        let rest = &raw[pos + "rop-lint: allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        let rules: Vec<String> = rest[..end]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let target = if raw.trim_start().starts_with("//") {
            lineno + 1
        } else {
            lineno
        };
        map.entry(target).or_default().extend(rules);
    }
    map
}

/// Token-index ranges `[open_brace, close_brace]` of the bodies of
/// functions marked hot. A standalone `// rop-lint: hot` comment marks
/// the next `fn` (attributes and doc comments may sit in between); the
/// body extent is the brace-matched span starting at the first `{`
/// after that `fn` keyword. The lexer discards comments, so markers are
/// recovered from a raw line scan and mapped onto the token stream via
/// line numbers.
fn hot_extents(src: &str, toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut extents = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        // Only an exact plain line comment counts — doc comments that
        // merely *mention* the marker must not arm the rule.
        let t = raw.trim();
        let Some(body) = t.strip_prefix("//") else {
            continue;
        };
        if body.starts_with('/') || body.starts_with('!') || body.trim() != "rop-lint: hot" {
            continue;
        }
        let marker_line = idx + 1;
        let Some(fi) = toks
            .iter()
            .position(|t| t.line > marker_line && t.is(TokKind::Ident, "fn"))
        else {
            continue;
        };
        let Some(open) = (fi..toks.len()).find(|&j| toks[j].is(TokKind::Punct, "{")) else {
            continue;
        };
        let mut depth = 0usize;
        for (j, tok) in toks.iter().enumerate().skip(open) {
            if tok.is(TokKind::Punct, "{") {
                depth += 1;
            } else if tok.is(TokKind::Punct, "}") {
                depth -= 1;
                if depth == 0 {
                    extents.push((open, j));
                    break;
                }
            }
        }
    }
    extents
}

/// Token-index ranges `[open_brace, close_brace]` of the bodies of
/// functions whose names sound like lease-expiry logic: any `fn` whose
/// identifier contains `lease`, `expir` or `stale`. These are the
/// extents the `lease-clock` rule polices. A declaration that hits a
/// `;` before its body brace (trait method signatures) has no extent.
fn lease_extents(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut extents = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is(TokKind::Ident, "fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if !["lease", "expir", "stale"]
            .iter()
            .any(|s| name.text.contains(s))
        {
            continue;
        }
        let Some(open) = (i + 2..toks.len())
            .find(|&j| toks[j].is(TokKind::Punct, "{") || toks[j].is(TokKind::Punct, ";"))
        else {
            continue;
        };
        if toks[open].is(TokKind::Punct, ";") {
            continue;
        }
        let mut depth = 0usize;
        for (j, tok) in toks.iter().enumerate().skip(open) {
            if tok.is(TokKind::Punct, "{") {
                depth += 1;
            } else if tok.is(TokKind::Punct, "}") {
                depth -= 1;
                if depth == 0 {
                    extents.push((open, j));
                    break;
                }
            }
        }
    }
    extents
}

/// Line of the first `#[cfg(test)]` attribute, if any — everything at
/// or after it is treated as test code and skipped.
fn test_cutoff(src: &str) -> Option<usize> {
    src.lines()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .map(|idx| idx + 1)
}

struct FileCtx<'a> {
    path: String,
    allows: BTreeMap<usize, Vec<String>>,
    cutoff: Option<usize>,
    findings: &'a mut Vec<Finding>,
}

impl FileCtx<'_> {
    fn emit(&mut self, rule: &'static str, line: usize, what: String) {
        if let Some(cut) = self.cutoff {
            if line >= cut {
                return;
            }
        }
        if self
            .allows
            .get(&line)
            .is_some_and(|rs| rs.iter().any(|r| r == rule))
        {
            return;
        }
        self.findings.push(Finding {
            rule,
            path: self.path.clone(),
            line,
            what,
        });
    }
}

/// Scans one library source file.
fn scan_file(path: &str, src: &str, crate_name: &str, is_crate_root: bool, out: &mut Vec<Finding>) {
    let mut ctx = FileCtx {
        path: path.to_string(),
        allows: allow_map(src),
        cutoff: test_cutoff(src),
        findings: out,
    };
    let toks = lex(src);
    let deterministic = DETERMINISTIC_CRATES.contains(&crate_name);
    let hot = hot_extents(src, &toks);
    let in_hot = |i: usize| hot.iter().any(|&(lo, hi)| lo <= i && i <= hi);
    let leases = lease_extents(&toks);
    let in_lease = |i: usize| leases.iter().any(|&(lo, hi)| lo <= i && i <= hi);

    // Bindings/fields declared as HashMap/HashSet in this file
    // (`name: HashMap<..>` or `name = HashMap::new()` shapes).
    let mut hash_names: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && (toks[i].text == "HashMap" || toks[i].text == "HashSet")
            && i >= 2
            && (toks[i - 1].is(TokKind::Punct, ":") || toks[i - 1].is(TokKind::Punct, "="))
            && toks[i - 2].kind == TokKind::Ident
        {
            hash_names.push(&toks[i - 2].text);
        }
    }

    /// Integer/float types an `as` cast can truncate a `Cycle` (u64)
    /// into. `u64`/`i128`/`u128`/`f64` keep every 40-something-bit
    /// cycle count exact; `usize` stays legal because the supported
    /// targets are 64-bit and index casts are pervasive.
    const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

    // Identifiers treated as carrying a `Cycle` value: the naming
    // convention the timing paths actually use. Exact names cover the
    // ubiquitous locals; the substring covers `cycle_count`,
    // `max_cycles`, `hit_cycle_cap`, …
    let cycleish = |t: &Tok| {
        t.kind == TokKind::Ident
            && (matches!(t.text.as_str(), "now" | "due" | "until" | "deadline")
                || t.text.contains("cycle"))
    };

    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "into_keys",
        "into_values",
        "drain",
    ];

    /// Method calls whose `Result` must not be discarded with `let _ =`:
    /// each one can report the only evidence of data loss. Free-function
    /// forms (`std::fs::remove_file`) are best-effort cleanup and stay
    /// legal, which is why the pattern requires a `.` receiver.
    const IO_METHODS: &[&str] = &[
        "write",
        "write_all",
        "write_fmt",
        "write_vectored",
        "flush",
        "sync_all",
        "sync_data",
        "fsync",
    ];

    for i in 0..toks.len() {
        let t = &toks[i];
        // .unwrap()
        if t.is(TokKind::Punct, ".")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is(TokKind::Ident, "unwrap"))
            && toks.get(i + 2).is_some_and(|t| t.is(TokKind::Punct, "("))
            && toks.get(i + 3).is_some_and(|t| t.is(TokKind::Punct, ")"))
        {
            ctx.emit(
                "no-unwrap",
                toks[i + 1].line,
                ".unwrap() in library code".to_string(),
            );
        }
        // panic!(...)
        if t.is(TokKind::Ident, "panic")
            && toks.get(i + 1).is_some_and(|t| t.is(TokKind::Punct, "!"))
        {
            ctx.emit("no-panic", t.line, "panic! in library code".to_string());
        }
        // Wall-clock reads in deterministic crates.
        if deterministic {
            if t.is(TokKind::Ident, "Instant")
                && toks.get(i + 1).is_some_and(|t| t.is(TokKind::Punct, "::"))
                && toks.get(i + 2).is_some_and(|t| t.is(TokKind::Ident, "now"))
            {
                ctx.emit(
                    "wallclock",
                    t.line,
                    "Instant::now in a deterministic crate".to_string(),
                );
            }
            if t.is(TokKind::Ident, "SystemTime") {
                ctx.emit(
                    "wallclock",
                    t.line,
                    "SystemTime in a deterministic crate".to_string(),
                );
            }
        }
        // Wall-clock reads inside lease/expiry/staleness functions, in
        // every crate: lease liveness is decided by counting unchanged
        // `(epoch, worker, hb)` observations, never by clock
        // arithmetic. (Stamping forensic `ts` metadata via `unix_now`
        // is legal — timestamps are recorded, not compared.)
        if in_lease(i) {
            if t.is(TokKind::Ident, "Instant")
                && toks.get(i + 1).is_some_and(|t| t.is(TokKind::Punct, "::"))
                && toks.get(i + 2).is_some_and(|t| t.is(TokKind::Ident, "now"))
            {
                ctx.emit(
                    "lease-clock",
                    t.line,
                    "Instant::now in a lease-expiry function".to_string(),
                );
            }
            if t.is(TokKind::Ident, "SystemTime") {
                ctx.emit(
                    "lease-clock",
                    t.line,
                    "SystemTime in a lease-expiry function".to_string(),
                );
            }
            if t.is(TokKind::Punct, ".")
                && toks
                    .get(i + 1)
                    .is_some_and(|t| t.is(TokKind::Ident, "elapsed"))
                && toks.get(i + 2).is_some_and(|t| t.is(TokKind::Punct, "("))
            {
                ctx.emit(
                    "lease-clock",
                    toks[i + 1].line,
                    "`.elapsed()` in a lease-expiry function".to_string(),
                );
            }
        }
        // Float literal compared for exact equality.
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let float_neighbor = (i > 0 && toks[i - 1].kind == TokKind::Float)
                || toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Float);
            if float_neighbor {
                ctx.emit(
                    "float-eq",
                    t.line,
                    format!("`{}` against a float literal", t.text),
                );
            }
        }
        // `let _ = <expr>.write(...)`-shaped discarded I/O results.
        // Scan the statement (up to the next `;`) for an I/O method
        // call on a receiver.
        if t.is(TokKind::Ident, "let")
            && toks.get(i + 1).is_some_and(|t| t.is(TokKind::Ident, "_"))
            && toks.get(i + 2).is_some_and(|t| t.is(TokKind::Punct, "="))
        {
            let mut j = i + 3;
            while j + 2 < toks.len() && !toks[j].is(TokKind::Punct, ";") {
                if toks[j].is(TokKind::Punct, ".")
                    && toks[j + 1].kind == TokKind::Ident
                    && IO_METHODS.contains(&toks[j + 1].text.as_str())
                    && toks[j + 2].is(TokKind::Punct, "(")
                {
                    ctx.emit(
                        "io-ignored",
                        toks[j + 1].line,
                        format!(
                            "I/O result of `.{}` discarded with `let _ =`",
                            toks[j + 1].text
                        ),
                    );
                    break;
                }
                j += 1;
            }
        }
        // Heap allocation inside a `// rop-lint: hot` function.
        if in_hot(i) {
            if t.kind == TokKind::Ident
                && (t.text == "Box" || t.text == "Vec")
                && toks.get(i + 1).is_some_and(|n| n.is(TokKind::Punct, "::"))
                && toks.get(i + 2).is_some_and(|n| n.is(TokKind::Ident, "new"))
            {
                ctx.emit(
                    "hot-alloc",
                    t.line,
                    format!("`{}::new` in a hot function", t.text),
                );
            }
            if t.is(TokKind::Ident, "vec")
                && toks.get(i + 1).is_some_and(|n| n.is(TokKind::Punct, "!"))
            {
                ctx.emit("hot-alloc", t.line, "`vec![..]` in a hot function".into());
            }
            if t.is(TokKind::Punct, ".")
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.is(TokKind::Ident, "collect"))
                && toks
                    .get(i + 2)
                    .is_some_and(|n| n.is(TokKind::Punct, "(") || n.is(TokKind::Punct, "::"))
            {
                ctx.emit(
                    "hot-alloc",
                    toks[i + 1].line,
                    "`.collect()` in a hot function".into(),
                );
            }
        }
        // Cycle narrowing casts (file-wide) and unchecked cycle
        // arithmetic (hot functions), in deterministic crates only.
        if deterministic && cycleish(t) {
            if toks.get(i + 1).is_some_and(|n| n.is(TokKind::Ident, "as"))
                && toks.get(i + 2).is_some_and(|n| {
                    n.kind == TokKind::Ident && NARROW_TYPES.contains(&n.text.as_str())
                })
            {
                ctx.emit(
                    "cycle-cast",
                    t.line,
                    format!("`{} as {}` narrows a cycle value", t.text, toks[i + 2].text),
                );
            }
            if in_hot(i)
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct && (n.text == "+" || n.text == "*"))
            {
                ctx.emit(
                    "cycle-cast",
                    t.line,
                    format!(
                        "unchecked `{}` on cycle value `{}` in a hot function",
                        toks[i + 1].text,
                        t.text
                    ),
                );
            }
        }
        // HashMap/HashSet iteration.
        if t.kind == TokKind::Ident && hash_names.contains(&t.text.as_str()) {
            if toks.get(i + 1).is_some_and(|n| n.is(TokKind::Punct, "."))
                && toks.get(i + 2).is_some_and(|n| {
                    n.kind == TokKind::Ident && ITER_METHODS.contains(&n.text.as_str())
                })
            {
                ctx.emit(
                    "hash-order",
                    t.line,
                    format!("iteration over hash collection `{}`", t.text),
                );
            }
            if i >= 1
                && (toks[i - 1].is(TokKind::Ident, "in")
                    || (toks[i - 1].is(TokKind::Punct, "&")
                        && i >= 2
                        && toks[i - 2].is(TokKind::Ident, "in")))
                && toks.get(i + 1).is_some_and(|n| n.is(TokKind::Punct, "{"))
            {
                ctx.emit(
                    "hash-order",
                    t.line,
                    format!("for-loop over hash collection `{}`", t.text),
                );
            }
        }
    }

    if is_crate_root && !src.contains("#![forbid(unsafe_code)]") {
        ctx.emit(
            "forbid-unsafe",
            1,
            "crate root missing #![forbid(unsafe_code)]".to_string(),
        );
    }
}

/// Scans a single source string as `crate_name` library code — the unit
/// the workspace walk applies per file. Public so tooling and the
/// known-bad rule table can lint snippets without touching the
/// filesystem.
pub fn scan_source(path: &str, src: &str, crate_name: &str, is_crate_root: bool) -> Vec<Finding> {
    let mut out = Vec::new();
    scan_file(path, src, crate_name, is_crate_root, &mut out);
    out
}

// ---------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------

fn is_library_source(rel: &str) -> bool {
    let skip_dirs = ["/bin/", "/tests/", "/benches/", "/examples/"];
    if skip_dirs.iter().any(|d| rel.contains(d)) {
        return false;
    }
    !(rel.ends_with("/main.rs") || rel.ends_with("/build.rs"))
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scans the whole workspace rooted at `root`: `crates/*/src` plus the
/// façade crate's `src/`. Findings come back sorted by (path, line,
/// rule) so output and baselines are byte-stable.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut roots: Vec<(String, PathBuf)> = Vec::new(); // (crate name, src dir)
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        members.sort();
        for m in members {
            let src = m.join("src");
            if src.is_dir() {
                let name = m
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                roots.push((name, src));
            }
        }
    }
    if root.join("src").is_dir() {
        roots.push(("rop-sim".to_string(), root.join("src")));
    }

    for (crate_name, src_dir) in roots {
        let mut files = Vec::new();
        walk(&src_dir, &mut files)?;
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            if !is_library_source(&rel) {
                continue;
            }
            let src = fs::read_to_string(&file)?;
            let is_crate_root = rel.ends_with("/src/lib.rs") || rel == "src/lib.rs";
            scan_file(&rel, &src, &crate_name, is_crate_root, &mut findings);
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

// ---------------------------------------------------------------------
// Baseline (ratchet)
// ---------------------------------------------------------------------

/// Accepted-debt counts keyed by (rule, path).
pub type Baseline = BTreeMap<(String, String), usize>;

/// Aggregates findings into baseline counts.
pub fn to_baseline(findings: &[Finding]) -> Baseline {
    let mut b = Baseline::new();
    for f in findings {
        *b.entry((f.rule.to_string(), f.path.clone())).or_insert(0) += 1;
    }
    b
}

/// Serializes a baseline (sorted, tab-separated, one entry per line).
pub fn render_baseline(b: &Baseline) -> String {
    let mut out = String::from(
        "# rop-lint source-lint baseline: accepted debt as `rule<TAB>path<TAB>count`.\n\
         # Regenerate with `rop-lint src --update-baseline`; counts may only shrink.\n",
    );
    for ((rule, path), count) in b {
        let _ = writeln!(out, "{rule}\t{path}\t{count}");
    }
    out
}

/// Parses a baseline file; unknown lines are rejected.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut b = Baseline::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected rule\\tpath\\tcount",
                idx + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count {count:?}", idx + 1))?;
        b.insert((rule.to_string(), path.to_string()), count);
    }
    Ok(b)
}

/// Gate verdict: findings above baseline fail; shrunk entries are
/// surfaced so the baseline can be ratcheted down; entries matching no
/// current finding at all are *stale* and fail too — dead debt records
/// would silently re-admit a rule/path pair the moment someone
/// reintroduces the pattern.
#[derive(Debug, Clone)]
pub struct SrcReport {
    /// Findings in excess of the baseline, grouped per (rule, path).
    pub regressions: Vec<(String, String, usize, usize)>, // rule, path, baseline, current
    /// Entries where debt shrank but remains (baseline should be
    /// regenerated).
    pub improvements: Vec<(String, String, usize, usize)>,
    /// Baseline entries with zero current findings: (rule, path,
    /// accepted).
    pub stale: Vec<(String, String, usize)>,
    /// Total current findings.
    pub total: usize,
}

impl SrcReport {
    /// True when nothing exceeds the baseline and no entry is stale.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.stale.is_empty()
    }
}

/// Compares current findings against the accepted baseline.
pub fn compare(findings: &[Finding], baseline: &Baseline) -> SrcReport {
    let current = to_baseline(findings);
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    let mut stale = Vec::new();
    for ((rule, path), &count) in &current {
        let accepted = baseline
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        if count > accepted {
            regressions.push((rule.clone(), path.clone(), accepted, count));
        }
    }
    for ((rule, path), &accepted) in baseline {
        let count = current
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        if count == 0 {
            stale.push((rule.clone(), path.clone(), accepted));
        } else if count < accepted {
            improvements.push((rule.clone(), path.clone(), accepted, count));
        }
    }
    SrcReport {
        regressions,
        improvements,
        stale,
        total: findings.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(src: &str, crate_name: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        scan_file("test.rs", src, crate_name, false, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_and_panic_outside_tests() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g() { panic!(\"boom\"); }\n";
        let rules: Vec<&str> = scan_str(src, "harness").iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["no-unwrap", "no-panic"]);
    }

    #[test]
    fn comments_strings_and_tests_are_invisible() {
        let src = "\
// x.unwrap() in a comment\n\
const S: &str = \"panic!\"; // and a string\n\
#[cfg(test)]\n\
mod tests { fn t() { None::<u8>.unwrap(); panic!(); } }\n";
        assert!(scan_str(src, "harness").is_empty());
    }

    #[test]
    fn allow_marker_suppresses_same_and_next_line() {
        let inline = "fn f() { x.unwrap() } // rop-lint: allow(no-unwrap)\n";
        assert!(scan_str(inline, "harness").is_empty());
        let above = "// rop-lint: allow(no-panic)\nfn f() { panic!(); }\n";
        assert!(scan_str(above, "harness").is_empty());
        let wrong_rule = "fn f() { panic!(); } // rop-lint: allow(no-unwrap)\n";
        assert_eq!(scan_str(wrong_rule, "harness").len(), 1);
    }

    #[test]
    fn wallclock_only_in_deterministic_crates() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(scan_str(src, "sim").len(), 1);
        assert!(scan_str(src, "harness").is_empty());
    }

    #[test]
    fn float_eq_flagged_int_eq_not() {
        let f = scan_str("fn f(x: f64) -> bool { x == 0.5 }\n", "stats");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "float-eq");
        assert!(scan_str("fn f(x: u64) -> bool { x == 5 }\n", "stats").is_empty());
        // Ranges must not lex as floats.
        assert!(scan_str("fn f() { for _ in 0..10 {} }\n", "stats").is_empty());
    }

    #[test]
    fn hash_iteration_flagged_btree_not() {
        let src = "\
use std::collections::HashMap;\n\
fn f() {\n\
    let m: HashMap<u32, u32> = HashMap::new();\n\
    for (k, v) in m.iter() { let _ = (k, v); }\n\
}\n";
        let f = scan_str(src, "harness");
        assert!(f.iter().any(|f| f.rule == "hash-order"), "{f:?}");
        let src_btree = src.replace("HashMap", "BTreeMap");
        assert!(scan_str(&src_btree, "harness").is_empty());
    }

    #[test]
    fn discarded_io_results_flagged() {
        let f = scan_str(
            "fn f(mut w: std::fs::File) { let _ = w.write_all(b\"x\"); }\n",
            "harness",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "io-ignored");
        let f = scan_str(
            "fn f(w: &std::fs::File) { let _ = w.sync_data(); }\n",
            "sim",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        // Multi-token statements are scanned to the `;`.
        let f = scan_str(
            "fn f(w: &mut dyn std::io::Write) { let _ = w.by_ref().flush(); }\n",
            "harness",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn io_ignored_spares_legitimate_discards() {
        // Macro writes into a String are infallible by construction.
        assert!(scan_str(
            "fn f(out: &mut String) { let _ = writeln!(out, \"x\"); }\n",
            "harness"
        )
        .is_empty());
        // Best-effort cleanup through a free function.
        assert!(scan_str(
            "fn f(p: &std::path::Path) { let _ = std::fs::remove_file(p); }\n",
            "harness"
        )
        .is_empty());
        // Propagated results are the fix, not a violation.
        assert!(scan_str(
            "fn f(mut w: std::fs::File) -> std::io::Result<()> { w.write_all(b\"x\")?; w.flush() }\n",
            "harness"
        )
        .is_empty());
        // Channel sends are not I/O.
        assert!(scan_str("fn f(tx: &Tx) { let _ = tx.send(1); }\n", "harness").is_empty());
        // The allow escape works like every other rule.
        assert!(scan_str(
            "fn f(mut w: std::fs::File) { let _ = w.flush(); } // rop-lint: allow(io-ignored)\n",
            "harness"
        )
        .is_empty());
    }

    #[test]
    fn hot_alloc_flags_only_marked_functions() {
        // Unmarked functions may allocate freely.
        let cold = "fn f() -> Vec<u8> { let v = Vec::new(); v }\n";
        assert!(scan_str(cold, "memctrl").is_empty());
        // The marker covers the next fn's whole body...
        let hot = "\
// rop-lint: hot
fn f(n: usize) -> Vec<u64> {
    let mut v = Vec::new();
    for i in 0..n {
        v.push(i as u64);
    }
    v
}
fn cold() -> Vec<u8> { vec![1, 2] }
";
        let f = scan_str(hot, "memctrl");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-alloc");
        assert_eq!(f[0].line, 3);
        // ...including attributes between marker and fn, turbofish
        // collect, vec! and Box::new.
        let all = "\
// rop-lint: hot
#[inline]
fn f(n: usize) -> Vec<u64> {
    let b = Box::new(n);
    let v = vec![*b as u64];
    v.iter().copied().collect::<Vec<u64>>()
}
";
        let rules: Vec<&str> = scan_str(all, "sim").iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["hot-alloc"; 3]);
    }

    #[test]
    fn hot_alloc_allow_escape_hatch() {
        let src = "\
// rop-lint: hot
fn f() -> Vec<u8> {
    Vec::new() // rop-lint: allow(hot-alloc)
}
";
        assert!(scan_str(src, "memctrl").is_empty(), "allow must suppress");
    }

    #[test]
    fn baseline_roundtrip_and_ratchet() {
        let findings = vec![
            Finding {
                rule: "no-unwrap",
                path: "a.rs".into(),
                line: 3,
                what: String::new(),
            },
            Finding {
                rule: "no-unwrap",
                path: "a.rs".into(),
                line: 9,
                what: String::new(),
            },
        ];
        let base = to_baseline(&findings);
        let parsed = parse_baseline(&render_baseline(&base)).expect("roundtrip");
        assert_eq!(parsed, base);

        // Same debt: clean.
        assert!(compare(&findings, &base).ok());
        // More debt: regression.
        let mut worse = findings.clone();
        worse.push(Finding {
            rule: "no-unwrap",
            path: "a.rs".into(),
            line: 20,
            what: String::new(),
        });
        let r = compare(&worse, &base);
        assert!(!r.ok());
        assert_eq!(r.regressions[0].3, 3);
        // Less debt: improvement, still clean.
        let better = &findings[..1];
        let r = compare(better, &base);
        assert!(r.ok());
        assert_eq!(r.improvements.len(), 1);
        assert!(r.stale.is_empty());
    }

    #[test]
    fn stale_baseline_entries_fail_the_gate() {
        let findings = vec![Finding {
            rule: "no-unwrap",
            path: "a.rs".into(),
            line: 3,
            what: String::new(),
        }];
        let base = to_baseline(&findings);
        // The debt was paid off entirely: its entry is now stale, and a
        // stale entry is a hard failure, not an improvement.
        let r = compare(&[], &base);
        assert!(!r.ok());
        assert_eq!(
            r.stale,
            vec![("no-unwrap".to_string(), "a.rs".to_string(), 1)]
        );
        assert!(r.improvements.is_empty());
        // A different (rule, path) with live findings leaves the dead
        // entry just as stale.
        let other = vec![Finding {
            rule: "no-panic",
            path: "b.rs".into(),
            line: 1,
            what: String::new(),
        }];
        let r = compare(&other, &base);
        assert!(!r.ok());
        assert_eq!(r.stale.len(), 1);
        // NB: `other` itself regresses against this baseline too.
        assert_eq!(r.regressions.len(), 1);
    }

    #[test]
    fn cycle_cast_narrowing_flagged_in_deterministic_crates() {
        let src = "fn f(now: Cycle) -> u32 { now as u32 }\n";
        let f = scan_str(src, "memctrl");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "cycle-cast");
        // Outside deterministic crates the pattern is legal.
        assert!(scan_str(src, "harness").is_empty());
        // Widening and same-width casts are fine.
        assert!(scan_str("fn f(now: Cycle) -> u64 { now as u64 }\n", "memctrl").is_empty());
        assert!(scan_str("fn f(now: Cycle) -> f64 { now as f64 }\n", "memctrl").is_empty());
        // Cycle-flavored names are matched by convention, not by type.
        let f = scan_str(
            "fn f(busy_cycles: u64) -> u16 { busy_cycles as u16 }\n",
            "dram",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        // Non-cycle identifiers narrow freely (address/index math).
        assert!(scan_str("fn f(row: usize) -> u16 { row as u16 }\n", "dram").is_empty());
    }

    #[test]
    fn cycle_cast_arithmetic_only_in_hot_functions() {
        // Unchecked cycle `+` in a hot function is flagged...
        let hot = "\
// rop-lint: hot
fn f(now: Cycle, t_rfc: Cycle) -> Cycle { now + t_rfc }
";
        let f = scan_str(hot, "memctrl");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "cycle-cast");
        // ...and so is `*` and compound assignment.
        let mul = "\
// rop-lint: hot
fn f(cycles: Cycle) -> Cycle { cycles * 2 }
";
        assert_eq!(scan_str(mul, "dram").len(), 1);
        // Cold functions may add cycles freely (setup paths).
        assert!(scan_str(
            "fn f(now: Cycle, t: Cycle) -> Cycle { now + t }\n",
            "memctrl"
        )
        .is_empty());
        // `saturating_add` is the prescribed fix and passes.
        let fixed = "\
// rop-lint: hot
fn f(now: Cycle, t_rfc: Cycle) -> Cycle { now.saturating_add(t_rfc) }
";
        assert!(scan_str(fixed, "memctrl").is_empty());
        // The allow escape works like every other rule.
        let allowed = "\
// rop-lint: hot
fn f(now: Cycle, t: Cycle) -> Cycle {
    now + t // rop-lint: allow(cycle-cast)
}
";
        assert!(scan_str(allowed, "memctrl").is_empty());
    }

    #[test]
    fn lease_clock_flags_clock_reads_in_lease_named_functions() {
        // `.elapsed()` inside a lease-liveness decision: the canonical
        // wrong design this rule exists to keep out.
        let bad = "fn lease_is_live(last_beat: std::time::Instant) -> bool {\n    \
                   last_beat.elapsed() < std::time::Duration::from_secs(30)\n}\n";
        let f = scan_str(bad, "harness");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lease-clock");
        assert_eq!(f[0].line, 2);
        // Every crate is in scope, not just the deterministic ones.
        assert_eq!(scan_str(bad, "chaos").len(), 1);
        // Instant::now and SystemTime hit too, on `expir`/`stale` names.
        let f = scan_str(
            "fn lease_expired(t0: u64) -> bool { Instant::now().as_millis() > t0 }\n",
            "harness",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        let f = scan_str(
            "fn is_stale_peer() -> bool { SystemTime::now() > deadline() }\n",
            "harness",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn lease_clock_spares_counters_and_unrelated_functions() {
        // Counter-based expiry — the prescribed design — is clean.
        let good = "fn is_stale(&self, job: &str, threshold: u32) -> bool {\n    \
                    self.seen.get(job).is_some_and(|(_, n)| *n >= threshold)\n}\n";
        assert!(scan_str(good, "harness").is_empty());
        // Clock reads outside lease-flavoured functions are none of
        // this rule's business (pacing sleeps, status displays).
        let pacing = "fn poll_loop() { let t = Instant::now(); let _ = t.elapsed(); }\n";
        assert!(scan_str(pacing, "harness").is_empty());
        // Trait method *signatures* have no body to scan.
        let decl = "trait L { fn lease_expired(&self) -> bool; }\n\
                    fn after() { let _ = Instant::now(); }\n";
        assert!(scan_str(decl, "harness").is_empty());
        // Stamping a forensic timestamp is legal: `unix_now` is not a
        // comparison primitive.
        let stamp = "fn lease_record(&self) -> Rec { Rec { ts: unix_now() } }\n";
        assert!(scan_str(stamp, "harness").is_empty());
        // The allow escape works like every other rule.
        let allowed = "fn lease_debug() {\n    \
                       let _ = Instant::now(); // rop-lint: allow(lease-clock)\n}\n";
        assert!(scan_str(allowed, "harness").is_empty());
    }

    #[test]
    fn raw_strings_and_lifetimes_lex_cleanly() {
        let src = "fn f<'a>(s: &'a str) -> &'a str { let _r = r#\"panic!()\"#; s }\n";
        assert!(scan_str(src, "harness").is_empty());
    }
}
