//! The known-bad tables: one config per config rule and one source
//! snippet per source rule, each violating exactly that rule, plus
//! acceptance of every shipped experiment config and the
//! seeded-mutation checks on the FSM model.

use rop_dram::DramConfig;
use rop_lint::config::{lint_config, lint_jobs, RULES};
use rop_lint::fsm::{build_rop_fsm, check_fsm, EdgeKind};
use rop_lint::srclint::{scan_source, SRC_RULES};
use rop_memctrl::{MechanismKind, MemCtrlConfig};
use rop_sim_system::experiments::driver::{plan_jobs, EXPERIMENTS};
use rop_sim_system::experiments::tail_latency::tail_config;
use rop_sim_system::runner::{RunSpec, SweepJob};
use rop_sim_system::SystemKind;
use rop_trace::ArrivalProcess;

/// A legal ROP configuration to mutate from.
fn good() -> MemCtrlConfig {
    MemCtrlConfig::rop(DramConfig::baseline(1), 64, 1)
}

/// One entry per rule: (rule id, a config violating exactly that rule).
fn known_bad_table() -> Vec<(&'static str, MemCtrlConfig)> {
    let mut table: Vec<(&'static str, MemCtrlConfig)> = Vec::new();
    let mut push = |rule: &'static str, mutate: &dyn Fn(&mut MemCtrlConfig)| {
        let mut cfg = good();
        mutate(&mut cfg);
        table.push((rule, cfg));
    };

    // tRAS(10) < tRCD(11) + burst(4).
    push("tim-ras", &|c| c.dram.timing.t_ras = 10);
    // tRC(30) < tRAS(28) + tRP(11).
    push("tim-rc", &|c| c.dram.timing.t_rc = 30);
    // tFAW(4) < tRRD(5).
    push("tim-rrd-faw", &|c| c.dram.timing.t_faw = 4);
    // tRFC2(300) > tRFC1(280).
    push("tim-fgr-mono", &|c| c.dram.timing.t_rfc2 = 300);
    // tRFCpb(300) >= tRFC1(280).
    push("tim-refpb", &|c| c.dram.timing.t_rfc_pb = 300);
    // tRFCsa(150) >= tRFCpb(112) while staying under tRFC1.
    push("tim-refsa", &|c| c.dram.timing.t_rfc_sa = 150);
    // tRFC1(7000) > tREFI(6240) while everything else stays legal.
    push("tim-duty", &|c| c.dram.timing.t_rfc1 = 7000);
    // Postpone budget beyond JEDEC's 8 x tREFI.
    push("mc-postpone", &|c| {
        c.max_refresh_postpone = 8 * c.dram.timing.t_refi() + 1;
    });
    // A zero-capacity read queue.
    push("mc-queues", &|c| c.read_queue_capacity = 0);
    // Drain watermarks inverted: low(50) >= high(48).
    push("mc-drain", &|c| c.write_drain_low = 50);
    // Grace of a full tREFI would let a prefetch hold off refresh
    // indefinitely.
    push("mc-grace", &|c| {
        c.prefetch_grace = c.dram.timing.t_refi();
    });
    // A non-power-of-two row count breaks shift/mask address decode.
    push("geo-pow2", &|c| c.dram.geometry.rows_per_bank = 1000);
    // Three subarrays per bank break the contiguous-block row decode.
    push("geo-subarrays", &|c| {
        c.dram.geometry.subarrays_per_bank = 3;
    });
    // A RAIDR bin period off the tREFI lattice never lands on a slot.
    push("mc-raidr-bins", &|c| {
        c.mechanism = MechanismKind::Raidr {
            seed: 1,
            bin_period: c.dram.timing.t_refi() + 1,
        };
    });
    // DARP over all-bank REF has no per-bank refreshes to reorder.
    push("mc-mech-gran", &|c| c.mechanism = MechanismKind::Darp);
    // Observational window stretched to a full tREFI.
    push("rop-window", &|c| {
        if let Some(r) = c.rop.as_mut() {
            r.observational_window = c.dram.timing.t_refi();
        }
    });
    // A zero refresh period.
    push("rop-period", &|c| {
        if let Some(r) = c.rop.as_mut() {
            r.refresh_period = 0;
        }
    });
    // A probability threshold above 1.
    push("rop-threshold", &|c| {
        if let Some(r) = c.rop.as_mut() {
            r.hit_rate_threshold = 1.5;
        }
    });
    // 4 SRAM lines cannot cover 8 banks.
    push("rop-capacity", &|c| {
        if let Some(r) = c.rop.as_mut() {
            r.buffer_capacity = 4;
        }
    });
    // Training over zero refreshes never produces λ/β.
    push("rop-training", &|c| {
        if let Some(r) = c.rop.as_mut() {
            r.training_refreshes = 0;
        }
    });
    // ROP table sized for 16 banks on an 8-bank DRAM.
    push("rop-banks-match", &|c| {
        if let Some(r) = c.rop.as_mut() {
            r.banks_per_rank = 16;
        }
    });

    table
}

/// One entry per job-level rule: (rule id, a sweep job violating
/// exactly that rule). The `mc-openloop-*` rules read the open-loop
/// spec on the *system* config, which `lint_config` never sees — they
/// are exercised through `lint_jobs` instead.
fn known_bad_job_table() -> Vec<(&'static str, SweepJob)> {
    let base = || {
        // A legal open-loop cell from the shipped tail-latency grid.
        tail_config(
            SystemKind::Baseline,
            ArrivalProcess::Poisson,
            60.0,
            100_000,
            1,
        )
    };
    let job = |rule: &'static str, mutate: &dyn Fn(&mut rop_sim_system::OpenLoopSpec)| {
        let mut cfg = base();
        mutate(cfg.open_loop.as_mut().expect("open-loop cell"));
        (
            rule,
            SweepJob::custom(
                format!("known-bad/{rule}"),
                cfg,
                RunSpec {
                    instructions: 1000,
                    max_cycles: 1000,
                    seed: 1,
                },
            ),
        )
    };
    vec![
        // 400 rpkc x 4-cycle bursts = 1600 > the 1000-cycle bus budget.
        job("mc-openloop-load", &|ol| ol.offered_rpkc = 400.0),
        // 8 tenants cannot each own one of 4 ranks.
        job("mc-openloop-tenants", &|ol| ol.tenants = 8),
        // A window shorter than two tREFI (12480) sees no refresh tail.
        job("mc-openloop-duration", &|ol| ol.duration = 10_000),
        // A write fraction above 1 is not a probability.
        job("mc-openloop-write", &|ol| ol.write_fraction = 1.5),
    ]
}

#[test]
fn every_rule_has_a_known_bad_entry() {
    let table = known_bad_table();
    let job_table = known_bad_job_table();
    for rule in RULES {
        // Config-level and job-level tables jointly cover the catalog.
        assert!(
            table.iter().any(|(id, _)| *id == rule.id)
                || job_table.iter().any(|(id, _)| *id == rule.id),
            "rule {} has no known-bad entry",
            rule.id
        );
    }
    assert_eq!(table.len() + job_table.len(), RULES.len());
}

#[test]
fn each_known_bad_job_violates_exactly_its_rule() {
    for (rule, job) in known_bad_job_table() {
        let report = lint_jobs(std::slice::from_ref(&job));
        assert_eq!(
            report.violations.len(),
            1,
            "job for {rule} produced {:?}",
            report.violations
        );
        let (label, vs) = &report.violations[0];
        assert_eq!(label, &job.label);
        let rules: Vec<&str> = vs.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec![rule], "job for {rule} violated {rules:?}");
    }
}

#[test]
fn the_job_mutation_base_is_clean() {
    let cfg = tail_config(
        SystemKind::Baseline,
        ArrivalProcess::Poisson,
        60.0,
        100_000,
        1,
    );
    let job = SweepJob::custom(
        "known-bad/base",
        cfg,
        RunSpec {
            instructions: 1000,
            max_cycles: 1000,
            seed: 1,
        },
    );
    assert!(lint_jobs(std::slice::from_ref(&job)).clean());
}

#[test]
fn each_known_bad_entry_violates_exactly_its_rule() {
    for (rule, cfg) in known_bad_table() {
        let violations = lint_config(&cfg);
        assert_eq!(
            violations.len(),
            1,
            "config for {rule} violated {:?}",
            violations.iter().map(|v| v.rule).collect::<Vec<_>>()
        );
        assert_eq!(violations[0].rule, rule);
    }
}

#[test]
fn the_mutation_base_is_clean() {
    assert!(lint_config(&good()).is_empty());
}

#[test]
fn every_shipped_experiment_config_is_accepted() {
    let spec = RunSpec {
        instructions: 1000,
        max_cycles: 1000,
        seed: 1,
    };
    for exp in EXPERIMENTS {
        let jobs = plan_jobs(exp, spec).expect("plan");
        assert!(!jobs.is_empty(), "{exp} plans no jobs");
        let report = lint_jobs(&jobs);
        assert!(
            report.clean(),
            "shipped experiment {exp} rejected:\n{}",
            report.render()
        );
    }
}

#[test]
fn a_sweep_with_one_illegal_point_is_refused_with_the_job_named() {
    let spec = RunSpec {
        instructions: 1000,
        max_cycles: 1000,
        seed: 1,
    };
    let mut jobs = plan_jobs("ablate-window", spec).expect("plan");
    let mut bad = good();
    bad.rop
        .as_mut()
        .expect("rop preset has an engine config")
        .observational_window = bad.dram.timing.t_refi();
    let poisoned = jobs.len() - 1;
    jobs[poisoned].config.ctrl_override = Some(bad);
    let report = lint_jobs(&jobs);
    assert!(!report.clean());
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].0, jobs[poisoned].label);
    assert_eq!(report.violations[0].1[0].rule, "rop-window");
}

/// One entry per source rule: (rule id, crate the snippet is scanned
/// as, whether it is a crate root, a snippet violating exactly that
/// rule).
fn known_bad_src_table() -> Vec<(&'static str, &'static str, bool, &'static str)> {
    vec![
        (
            "no-unwrap",
            "harness",
            false,
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        ),
        ("no-panic", "harness", false, "fn f() { panic!(\"boom\") }\n"),
        (
            "wallclock",
            "sim",
            false,
            "fn f() -> Instant { Instant::now() }\n",
        ),
        (
            "float-eq",
            "stats",
            false,
            "fn f(x: f64) -> bool { x == 0.5 }\n",
        ),
        (
            "hash-order",
            "harness",
            false,
            "use std::collections::HashMap;\n\
             fn f(m: HashMap<u32, u32>) -> u64 { let mut s = 0; for (_, v) in m.iter() { s += *v as u64; } s }\n",
        ),
        (
            "io-ignored",
            "harness",
            false,
            "fn f(mut w: std::fs::File) { let _ = w.write_all(b\"evidence\"); }\n",
        ),
        ("forbid-unsafe", "harness", true, "pub fn f() {}\n"),
        (
            "hot-alloc",
            "memctrl",
            false,
            "// rop-lint: hot\n\
             fn f(n: usize) -> Vec<u64> { let mut v = Vec::new(); for i in 0..n { v.push(i as u64); } v }\n",
        ),
        (
            "cycle-cast",
            "memctrl",
            false,
            "fn f(now: Cycle) -> u32 { now as u32 }\n",
        ),
        (
            "lease-clock",
            "harness",
            false,
            "fn lease_is_live(last_beat: std::time::Instant) -> bool {\n    \
             last_beat.elapsed() < std::time::Duration::from_secs(30)\n}\n",
        ),
    ]
}

#[test]
fn every_src_rule_has_a_known_bad_entry() {
    let table = known_bad_src_table();
    for rule in SRC_RULES {
        assert!(
            table.iter().any(|(id, _, _, _)| id == rule),
            "source rule {rule} has no known-bad entry"
        );
    }
    assert_eq!(table.len(), SRC_RULES.len());
}

#[test]
fn each_known_bad_snippet_violates_exactly_its_rule() {
    for (rule, krate, is_root, src) in known_bad_src_table() {
        let findings = scan_source("snippet.rs", src, krate, is_root);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec![rule], "snippet for {rule} found {rules:?}");
    }
}

#[test]
fn fsm_mutation_dropping_the_fallback_edge_is_caught() {
    let cfg = rop_core::RopConfig::paper_default();
    let mut fsm = build_rop_fsm(&cfg);
    assert!(check_fsm(&fsm).ok(), "unmutated machine must be clean");
    fsm.remove_edges(EdgeKind::Fallback);
    let report = check_fsm(&fsm);
    assert!(!report.ok());
    assert!(
        !report.missing_fallback.is_empty(),
        "fallback removal must be reported as the missing mandated edge"
    );
    assert!(
        !report.dead.is_empty(),
        "degraded observing states must become dead without the fallback"
    );
}

#[test]
fn fsm_mutation_dropping_train_done_is_caught() {
    let cfg = rop_core::RopConfig::paper_default();
    let mut fsm = build_rop_fsm(&cfg);
    fsm.remove_edges(EdgeKind::TrainDone);
    let report = check_fsm(&fsm);
    assert!(!report.ok());
    // Training can never complete: all of Observing/Prefetching is
    // unreachable.
    assert!(report.unmet_mandates.iter().any(|m| m == "prefetching"));
    assert!(!report.livelock_no_prefetch.is_empty());
}
