//! Property tests: synthetic workloads are deterministic and stay inside
//! their declared footprints for arbitrary parameterisations.

use proptest::prelude::*;
use rop_trace::{AddressPattern, SyntheticWorkload, WorkloadGen, WorkloadParams};

fn pattern_strategy() -> impl Strategy<Value = AddressPattern> {
    prop_oneof![
        (1u64..64).prop_map(|stride_lines| AddressPattern::Stream { stride_lines }),
        proptest::collection::vec(-32i64..32, 1..5)
            .prop_filter("non-degenerate", |d| d.iter().any(|&x| x != 0))
            .prop_map(|deltas| AddressPattern::MultiDelta { deltas }),
        Just(AddressPattern::Random),
        (1u64..512).prop_map(|max_jump| AddressPattern::RandomWalk { max_jump }),
    ]
}

fn params_strategy() -> impl Strategy<Value = WorkloadParams> {
    (
        pattern_strategy(),
        1u64..(1 << 16), // region
        1u64..(1 << 10), // hot lines
        0.0f64..1.0,     // hot fraction
        0.0f64..1.0,     // write fraction
        1u32..1024,      // burst len
        0u32..100,       // burst gap
        0u32..50_000,    // idle gap
    )
        .prop_map(
            |(pattern, region, hot, hot_frac, wfrac, burst, bgap, igap)| WorkloadParams {
                name: "prop",
                intensive: false,
                pattern,
                region_lines: region,
                hot_lines: hot,
                hot_fraction: hot_frac,
                write_fraction: wfrac,
                burst_len: burst,
                burst_gap_mean: bgap,
                idle_gap_mean: igap,
                base_addr: 0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any valid parameterisation yields an in-footprint, deterministic,
    /// infinite stream.
    #[test]
    fn workloads_are_deterministic_and_bounded(
        params in params_strategy(),
        seed in any::<u64>(),
    ) {
        prop_assume!(params.validate().is_ok());
        let limit = (params.hot_lines + params.region_lines) * 64;
        let mut a = SyntheticWorkload::new(params.clone(), seed);
        let mut b = SyntheticWorkload::new(params, seed);
        for _ in 0..500 {
            let ra = a.next_record();
            let rb = b.next_record();
            prop_assert_eq!(ra, rb);
            prop_assert!(ra.addr < limit, "addr {} beyond footprint {}", ra.addr, limit);
            prop_assert_eq!(ra.addr % 64, 0, "line aligned");
        }
        prop_assert_eq!(a.records_emitted(), 500);
    }

    /// Base-address offsets translate the whole stream rigidly.
    #[test]
    fn base_addr_translates(seed in any::<u64>(), base in 0u64..(1 << 40)) {
        let base = base & !63; // keep line alignment
        let mk = |base_addr| {
            let mut p = rop_trace::Benchmark::Gcc.params();
            p.base_addr = base_addr;
            SyntheticWorkload::new(p, seed)
        };
        let mut zero = mk(0);
        let mut offset = mk(base);
        for _ in 0..300 {
            let a = zero.next_record();
            let b = offset.next_record();
            prop_assert_eq!(a.addr + base, b.addr);
            prop_assert_eq!(a.gap_instructions, b.gap_instructions);
            prop_assert_eq!(a.is_write, b.is_write);
        }
    }
}
