//! The parameterised synthetic workload generator.

use crate::pattern::{AddressPattern, PatternCursor};
use crate::record::TraceRecord;
use crate::WorkloadGen;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for one synthetic benchmark.
///
/// The footprint is laid out as `[hot set][cold region]` in line
/// granularity starting at `base_addr`. Hot-set references model the
/// LLC-resident working set (they are filtered out by the LLC and rarely
/// reach memory); cold references walk the region with the configured
/// [`AddressPattern`] and are what the memory system actually sees.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Benchmark name (SPEC CPU2006 benchmark this generator stands in for).
    pub name: &'static str,
    /// Memory-intensive classification (Table II of the paper).
    pub intensive: bool,
    /// Cold-region walk pattern.
    pub pattern: AddressPattern,
    /// Cold-region size in cache lines.
    pub region_lines: u64,
    /// Hot-set size in cache lines (should fit in the LLC).
    pub hot_lines: u64,
    /// Probability a reference targets the hot set.
    pub hot_fraction: f64,
    /// Probability a reference is a store.
    pub write_fraction: f64,
    /// Mean number of memory references per burst phase.
    pub burst_len: u32,
    /// Mean non-memory instructions between references inside a burst.
    pub burst_gap_mean: u32,
    /// Mean non-memory instructions in the idle phase between bursts.
    pub idle_gap_mean: u32,
    /// Byte base address of the footprint.
    pub base_addr: u64,
}

impl WorkloadParams {
    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.region_lines == 0 {
            return Err("region_lines must be non-zero".into());
        }
        if !(0.0..=1.0).contains(&self.hot_fraction) {
            return Err("hot_fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err("write_fraction must be in [0,1]".into());
        }
        if self.hot_fraction > 0.0 && self.hot_lines == 0 {
            return Err("hot_fraction > 0 requires a non-empty hot set".into());
        }
        if self.burst_len == 0 {
            return Err("burst_len must be non-zero".into());
        }
        Ok(())
    }
}

/// Deterministic infinite generator for one synthetic benchmark.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    params: WorkloadParams,
    cursor: PatternCursor,
    rng: SmallRng,
    /// References remaining in the current burst; 0 forces a new burst.
    burst_remaining: u32,
    records_emitted: u64,
}

impl SyntheticWorkload {
    /// Creates a generator with its own RNG stream derived from `seed`.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(params: WorkloadParams, seed: u64) -> Self {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid workload parameters for {}: {e}", params.name)); // rop-lint: allow(no-panic)
        let cursor = PatternCursor::new(params.pattern.clone(), params.region_lines);
        SyntheticWorkload {
            cursor,
            rng: SmallRng::seed_from_u64(seed ^ fxhash(params.name)),
            burst_remaining: 0,
            records_emitted: 0,
            params,
        }
    }

    /// The parameters behind this generator.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Records emitted so far.
    pub fn records_emitted(&self) -> u64 {
        self.records_emitted
    }

    /// Sets the byte base address (used by the multicore harness to give
    /// each core a disjoint footprint).
    pub fn set_base_addr(&mut self, base: u64) {
        self.params.base_addr = base;
    }

    /// Exponentially distributed gap with the given mean (>= 0),
    /// rounded to nearest by the shared sampler (the old floor
    /// truncation biased every gap ~0.5 below the configured mean).
    fn sample_gap(&mut self, mean: u32) -> u32 {
        crate::sampler::exp_gap(&mut self.rng, mean as f64).min(u32::MAX as u64 / 2) as u32
    }
}

impl WorkloadGen for SyntheticWorkload {
    fn next_record(&mut self) -> TraceRecord {
        let gap = if self.burst_remaining == 0 {
            // Start a new burst: length jitters around the mean, and the
            // preceding idle phase is one long exponential gap.
            let len = self.params.burst_len;
            self.burst_remaining = self.rng.gen_range(len / 2 + 1..=len + len / 2);
            self.sample_gap(self.params.idle_gap_mean)
        } else {
            self.sample_gap(self.params.burst_gap_mean)
        };
        self.burst_remaining -= 1;

        let hot = self.params.hot_fraction > 0.0 && self.rng.gen_bool(self.params.hot_fraction);
        let line_offset = if hot {
            self.rng.gen_range(0..self.params.hot_lines)
        } else {
            self.params.hot_lines + self.cursor.next_offset(&mut self.rng)
        };
        let is_write =
            self.params.write_fraction > 0.0 && self.rng.gen_bool(self.params.write_fraction);
        self.records_emitted += 1;
        TraceRecord {
            gap_instructions: gap,
            addr: self.params.base_addr + line_offset * 64,
            is_write,
        }
    }

    fn name(&self) -> &str {
        self.params.name
    }
}

/// Tiny FNV-style hash so each benchmark name perturbs the seed.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams {
            name: "test",
            intensive: true,
            pattern: AddressPattern::Stream { stride_lines: 1 },
            region_lines: 1 << 16,
            hot_lines: 1 << 10,
            hot_fraction: 0.5,
            write_fraction: 0.3,
            burst_len: 32,
            burst_gap_mean: 10,
            idle_gap_mean: 1000,
            base_addr: 0,
        }
    }

    #[test]
    fn deterministic_stream() {
        let mut a = SyntheticWorkload::new(params(), 7);
        let mut b = SyntheticWorkload::new(params(), 7);
        for _ in 0..1000 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SyntheticWorkload::new(params(), 1);
        let mut b = SyntheticWorkload::new(params(), 2);
        let same = (0..100)
            .filter(|_| a.next_record() == b.next_record())
            .count();
        assert!(same < 100);
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let p = params();
        let max_addr = p.base_addr + (p.hot_lines + p.region_lines) * 64;
        let mut w = SyntheticWorkload::new(p, 3);
        for _ in 0..10_000 {
            let r = w.next_record();
            assert!(r.addr < max_addr);
        }
    }

    #[test]
    fn base_addr_offsets_everything() {
        let mut p = params();
        p.base_addr = 1 << 40;
        let mut w = SyntheticWorkload::new(p, 3);
        for _ in 0..100 {
            assert!(w.next_record().addr >= 1 << 40);
        }
    }

    #[test]
    fn write_fraction_roughly_respected() {
        let mut w = SyntheticWorkload::new(params(), 11);
        let writes = (0..20_000).filter(|_| w.next_record().is_write).count();
        let frac = writes as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn bursts_create_bimodal_gaps() {
        let mut w = SyntheticWorkload::new(params(), 5);
        let gaps: Vec<u32> = (0..50_000)
            .map(|_| w.next_record().gap_instructions)
            .collect();
        let big = gaps.iter().filter(|&&g| g > 300).count();
        let small = gaps.iter().filter(|&&g| g <= 300).count();
        // Mostly small in-burst gaps, with a meaningful tail of idle gaps.
        assert!(small > big * 5);
        assert!(big > 100);
    }

    /// Regression (ISSUE 8): `sample_gap` used to floor-truncate the
    /// exponential sample, biasing every gap ~0.5 cycles below the
    /// configured mean — at `burst_gap_mean = 4` a 12% error. With the
    /// burst and idle means equal, every emitted gap is a plain
    /// exponential draw, so the realized mean must track the configured
    /// mean; the old floor bias fails this tolerance.
    #[test]
    fn realized_gap_mean_is_unbiased() {
        for mean in [4u32, 10, 50] {
            let mut p = params();
            p.burst_gap_mean = mean;
            p.idle_gap_mean = mean;
            let mut w = SyntheticWorkload::new(p, 13);
            const N: u64 = 200_000;
            let sum: u64 = (0..N)
                .map(|_| w.next_record().gap_instructions as u64)
                .sum();
            let realized = sum as f64 / N as f64;
            let tol = 0.1 + mean as f64 * 0.01;
            assert!(
                (realized - mean as f64).abs() < tol,
                "mean {mean}: realized {realized} off by more than {tol}"
            );
        }
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut p = params();
        p.hot_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = params();
        p.region_lines = 0;
        assert!(p.validate().is_err());
        let mut p = params();
        p.hot_lines = 0;
        assert!(p.validate().is_err()); // hot_fraction > 0 but no hot set
    }

    #[test]
    fn zero_hot_fraction_allows_zero_hot_lines() {
        let mut p = params();
        p.hot_fraction = 0.0;
        p.hot_lines = 0;
        p.validate().unwrap();
        let mut w = SyntheticWorkload::new(p, 1);
        for _ in 0..100 {
            let _ = w.next_record();
        }
    }
}
