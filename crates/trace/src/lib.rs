//! Synthetic SPEC CPU2006-like workload generators.
//!
//! The paper drives its simulator with Pin-captured traces of twelve SPEC
//! CPU2006 benchmarks (Table II). Those binaries and traces are not
//! available here, so — per the substitution rule recorded in DESIGN.md —
//! each benchmark is replaced by a deterministic synthetic generator that
//! reproduces the *post-LLC character* that matters to ROP:
//!
//! * **memory intensity** — how many instructions execute per memory
//!   reference, and how much of the footprint is LLC-resident;
//! * **address pattern** — streaming strides (lbm, libquantum, bwaves,
//!   GemsFDTD, wrf), repeating multi-delta sequences (cactusADM, gcc),
//!   or irregular/pointer-chasing references (omnetpp, astar, gobmk,
//!   perlbench, bzip2);
//! * **phase structure** — burst/idle alternation, which controls the
//!   probability that an observational window before a refresh is empty
//!   (the `B = 0` event) and hence the profiler's β.
//!
//! Generators are infinite, deterministic for a given seed, and cheap
//! (~20 ns/record), so experiments regenerate traffic on the fly instead
//! of storing traces.

#![forbid(unsafe_code)]

pub mod arrival;
pub mod pattern;
pub mod record;
pub mod replay;
pub mod sampler;
pub mod spec2006;
pub mod synthetic;

pub use arrival::{Arrival, ArrivalGen, ArrivalProcess, DIURNAL_MULTIPLIERS};
pub use pattern::AddressPattern;
pub use record::TraceRecord;
pub use replay::{capture, load_trace, write_trace, ReplayWorkload, TraceError};
pub use spec2006::{Benchmark, WorkloadMix, ALL_BENCHMARKS, WORKLOAD_MIXES};
pub use synthetic::{SyntheticWorkload, WorkloadParams};

/// A source of an infinite instruction/memory-reference stream.
pub trait WorkloadGen {
    /// Produces the next trace record.
    fn next_record(&mut self) -> TraceRecord;
    /// Human-readable benchmark name.
    fn name(&self) -> &str;
}
